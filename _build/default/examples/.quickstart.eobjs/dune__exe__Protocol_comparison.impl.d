examples/protocol_comparison.ml: List Rdt_core Rdt_harness Rdt_workloads
