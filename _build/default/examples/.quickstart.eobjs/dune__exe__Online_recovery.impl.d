examples/online_recovery.ml: Array Format List Rdt_core Rdt_failures Rdt_workloads String
