examples/coordinated_snapshot.mli:
