examples/debugging_breakpoint.ml: Format List Printf Rdt_core Rdt_pattern Rdt_recovery Rdt_workloads String
