examples/recovery_rollback.mli:
