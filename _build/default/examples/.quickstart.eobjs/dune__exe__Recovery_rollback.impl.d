examples/recovery_rollback.ml: Array Format Rdt_core Rdt_pattern Rdt_recovery Rdt_workloads
