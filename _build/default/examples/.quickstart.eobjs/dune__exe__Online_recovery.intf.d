examples/online_recovery.mli:
