examples/quickstart.ml: Array Format Printf Rdt_core Rdt_pattern Rdt_workloads String
