examples/coordinated_snapshot.ml: Array Format List Printf Rdt_coordinated Rdt_core Rdt_pattern Rdt_recovery Rdt_workloads String
