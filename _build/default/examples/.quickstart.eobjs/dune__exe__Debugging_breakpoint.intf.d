examples/debugging_breakpoint.mli:
