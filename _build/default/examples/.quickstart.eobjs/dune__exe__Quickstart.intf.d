examples/quickstart.mli:
