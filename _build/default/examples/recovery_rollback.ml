(* Rollback recovery and the domino effect.

   The same workload is run twice: once with uncoordinated ("independent")
   checkpointing and once under the BHMR protocol.  A process then crashes
   mid-run and each system computes its recovery line — the maximum
   consistent global checkpoint available.  Without coordination the line
   cascades (here: all the way back to the initial state); under RDT it
   stays pinned near the crash point, and the storage model shows how many
   old checkpoints the recovery line lets us garbage-collect.

   Run with:  dune exec examples/recovery_rollback.exe *)

let crash_outcome protocol_name =
  let env = Rdt_workloads.Registry.find_exn "random" in
  let protocol = Rdt_core.Registry.find_exn protocol_name in
  let config =
    {
      (Rdt_core.Runtime.default_config env protocol) with
      Rdt_core.Runtime.n = 6;
      seed = 13;
      max_messages = 1200;
    }
  in
  let result = Rdt_core.Runtime.run config in
  let pat = result.pattern in
  (* Process 3 crashes at 60% of the run and loses everything after its
     last durable checkpoint before that instant. *)
  let crash_time = int_of_float (0.6 *. float_of_int result.metrics.duration) in
  let available = ref 0 in
  Array.iter
    (fun (c : Rdt_pattern.Types.ckpt) ->
      if c.kind <> Rdt_pattern.Types.Final && c.time <= crash_time then available := c.index)
    (Rdt_pattern.Pattern.checkpoints pat 3);
  let outcome =
    Rdt_recovery.Recovery_line.recover pat [ { Rdt_recovery.Recovery_line.pid = 3; available = !available } ]
  in
  (pat, outcome)

let () =
  Format.printf "--- independent checkpointing (no protocol) ---@.";
  let pat_none, none = crash_outcome "none" in
  Format.printf "%a@." Rdt_recovery.Recovery_line.pp_outcome none;

  Format.printf "@.--- BHMR communication-induced checkpointing ---@.";
  let pat_bhmr, bhmr = crash_outcome "bhmr" in
  Format.printf "%a@." Rdt_recovery.Recovery_line.pp_outcome bhmr;

  (* The headline comparison: how much does a survivor lose? *)
  let lost o = Array.fold_left ( + ) 0 o.Rdt_recovery.Recovery_line.lost_events in
  Format.printf "@.total events undone: independent=%d, bhmr=%d@." (lost none) (lost bhmr);
  if Array.for_all (fun x -> x = 0) none.line then
    Format.printf "independent checkpointing hit the full domino effect (back to the start).@.";
  assert (bhmr.Rdt_recovery.Recovery_line.domino_depth <= Rdt_pattern.Pattern.last_index pat_bhmr 3);

  (* Garbage collection: everything below the recovery line is dead. *)
  let storage = Rdt_recovery.Storage.create pat_bhmr in
  Rdt_pattern.Pattern.iter_ckpts pat_bhmr (fun c ->
      Rdt_recovery.Storage.make_stable storage (c.owner, c.index));
  let reclaimed = Rdt_recovery.Storage.collect storage ~line:bhmr.line in
  Format.printf "stable checkpoints reclaimable once the line is committed: %d@." reclaimed;
  ignore pat_none
