(* Distributed debugging with causal breakpoints.

   Scenario: a bug manifests at server S_2 of a client-server chain.  To
   inspect the system "at the moment of the bug", a debugger must restore
   a consistent global state that contains S_2's state — including every
   state the buggy state causally depends on, but nothing more.  That
   state is the minimum consistent global checkpoint containing the
   checkpoint that closed the buggy interval; under RDT it is read off the
   checkpoint's dependency vector, with no graph search at debug time.

   Run with:  dune exec examples/debugging_breakpoint.exe *)

let () =
  let env = Rdt_workloads.Client_server.make () in
  let protocol = Rdt_core.Registry.find_exn "bhmr" in
  let config =
    {
      (Rdt_core.Runtime.default_config env protocol) with
      Rdt_core.Runtime.n = 6;
      seed = 7;
      max_messages = 700;
    }
  in
  let result = Rdt_core.Runtime.run config in
  let pat = result.pattern in
  Format.printf "computation: %a@." Rdt_pattern.Pattern.pp_summary pat;

  (* The "bug" is observed in the middle of S_2's execution. *)
  let buggy_pid = 2 in
  let buggy_ckpt = (buggy_pid, Rdt_pattern.Pattern.last_index pat buggy_pid / 2) in
  Format.printf "bug observed at %a@." Rdt_pattern.Types.pp_ckpt_id buggy_ckpt;

  match Rdt_recovery.Breakpoint.compute pat buggy_ckpt with
  | None -> failwith "no consistent global checkpoint contains the target (RDT violated?)"
  | Some bp ->
      Format.printf "%a@." Rdt_recovery.Breakpoint.pp bp;
      assert bp.on_the_fly;
      (* RDT also makes the restore order explicit: dependencies first. *)
      let order = Rdt_recovery.Breakpoint.restore_order pat bp in
      Format.printf "restore order: %s@."
        (String.concat " -> "
           (List.map (fun (i, x) -> Printf.sprintf "C(%d,%d)" i x) order));
      (* Sanity: the breakpoint is a consistent global checkpoint and every
         entry is at most the target's own position on its process. *)
      assert (Rdt_pattern.Consistency.consistent_global pat bp.line);
      Format.printf "breakpoint verified consistent.@."
