(* Benchmark and reproduction harness.

   Default: regenerate every table and figure of the paper's evaluation
   (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record), then run the bechamel micro-benchmarks of
   the protocol and analysis hot paths.

     dune exec bench/main.exe                 # everything (10 seeds)
     dune exec bench/main.exe -- --quick      # 3 seeds
     dune exec bench/main.exe -- --micro      # micro-benchmarks only
     dune exec bench/main.exe -- --no-micro   # experiments only *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one Test.make per hot path                        *)
(* ------------------------------------------------------------------ *)

let run_config protocol n =
  {
    (Rdt_core.Runtime.default_config (Rdt_workloads.Registry.find_exn "random") protocol) with
    Rdt_core.Runtime.n;
    seed = 42;
    max_messages = 300;
  }

let protocol_tests =
  (* whole-run cost per protocol: 300 messages of random traffic *)
  List.concat_map
    (fun n ->
      List.map
        (fun pname ->
          let protocol = Rdt_core.Registry.find_exn pname in
          Test.make
            ~name:(Printf.sprintf "run/%s/n=%d" pname n)
            (Staged.stage (fun () -> ignore (Rdt_core.Runtime.run (run_config protocol n)))))
        [ "none"; "fdas"; "bhmr-v1"; "bhmr" ])
    [ 8; 32 ]

let analysis_tests =
  let protocol = Rdt_core.Registry.find_exn "bhmr" in
  let pattern = (Rdt_core.Runtime.run (run_config protocol 8)).Rdt_core.Runtime.pattern in
  [
    Test.make ~name:"analysis/rgraph-build"
      (Staged.stage (fun () -> ignore (Rdt_pattern.Rgraph.build pattern)));
    Test.make ~name:"analysis/rgraph-reach-all"
      (Staged.stage (fun () ->
           let g = Rdt_pattern.Rgraph.build pattern in
           ignore (Rdt_pattern.Rgraph.reaches g (0, 0) (1, 1))));
    Test.make ~name:"analysis/tdv-replay"
      (Staged.stage (fun () -> ignore (Rdt_pattern.Tdv.compute pattern)));
    Test.make ~name:"analysis/rdt-check"
      (Staged.stage (fun () -> ignore (Rdt_core.Checker.check pattern)));
    Test.make ~name:"analysis/min-gcp-fixpoint"
      (Staged.stage (fun () -> ignore (Rdt_core.Min_gcp.minimum pattern (0, 1))));
    Test.make ~name:"analysis/recovery-line"
      (Staged.stage (fun () ->
           let bounds =
             Array.init (Rdt_pattern.Pattern.n pattern) (fun i ->
                 Rdt_pattern.Pattern.last_index pattern i)
           in
           ignore (Rdt_recovery.Recovery_line.max_consistent_bounded pattern bounds)));
  ]

let run_micro () =
  Format.printf "@.== MICRO: bechamel micro-benchmarks (ns per run) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"rdt" ~fmt:"%s %s" (protocol_tests @ analysis_tests) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let table = Rdt_harness.Table.create ~header:[ "benchmark"; "time/run"; "r²" ] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      let pretty =
        if Float.is_nan estimate then "-"
        else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
        else Printf.sprintf "%.1f ns" estimate
      in
      Rdt_harness.Table.add_row table
        [ name; pretty; (if Float.is_nan r2 then "-" else Printf.sprintf "%.4f" r2) ])
    (List.sort compare rows);
  Rdt_harness.Table.print table

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let quick = has "--quick" in
  let micro_only = has "--micro" in
  let no_micro = has "--no-micro" in
  if not micro_only then Rdt_harness.Experiments.run_all ~quick ();
  if not no_micro then run_micro ();
  Format.print_flush ()
