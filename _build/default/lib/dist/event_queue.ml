type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let compare_entry a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; next_seq = 0 }

let schedule q ~time payload =
  if time < 0 then invalid_arg "Event_queue.schedule: negative time";
  Heap.add q.heap { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1

let pop q =
  match Heap.pop q.heap with
  | None -> None
  | Some e -> Some (e.time, e.payload)

let peek_time q =
  match Heap.peek q.heap with
  | None -> None
  | Some e -> Some e.time

let length q = Heap.length q.heap

let is_empty q = Heap.is_empty q.heap
