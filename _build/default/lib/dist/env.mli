(** Application environments.

    An environment drives the *application* side of a simulated
    computation: which process sends to which, when, and how it reacts to
    deliveries.  Checkpointing concerns are kept out of this interface — a
    communication-induced checkpointing protocol observes the resulting
    communication pattern and injects forced checkpoints, while basic
    checkpoints are scheduled independently by the runtime (as in the
    paper, where processes take basic checkpoints on their own).

    Environments may nevertheless request extra basic checkpoints with
    [Checkpoint] (e.g. to model an application that checkpoints at phase
    boundaries). *)

type action =
  | Send of int  (** send an application message to this destination *)
  | Internal  (** a purely local event *)
  | Checkpoint  (** take a basic (application-requested) checkpoint *)

type tick_result = {
  actions : action list;  (** performed now, in order *)
  next_tick_in : int option;
      (** delay until this process's next spontaneous activity; [None]
          stops spontaneous activity for the process *)
}

module type S = sig
  type t

  val name : string

  val create : n:int -> rng:Rng.t -> t
  (** A fresh environment state over processes [0 .. n-1].  All the
      environment's randomness must come from [rng]. *)

  val initial_tick_delay : t -> pid:int -> int
  (** Delay before the first spontaneous activity of [pid]. *)

  val on_tick : t -> pid:int -> tick_result
  (** Spontaneous activity of [pid]. *)

  val on_deliver : t -> pid:int -> src:int -> action list
  (** Reaction of [pid] to an application message from [src] (e.g. a
      server forwarding a request or sending a reply). *)
end

type t = (module S)

val no_reaction : 'a -> pid:int -> src:int -> action list
(** Convenience [on_deliver] for environments that never react. *)
