type action =
  | Send of int
  | Internal
  | Checkpoint

type tick_result = { actions : action list; next_tick_in : int option }

module type S = sig
  type t

  val name : string
  val create : n:int -> rng:Rng.t -> t
  val initial_tick_delay : t -> pid:int -> int
  val on_tick : t -> pid:int -> tick_result
  val on_deliver : t -> pid:int -> src:int -> action list
end

type t = (module S)

let no_reaction _ ~pid:_ ~src:_ = []
