(** Deterministic discrete-event queue.

    Events are ordered by integer simulated time; ties break on a strictly
    increasing insertion sequence number, so two runs that enqueue the same
    events in the same order pop them in the same order — a prerequisite for
    reproducible simulations. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> time:int -> 'a -> unit
(** [schedule q ~time ev] enqueues [ev] at absolute simulated [time].
    @raise Invalid_argument if [time] is negative. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes the earliest event, returning [(time, event)]. *)

val peek_time : 'a t -> int option
(** Time of the next event, if any. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
