lib/dist/lamport.mli:
