lib/dist/env.mli: Rng
