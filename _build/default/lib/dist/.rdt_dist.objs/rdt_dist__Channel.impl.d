lib/dist/channel.ml: Format Rng
