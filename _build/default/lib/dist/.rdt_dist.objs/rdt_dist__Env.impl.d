lib/dist/env.ml: Rng
