lib/dist/event_queue.mli:
