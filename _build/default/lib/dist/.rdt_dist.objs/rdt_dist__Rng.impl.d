lib/dist/rng.ml: Array Float Int64
