lib/dist/heap.ml: Array
