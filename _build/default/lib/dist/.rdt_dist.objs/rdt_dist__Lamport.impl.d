lib/dist/lamport.ml:
