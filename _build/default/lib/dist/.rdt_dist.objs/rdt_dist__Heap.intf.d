lib/dist/heap.mli:
