lib/dist/channel.mli: Format Rng
