lib/dist/event_queue.ml: Heap
