lib/dist/vclock.mli: Format
