lib/dist/vclock.ml: Array Format Stdlib
