lib/dist/rng.mli:
