(** Lamport scalar logical clocks.

    Provided as part of the logical-time substrate; used by tests and by
    trace analyses that only need a total order consistent with causality. *)

type t

val create : unit -> t

val now : t -> int
(** Current clock value. *)

val tick : t -> int
(** [tick c] advances the clock for a local or send event and returns the
    new value (to be stamped on the event/message). *)

val observe : t -> int -> int
(** [observe c ts] merges a received timestamp: the clock becomes
    [max now ts + 1]; returns the new value (the delivery event's stamp). *)
