(** Imperative binary min-heap, polymorphic in the element type.

    The ordering is supplied at creation time; elements compare by the
    given [cmp].  Used by {!Event_queue} and by analysis passes that need a
    priority queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x].  Amortised O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is a snapshot of the contents in unspecified order. *)
