type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Vclock.create: n must be positive";
  Array.make n 0

let of_array a = Array.copy a

let to_array v = Array.copy v

let copy = Array.copy

let size = Array.length

let get v i = v.(i)

let set v i x =
  if x < 0 then invalid_arg "Vclock.set: negative entry";
  v.(i) <- x

let incr v i = v.(i) <- v.(i) + 1

let merge v w =
  if Array.length v <> Array.length w then invalid_arg "Vclock.merge: size mismatch";
  for i = 0 to Array.length v - 1 do
    if w.(i) > v.(i) then v.(i) <- w.(i)
  done

let leq v w =
  if Array.length v <> Array.length w then invalid_arg "Vclock.leq: size mismatch";
  let rec loop i = i >= Array.length v || (v.(i) <= w.(i) && loop (i + 1)) in
  loop 0

let equal v w = v = w

let lt v w = leq v w && not (equal v w)

let concurrent v w = (not (leq v w)) && not (leq w v)

let compare = Stdlib.compare

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list v)
