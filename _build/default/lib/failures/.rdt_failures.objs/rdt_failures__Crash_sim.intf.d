lib/failures/crash_sim.mli: Rdt_core Rdt_dist Rdt_pattern
