lib/failures/crash_sim.ml: Array Hashtbl List Rdt_core Rdt_dist Rdt_pattern
