lib/workloads/group_env.ml: Array List Params Rdt_dist Seq
