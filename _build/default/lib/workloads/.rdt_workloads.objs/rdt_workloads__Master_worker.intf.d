lib/workloads/master_worker.mli: Rdt_dist
