lib/workloads/random_env.mli: Params Rdt_dist
