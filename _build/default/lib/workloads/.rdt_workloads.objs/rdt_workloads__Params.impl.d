lib/workloads/params.ml:
