lib/workloads/master_worker.ml: Array List Rdt_dist
