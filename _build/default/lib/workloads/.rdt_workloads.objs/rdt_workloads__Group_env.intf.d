lib/workloads/group_env.mli: Params Rdt_dist
