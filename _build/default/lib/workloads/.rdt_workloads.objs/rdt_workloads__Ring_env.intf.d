lib/workloads/ring_env.mli: Rdt_dist
