lib/workloads/prodcons_env.ml: Params Rdt_dist
