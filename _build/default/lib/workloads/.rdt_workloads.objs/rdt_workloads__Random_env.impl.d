lib/workloads/random_env.ml: List Params Rdt_dist
