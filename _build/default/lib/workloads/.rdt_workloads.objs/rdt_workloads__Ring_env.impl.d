lib/workloads/ring_env.ml: Array Rdt_dist
