lib/workloads/params.mli:
