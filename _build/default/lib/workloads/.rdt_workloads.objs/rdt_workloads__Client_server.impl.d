lib/workloads/client_server.ml: Rdt_dist
