lib/workloads/stencil_env.mli: Rdt_dist
