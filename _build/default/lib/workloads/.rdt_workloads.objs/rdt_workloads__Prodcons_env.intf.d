lib/workloads/prodcons_env.mli: Params Rdt_dist
