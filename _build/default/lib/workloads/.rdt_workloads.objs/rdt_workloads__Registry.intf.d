lib/workloads/registry.mli: Rdt_dist
