lib/workloads/client_server.mli: Rdt_dist
