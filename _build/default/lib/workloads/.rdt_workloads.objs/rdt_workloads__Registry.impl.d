lib/workloads/registry.ml: Client_server Group_env List Master_worker Printf Prodcons_env Random_env Ring_env Stencil_env String
