lib/workloads/stencil_env.ml: Array List Rdt_dist
