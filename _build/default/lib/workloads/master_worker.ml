module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type mw_params = { fanout : int; mean_batch_gap : int; worker_internal_mean : int }

let default_mw_params = { fanout = 3; mean_batch_gap = 100; worker_internal_mean = 120 }

let make ?(params = default_mw_params) () : Env.t =
  if params.fanout < 1 then invalid_arg "Master_worker: fanout must be >= 1";
  if params.mean_batch_gap <= 0 || params.worker_internal_mean <= 0 then
    invalid_arg "Master_worker: means must be positive";
  (module struct
    type t = { n : int; rng : Rng.t }

    let name = "master-worker"

    let create ~n ~rng = { n; rng }

    let initial_tick_delay t ~pid =
      if pid = 0 then Rng.exponential_int t.rng ~mean:params.mean_batch_gap
      else Rng.exponential_int t.rng ~mean:params.worker_internal_mean

    let on_tick t ~pid =
      if pid = 0 then begin
        let workers = t.n - 1 in
        let batch = min params.fanout workers in
        let chosen = Array.init workers (fun k -> k + 1) in
        Rng.shuffle t.rng chosen;
        {
          Env.actions = List.init batch (fun k -> Env.Send chosen.(k));
          next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.mean_batch_gap);
        }
      end
      else
        {
          Env.actions = [ Env.Internal ];
          next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.worker_internal_mean);
        }

    let on_deliver _ ~pid ~src =
      if pid <> 0 && src = 0 then [ Env.Send 0 ] (* worker returns a result *)
      else []
  end)
