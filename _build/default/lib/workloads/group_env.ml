module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type group_params = {
  group_size : int;
  overlap : int;
  multicast_prob : float;
  intra_prob : float;
  base : Params.t;
}

let default_group_params =
  { group_size = 3; overlap = 1; multicast_prob = 0.3; intra_prob = 0.95; base = Params.default }

let validate p =
  if p.group_size < 2 then Error "group_size must be >= 2"
  else if p.overlap < 0 || p.overlap >= p.group_size then Error "overlap out of [0, group_size)"
  else if p.multicast_prob < 0.0 || p.multicast_prob > 1.0 then Error "multicast_prob out of [0;1]"
  else if p.intra_prob < 0.0 || p.intra_prob > 1.0 then Error "intra_prob out of [0;1]"
  else Params.validate p.base

(* Groups are windows of [group_size] consecutive processes (mod n),
   starting every (group_size - overlap) processes. *)
let build_groups ~n ~group_size ~overlap =
  let stride = max 1 (group_size - overlap) in
  let num_groups = max 1 ((n + stride - 1) / stride) in
  Array.init num_groups (fun g ->
      Array.init (min group_size n) (fun k -> ((g * stride) + k) mod n))

let make ?(params = default_group_params) () : Env.t =
  (match validate params with Ok () -> () | Error e -> invalid_arg ("Group_env: " ^ e));
  (module struct
    type t = {
      n : int;
      rng : Rng.t;
      groups : int array array;
      groups_of : int array array; (* process -> ids of groups containing it *)
    }

    let name = "group"

    let create ~n ~rng =
      let groups = build_groups ~n ~group_size:params.group_size ~overlap:params.overlap in
      let member = Array.make n [] in
      Array.iteri
        (fun g members -> Array.iter (fun p -> member.(p) <- g :: member.(p)) members)
        groups;
      let groups_of = Array.map (fun l -> Array.of_list (List.rev l)) member in
      { n; rng; groups; groups_of }

    let mean_think = params.base.Params.mean_think

    let initial_tick_delay t ~pid:_ = Rng.exponential_int t.rng ~mean:mean_think

    let uniform_other t pid =
      let d = Rng.int t.rng (t.n - 1) in
      if d >= pid then d + 1 else d

    let group_other t pid =
      (* a random fellow member of a random group of [pid] *)
      let gs = t.groups_of.(pid) in
      if Array.length gs = 0 then uniform_other t pid
      else begin
        let members = t.groups.(Rng.pick t.rng gs) in
        let rec draw tries =
          if tries = 0 then uniform_other t pid
          else
            let m = Rng.pick t.rng members in
            if m <> pid then m else draw (tries - 1)
        in
        draw 8
      end

    let on_tick t ~pid =
      let actions =
        if not (Rng.bernoulli t.rng params.base.Params.send_prob) then [ Env.Internal ]
        else if Rng.bernoulli t.rng params.multicast_prob && Array.length t.groups_of.(pid) > 0
        then begin
          let members = t.groups.(Rng.pick t.rng t.groups_of.(pid)) in
          Array.to_list
            (Array.of_seq
               (Seq.filter_map
                  (fun m -> if m <> pid then Some (Env.Send m) else None)
                  (Array.to_seq members)))
        end
        else if Rng.bernoulli t.rng params.intra_prob then [ Env.Send (group_other t pid) ]
        else [ Env.Send (uniform_other t pid) ]
      in
      { Env.actions; next_tick_in = Some (Rng.exponential_int t.rng ~mean:mean_think) }

    let on_deliver = Env.no_reaction
  end)
