(** Master-worker environment: process 0 periodically scatters a batch of
    tasks to [fanout] random workers; each worker replies with a result.
    A hub-and-spoke pattern where the master's state accumulates
    dependencies on every worker. *)

type mw_params = { fanout : int; mean_batch_gap : int; worker_internal_mean : int }

val default_mw_params : mw_params

val make : ?params:mw_params -> unit -> Rdt_dist.Env.t
