type t = { mean_think : int; send_prob : float; burst_max : int }

let default = { mean_think = 40; send_prob = 0.9; burst_max = 1 }

let validate p =
  if p.mean_think <= 0 then Error "mean_think must be positive"
  else if p.send_prob < 0.0 || p.send_prob > 1.0 then Error "send_prob out of [0;1]"
  else if p.burst_max < 1 then Error "burst_max must be >= 1"
  else Ok ()
