(** The client-server environment (Figure 9 of the paper).

    Processes act as a chain of servers [S_0 .. S_{n-1}].  An external
    client (modelled as spontaneous activity at [S_0]) issues requests;
    each server either replies to its caller, with probability
    [reply_prob], or forwards the request to the next server and waits.
    The last server always replies, and replies propagate back down the
    chain ([S_0]'s reply to the external client involves no message).

    This environment is adversarial for dependency tracking: "the causal
    past of any message contains all the messages of the computation", so
    every delivery is a potential new-dependency event.  Several client
    requests may be outstanding at once ([pipeline] > 1 issues them
    without waiting). *)

type cs_params = {
  reply_prob : float;  (** probability a middle server replies instead of forwarding *)
  mean_request_gap : int;  (** mean time between external client requests *)
  internal_mean : int;  (** mean time between internal events of each server *)
}

val default_cs_params : cs_params

val make : ?params:cs_params -> unit -> Rdt_dist.Env.t
