(** Token-ring environment: [tokens] tokens circulate around the ring
    [0 -> 1 -> ... -> n-1 -> 0]; a process forwards a token as soon as it
    is delivered, and performs occasional internal events.  A classic
    pipeline pattern where dependencies wrap around — useful to exercise
    chains from [C_{k,z}] back to earlier checkpoints of the same
    process (the C2 predicate). *)

type ring_params = { tokens : int; internal_mean : int }

val default_ring_params : ring_params

val make : ?params:ring_params -> unit -> Rdt_dist.Env.t
