module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type ring_params = { tokens : int; internal_mean : int }

let default_ring_params = { tokens = 2; internal_mean = 80 }

let make ?(params = default_ring_params) () : Env.t =
  if params.tokens < 1 then invalid_arg "Ring_env: tokens must be >= 1";
  if params.internal_mean <= 0 then invalid_arg "Ring_env: internal_mean must be positive";
  (module struct
    type t = { n : int; rng : Rng.t; launched : bool array }

    let name = "ring"

    let create ~n ~rng = { n; rng; launched = Array.make n false }

    let initial_tick_delay t ~pid:_ = 1 + Rng.int t.rng params.internal_mean

    let next t pid = (pid + 1) mod t.n

    let on_tick t ~pid =
      let actions =
        if pid < min params.tokens t.n && not t.launched.(pid) then begin
          t.launched.(pid) <- true;
          [ Env.Send (next t pid) ]
        end
        else [ Env.Internal ]
      in
      { Env.actions; next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.internal_mean) }

    let on_deliver t ~pid ~src:_ = [ Env.Send (next t pid) ]
  end)
