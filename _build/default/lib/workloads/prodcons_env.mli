(** Producer-consumer environment: the first half of the processes
    produce items for uniformly chosen consumers in the second half; a
    consumer acknowledges each item back to its producer with probability
    [ack_prob].  Communication is strongly bipartite, which keeps the
    [causal] matrices sparse and favours the knowledge-based predicates. *)

type pc_params = { ack_prob : float; base : Params.t }

val default_pc_params : pc_params

val make : ?params:pc_params -> unit -> Rdt_dist.Env.t
