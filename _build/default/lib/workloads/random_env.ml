module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

let make ?(params = Params.default) () : Env.t =
  (match Params.validate params with Ok () -> () | Error e -> invalid_arg ("Random_env: " ^ e));
  (module struct
    type t = { n : int; rng : Rng.t }

    let name = "random"

    let create ~n ~rng = { n; rng }

    let initial_tick_delay t ~pid:_ = Rng.exponential_int t.rng ~mean:params.Params.mean_think

    let other_process t pid =
      let d = Rng.int t.rng (t.n - 1) in
      if d >= pid then d + 1 else d

    let on_tick t ~pid =
      let actions =
        if Rng.bernoulli t.rng params.Params.send_prob then begin
          let burst = 1 + Rng.int t.rng params.Params.burst_max in
          List.init burst (fun _ -> Env.Send (other_process t pid))
        end
        else [ Env.Internal ]
      in
      {
        Env.actions;
        next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.Params.mean_think);
      }

    let on_deliver = Env.no_reaction
  end)
