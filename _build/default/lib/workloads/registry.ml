let all =
  [
    ("random", "uniform random point-to-point traffic", fun () -> Random_env.make ());
    ("group", "overlapping group communication", fun () -> Group_env.make ());
    ("client-server", "chain of servers driven by an external client", fun () ->
      Client_server.make ());
    ("ring", "tokens circulating on a ring", fun () -> Ring_env.make ());
    ("prodcons", "producers feeding consumers with acknowledgements", fun () ->
      Prodcons_env.make ());
    ("master-worker", "master scattering tasks, workers replying", fun () ->
      Master_worker.make ());
    ("stencil", "ring-neighbour exchange in self-clocking phases", fun () -> Stencil_env.make ());
  ]

let find name =
  List.find_map (fun (n, _, f) -> if n = name then Some f else None) all

let names = List.map (fun (n, _, _) -> n) all

let find_exn name =
  match find name with
  | Some f -> f ()
  | None ->
      invalid_arg
        (Printf.sprintf "unknown environment %S (valid: %s)" name (String.concat ", " names))
