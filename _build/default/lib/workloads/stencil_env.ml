module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type stencil_params = { warmup_mean : int; compute_internal : bool }

let default_stencil_params = { warmup_mean = 30; compute_internal = true }

let make ?(params = default_stencil_params) () : Env.t =
  if params.warmup_mean <= 0 then invalid_arg "Stencil_env: warmup_mean must be positive";
  (module struct
    type t = {
      n : int;
      rng : Rng.t;
      started : bool array;
      pending : int array; (* neighbour messages still expected this phase *)
    }

    let name = "stencil"

    let create ~n ~rng = { n; rng; started = Array.make n false; pending = Array.make n 2 }

    let initial_tick_delay t ~pid:_ = Rng.exponential_int t.rng ~mean:params.warmup_mean

    let neighbours t pid =
      if t.n = 2 then [ (pid + 1) mod 2 ]
      else [ (pid + 1) mod t.n; (pid + t.n - 1) mod t.n ]

    let exchange t pid =
      let sends = List.map (fun nb -> Env.Send nb) (neighbours t pid) in
      t.pending.(pid) <- List.length sends;
      if params.compute_internal then Env.Internal :: sends else sends

    let on_tick t ~pid =
      if t.started.(pid) then { Env.actions = []; next_tick_in = None }
      else begin
        t.started.(pid) <- true;
        { Env.actions = exchange t pid; next_tick_in = None }
      end

    let on_deliver t ~pid ~src:_ =
      t.pending.(pid) <- t.pending.(pid) - 1;
      if t.pending.(pid) <= 0 then exchange t pid else []
  end)
