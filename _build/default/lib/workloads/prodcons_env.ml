module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type pc_params = { ack_prob : float; base : Params.t }

let default_pc_params = { ack_prob = 0.5; base = Params.default }

let make ?(params = default_pc_params) () : Env.t =
  if params.ack_prob < 0.0 || params.ack_prob > 1.0 then
    invalid_arg "Prodcons_env: ack_prob out of [0;1]";
  (match Params.validate params.base with
  | Ok () -> ()
  | Error e -> invalid_arg ("Prodcons_env: " ^ e));
  (module struct
    type t = { n : int; rng : Rng.t; producers : int }

    let name = "prodcons"

    let create ~n ~rng = { n; rng; producers = max 1 (n / 2) }

    let mean_think = params.base.Params.mean_think

    let initial_tick_delay t ~pid:_ = Rng.exponential_int t.rng ~mean:mean_think

    let on_tick t ~pid =
      let consumers = t.n - t.producers in
      let actions =
        if pid < t.producers && consumers > 0 && Rng.bernoulli t.rng params.base.Params.send_prob
        then [ Env.Send (t.producers + Rng.int t.rng consumers) ]
        else [ Env.Internal ]
      in
      { Env.actions; next_tick_in = Some (Rng.exponential_int t.rng ~mean:mean_think) }

    let on_deliver t ~pid ~src =
      if pid >= t.producers && src < t.producers && Rng.bernoulli t.rng params.ack_prob then
        [ Env.Send src ]
      else []
  end)
