(** The "general" communication environment of the simulation study:
    every process alternates exponentially-distributed think times with
    activities that are, with probability [send_prob], a send to a
    uniformly random other process (a burst of up to [burst_max]) and an
    internal event otherwise.  No reaction to deliveries. *)

val make : ?params:Params.t -> unit -> Rdt_dist.Env.t
