(** Registry of workload environments (with default parameters). *)

val all : (string * string * (unit -> Rdt_dist.Env.t)) list
(** [(name, description, constructor)] for every environment. *)

val find : string -> (unit -> Rdt_dist.Env.t) option

val find_exn : string -> Rdt_dist.Env.t
(** Builds the environment with default parameters.
    @raise Invalid_argument on unknown names. *)

val names : string list
