(** Stencil / iterative-phases environment: processes sit on a ring and,
    in each phase, exchange one message with each of their two neighbours,
    starting the next phase once both neighbours' values have arrived — a
    self-clocking bulk-synchronous pattern typical of iterative numerical
    codes.  Dependencies advance in lock-step waves, which makes the
    dependency vectors change on almost every delivery. *)

type stencil_params = {
  warmup_mean : int;  (** mean delay before a process starts phase 0 *)
  compute_internal : bool;
      (** emit an internal event (the "compute" step) at each phase
          boundary *)
}

val default_stencil_params : stencil_params

val make : ?params:stencil_params -> unit -> Rdt_dist.Env.t
