(** Overlapping group communication environments (Figure 8 of the paper).

    Processes are organised into groups of [group_size], each overlapping
    the next by [overlap] members (wrapping around), so information flows
    mostly inside groups and leaks through the shared members.  A
    spontaneous activity is, with probability [multicast_prob], a
    multicast to every other member of one of the process's groups;
    otherwise, with probability [intra_prob], a send to a random member of
    its own groups, and a uniform random send otherwise. *)

type group_params = {
  group_size : int;
  overlap : int;  (** [0 <= overlap < group_size] *)
  multicast_prob : float;
  intra_prob : float;
  base : Params.t;
}

val default_group_params : group_params

val make : ?params:group_params -> unit -> Rdt_dist.Env.t
