(** Tunable workload parameters shared by the environments.

    The paper's simulation study (Section 5.3) does not publish its exact
    parameter table (the surviving text is partial); these defaults are
    chosen to land in the regime it describes: processes alternate
    computation and communication with memoryless think times, channels
    reorder messages freely, and basic checkpoints are roughly an order of
    magnitude rarer than sends. *)

type t = {
  mean_think : int;
      (** mean (exponential) delay between spontaneous activities of a
          process, in simulated time units *)
  send_prob : float;
      (** probability that a spontaneous activity is a send (otherwise an
          internal event) *)
  burst_max : int;
      (** a send activity emits a burst of 1..[burst_max] messages (to
          distinct destinations when possible) *)
}

val default : t

val validate : t -> (unit, string) result
