module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

type cs_params = { reply_prob : float; mean_request_gap : int; internal_mean : int }

let default_cs_params = { reply_prob = 0.5; mean_request_gap = 60; internal_mean = 150 }

let validate p =
  if p.reply_prob < 0.0 || p.reply_prob > 1.0 then Error "reply_prob out of [0;1]"
  else if p.mean_request_gap <= 0 then Error "mean_request_gap must be positive"
  else if p.internal_mean <= 0 then Error "internal_mean must be positive"
  else Ok ()

let make ?(params = default_cs_params) () : Env.t =
  (match validate params with Ok () -> () | Error e -> invalid_arg ("Client_server: " ^ e));
  (module struct
    type t = { n : int; rng : Rng.t }

    let name = "client-server"

    let create ~n ~rng = { n; rng }

    let initial_tick_delay t ~pid =
      if pid = 0 then Rng.exponential_int t.rng ~mean:params.mean_request_gap
      else Rng.exponential_int t.rng ~mean:params.internal_mean

    (* What server [pid] does with a request it holds: reply to the caller
       or forward up the chain. *)
    let handle_request t ~pid =
      let last = t.n - 1 in
      if pid = last || Rng.bernoulli t.rng params.reply_prob then
        if pid = 0 then [] (* reply to the external client: no message *)
        else [ Env.Send (pid - 1) ]
      else [ Env.Send (pid + 1) ]

    let on_tick t ~pid =
      if pid = 0 then
        (* a fresh external request arrives at S_0 *)
        {
          Env.actions = handle_request t ~pid:0;
          next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.mean_request_gap);
        }
      else
        {
          Env.actions = [ Env.Internal ];
          next_tick_in = Some (Rng.exponential_int t.rng ~mean:params.internal_mean);
        }

    let on_deliver t ~pid ~src =
      if src = pid - 1 then handle_request t ~pid (* a request from below *)
      else if src = pid + 1 then
        (* a reply from above: propagate it down *)
        if pid = 0 then [] else [ Env.Send (pid - 1) ]
      else []
  end)
