module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng
module Channel = Rdt_dist.Channel
module Event_queue = Rdt_dist.Event_queue
module Pattern = Rdt_pattern.Pattern
module Ptypes = Rdt_pattern.Types

type config = {
  n : int;
  seed : int;
  env : Env.t;
  channel : Channel.spec;
  initiation_period : int;
  max_messages : int;
  max_time : int;
}

let default_config env =
  {
    n = 8;
    seed = 1;
    env;
    channel = Channel.Uniform (5, 100);
    initiation_period = 500;
    max_messages = 2000;
    max_time = max_int / 2;
  }

type round = {
  id : int;
  initiated_at : int;
  committed_at : int;
  participants : int list;
  cut : int array;
  control_messages : int;
  deferred_sends : int;
}

type metrics = {
  app_messages : int;
  control_messages : int;
  rounds_committed : int;
  checkpoints_taken : int;
  mean_participants : float;
  mean_latency : float;
}

type result = { pattern : Pattern.t; rounds : round list; metrics : metrics }

type payload =
  | App of int
  | Request of int (* round id *)
  | Reply of int
  | Commit of int

type queued =
  | Tick of int
  | Initiate
  | Arrival of { src : int; dst : int; payload : payload }

(* per-process two-phase state *)
type pstate = {
  mutable received_from : bool array; (* since the last checkpoint taken *)
  mutable tentative : bool;
  mutable requester : int; (* -1 for the initiator *)
  mutable awaiting : int; (* replies still expected from the cohort *)
  mutable children : int list; (* cohort, for the commit wave *)
  mutable deferred : int list; (* destinations of sends deferred while tentative *)
}

let validate cfg =
  if cfg.n < 2 then invalid_arg "Koo_toueg: n must be >= 2";
  if cfg.initiation_period < 1 then invalid_arg "Koo_toueg: initiation_period must be >= 1";
  match Channel.validate cfg.channel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Koo_toueg: bad channel spec: " ^ e)

let run cfg =
  validate cfg;
  let (module E : Env.S) = cfg.env in
  let rng = Rng.create cfg.seed in
  let env = E.create ~n:cfg.n ~rng:(Rng.split rng) in
  let builder = Pattern.Builder.create ~n:cfg.n in
  let queue : queued Event_queue.t = Event_queue.create () in
  let now = ref 0 in
  let sent = ref 0 in
  let control = ref 0 in
  let ckpt_index = Array.make cfg.n 0 in
  let ps =
    Array.init cfg.n (fun _ ->
        {
          received_from = Array.make cfg.n false;
          tentative = false;
          requester = -1;
          awaiting = 0;
          children = [];
          deferred = [];
        })
  in
  (* current round bookkeeping *)
  let active = ref None in
  let next_round = ref 0 in
  let rounds = ref [] in
  let round_deferred = ref 0 in
  let transmit ~src ~dst payload =
    Event_queue.schedule queue ~time:(!now + Channel.sample rng cfg.channel)
      (Arrival { src; dst; payload })
  in
  let send_control ~src ~dst payload =
    incr control;
    transmit ~src ~dst payload
  in
  let send_app ~src ~dst =
    if !sent < cfg.max_messages && src <> dst then
      if ps.(src).tentative then begin
        incr round_deferred;
        ps.(src).deferred <- dst :: ps.(src).deferred
      end
      else begin
        incr sent;
        let handle = Pattern.Builder.send builder ~src ~dst in
        transmit ~src ~dst (App handle)
      end
  in
  let take_tentative pid r ~requester =
    let st = ps.(pid) in
    st.tentative <- true;
    st.requester <- requester;
    ignore (Pattern.Builder.checkpoint ~kind:Ptypes.Basic ~time:!now builder pid);
    ckpt_index.(pid) <- ckpt_index.(pid) + 1;
    (match !active with
    | Some (id, t0, parts, c0) when id = r -> active := Some (id, t0, pid :: parts, c0)
    | Some _ | None -> ());
    (* the cohort: everyone this process received from since its last
       checkpoint *)
    let cohort = ref [] in
    Array.iteri (fun q got -> if got && q <> pid && q <> requester then cohort := q :: !cohort) st.received_from;
    st.received_from <- Array.make cfg.n false;
    st.children <- !cohort;
    st.awaiting <- List.length !cohort;
    List.iter (fun q -> send_control ~src:pid ~dst:q (Request r)) !cohort;
    st.awaiting = 0 (* true when the subtree is trivially done *)
  in
  let rec finish_round id =
    match !active with
    | Some (rid, t0, parts, c0) when rid = id ->
        rounds :=
          {
            id;
            initiated_at = t0;
            committed_at = !now;
            participants = List.rev parts;
            cut = Array.copy ckpt_index;
            control_messages = !control - c0;
            deferred_sends = !round_deferred;
          }
          :: !rounds;
        active := None;
        if !sent < cfg.max_messages && !now <= cfg.max_time then
          Event_queue.schedule queue ~time:(!now + cfg.initiation_period) Initiate
    | Some _ | None -> ()

  and commit pid id =
    let st = ps.(pid) in
    if st.tentative then begin
      st.tentative <- false;
      List.iter (fun q -> send_control ~src:pid ~dst:q (Commit id)) st.children;
      st.children <- [];
      (* release the deferred sends *)
      let dests = List.rev st.deferred in
      st.deferred <- [];
      List.iter (fun dst -> send_app ~src:pid ~dst) dests;
      if st.requester = -1 then finish_round id;
      st.requester <- -1
    end

  and subtree_done pid id =
    (* this participant's whole request subtree has answered *)
    let st = ps.(pid) in
    if st.requester >= 0 then send_control ~src:pid ~dst:st.requester (Reply id)
    else commit pid id
  in
  let initiate () =
    match !active with
    | Some _ -> ()
    | None ->
        let id = !next_round in
        incr next_round;
        round_deferred := 0;
        active := Some (id, !now, [], !control);
        if take_tentative 0 id ~requester:(-1) then subtree_done 0 id
  in
  let on_control ~src ~dst payload =
    match payload with
    | Request r ->
        let st = ps.(dst) in
        if st.tentative then send_control ~src:dst ~dst:src (Reply r)
        else if take_tentative dst r ~requester:src then subtree_done dst r
    | Reply r ->
        let st = ps.(dst) in
        st.awaiting <- st.awaiting - 1;
        if st.awaiting = 0 then subtree_done dst r
    | Commit r -> commit dst r
    | App _ -> assert false
  in
  let do_action pid = function
    | Env.Send dst -> send_app ~src:pid ~dst
    | Env.Internal -> Pattern.Builder.internal builder pid
    | Env.Checkpoint -> () (* local checkpoint requests are the algorithm's job *)
  in
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (Tick pid)
  done;
  Event_queue.schedule queue ~time:cfg.initiation_period Initiate;
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | Tick pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (Tick pid)
              | None -> ()
            end
        | Initiate -> if !sent < cfg.max_messages then initiate ()
        | Arrival { src; dst; payload } -> (
            match payload with
            | App handle ->
                ps.(dst).received_from.(src) <- true;
                Pattern.Builder.recv builder handle;
                List.iter (do_action dst) (E.on_deliver env ~pid:dst ~src)
            | Request _ | Reply _ | Commit _ -> on_control ~src ~dst payload))
  done;
  (match !active with
  | Some _ -> invalid_arg "Koo_toueg: run ended with an uncommitted round"
  | None -> ());
  let pattern = Pattern.Builder.finish ~final_checkpoints:true builder in
  let rounds = List.rev !rounds in
  let nrounds = List.length rounds in
  let mean f =
    if nrounds = 0 then 0.0
    else List.fold_left (fun a r -> a +. f r) 0.0 rounds /. float_of_int nrounds
  in
  {
    pattern;
    rounds;
    metrics =
      {
        app_messages = !sent;
        control_messages = !control;
        rounds_committed = nrounds;
        checkpoints_taken = Array.fold_left ( + ) 0 ckpt_index;
        mean_participants = mean (fun r -> float_of_int (List.length r.participants));
        mean_latency = mean (fun r -> float_of_int (r.committed_at - r.initiated_at));
      };
  }
