(** Coordinated checkpointing: the Chandy-Lamport distributed snapshot
    protocol [3], as the synchronised baseline the paper's introduction
    contrasts communication-induced checkpointing against ("the
    coordination is achieved at the price of synchronization by means of
    additional control messages").

    A designated initiator periodically starts a snapshot: it records its
    local state and sends a {e marker} on every outgoing channel; a
    process receiving its first marker of that snapshot records its state
    and floods markers in turn; afterwards, the messages arriving on a
    channel before that channel's marker are recorded as the channel's
    state.  Chandy-Lamport requires FIFO channels, so this runtime (unlike
    the CIC one) delivers messages of each ordered channel in send order.

    Every completed snapshot yields one local checkpoint per process; the
    resulting global checkpoints are consistent {e by construction}, and
    the recorded channel states are exactly the in-transit messages of the
    cut — both facts are cross-checked in the test suite against
    {!Rdt_pattern.Consistency} and the message-logging analysis.

    The price is visible in the metrics: [n·(n-1)] marker messages per
    snapshot and a completion latency, against the CIC protocols' zero
    control messages and piggybacked data. *)

type config = {
  n : int;
  seed : int;
  env : Rdt_dist.Env.t;
  channel : Rdt_dist.Channel.spec;
  initiation_period : int;
      (** simulated-time delay between the completion of a snapshot and
          the initiation of the next *)
  max_messages : int;  (** application-message budget *)
  max_time : int;
}

val default_config : Rdt_dist.Env.t -> config

type snapshot = {
  id : int;
  initiated_at : int;
  completed_at : int;
  cut : int array;  (** checkpoint index per process *)
  channel_state : int list;
      (** application message ids recorded as in transit across the cut *)
}

type metrics = {
  app_messages : int;
  marker_messages : int;
  snapshots_completed : int;
  mean_latency : float;  (** mean completion time of a snapshot *)
}

type result = {
  pattern : Rdt_pattern.Pattern.t;
  snapshots : snapshot list;  (** in completion order *)
  metrics : metrics;
}

val run : config -> result
(** Runs the environment to its message budget while taking periodic
    coordinated snapshots.  Deterministic in the configuration.
    @raise Invalid_argument on nonsensical configurations. *)

val markers_per_snapshot : n:int -> int
(** The marker cost of one snapshot: [n * (n - 1)]. *)
