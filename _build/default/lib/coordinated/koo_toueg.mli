(** Coordinated checkpointing, take two: the Koo-Toueg two-phase
    algorithm [6] — the other synchronised baseline the paper's
    introduction names.

    Where Chandy-Lamport snapshots {e everyone} and needs FIFO channels,
    Koo-Toueg checkpoints only the processes the initiator transitively
    depends on, at the price of {e blocking}:

    + the initiator takes a tentative checkpoint and sends a request to
      every process it has received messages from since its last
      checkpoint (its {e cohort} — exactly the senders whose messages
      would become orphans);
    + a requested process takes its own tentative checkpoint, propagates
      requests to its own cohort, and answers its requester once its
      subtree has answered;
    + from tentative checkpoint to commit, a participant {e defers its
      application sends} (this is what keeps the cut consistent: a
      message sent after a tentative checkpoint can never be delivered
      before another participant's);
    + when the initiator's cohort has answered, a commit wave makes the
      tentative checkpoints permanent and releases the deferred sends.

    Every committed round yields a cut — new checkpoints for the
    participants, last checkpoints for the rest — that is consistent by
    construction (verified against {!Rdt_pattern.Consistency} in the test
    suite).  The costs measured here: control messages (requests, replies,
    commits), the number of participants per round, deferred sends, and
    round latency. *)

type config = {
  n : int;
  seed : int;
  env : Rdt_dist.Env.t;
  channel : Rdt_dist.Channel.spec;
  initiation_period : int;
  max_messages : int;
  max_time : int;
}

val default_config : Rdt_dist.Env.t -> config

type round = {
  id : int;
  initiated_at : int;
  committed_at : int;
  participants : int list;  (** processes that took a checkpoint *)
  cut : int array;  (** per process: checkpoint index of the round's cut *)
  control_messages : int;
  deferred_sends : int;
}

type metrics = {
  app_messages : int;
  control_messages : int;
  rounds_committed : int;
  checkpoints_taken : int;
  mean_participants : float;
  mean_latency : float;
}

type result = {
  pattern : Rdt_pattern.Pattern.t;
  rounds : round list;
  metrics : metrics;
}

val run : config -> result
(** @raise Invalid_argument on nonsensical configurations. *)
