module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng
module Channel = Rdt_dist.Channel
module Event_queue = Rdt_dist.Event_queue
module Pattern = Rdt_pattern.Pattern
module Ptypes = Rdt_pattern.Types

type config = {
  n : int;
  seed : int;
  env : Env.t;
  channel : Channel.spec;
  initiation_period : int;
  max_messages : int;
  max_time : int;
}

let default_config env =
  {
    n = 8;
    seed = 1;
    env;
    channel = Channel.Uniform (5, 100);
    initiation_period = 500;
    max_messages = 2000;
    max_time = max_int / 2;
  }

type snapshot = {
  id : int;
  initiated_at : int;
  completed_at : int;
  cut : int array;
  channel_state : int list;
}

type metrics = {
  app_messages : int;
  marker_messages : int;
  snapshots_completed : int;
  mean_latency : float;
}

type result = { pattern : Pattern.t; snapshots : snapshot list; metrics : metrics }

let markers_per_snapshot ~n = n * (n - 1)

type payload =
  | App of int (* pattern message handle *)
  | Marker of int (* snapshot id *)

type queued =
  | Tick of int
  | Initiate
  | Arrival of { src : int; dst : int; payload : payload }

(* per-snapshot bookkeeping *)
type active = {
  a_id : int;
  a_initiated_at : int;
  a_recorded : bool array;
  a_cut : int array;
  a_chan_closed : bool array array; (* marker received on channel src -> dst *)
  mutable a_open_channels : int;
  mutable a_collected : int list; (* channel-state message ids *)
}

let validate cfg =
  if cfg.n < 2 then invalid_arg "Snapshot: n must be >= 2";
  if cfg.initiation_period < 1 then invalid_arg "Snapshot: initiation_period must be >= 1";
  if cfg.max_messages < 0 then invalid_arg "Snapshot: negative message budget";
  match Channel.validate cfg.channel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Snapshot: bad channel spec: " ^ e)

let run cfg =
  validate cfg;
  let (module E : Env.S) = cfg.env in
  let rng = Rng.create cfg.seed in
  let env = E.create ~n:cfg.n ~rng:(Rng.split rng) in
  let builder = Pattern.Builder.create ~n:cfg.n in
  let queue : queued Event_queue.t = Event_queue.create () in
  let now = ref 0 in
  let sent = ref 0 in
  let markers = ref 0 in
  let active : active option ref = ref None in
  let next_snapshot_id = ref 0 in
  let snapshots = ref [] in
  (* FIFO enforcement: last scheduled arrival per ordered channel *)
  let last_arrival = Array.make_matrix cfg.n cfg.n 0 in
  let transmit ~src ~dst payload =
    let delay = Channel.sample rng cfg.channel in
    let t = max (!now + delay) (last_arrival.(src).(dst) + 1) in
    last_arrival.(src).(dst) <- t;
    Event_queue.schedule queue ~time:t (Arrival { src; dst; payload })
  in
  let send_app ~src ~dst =
    if !sent < cfg.max_messages && src <> dst then begin
      incr sent;
      let handle = Pattern.Builder.send builder ~src ~dst in
      transmit ~src ~dst (App handle)
    end
  in
  let send_markers ~src id =
    for dst = 0 to cfg.n - 1 do
      if dst <> src then begin
        incr markers;
        transmit ~src ~dst (Marker id)
      end
    done
  in
  let record_state a pid =
    a.a_recorded.(pid) <- true;
    a.a_cut.(pid) <- Pattern.Builder.checkpoint ~kind:Ptypes.Basic ~time:!now builder pid;
    send_markers ~src:pid a.a_id
  in
  let initiate () =
    (* only the designated initiator P0 starts snapshots, one at a time *)
    match !active with
    | Some _ -> ()
    | None ->
        let a =
          {
            a_id = !next_snapshot_id;
            a_initiated_at = !now;
            a_recorded = Array.make cfg.n false;
            a_cut = Array.make cfg.n (-1);
            a_chan_closed = Array.make_matrix cfg.n cfg.n false;
            a_open_channels = markers_per_snapshot ~n:cfg.n;
            a_collected = [];
          }
        in
        incr next_snapshot_id;
        active := Some a;
        record_state a 0
  in
  let complete a =
    snapshots :=
      {
        id = a.a_id;
        initiated_at = a.a_initiated_at;
        completed_at = !now;
        cut = Array.copy a.a_cut;
        channel_state = List.rev a.a_collected;
      }
      :: !snapshots;
    active := None;
    if !sent < cfg.max_messages && !now <= cfg.max_time then
      Event_queue.schedule queue ~time:(!now + cfg.initiation_period) Initiate
  in
  let on_marker ~src ~dst id =
    match !active with
    | None -> invalid_arg "Snapshot: marker without an active snapshot"
    | Some a ->
        if a.a_id <> id then invalid_arg "Snapshot: marker for the wrong snapshot";
        if not a.a_recorded.(dst) then record_state a dst;
        if not a.a_chan_closed.(src).(dst) then begin
          a.a_chan_closed.(src).(dst) <- true;
          a.a_open_channels <- a.a_open_channels - 1
        end;
        if a.a_open_channels = 0 && Array.for_all Fun.id a.a_recorded then complete a
  in
  let do_action pid = function
    | Env.Send dst -> send_app ~src:pid ~dst
    | Env.Internal -> Pattern.Builder.internal builder pid
    | Env.Checkpoint -> () (* coordinated checkpointing ignores local requests *)
  in
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (Tick pid)
  done;
  Event_queue.schedule queue ~time:cfg.initiation_period Initiate;
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | Tick pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (Tick pid)
              | None -> ()
            end
        | Initiate -> if !sent < cfg.max_messages then initiate ()
        | Arrival { src; dst; payload } -> (
            match payload with
            | Marker id -> on_marker ~src ~dst id
            | App handle ->
                (* a message arriving on a still-open channel after the
                   receiver recorded belongs to the channel's state *)
                (match !active with
                | Some a when a.a_recorded.(dst) && not a.a_chan_closed.(src).(dst) ->
                    a.a_collected <- handle :: a.a_collected
                | Some _ | None -> ());
                Pattern.Builder.recv builder handle;
                let reactions = E.on_deliver env ~pid:dst ~src in
                List.iter (do_action dst) reactions))
  done;
  (match !active with
  | Some _ -> invalid_arg "Snapshot: run ended with an incomplete snapshot"
  | None -> ());
  let pattern = Pattern.Builder.finish ~final_checkpoints:true builder in
  let completed = List.rev !snapshots in
  let latency =
    match completed with
    | [] -> 0.0
    | _ ->
        List.fold_left
          (fun acc s -> acc +. float_of_int (s.completed_at - s.initiated_at))
          0.0 completed
        /. float_of_int (List.length completed)
  in
  {
    pattern;
    snapshots = completed;
    metrics =
      {
        app_messages = !sent;
        marker_messages = !markers;
        snapshots_completed = List.length completed;
        mean_latency = latency;
      };
  }
