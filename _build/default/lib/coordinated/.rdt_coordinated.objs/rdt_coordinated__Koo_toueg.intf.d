lib/coordinated/koo_toueg.mli: Rdt_dist Rdt_pattern
