lib/coordinated/snapshot.mli: Rdt_dist Rdt_pattern
