lib/coordinated/snapshot.ml: Array Fun List Rdt_dist Rdt_pattern
