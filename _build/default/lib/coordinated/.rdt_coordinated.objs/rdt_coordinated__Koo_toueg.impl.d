lib/coordinated/koo_toueg.ml: Array List Rdt_dist Rdt_pattern
