lib/harness/table.mli:
