lib/harness/experiment.mli: Rdt_core Rdt_dist Stats
