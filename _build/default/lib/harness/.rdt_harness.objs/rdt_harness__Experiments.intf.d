lib/harness/experiments.mli: Stats Table
