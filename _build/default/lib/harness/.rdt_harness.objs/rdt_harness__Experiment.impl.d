lib/harness/experiment.ml: List Rdt_core Rdt_dist Rdt_workloads Stats
