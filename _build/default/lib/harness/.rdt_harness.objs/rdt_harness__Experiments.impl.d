lib/harness/experiments.ml: Array Experiment Format Hashtbl List Printf Rdt_coordinated Rdt_core Rdt_failures Rdt_pattern Rdt_recovery Rdt_workloads Stats Table
