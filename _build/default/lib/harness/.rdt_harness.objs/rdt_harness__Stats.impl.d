lib/harness/stats.ml: Format List
