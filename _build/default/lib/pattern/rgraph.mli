(** Rollback-dependency graphs (R-graphs), Section 3.1 of the paper.

    Nodes are the local checkpoints of a pattern.  There is an edge
    [C_{i,x} -> C_{j,y}] iff
    - [i = j] and [y = x + 1] (program order), or
    - [i <> j] and some message is sent in [I_{i,x}] and delivered in
      [I_{j,y}].

    An R-path [C_{i,x} ~> C_{j,y}] means: if [P_i] rolls back to a
    checkpoint preceding [C_{i,x}], then [P_j] must roll back to a
    checkpoint preceding [C_{j,y}].  R-graphs may contain cycles (e.g. two
    crossing messages), so reachability goes through a strongly-connected
    component condensation. *)

type t

type node = int
(** Dense node identifier; see {!node_of_ckpt}/{!ckpt_of_node}. *)

val build : Pattern.t -> t
(** Builds the R-graph of a pattern.  O(V + M). *)

val pattern : t -> Pattern.t

val num_nodes : t -> int

val node_of_ckpt : t -> Types.ckpt_id -> node
(** @raise Invalid_argument if the checkpoint does not exist. *)

val ckpt_of_node : t -> node -> Types.ckpt_id

val successors : t -> node -> node list
(** Out-neighbours (deduplicated). *)

val edge_count : t -> int

val reaches : t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** [reaches g a b] iff there is a (possibly empty) R-path from [a] to [b].
    Every checkpoint reaches itself.  The first call triggers the all-pairs
    computation (cached). *)

val reachable_set : t -> Types.ckpt_id -> Bitset.t
(** All nodes reachable from the given checkpoint (including itself); do
    not mutate the returned set. *)

val max_reaching_index : t -> from_pid:Types.pid -> Types.ckpt_id -> int
(** [max_reaching_index g ~from_pid (j, y)] is the greatest [x] such that
    [C_{from_pid,x} ~> C_{j,y}], or [-1] if none.  This is the per-entry
    "true" rollback dependency that a transitive dependency vector is
    supposed to track. *)

val in_cycle : t -> Types.ckpt_id -> bool
(** Whether the checkpoint lies on a non-trivial R-cycle (its SCC has more
    than one node or a self loop).  Such checkpoints can never belong to
    any consistent global checkpoint (they are "useless" Z-cycle
    checkpoints). *)

val to_dot : t -> string
(** Graphviz rendering (small patterns; used for docs and debugging). *)
