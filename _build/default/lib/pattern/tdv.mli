(** Offline transitive-dependency-vector (TDV) replay.

    Replays the TDV mechanism of Section 3.3 over a finished pattern:
    every process [P_i] maintains a vector whose entry [i] equals the index
    of its current checkpoint interval and whose entry [j] records the
    highest interval index of [P_j] its state causally depends on through
    {e causal} message chains.  The vector recorded when [C_{i,x}] is taken
    is written [TDV_{i,x}].

    This offline computation is the ground truth against which both the
    on-line protocol vectors and the R-graph dependencies are checked:
    a pattern satisfies RDT iff for every R-path [C_{i,x} ~> C_{j,y}] we
    have [TDV_{j,y}.(i) >= x]. *)

type t

val compute : Pattern.t -> t
(** One pass over the events in global-sequence order; O(E·n). *)

val at : t -> Types.ckpt_id -> int array
(** [at t (i, x)] is [TDV_{i,x}] (do not mutate).  Entry [i] equals [x].
    @raise Invalid_argument if the checkpoint does not exist. *)

val trackable : t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** [trackable t (i, x) (j, y)]: the dependency of [C_{j,y}] on [C_{i,x}]
    is on-line trackable — [i = j && x <= y], or [TDV_{j,y}.(i) >= x]. *)

val final : t -> Types.pid -> int array
(** The vector held by the process after its last event. *)
