(** Fixed-capacity mutable bitsets.

    Used for dense reachability computations over rollback-dependency
    graphs, where set-union over 64 nodes at a time is the difference
    between O(V·E) and O(V·E/64). *)

type t

val create : int -> t
(** [create n] is an empty set over the universe [\[0, n)]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val union_into : t -> t -> bool
(** [union_into dst src] adds every element of [src] to [dst]; returns
    [true] iff [dst] changed.  @raise Invalid_argument on capacity
    mismatch. *)

val copy : t -> t

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val equal : t -> t -> bool
