type reach = { earliest : int array; reached_msgs : bool array }

(* ------------------------------------------------------------------ *)
(* Window arithmetic on the per-process send arrays                    *)
(* ------------------------------------------------------------------ *)

(* First slot of [sends] whose send position is > [pos]. *)
let first_send_after pat sends pos =
  let msgs = Pattern.messages pat in
  let lo = ref 0 and hi = ref (Array.length sends) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if msgs.(sends.(mid)).Types.send_pos > pos then hi := mid else lo := mid + 1
  done;
  !lo

(* First slot of [sends] whose send interval is >= [itv]. *)
let first_send_in_interval pat sends itv =
  let msgs = Pattern.messages pat in
  let lo = ref 0 and hi = ref (Array.length sends) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if msgs.(sends.(mid)).Types.send_interval >= itv then hi := mid else lo := mid + 1
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* Causal relaxation: frontier = earliest delivery *position* reached  *)
(* ------------------------------------------------------------------ *)

let relax_causal pat ~seed_pid ~lo ~hi =
  let n = Pattern.n pat in
  let msgs = Pattern.messages pat in
  let nm = Array.length msgs in
  let best_pos = Array.make n max_int in
  let earliest = Array.make n max_int in
  let reached = Array.make nm false in
  let work = ref [] in
  let push id =
    if not reached.(id) then begin
      reached.(id) <- true;
      work := id :: !work
    end
  in
  (* Enable the sends of process [j] at positions in the open window
     (win_lo, win_hi). *)
  let enable j ~win_lo ~win_hi =
    let sends = Pattern.sends_of pat j in
    let k = ref (first_send_after pat sends win_lo) in
    while
      !k < Array.length sends && msgs.(sends.(!k)).Types.send_pos < win_hi
    do
      push sends.(!k);
      incr k
    done
  in
  enable seed_pid ~win_lo:lo ~win_hi:hi;
  while !work <> [] do
    match !work with
    | [] -> ()
    | id :: rest ->
        work := rest;
        let m = msgs.(id) in
        let j = m.Types.dst in
        if m.Types.recv_interval < earliest.(j) then earliest.(j) <- m.Types.recv_interval;
        if m.Types.recv_pos < best_pos.(j) then begin
          let old = best_pos.(j) in
          best_pos.(j) <- m.Types.recv_pos;
          enable j ~win_lo:m.Types.recv_pos ~win_hi:old
        end
  done;
  { earliest; reached_msgs = reached }

(* ------------------------------------------------------------------ *)
(* Zigzag relaxation: frontier = earliest delivery *interval* reached  *)
(* ------------------------------------------------------------------ *)

let relax_zigzag pat ~seed_pid ~lo ~hi =
  let n = Pattern.n pat in
  let msgs = Pattern.messages pat in
  let nm = Array.length msgs in
  let best_itv = Array.make n max_int in
  let earliest = Array.make n max_int in
  let reached = Array.make nm false in
  let work = ref [] in
  let push id =
    if not reached.(id) then begin
      reached.(id) <- true;
      work := id :: !work
    end
  in
  (* Enable the sends of process [j] whose interval lies in
     [itv_lo, itv_hi). *)
  let enable_intervals j ~itv_lo ~itv_hi =
    let sends = Pattern.sends_of pat j in
    let k = ref (first_send_in_interval pat sends itv_lo) in
    while
      !k < Array.length sends && msgs.(sends.(!k)).Types.send_interval < itv_hi
    do
      push sends.(!k);
      incr k
    done
  in
  (* Seeds are selected by position window, like the causal case. *)
  let enable_positions j ~win_lo ~win_hi =
    let sends = Pattern.sends_of pat j in
    let k = ref (first_send_after pat sends win_lo) in
    while
      !k < Array.length sends && msgs.(sends.(!k)).Types.send_pos < win_hi
    do
      push sends.(!k);
      incr k
    done
  in
  enable_positions seed_pid ~win_lo:lo ~win_hi:hi;
  while !work <> [] do
    match !work with
    | [] -> ()
    | id :: rest ->
        work := rest;
        let m = msgs.(id) in
        let j = m.Types.dst in
        let y = m.Types.recv_interval in
        if y < earliest.(j) then earliest.(j) <- y;
        if y < best_itv.(j) then begin
          let old = best_itv.(j) in
          best_itv.(j) <- y;
          enable_intervals j ~itv_lo:y ~itv_hi:old
        end
  done;
  { earliest; reached_msgs = reached }

(* ------------------------------------------------------------------ *)
(* Public queries                                                      *)
(* ------------------------------------------------------------------ *)

let interval_window pat (i, x) =
  (* positions strictly inside I_{i,x} *)
  if x < 1 then (0, 0) (* empty: I_{i,0} contains no send *)
  else
    let cks = Pattern.checkpoints pat i in
    (cks.(x - 1).Types.pos, cks.(x).Types.pos)

let check_ckpt pat (i, x) =
  if not (Pattern.has_ckpt pat (i, x)) then
    invalid_arg (Printf.sprintf "Chains: C(%d,%d) does not exist" i x)

let causal_from_interval pat (i, x) =
  check_ckpt pat (i, x);
  let lo, hi = interval_window pat (i, x) in
  relax_causal pat ~seed_pid:i ~lo ~hi

let causal_after pat (i, x) =
  check_ckpt pat (i, x);
  let pos = (Pattern.checkpoints pat i).(x).Types.pos in
  relax_causal pat ~seed_pid:i ~lo:pos ~hi:max_int

let causally_precedes pat (i, x) (j, y) =
  check_ckpt pat (i, x);
  check_ckpt pat (j, y);
  if i = j then x < y
  else
    let r = causal_after pat (i, x) in
    r.earliest.(j) <= y

let zpath_from_interval pat (i, x) =
  check_ckpt pat (i, x);
  let lo, hi = interval_window pat (i, x) in
  relax_zigzag pat ~seed_pid:i ~lo ~hi

let zigzag_after pat (i, x) =
  check_ckpt pat (i, x);
  let pos = (Pattern.checkpoints pat i).(x).Types.pos in
  relax_zigzag pat ~seed_pid:i ~lo:pos ~hi:max_int

let zigzag pat (i, x) (j, y) =
  check_ckpt pat (j, y);
  let r = zigzag_after pat (i, x) in
  r.earliest.(j) <= y

let zcycle pat (i, x) = zigzag pat (i, x) (i, x)

let trackable pat (i, x) (j, y) =
  check_ckpt pat (i, x);
  check_ckpt pat (j, y);
  if i = j then x <= y
  else if x = 0 then true
  else
    let r = causal_after pat (i, x - 1) in
    r.earliest.(j) <= y

let strictly_trackable pat (i, x) (j, y) =
  check_ckpt pat (i, x);
  check_ckpt pat (j, y);
  if i = j then x <= y
  else if x = 0 then false
  else
    let r = causal_from_interval pat (i, x) in
    r.earliest.(j) <= y

(* ------------------------------------------------------------------ *)
(* CM-paths and doubling                                               *)
(* ------------------------------------------------------------------ *)

type cm_path = {
  origin : Types.ckpt_id;
  prefix_end : int;
  last_msg : int;
  target : Types.ckpt_id;
}

let pp_cm_path ppf p =
  Format.fprintf ppf "%a ==[causal ..m%d ; m%d]==> %a" Types.pp_ckpt_id p.origin
    p.prefix_end p.last_msg Types.pp_ckpt_id p.target

let cm_paths pat =
  let msgs = Pattern.messages pat in
  let out = ref [] in
  let seen = Hashtbl.create 97 in
  for k = 0 to Pattern.n pat - 1 do
    for z = 1 to Pattern.last_index pat k do
      let r = causal_from_interval pat (k, z) in
      Array.iteri
        (fun id reached ->
          if reached then begin
            let m'' = msgs.(id) in
            let i = m''.Types.dst in
            let q = m''.Types.recv_pos in
            let t = m''.Types.recv_interval in
            let cks = Pattern.checkpoints pat i in
            let itv_start = if t = 0 then -1 else cks.(t - 1).Types.pos in
            (* messages sent by P_i inside I_{i,t} before the delivery of
               m'': each yields the non-causal junction of a CM-path *)
            List.iter
              (fun mid ->
                let m = msgs.(mid) in
                let key = (k, z, mid) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  out :=
                    {
                      origin = (k, z);
                      prefix_end = id;
                      last_msg = mid;
                      target = (m.Types.dst, m.Types.recv_interval);
                    }
                    :: !out
                end)
              (Pattern.sends_between pat i ~lo:itv_start ~hi:q)
          end)
        r.reached_msgs
    done
  done;
  List.rev !out

let pairwise_doubled pat tdv =
  let msgs = Pattern.messages pat in
  let ok = ref true in
  Array.iter
    (fun (m : Types.message) ->
      let p = m.Types.dst in
      let cks = Pattern.checkpoints pat p in
      let t = m.Types.recv_interval in
      let lo = if t = 0 then -1 else cks.(t - 1).Types.pos in
      List.iter
        (fun mid ->
          let m' = Pattern.message pat mid in
          if
            not
              (Tdv.trackable tdv
                 (m.Types.src, m.Types.send_interval)
                 (m'.Types.dst, m'.Types.recv_interval))
          then ok := false)
        (Pattern.sends_between pat p ~lo ~hi:m.Types.recv_pos))
    msgs;
  !ok

let undoubled_cm_paths pat tdv =
  List.filter (fun p -> not (Tdv.trackable tdv p.origin p.target)) (cm_paths pat)
