let max_events = 200

let label = function
  | Types.Ckpt x -> Printf.sprintf "C%d" x
  | Types.Send id -> Printf.sprintf "s%d" id
  | Types.Recv id -> Printf.sprintf "r%d" id
  | Types.Internal -> "."

let ascii pat =
  let order = Pattern.events_in_gseq_order pat in
  let total = Array.length order in
  if total > max_events then
    Error (Printf.sprintf "pattern too large to draw (%d events > %d)" total max_events)
  else begin
    let n = Pattern.n pat in
    let cells = Array.make_matrix n total "" in
    Array.iteri (fun col (i, _pos, ev) -> cells.(i).(col) <- label ev) order;
    let widths =
      Array.init total (fun col ->
          let w = ref 1 in
          for i = 0 to n - 1 do
            w := max !w (String.length cells.(i).(col))
          done;
          !w)
    in
    let buf = Buffer.create 1024 in
    for i = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "P%-2d " i);
      for col = 0 to total - 1 do
        let c = if cells.(i).(col) = "" then "-" else cells.(i).(col) in
        let pad = widths.(col) - String.length c in
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (pad + 1) (if cells.(i).(col) = "" then '-' else ' '))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "messages:\n";
    Array.iter
      (fun (m : Types.message) ->
        Buffer.add_string buf
          (Printf.sprintf "  m%-3d P%d I(%d) -> P%d I(%d)\n" m.Types.id m.Types.src
             m.Types.send_interval m.Types.dst m.Types.recv_interval))
      (Pattern.messages pat);
    Ok (Buffer.contents buf)
  end

let ascii_exn pat =
  match ascii pat with Ok s -> s | Error e -> invalid_arg ("Render.ascii_exn: " ^ e)
