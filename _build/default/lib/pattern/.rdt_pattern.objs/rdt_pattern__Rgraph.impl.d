lib/pattern/rgraph.ml: Array Bitset Buffer List Pattern Printf Types
