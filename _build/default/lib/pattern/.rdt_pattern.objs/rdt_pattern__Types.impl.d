lib/pattern/types.ml: Format
