lib/pattern/pattern.ml: Array Format List Printf Types
