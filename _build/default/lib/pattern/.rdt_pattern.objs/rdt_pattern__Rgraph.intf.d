lib/pattern/rgraph.mli: Bitset Pattern Types
