lib/pattern/consistency.mli: Pattern Types
