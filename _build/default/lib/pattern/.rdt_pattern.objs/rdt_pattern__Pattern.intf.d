lib/pattern/pattern.mli: Format Types
