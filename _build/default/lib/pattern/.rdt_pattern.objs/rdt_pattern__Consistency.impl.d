lib/pattern/consistency.ml: Array List Pattern Printf Types
