lib/pattern/tdv.mli: Pattern Types
