lib/pattern/chains.mli: Format Pattern Tdv Types
