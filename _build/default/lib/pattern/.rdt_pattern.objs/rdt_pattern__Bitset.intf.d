lib/pattern/bitset.mli:
