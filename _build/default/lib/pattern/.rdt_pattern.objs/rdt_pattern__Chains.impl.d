lib/pattern/chains.ml: Array Format Hashtbl List Pattern Printf Tdv Types
