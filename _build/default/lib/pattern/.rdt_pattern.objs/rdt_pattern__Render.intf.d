lib/pattern/render.mli: Pattern
