lib/pattern/types.mli: Format
