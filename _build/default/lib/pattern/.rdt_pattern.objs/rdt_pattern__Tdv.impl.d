lib/pattern/tdv.ml: Array Pattern Printf Types
