lib/pattern/render.ml: Array Buffer Pattern Printf String Types
