lib/pattern/bitset.ml: Bytes Int64 List
