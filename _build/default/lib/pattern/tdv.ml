type t = {
  pat : Pattern.t;
  snapshots : int array array array; (* snapshots.(i).(x) = TDV_{i,x} *)
  finals : int array array;
}

let compute pat =
  let n = Pattern.n pat in
  let vectors = Array.init n (fun _ -> Array.make n 0) in
  (* Entry i of P_i's vector is the index of the current interval; it is 0
     until the initial checkpoint C_{i,0} is taken (first event of each
     process), after which it is x+1 for the last checkpoint x. *)
  let snapshots =
    Array.init n (fun i ->
        Array.map (fun _ -> [||]) (Pattern.checkpoints pat i))
  in
  let payloads = Array.make (Pattern.num_messages pat) [||] in
  let order = Pattern.events_in_gseq_order pat in
  Array.iter
    (fun (i, _pos, ev) ->
      match ev with
      | Types.Ckpt x ->
          snapshots.(i).(x) <- Array.copy vectors.(i);
          vectors.(i).(i) <- x + 1
      | Types.Send id -> payloads.(id) <- Array.copy vectors.(i)
      | Types.Recv id ->
          let p = payloads.(id) in
          let v = vectors.(i) in
          for k = 0 to n - 1 do
            if p.(k) > v.(k) then v.(k) <- p.(k)
          done
      | Types.Internal -> ())
    order;
  { pat; snapshots; finals = Array.map Array.copy vectors }

let at t (i, x) =
  if not (Pattern.has_ckpt t.pat (i, x)) then
    invalid_arg (Printf.sprintf "Tdv.at: C(%d,%d) does not exist" i x);
  t.snapshots.(i).(x)

let trackable t (i, x) (j, y) =
  if i = j then x <= y else (at t (j, y)).(i) >= x

let final t i = t.finals.(i)
