(** Consistency of local and global checkpoints (Section 2.2), and the
    minimum / maximum consistent global checkpoints containing a given set
    of local checkpoints.

    A message is {e orphan} w.r.t. the ordered pair [(C_{i,x}, C_{j,y})]
    when its delivery belongs to [C_{j,y}] (delivered before the
    checkpoint) but its send does not belong to [C_{i,x}] (sent after it).
    A global checkpoint — one local checkpoint per process, written as an
    index vector — is consistent when no pair has an orphan.

    Consistent global checkpoints containing a fixed set [S] are closed
    under component-wise minimum and maximum, so when any exists there is a
    unique minimum and a unique maximum; both are computed by monotone
    fixpoints driven by orphan elimination.  Under RDT the minimum one
    containing a single checkpoint [C] equals the transitive dependency
    vector recorded at [C] (Corollary 4.5) — the test suite checks this. *)

val orphan :
  Pattern.t -> sender:Types.ckpt_id -> receiver:Types.ckpt_id -> int option
(** [orphan p ~sender:(i,x) ~receiver:(j,y)] is the id of some message
    sent by [P_i] after [C_{i,x}] and delivered to [P_j] before [C_{j,y}],
    if any. *)

val consistent_pair : Pattern.t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** Symmetric: no orphan in either direction. *)

val consistent_global : Pattern.t -> int array -> bool
(** [consistent_global p v] checks the global checkpoint
    [{C_{0,v.(0)}, ..., C_{n-1,v.(n-1)}}].
    @raise Invalid_argument if [v] has the wrong length or an index is out
    of range. *)

val min_consistent_containing : Pattern.t -> Types.ckpt_id list -> int array option
(** The minimum consistent global checkpoint containing all the given
    local checkpoints, or [None] if no consistent global checkpoint
    contains them.  O(fixpoint · M). *)

val max_consistent_containing : Pattern.t -> Types.ckpt_id list -> int array option
(** The maximum consistent global checkpoint containing all the given
    local checkpoints, or [None]. *)

val extensible : Pattern.t -> Types.ckpt_id list -> bool
(** Whether some consistent global checkpoint contains the set. *)

val useless : Pattern.t -> Types.ckpt_id -> bool
(** A checkpoint is useless when it belongs to no consistent global
    checkpoint.  Equivalent to lying on a Z-cycle (Netzer-Xu) — the
    equivalence is property-tested. *)
