(** Plain-text space-time diagrams of small patterns.

    One row per process, one column per event (in global-sequence order):
    [Cx] marks checkpoint [x], [s<id>] a send, [r<id>] a delivery, [.] an
    internal event.  A message legend follows the grid.  Meant for
    debugging, documentation, and the CLI's [--draw]. *)

val max_events : int
(** Patterns with more events than this are refused (200). *)

val ascii : Pattern.t -> (string, string) result
(** The diagram, or [Error] explaining why the pattern is too large. *)

val ascii_exn : Pattern.t -> string
(** @raise Invalid_argument when the pattern is too large. *)
