(** Message chains: causal chains, Z-paths (zigzag paths) and doubling.

    A {e message chain} [\[m_1; ...; m_q\]] (Definition 3.1; Netzer-Xu
    zigzag path) requires each [m_{v+1}] to be sent by the destination of
    [m_v], in the same or a later checkpoint interval than the delivery of
    [m_v].  The chain is {e causal} (Definition 3.2) when each delivery
    additionally precedes the next send in program order.

    The central questions answered here, for a source checkpoint [C_{i,x}]:
    - which checkpoints can a causal chain starting in [I_{i,x}] (or
      anywhere after a given position) reach?
    - same question for arbitrary Z-paths;
    - is every non-causal chain "doubled" by a causal sibling?

    All reachability queries are answered by a single relaxation pass per
    source: for every process we maintain the earliest position (causal) or
    earliest interval (zigzag) at which a chain has arrived, and extend with
    later sends.  Each message is relaxed at most once, so a pass costs
    O(M + n) after O(1) window arithmetic. *)

type reach = {
  earliest : int array;
      (** [earliest.(j)] is the smallest interval [y] such that a chain
          reaches a delivery in [I_{j,y}]; [max_int] when unreachable. *)
  reached_msgs : bool array;
      (** [reached_msgs.(id)] iff message [id] can end such a chain. *)
}

(** {1 Causal chains} *)

val causal_from_interval : Pattern.t -> Types.ckpt_id -> reach
(** Chains whose first message is sent in exactly [I_{i,x}] (the strict
    Definition 3.3 start).  [x >= 1]; for [x = 0] the result is empty. *)

val causal_after : Pattern.t -> Types.ckpt_id -> reach
(** Chains whose first message is sent anywhere after [C_{i,x}] (i.e. in an
    interval [>= x+1]).  [causal_after p (i, x-1)] therefore covers chains
    from all intervals [>= x], which matches what a transitive dependency
    vector can record about [C_{i,x}]. *)

val causally_precedes : Pattern.t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** [causally_precedes p a b]: checkpoint [a] belongs to the causal past of
    checkpoint [b] (some causal chain sent after [a] is delivered before
    [b]).  Irreflexive. *)

(** {1 Z-paths (zigzag)} *)

val zpath_from_interval : Pattern.t -> Types.ckpt_id -> reach
(** Z-paths whose first message is sent in exactly [I_{i,x}] — the chains
    realising R-paths out of [C_{i,x}]. *)

val zigzag_after : Pattern.t -> Types.ckpt_id -> reach
(** Z-paths whose first message is sent after [C_{i,x}] — the Netzer-Xu
    zigzag relation. *)

val zigzag : Pattern.t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** [zigzag p a b]: [a] zigzags to [b] ([Z-path] sent after [a], delivered
    before [b]).  A set of checkpoints extends to a consistent global
    checkpoint iff no member zigzags to a member (Netzer-Xu). *)

val zcycle : Pattern.t -> Types.ckpt_id -> bool
(** [zcycle p a]: [a] zigzags to itself, making it useless (it can belong
    to no consistent global checkpoint). *)

(** {1 Trackability (ground truth by chain search)} *)

val trackable : Pattern.t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** [trackable p (i,x) (j,y)]: [i = j && x <= y], or some causal chain
    starting in an interval [>= x] of [P_i] is delivered to [P_j] before
    [C_{j,y}].  Agrees with {!Tdv.trackable} (tested). *)

val strictly_trackable : Pattern.t -> Types.ckpt_id -> Types.ckpt_id -> bool
(** The literal Definition 3.3: [i = j && x <= y], or some causal chain
    starting in exactly [I_{i,x}] ends in exactly [I_{j,y}]. *)

(** {1 Doubling — the visible characterization} *)

type cm_path = {
  origin : Types.ckpt_id;  (** [C_{k,z}], start of the causal prefix *)
  prefix_end : int;  (** message id ending the causal prefix, [-1] if empty... *)
  last_msg : int;  (** the message sent before the prefix's delivery *)
  target : Types.ckpt_id;  (** [C_{j,y}] the CM-path leads to *)
}

val cm_paths : Pattern.t -> cm_path list
(** All {e causal-message} Z-paths: a (possibly empty... always non-empty
    here) causal chain [mu] from [C_{k,z}] whose last delivery occurs at
    some process after the send of a message [m] in the same interval,
    followed by [m].  These are exactly the minimal non-causal Z-paths a
    protocol must double or break; the PODC'99 characterization states that
    a pattern satisfies RDT iff every such path is doubled. *)

val undoubled_cm_paths : Pattern.t -> Tdv.t -> cm_path list
(** The CM-paths with no causal sibling (not TDV-trackable).  Empty iff the
    pattern satisfies RDT (cross-validated against the full R-graph
    checker in the test suite). *)

val pairwise_doubled : Pattern.t -> Tdv.t -> bool
(** The {e weaker} candidate characterization: every non-causal
    two-message chain [\[m; m'\]] (a message [m'] sent before the
    delivery of [m] in the same interval) is doubled.  Implied by RDT,
    but {e not} equivalent to it: longer non-causal chains can stay
    undoubled while every adjacent pair is — see the
    [pairwise_insufficient] fixture in the test suite.  This is why the
    characterization needs the full causal prefix of {!cm_paths}. *)

val pp_cm_path : Format.formatter -> cm_path -> unit
