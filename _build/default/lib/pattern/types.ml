type pid = int

type ckpt_id = pid * int

type ckpt_kind =
  | Initial
  | Basic
  | Forced
  | Final

type ckpt = {
  owner : pid;
  index : int;
  kind : ckpt_kind;
  pos : int;
  time : int;
  tdv : int array option;
}

type message = {
  id : int;
  src : pid;
  dst : pid;
  send_pos : int;
  recv_pos : int;
  send_interval : int;
  recv_interval : int;
  send_gseq : int;
  recv_gseq : int;
}

type event =
  | Send of int
  | Recv of int
  | Ckpt of int
  | Internal

let ckpt_kind_to_string = function
  | Initial -> "initial"
  | Basic -> "basic"
  | Forced -> "forced"
  | Final -> "final"

let pp_ckpt_id ppf (i, x) = Format.fprintf ppf "C(%d,%d)" i x

let pp_message ppf m =
  Format.fprintf ppf "m%d: %d->%d (I(%d,%d) -> I(%d,%d))" m.id m.src m.dst m.src
    m.send_interval m.dst m.recv_interval
