(* Messages grouped by (src, dst) would save a constant factor, but the
   fixpoints below touch every message per round anyway; we keep the flat
   scan and rely on the small number of rounds. *)

let check_vector pat v =
  if Array.length v <> Pattern.n pat then
    invalid_arg "Consistency: vector length mismatch";
  Array.iteri
    (fun i x ->
      if x < 0 || x > Pattern.last_index pat i then
        invalid_arg (Printf.sprintf "Consistency: C(%d,%d) does not exist" i x))
    v

let orphan pat ~sender:(i, x) ~receiver:(j, y) =
  let found = ref None in
  Array.iter
    (fun (m : Types.message) ->
      if
        !found = None && m.Types.src = i && m.Types.dst = j
        && m.Types.send_interval > x && m.Types.recv_interval <= y
      then found := Some m.Types.id)
    (Pattern.messages pat);
  !found

let consistent_pair pat a b =
  orphan pat ~sender:a ~receiver:b = None && orphan pat ~sender:b ~receiver:a = None

let consistent_global pat v =
  check_vector pat v;
  let ok = ref true in
  Array.iter
    (fun (m : Types.message) ->
      if m.Types.send_interval > v.(m.Types.src) && m.Types.recv_interval <= v.(m.Types.dst)
      then ok := false)
    (Pattern.messages pat);
  !ok

let pin_set pat cks =
  let pinned = Array.make (Pattern.n pat) (-1) in
  List.iter
    (fun (i, x) ->
      if not (Pattern.has_ckpt pat (i, x)) then
        invalid_arg (Printf.sprintf "Consistency: C(%d,%d) does not exist" i x);
      if pinned.(i) >= 0 && pinned.(i) <> x then
        invalid_arg "Consistency: two checkpoints of the same process in the set";
      pinned.(i) <- x)
    cks;
  pinned

(* Minimum: start from the pinned entries (0 elsewhere) and raise the
   sender side of each orphan.  An orphan (m sent after C_{i,v_i},
   delivered before C_{j,v_j}) forces every consistent assignment >= v to
   satisfy N_i >= send_interval(m), so raising v_i := send_interval m keeps
   the invariant v <= minimum. *)
let min_consistent_containing pat cks =
  let pinned = pin_set pat cks in
  let n = Pattern.n pat in
  let v = Array.init n (fun i -> if pinned.(i) >= 0 then pinned.(i) else 0) in
  let msgs = Pattern.messages pat in
  let exception Impossible in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (m : Types.message) ->
          let i = m.Types.src and j = m.Types.dst in
          if m.Types.send_interval > v.(i) && m.Types.recv_interval <= v.(j) then begin
            if pinned.(i) >= 0 then raise Impossible;
            if m.Types.send_interval > Pattern.last_index pat i then raise Impossible;
            v.(i) <- m.Types.send_interval;
            changed := true
          end)
        msgs
    done;
    Some v
  with Impossible -> None

(* Maximum: start from the last checkpoints (pinned entries fixed) and
   lower the receiver side of each orphan. *)
let max_consistent_containing pat cks =
  let pinned = pin_set pat cks in
  let n = Pattern.n pat in
  let v =
    Array.init n (fun i -> if pinned.(i) >= 0 then pinned.(i) else Pattern.last_index pat i)
  in
  let msgs = Pattern.messages pat in
  let exception Impossible in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (m : Types.message) ->
          let i = m.Types.src and j = m.Types.dst in
          if m.Types.send_interval > v.(i) && m.Types.recv_interval <= v.(j) then begin
            if pinned.(j) >= 0 then raise Impossible;
            v.(j) <- m.Types.recv_interval - 1;
            if v.(j) < 0 then raise Impossible;
            changed := true
          end)
        msgs
    done;
    Some v
  with Impossible -> None

let extensible pat cks = min_consistent_containing pat cks <> None

let useless pat c = not (extensible pat [ c ])
