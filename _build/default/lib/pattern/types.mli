(** Shared vocabulary of checkpoint and communication patterns.

    Conventions, following the paper:
    - processes are numbered [0 .. n-1] (the paper writes [P_1 .. P_n]);
    - [C_{i,x}] is the [x]-th local checkpoint of process [i], with
      [C_{i,0}] the mandatory initial checkpoint;
    - the checkpoint interval [I_{i,x}] ([x >= 1]) is the sequence of events
      between [C_{i,x-1}] and [C_{i,x}]: an event "in interval [x]" happens
      {e before} checkpoint [x];
    - every complete pattern ends with a final checkpoint on each process so
      that every event belongs to a finished interval. *)

type pid = int
(** A process identifier in [\[0, n)]. *)

type ckpt_id = pid * int
(** [(i, x)] designates [C_{i,x}]. *)

type ckpt_kind =
  | Initial  (** the mandatory [C_{i,0}] *)
  | Basic  (** taken independently by the process *)
  | Forced  (** induced by a communication-induced checkpointing protocol *)
  | Final  (** appended when the computation terminates *)

type ckpt = {
  owner : pid;
  index : int;  (** [x] in [C_{i,x}] *)
  kind : ckpt_kind;
  pos : int;  (** position in the owner's event sequence *)
  time : int;  (** simulated time (0 for hand-built patterns) *)
  tdv : int array option;
      (** transitive dependency vector recorded on-line by the protocol
          when it took this checkpoint, if the protocol maintains one *)
}

type message = {
  id : int;
  src : pid;
  dst : pid;
  send_pos : int;  (** position of the send event in [src]'s sequence *)
  recv_pos : int;  (** position of the delivery event in [dst]'s sequence *)
  send_interval : int;  (** [x] such that the send belongs to [I_{src,x}] *)
  recv_interval : int;  (** [y] such that the delivery belongs to [I_{dst,y}] *)
  send_gseq : int;  (** global sequence number of the send event *)
  recv_gseq : int;  (** global sequence number of the delivery event *)
}

type event =
  | Send of int  (** message id *)
  | Recv of int  (** message id *)
  | Ckpt of int  (** checkpoint index *)
  | Internal

val ckpt_kind_to_string : ckpt_kind -> string

val pp_ckpt_id : Format.formatter -> ckpt_id -> unit
(** Prints [C_{i,x}] as ["C(i,x)"]. *)

val pp_message : Format.formatter -> message -> unit
