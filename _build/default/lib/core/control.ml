type t =
  | Nothing
  | Tdv of int array
  | Tdv_causal of { tdv : int array; causal : bool array array }
  | Full of { tdv : int array; simple : bool array; causal : bool array array }

let tdv = function
  | Nothing -> None
  | Tdv v -> Some v
  | Tdv_causal { tdv; _ } -> Some tdv
  | Full { tdv; _ } -> Some tdv

let bits = function
  | Nothing -> 0
  | Tdv v -> 32 * Array.length v
  | Tdv_causal { tdv; causal } -> (32 * Array.length tdv) + (Array.length causal * Array.length causal)
  | Full { tdv; simple; causal } ->
      (32 * Array.length tdv) + Array.length simple + (Array.length causal * Array.length causal)

let copy_matrix m = Array.map Array.copy m

let pp ppf = function
  | Nothing -> Format.pp_print_string ppf "-"
  | Tdv v -> Format.fprintf ppf "tdv:%a" Rdt_dist.Vclock.pp (Rdt_dist.Vclock.of_array v)
  | Tdv_causal { tdv; _ } ->
      Format.fprintf ppf "tdv:%a+causal" Rdt_dist.Vclock.pp (Rdt_dist.Vclock.of_array tdv)
  | Full { tdv; _ } ->
      Format.fprintf ppf "tdv:%a+simple+causal" Rdt_dist.Vclock.pp (Rdt_dist.Vclock.of_array tdv)
