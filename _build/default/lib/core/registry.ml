let all : Protocol.t list =
  [
    (module Cbr);
    (module Nras);
    (module Cas);
    (module Fdi);
    (module Fdas);
    (module Bhmr_v2);
    (module Bhmr_v1);
    (module Bhmr);
    (module Bcs);
    (module No_cic);
  ]

let rdt_protocols = List.filter Protocol.ensures_rdt all

let tdv_protocols : Protocol.t list =
  [ (module Fdi); (module Fdas); (module Bhmr_v2); (module Bhmr_v1); (module Bhmr) ]

let find name = List.find_opt (fun p -> Protocol.name p = name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (valid: %s)" name
           (String.concat ", " (List.map Protocol.name all)))
