module Pattern = Rdt_pattern.Pattern
module Rgraph = Rdt_pattern.Rgraph
module Tdv = Rdt_pattern.Tdv
module Chains = Rdt_pattern.Chains
module Ptypes = Rdt_pattern.Types

type violation = {
  from_ckpt : Ptypes.ckpt_id;
  to_ckpt : Ptypes.ckpt_id;
  tracked : int;
}

type report = { rdt : bool; violations : violation list; r_paths_checked : int }

let max_reported = 20

let pp_violation ppf v =
  Format.fprintf ppf "R-path %a ~> %a is not trackable (TDV entry = %d)" Ptypes.pp_ckpt_id
    v.from_ckpt Ptypes.pp_ckpt_id v.to_ckpt v.tracked

let pp_report ppf r =
  if r.rdt then Format.fprintf ppf "RDT holds (%d dependencies checked)" r.r_paths_checked
  else
    Format.fprintf ppf "RDT VIOLATED (%d dependencies checked):@,%a" r.r_paths_checked
      (Format.pp_print_list pp_violation)
      r.violations

(* For every checkpoint C_{j,y} and every process i, the strongest real
   rollback dependency is x* = max { x | C_{i,x} ~> C_{j,y} }; the pattern
   is RDT iff that dependency is trackable everywhere: TDV_{j,y}.(i) >= x*
   for i <> j, and x* <= y for i = j (a same-process R-path backwards in
   time — C_{k,z} ~> C_{k,z-1} — is never trackable, Section 4.1.2).
   Dependencies that do not exist are never checked: x* = -1. *)
let check_with ~trackable pat =
  let g = Rgraph.build pat in
  let n = Pattern.n pat in
  let violations = ref [] in
  let count = ref 0 in
  let checked = ref 0 in
  for j = 0 to n - 1 do
    for y = 0 to Pattern.last_index pat j do
      for i = 0 to n - 1 do
        let x_star = Rgraph.max_reaching_index g ~from_pid:i (j, y) in
        if x_star >= 0 then begin
          incr checked;
          if not (trackable (i, x_star) (j, y)) then begin
            incr count;
            if !count <= max_reported then
              violations :=
                { from_ckpt = (i, x_star); to_ckpt = (j, y); tracked = -1 } :: !violations
          end
        end
      done
    done
  done;
  { rdt = !count = 0; violations = List.rev !violations; r_paths_checked = !checked }

let check ?tdv pat =
  let tdv = match tdv with Some t -> t | None -> Tdv.compute pat in
  let report = check_with ~trackable:(fun a b -> Tdv.trackable tdv a b) pat in
  let violations =
    List.map
      (fun v ->
        let i, _ = v.from_ckpt in
        { v with tracked = (Tdv.at tdv v.to_ckpt).(i) })
      report.violations
  in
  { report with violations }

let check_chains pat = check_with ~trackable:(fun a b -> Chains.trackable pat a b) pat

let check_doubling pat =
  let tdv = Tdv.compute pat in
  let cm = Chains.cm_paths pat in
  let undoubled = Chains.undoubled_cm_paths pat tdv in
  let violations =
    List.filteri
      (fun k _ -> k < max_reported)
      (List.map
         (fun (p : Chains.cm_path) ->
           let i, _ = p.origin in
           { from_ckpt = p.origin; to_ckpt = p.target; tracked = (Tdv.at tdv p.target).(i) })
         undoubled)
  in
  { rdt = undoubled = []; violations; r_paths_checked = List.length cm }

let strict_gaps pat =
  let n = Pattern.n pat in
  let gaps = ref 0 in
  for i = 0 to n - 1 do
    for x = 1 to Pattern.last_index pat i do
      let zr = Chains.zpath_from_interval pat (i, x) in
      let cr = Chains.causal_from_interval pat (i, x) in
      for j = 0 to n - 1 do
        if
          j <> i
          && zr.Chains.earliest.(j) < max_int
          && not (cr.Chains.earliest.(j) <= zr.Chains.earliest.(j))
        then incr gaps
      done
    done
  done;
  !gaps

let online_tdv_consistent pat =
  let tdv = Tdv.compute pat in
  let ok = ref true in
  Pattern.iter_ckpts pat (fun c ->
      match c.Ptypes.tdv with
      | None -> ()
      | Some online -> if online <> Tdv.at tdv (c.Ptypes.owner, c.Ptypes.index) then ok := false);
  !ok
