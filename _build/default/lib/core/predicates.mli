(** The forced-checkpoint predicates, as pure functions.

    Separating the predicates from the protocol state machines lets the
    test suite check the generality hierarchy of Section 5.2 directly:
    [C1 \/ C2  =>  C1 \/ C2'  =>  C_FDAS  =>  C_FDI] at every delivery, so
    the main protocol never forces a checkpoint FDAS would not also force.

    Naming follows the paper; all predicates are evaluated at a receiver
    [P_i] about to deliver a message [m]:
    - [new_dep]: [exists k, m.tdv.(k) > tdv.(k)] — [m] brings a dependency
      on a checkpoint interval the receiver did not know about;
    - [c1]: some non-causal message chain through [P_i], with no causal
      sibling known to the sender, would be created (Section 4.1.1);
    - [c2]: some non-causal chain from a [C_{k,z}] back to [C_{k,z-1}],
      breakable only by [P_i], would be created (Section 4.1.2);
    - [c2']: the first weaker variant of [c2] (Section 5.1), suggested by
      Y.-M. Wang: a causal chain returned to its own interval while
      carrying any new dependency;
    - [c_fdas]: Wang's Fixed-Dependency-After-Send test;
    - [c_fdi]: the Fixed-Dependency-Interval test (no send condition). *)

val new_dep : tdv:int array -> m_tdv:int array -> bool

val c1 :
  sent_to:bool array -> tdv:int array -> m_tdv:int array -> m_causal:bool array array -> bool

val c2 : pid:int -> tdv:int array -> m_tdv:int array -> m_simple:bool array -> bool

val c2' : pid:int -> tdv:int array -> m_tdv:int array -> bool

val c_fdas : after_first_send:bool -> tdv:int array -> m_tdv:int array -> bool

val c_fdi : tdv:int array -> m_tdv:int array -> bool
