(* The index-based protocol of Briatico, Ciuffoletti and Simoncini
   ("A distributed domino-effect free recovery algorithm", 1984), included
   as the classic representative of the weaker CIC class the RDT papers
   position themselves against.

   Each process numbers its checkpoints with a logical index [sn],
   piggybacked on every message; a message arriving from a "later" index
   forces a checkpoint first, after which the receiver's index jumps to
   the sender's.  The checkpoints with equal index then line up into
   consistent global checkpoints, so no checkpoint lies on a Z-cycle and
   the domino effect is impossible — but hidden (non-causally doubled)
   dependencies remain: the protocol does NOT ensure RDT, which the test
   suite demonstrates. *)

type state = { pid : int; mutable sn : int }

let name = "bcs"
let describe = "Briatico-Ciuffoletti-Simoncini index-based protocol (no useless checkpoints, no RDT)"
let ensures_rdt = false
let ensures_no_useless = true

let create ~n:_ ~pid = { pid; sn = -1 }

let copy st = { st with sn = st.sn }

let on_checkpoint st = st.sn <- st.sn + 1

let make_payload st ~dst:_ = Control.Tdv [| st.sn |]

let force_after_send = false

let payload_sn = function
  | Control.Tdv [| sn |] -> sn
  | Control.Nothing | Control.Tdv _ | Control.Tdv_causal _ | Control.Full _ ->
      invalid_arg "Bcs: unexpected payload"

let must_force st ~src:_ payload = payload_sn payload > st.sn

let absorb st ~src:_ payload =
  let sn = payload_sn payload in
  if sn > st.sn then st.sn <- sn

let tdv _ = None

let payload_bits ~n:_ = 32

let predicates _ ~src:_ _ = []
