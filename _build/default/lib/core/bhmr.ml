(* The paper's protocol (Figure 6).

   On top of the transitive dependency vector, each process tracks:
   - [sent_to.(j)]   — sent to P_j since the last checkpoint;
   - [simple.(k)]    — every causal chain from C_{k,tdv.(k)} to the current
                       state is simple (no checkpoint between a delivery
                       and the following send along the chain);
   - [causal.(k).(l)] — to this process's knowledge there is an on-line
                       trackable R-path C_{k,tdv.(k)} ~> C_{l,tdv.(l)}.

   An arriving message [m] forces a checkpoint iff

     C1: exists j with sent_to.(j) and exists k with m.tdv.(k) > tdv.(k)
         and not m.causal.(k).(j)
         (a non-causal chain from P_k to P_j, breakable here, with no
         causal sibling known to the sender), or

     C2: m.tdv.(pid) = tdv.(pid) and not m.simple.(pid)
         (a causal chain left the current interval and came back having
         crossed a checkpoint: the resulting non-causal chain from some
         C_{k,z} to C_{k,z-1} is breakable only by this process). *)

type state = {
  n : int;
  pid : int;
  tdv : int array;
  sent_to : bool array;
  simple : bool array;
  causal : bool array array;
}

let name = "bhmr"
let describe = "Baldoni-Helary-Mostefaoui-Raynal protocol (C1 or C2)"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n ~pid =
  let causal = Array.init n (fun k -> Array.init n (fun l -> k = l)) in
  let simple = Array.init n (fun k -> k = pid) in
  { n; pid; tdv = Array.make n 0; sent_to = Array.make n false; simple; causal }

let copy st =
  {
    st with
    tdv = Array.copy st.tdv;
    sent_to = Array.copy st.sent_to;
    simple = Array.copy st.simple;
    causal = Control.copy_matrix st.causal;
  }

let on_checkpoint st =
  Array.fill st.sent_to 0 st.n false;
  for j = 0 to st.n - 1 do
    if j <> st.pid then begin
      st.simple.(j) <- false;
      st.causal.(st.pid).(j) <- false
    end
  done;
  st.tdv.(st.pid) <- st.tdv.(st.pid) + 1

let make_payload st ~dst =
  st.sent_to.(dst) <- true;
  Control.Full
    {
      tdv = Array.copy st.tdv;
      simple = Array.copy st.simple;
      causal = Control.copy_matrix st.causal;
    }

let force_after_send = false

let fields = function
  | Control.Full { tdv; simple; causal } -> (tdv, simple, causal)
  | Control.Nothing | Control.Tdv _ | Control.Tdv_causal _ ->
      invalid_arg "Bhmr: unexpected payload"

let must_force st ~src:_ payload =
  let m_tdv, m_simple, m_causal = fields payload in
  Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal
  || Predicates.c2 ~pid:st.pid ~tdv:st.tdv ~m_tdv ~m_simple

let absorb st ~src payload =
  let m_tdv, m_simple, m_causal = fields payload in
  for k = 0 to st.n - 1 do
    if m_tdv.(k) > st.tdv.(k) then begin
      st.tdv.(k) <- m_tdv.(k);
      st.simple.(k) <- m_simple.(k);
      Array.blit m_causal.(k) 0 st.causal.(k) 0 st.n
    end
    else if m_tdv.(k) = st.tdv.(k) then begin
      st.simple.(k) <- st.simple.(k) && m_simple.(k);
      for l = 0 to st.n - 1 do
        st.causal.(k).(l) <- st.causal.(k).(l) || m_causal.(k).(l)
      done
    end
  done;
  st.causal.(src).(st.pid) <- true;
  for l = 0 to st.n - 1 do
    st.causal.(l).(st.pid) <- st.causal.(l).(st.pid) || st.causal.(l).(src)
  done

let tdv st = Some (Array.copy st.tdv)

let payload_bits ~n = (32 * n) + n + (n * n)

let after_first_send st = Array.exists (fun b -> b) st.sent_to

let predicates st ~src:_ payload =
  let m_tdv, m_simple, m_causal = fields payload in
  [
    ("c1", Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal);
    ("c2", Predicates.c2 ~pid:st.pid ~tdv:st.tdv ~m_tdv ~m_simple);
    ("c2'", Predicates.c2' ~pid:st.pid ~tdv:st.tdv ~m_tdv);
    ("c_fdas", Predicates.c_fdas ~after_first_send:(after_first_send st) ~tdv:st.tdv ~m_tdv);
    ("c_fdi", Predicates.c_fdi ~tdv:st.tdv ~m_tdv);
  ]
