(* Fixed-Dependency-Interval: the transitive dependency vector of an
   interval is frozen at the interval's first event — any arriving message
   carrying a new dependency forces a checkpoint, whether or not the
   process has sent anything.  Strictly more conservative than FDAS. *)

type state = { pid : int; tdv : int array }

let name = "fdi"
let describe = "fixed dependency vector per interval (force on any new dependency)"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n ~pid = { pid; tdv = Array.make n 0 }

let copy st = { st with tdv = Array.copy st.tdv }

let on_checkpoint st = st.tdv.(st.pid) <- st.tdv.(st.pid) + 1

let make_payload st ~dst:_ = Control.Tdv (Array.copy st.tdv)

let force_after_send = false

let payload_tdv = function
  | Control.Tdv v -> v
  | Control.Nothing | Control.Tdv_causal _ | Control.Full _ ->
      invalid_arg "Fdi: unexpected payload"

let must_force st ~src:_ payload =
  Predicates.c_fdi ~tdv:st.tdv ~m_tdv:(payload_tdv payload)

let absorb st ~src:_ payload =
  let m_tdv = payload_tdv payload in
  for k = 0 to Array.length st.tdv - 1 do
    if m_tdv.(k) > st.tdv.(k) then st.tdv.(k) <- m_tdv.(k)
  done

let tdv st = Some (Array.copy st.tdv)

let payload_bits ~n = 32 * n

let predicates st ~src:_ payload =
  let m_tdv = payload_tdv payload in
  [ ("c_fdi", Predicates.c_fdi ~tdv:st.tdv ~m_tdv) ]
