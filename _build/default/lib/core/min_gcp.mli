(** Minimum and maximum consistent global checkpoints (Corollary 4.5 and
    the dependability applications of Section 1).

    Under RDT, the minimum consistent global checkpoint containing
    [C_{i,x}] is available {e on-the-fly}: it is exactly the transitive
    dependency vector [TDV_{i,x}] recorded when the checkpoint was taken.
    [of_tdv] reads it off a pattern; [minimum]/[maximum] compute the same
    objects from first principles (orphan-elimination fixpoints), with no
    RDT assumption, and are used to validate the corollary. *)

val of_tdv : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> int array
(** The on-the-fly answer: the TDV recorded at the checkpoint (protocol
    vector if recorded, offline replay otherwise).  Meaningful as a global
    checkpoint only when the pattern satisfies RDT. *)

val minimum : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> int array option
(** Brute-force minimum consistent global checkpoint containing the
    checkpoint; [None] if none exists (impossible under RDT). *)

val maximum : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> int array option
(** Brute-force maximum consistent global checkpoint containing it. *)

val minimum_of_set :
  Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id list -> int array option
(** Minimum consistent global checkpoint containing a whole set (at most
    one checkpoint per process). *)

val maximum_of_set :
  Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id list -> int array option

(** {1 Wang's efficient calculations (enabled by RDT)}

    The introduction's second "noteworthy property" of RDT: the minimum
    and maximum consistent global checkpoints containing a {e set} of
    local checkpoints admit direct calculations, with no fixpoint
    iteration (Wang [13]).  Both are validated against the
    orphan-elimination fixpoints on every RDT run in the test suite. *)

val minimum_by_tdv : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id list -> int array option
(** Under RDT, the minimum consistent global checkpoint containing a set
    is the component-wise maximum of the members' dependency vectors —
    unless some member's vector already dominates another member's index,
    in which case the two cannot coexist and the result is [None].
    Meaningful only on RDT patterns. *)

val maximum_by_rgraph : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id list -> int array option
(** Under RDT, the maximum consistent global checkpoint containing a set
    is obtained by rolling back, on every process, to just before the
    earliest checkpoint R-reachable from any member's {e successor}
    [C_{i,x+1}] (rolling back to [C_{i,x}] means undoing [C_{i,x+1}], and
    the R-graph closure is exactly what that drags along).  [None] when a
    member must be rolled back below itself.  Meaningful only on RDT
    patterns. *)

val corollary_holds : Rdt_pattern.Pattern.t -> bool
(** For every checkpoint [C] of the pattern: {!of_tdv}[ C] =
    {!minimum}[ C].  Expected to hold exactly when the pattern satisfies
    RDT; asserted by the test suite for every RDT protocol run. *)
