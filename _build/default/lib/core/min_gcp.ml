module Pattern = Rdt_pattern.Pattern
module Tdv = Rdt_pattern.Tdv
module Consistency = Rdt_pattern.Consistency
module Ptypes = Rdt_pattern.Types

let of_tdv pat (i, x) =
  let c = Pattern.ckpt pat (i, x) in
  match c.Ptypes.tdv with
  | Some v -> Array.copy v
  | None -> Array.copy (Tdv.at (Tdv.compute pat) (i, x))

let minimum pat c = Consistency.min_consistent_containing pat [ c ]

let maximum pat c = Consistency.max_consistent_containing pat [ c ]

let minimum_of_set pat cks = Consistency.min_consistent_containing pat cks

let maximum_of_set pat cks = Consistency.max_consistent_containing pat cks

module Rgraph = Rdt_pattern.Rgraph

let pin_list pat cks =
  let n = Pattern.n pat in
  let pinned = Array.make n (-1) in
  List.iter
    (fun (i, x) ->
      ignore (Pattern.ckpt pat (i, x));
      if pinned.(i) >= 0 && pinned.(i) <> x then
        invalid_arg "Min_gcp: two checkpoints of the same process in the set";
      pinned.(i) <- x)
    cks;
  pinned

let minimum_by_tdv pat cks =
  let n = Pattern.n pat in
  let pinned = pin_list pat cks in
  let tdv = Tdv.compute pat in
  let v = Array.make n 0 in
  List.iter
    (fun c ->
      let vec = Tdv.at tdv c in
      for j = 0 to n - 1 do
        if vec.(j) > v.(j) then v.(j) <- vec.(j)
      done)
    cks;
  (* a member whose entry was pushed above its own index cannot coexist
     with the others *)
  let ok = ref true in
  Array.iteri (fun i x -> if x >= 0 && v.(i) <> x then ok := false) pinned;
  if !ok then Some v else None

let maximum_by_rgraph pat cks =
  let n = Pattern.n pat in
  let pinned = pin_list pat cks in
  let g = Rgraph.build pat in
  let v = Array.init n (fun j -> Pattern.last_index pat j) in
  List.iter
    (fun (i, x) ->
      if x < Pattern.last_index pat i then begin
        (* everything R-reachable from C_{i,x+1} must be undone *)
        let reach = Rgraph.reachable_set g (i, x + 1) in
        Rdt_pattern.Bitset.iter
          (fun node ->
            let j, y = Rgraph.ckpt_of_node g node in
            if y - 1 < v.(j) then v.(j) <- y - 1)
          reach
      end)
    cks;
  let ok = ref true in
  Array.iteri
    (fun j x ->
      if x < 0 then ok := false
      else if pinned.(j) >= 0 && x <> pinned.(j) then
        if x < pinned.(j) then ok := false
        else (* cannot happen: the member's own successor reaches itself *)
          v.(j) <- pinned.(j))
    v;
  if !ok then Some v else None

let corollary_holds pat =
  let tdv = Tdv.compute pat in
  let ok = ref true in
  Pattern.iter_ckpts pat (fun c ->
      if !ok then begin
        let id = (c.Ptypes.owner, c.Ptypes.index) in
        let online = Array.copy (Tdv.at tdv id) in
        match minimum pat id with
        | None -> ok := false
        | Some v -> if v <> online then ok := false
      end);
  !ok
