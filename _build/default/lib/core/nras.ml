(* No-Receive-After-Send (Russell [10]): within a checkpoint interval all
   deliveries precede all sends.  A delivery arriving after a send in the
   current interval forces a checkpoint, so a send event is never followed
   by a delivery in the same interval and no non-causal junction can form
   at this process. *)

type state = { mutable sent : bool }

let name = "nras"
let describe = "no receive after send within an interval"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n:_ ~pid:_ = { sent = false }

let copy st = { sent = st.sent }

let on_checkpoint st = st.sent <- false

let make_payload st ~dst:_ =
  st.sent <- true;
  Control.Nothing

let force_after_send = false

let must_force st ~src:_ _ = st.sent

let absorb _ ~src:_ _ = ()

let tdv _ = None

let payload_bits ~n:_ = 0

let predicates _ ~src:_ _ = []
