(* Wang's Fixed-Dependency-After-Send [13]: the dependency vector of an
   interval is frozen after the interval's first send.  A message carrying
   a new dependency forces a checkpoint only if the process has already
   sent in the current interval.  This is the reference the paper's
   simulation study (and our harness) normalises against. *)

type state = { pid : int; tdv : int array; mutable after_first_send : bool }

let name = "fdas"
let describe = "Wang's fixed-dependency-after-send"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n ~pid = { pid; tdv = Array.make n 0; after_first_send = false }

let copy st = { st with tdv = Array.copy st.tdv }

let on_checkpoint st =
  st.tdv.(st.pid) <- st.tdv.(st.pid) + 1;
  st.after_first_send <- false

let make_payload st ~dst:_ =
  st.after_first_send <- true;
  Control.Tdv (Array.copy st.tdv)

let force_after_send = false

let payload_tdv = function
  | Control.Tdv v -> v
  | Control.Nothing | Control.Tdv_causal _ | Control.Full _ ->
      invalid_arg "Fdas: unexpected payload"

let must_force st ~src:_ payload =
  Predicates.c_fdas ~after_first_send:st.after_first_send ~tdv:st.tdv
    ~m_tdv:(payload_tdv payload)

let absorb st ~src:_ payload =
  let m_tdv = payload_tdv payload in
  for k = 0 to Array.length st.tdv - 1 do
    if m_tdv.(k) > st.tdv.(k) then st.tdv.(k) <- m_tdv.(k)
  done

let tdv st = Some (Array.copy st.tdv)

let payload_bits ~n = 32 * n

let predicates st ~src:_ payload =
  let m_tdv = payload_tdv payload in
  [
    ("c_fdas", Predicates.c_fdas ~after_first_send:st.after_first_send ~tdv:st.tdv ~m_tdv);
    ("c_fdi", Predicates.c_fdi ~tdv:st.tdv ~m_tdv);
  ]
