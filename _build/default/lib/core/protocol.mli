(** The communication-induced checkpointing (CIC) protocol interface.

    A protocol is a per-process state machine driven by the runtime at
    three points: when the process takes a local checkpoint (basic or
    forced), when it sends an application message (the protocol supplies
    the piggybacked control data), and when a message arrives (the
    protocol decides whether a forced checkpoint must be taken {e before}
    delivery, then merges the piggybacked knowledge).

    The contract every implementation claiming RDT must honour: whatever
    basic-checkpoint schedule and communication pattern the application
    produces, the resulting checkpoint and communication pattern satisfies
    the Rollback-Dependency Trackability property (verified offline by
    {!Checker}). *)

module type S = sig
  type state

  val name : string
  (** Short identifier used by the CLI, benches, and registries. *)

  val describe : string
  (** One-line description. *)

  val ensures_rdt : bool
  (** Whether the protocol guarantees the RDT property. *)

  val ensures_no_useless : bool
  (** Whether the protocol guarantees that no checkpoint is useless (on a
      Z-cycle).  Implied by RDT; also provided by weaker index-based
      protocols such as [bcs] that do not ensure RDT. *)

  val create : n:int -> pid:int -> state
  (** Fresh state for process [pid] of [n].  The caller must immediately
      account for the initial checkpoint by calling {!on_checkpoint}. *)

  val copy : state -> state
  (** A deep, independent copy.  Saved with every checkpoint by the
      crash-recovery runtime, so a rollback can restore the protocol
      state exactly as it was when the checkpoint was taken. *)

  val on_checkpoint : state -> unit
  (** The process takes a local checkpoint (initial, basic or forced). *)

  val make_payload : state -> dst:int -> Control.t
  (** Called at each send; returns the control data to piggyback (a deep
      copy, safe against later state mutation) and records the send in the
      state (e.g. [sent_to]). *)

  val force_after_send : bool
  (** [true] for checkpoint-after-send style protocols: the runtime takes
      a forced checkpoint immediately after each send event. *)

  val must_force : state -> src:int -> Control.t -> bool
  (** Evaluated when a message arrives, before delivery, on the
      un-modified state: must the process take a forced checkpoint first?
      Must not mutate the state. *)

  val absorb : state -> src:int -> Control.t -> unit
  (** Merge the piggybacked control data into the state (performed after
      the possible forced checkpoint, before delivery to the
      application). *)

  val tdv : state -> int array option
  (** Current transitive dependency vector, if the protocol maintains one
      (a copy).  Entry [pid] is the index of the current interval; the
      vector recorded just before a checkpoint [C_{i,x}] is [TDV_{i,x}],
      whose entries name the minimum consistent global checkpoint
      containing [C_{i,x}] (Corollary 4.5). *)

  val payload_bits : n:int -> int
  (** Piggyback size in bits for a system of [n] processes. *)

  val predicates : state -> src:int -> Control.t -> (string * bool) list
  (** Named predicate values at an arriving message, for offline
      validation of the generality hierarchy (empty for protocols that do
      not track dependency vectors).  Must not mutate the state. *)
end

type t = (module S)

val name : t -> string

val describe : t -> string

val ensures_rdt : t -> bool

val ensures_no_useless : t -> bool

val payload_bits : t -> n:int -> int
