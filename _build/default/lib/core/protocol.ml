module type S = sig
  type state

  val name : string
  val describe : string
  val ensures_rdt : bool
  val ensures_no_useless : bool
  val create : n:int -> pid:int -> state
  val copy : state -> state
  val on_checkpoint : state -> unit
  val make_payload : state -> dst:int -> Control.t
  val force_after_send : bool
  val must_force : state -> src:int -> Control.t -> bool
  val absorb : state -> src:int -> Control.t -> unit
  val tdv : state -> int array option
  val payload_bits : n:int -> int
  val predicates : state -> src:int -> Control.t -> (string * bool) list
end

type t = (module S)

let name (module P : S) = P.name

let describe (module P : S) = P.describe

let ensures_rdt (module P : S) = P.ensures_rdt

let ensures_no_useless (module P : S) = P.ensures_no_useless

let payload_bits (module P : S) ~n = P.payload_bits ~n
