(** Run metrics collected by the {!Runtime}. *)

type t = {
  n : int;
  protocol : string;
  environment : string;
  seed : int;
  basic : int;  (** basic checkpoints actually taken *)
  basic_skipped : int;  (** scheduled basic checkpoints skipped (empty interval) *)
  forced : int;  (** forced checkpoints taken by the protocol *)
  messages : int;  (** application messages sent (= delivered) *)
  internal_events : int;
  payload_bits_per_msg : int;
  duration : int;  (** simulated time at the end of the run *)
}

val total_checkpoints : t -> int
(** Initial + basic + forced (the final analysis checkpoints are not
    counted — they are an artefact of pattern completion). *)

val forced_per_basic : t -> float
(** The paper's overhead measure: forced checkpoints per basic
    checkpoint. *)

val forced_per_message : t -> float

val pp : Format.formatter -> t -> unit
