(* Baseline that never forces a checkpoint and piggybacks nothing: the
   uncoordinated ("independent") checkpointing the paper's introduction
   warns about.  Runs under it generally violate RDT and can exhibit the
   domino effect; the test suite uses it as the negative control. *)

type state = unit

let name = "none"
let describe = "independent checkpointing: no forced checkpoints, no piggybacking"
let ensures_rdt = false
let ensures_no_useless = false
let create ~n:_ ~pid:_ = ()

let copy () = ()
let on_checkpoint () = ()
let make_payload () ~dst:_ = Control.Nothing
let force_after_send = false
let must_force () ~src:_ _ = false
let absorb () ~src:_ _ = ()
let tdv () = None
let payload_bits ~n:_ = 0
let predicates () ~src:_ _ = []
