(** Registry of the protocols shipped by the library. *)

val all : Protocol.t list
(** Every protocol, ordered from most to least conservative:
    [cbr], [nras], [cas], [fdi], [fdas], [bhmr-v2], [bhmr-v1], [bhmr],
    then the index-based [bcs] (a weaker guarantee: no useless
    checkpoints, but not RDT) and the [none] baseline. *)

val rdt_protocols : Protocol.t list
(** The members of {!all} that guarantee RDT (everything except [bcs]
    and [none]). *)

val tdv_protocols : Protocol.t list
(** The protocols that maintain a transitive dependency vector:
    [fdi], [fdas], [bhmr-v2], [bhmr-v1], [bhmr]. *)

val find : string -> Protocol.t option
(** Look up by {!Protocol.name}. *)

val find_exn : string -> Protocol.t
(** @raise Invalid_argument on unknown names (the message lists the valid
    ones). *)
