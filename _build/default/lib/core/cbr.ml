(* Checkpoint-Before-Receive (after Russell [10]): a message is only ever
   delivered into a fresh checkpoint interval.  Every delivery that would
   land in an interval already containing a send or a delivery forces a
   checkpoint first, so no event precedes a delivery within its interval
   and every message chain is causal — RDT holds trivially, at the price
   of (almost) one forced checkpoint per delivery. *)

type state = { mutable active : bool (* any send/delivery since last checkpoint *) }

let name = "cbr"
let describe = "checkpoint before every receive (fresh interval per delivery)"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n:_ ~pid:_ = { active = false }

let copy st = { active = st.active }

let on_checkpoint st = st.active <- false

let make_payload st ~dst:_ =
  st.active <- true;
  Control.Nothing

let force_after_send = false

let must_force st ~src:_ _ = st.active

let absorb st ~src:_ _ = st.active <- true

let tdv _ = None

let payload_bits ~n:_ = 0

let predicates _ ~src:_ _ = []
