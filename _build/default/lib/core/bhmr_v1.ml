(* First weaker variant (Section 5.1, suggested by Y.-M. Wang): the
   [simple] array is dropped and C2 is replaced by

     C2': m.tdv.(pid) = tdv.(pid) and exists k with m.tdv.(k) > tdv.(k)

   i.e. a causal chain returned to its own sending interval while carrying
   any new dependency.  C2 implies C2', so the variant forces at least as
   often as the full protocol but piggybacks n fewer bits. *)

type state = {
  n : int;
  pid : int;
  tdv : int array;
  sent_to : bool array;
  causal : bool array array;
}

let name = "bhmr-v1"
let describe = "variant 1: C1 or C2' (no simple array)"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n ~pid =
  let causal = Array.init n (fun k -> Array.init n (fun l -> k = l)) in
  { n; pid; tdv = Array.make n 0; sent_to = Array.make n false; causal }

let copy st =
  {
    st with
    tdv = Array.copy st.tdv;
    sent_to = Array.copy st.sent_to;
    causal = Control.copy_matrix st.causal;
  }

let on_checkpoint st =
  Array.fill st.sent_to 0 st.n false;
  for j = 0 to st.n - 1 do
    if j <> st.pid then st.causal.(st.pid).(j) <- false
  done;
  st.tdv.(st.pid) <- st.tdv.(st.pid) + 1

let make_payload st ~dst =
  st.sent_to.(dst) <- true;
  Control.Tdv_causal { tdv = Array.copy st.tdv; causal = Control.copy_matrix st.causal }

let force_after_send = false

let fields = function
  | Control.Tdv_causal { tdv; causal } -> (tdv, causal)
  | Control.Nothing | Control.Tdv _ | Control.Full _ ->
      invalid_arg "Bhmr_v1: unexpected payload"

let must_force st ~src:_ payload =
  let m_tdv, m_causal = fields payload in
  Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal
  || Predicates.c2' ~pid:st.pid ~tdv:st.tdv ~m_tdv

let absorb st ~src payload =
  let m_tdv, m_causal = fields payload in
  for k = 0 to st.n - 1 do
    if m_tdv.(k) > st.tdv.(k) then begin
      st.tdv.(k) <- m_tdv.(k);
      Array.blit m_causal.(k) 0 st.causal.(k) 0 st.n
    end
    else if m_tdv.(k) = st.tdv.(k) then
      for l = 0 to st.n - 1 do
        st.causal.(k).(l) <- st.causal.(k).(l) || m_causal.(k).(l)
      done
  done;
  st.causal.(src).(st.pid) <- true;
  for l = 0 to st.n - 1 do
    st.causal.(l).(st.pid) <- st.causal.(l).(st.pid) || st.causal.(l).(src)
  done

let tdv st = Some (Array.copy st.tdv)

let payload_bits ~n = (32 * n) + (n * n)

let after_first_send st = Array.exists (fun b -> b) st.sent_to

let predicates st ~src:_ payload =
  let m_tdv, m_causal = fields payload in
  [
    ("c1", Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal);
    ("c2'", Predicates.c2' ~pid:st.pid ~tdv:st.tdv ~m_tdv);
    ("c_fdas", Predicates.c_fdas ~after_first_send:(after_first_send st) ~tdv:st.tdv ~m_tdv);
    ("c_fdi", Predicates.c_fdi ~tdv:st.tdv ~m_tdv);
  ]
