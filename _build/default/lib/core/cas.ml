(* Checkpoint-After-Send (Wu & Fuchs [12]): every send event is
   immediately followed by a checkpoint, so a send is always the last
   event of its interval and no delivery can follow a send within an
   interval — again every message chain is causal. *)

type state = unit

let name = "cas"
let describe = "checkpoint immediately after every send"
let ensures_rdt = true
let ensures_no_useless = true
let create ~n:_ ~pid:_ = ()

let copy () = ()
let on_checkpoint () = ()
let make_payload () ~dst:_ = Control.Nothing
let force_after_send = true
let must_force () ~src:_ _ = false
let absorb () ~src:_ _ = ()
let tdv () = None
let payload_bits ~n:_ = 0
let predicates () ~src:_ _ = []
