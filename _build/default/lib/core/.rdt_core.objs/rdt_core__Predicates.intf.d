lib/core/predicates.mli:
