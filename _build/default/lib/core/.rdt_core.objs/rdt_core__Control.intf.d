lib/core/control.mli: Format
