lib/core/cas.ml: Control
