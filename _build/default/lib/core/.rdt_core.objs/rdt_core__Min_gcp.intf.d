lib/core/min_gcp.mli: Rdt_pattern
