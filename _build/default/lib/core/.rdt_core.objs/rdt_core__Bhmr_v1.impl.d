lib/core/bhmr_v1.ml: Array Control Predicates
