lib/core/bhmr_v2.ml: Array Control Predicates
