lib/core/cbr.ml: Control
