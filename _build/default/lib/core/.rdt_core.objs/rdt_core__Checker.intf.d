lib/core/checker.mli: Format Rdt_pattern
