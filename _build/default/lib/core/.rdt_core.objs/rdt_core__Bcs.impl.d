lib/core/bcs.ml: Control
