lib/core/protocol.ml: Control
