lib/core/protocol.mli: Control
