lib/core/control.ml: Array Format Rdt_dist
