lib/core/min_gcp.ml: Array List Rdt_pattern
