lib/core/bhmr.ml: Array Control Predicates
