lib/core/no_cic.ml: Control
