lib/core/checker.ml: Array Format List Rdt_pattern
