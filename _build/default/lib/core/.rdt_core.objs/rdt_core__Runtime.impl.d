lib/core/runtime.ml: Array Control Hashtbl List Metrics Protocol Rdt_dist Rdt_pattern
