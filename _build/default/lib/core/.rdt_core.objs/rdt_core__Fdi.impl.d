lib/core/fdi.ml: Array Control Predicates
