lib/core/runtime.mli: Metrics Protocol Rdt_dist Rdt_pattern
