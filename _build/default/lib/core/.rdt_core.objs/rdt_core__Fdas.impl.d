lib/core/fdas.ml: Array Control Predicates
