lib/core/registry.mli: Protocol
