lib/core/predicates.ml: Array
