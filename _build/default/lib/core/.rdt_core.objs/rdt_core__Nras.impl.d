lib/core/nras.ml: Control
