lib/core/registry.ml: Bcs Bhmr Bhmr_v1 Bhmr_v2 Cas Cbr Fdas Fdi List No_cic Nras Printf Protocol String
