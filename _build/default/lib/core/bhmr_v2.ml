(* Second weaker variant (Section 5.1): C2 is dropped entirely and the
   diagonal of the [causal] matrices is held permanently false.  With a
   false diagonal, C1 also fires for k = j: the process forces a
   checkpoint when it has sent to P_j and the arriving message brings a
   new dependency on P_j itself — which is precisely what used to be C2's
   job of breaking chains from C_{k,z} back to C_{k,z-1}. *)

type state = {
  n : int;
  pid : int;
  tdv : int array;
  sent_to : bool array;
  causal : bool array array;
}

let name = "bhmr-v2"
let describe = "variant 2: C1 only, causal diagonal held false"
let ensures_rdt = true
let ensures_no_useless = true

let create ~n ~pid =
  { n; pid; tdv = Array.make n 0; sent_to = Array.make n false;
    causal = Array.init n (fun _ -> Array.make n false) }

let copy st =
  {
    st with
    tdv = Array.copy st.tdv;
    sent_to = Array.copy st.sent_to;
    causal = Control.copy_matrix st.causal;
  }

let on_checkpoint st =
  Array.fill st.sent_to 0 st.n false;
  for j = 0 to st.n - 1 do
    st.causal.(st.pid).(j) <- false
  done;
  st.tdv.(st.pid) <- st.tdv.(st.pid) + 1

let make_payload st ~dst =
  st.sent_to.(dst) <- true;
  Control.Tdv_causal { tdv = Array.copy st.tdv; causal = Control.copy_matrix st.causal }

let force_after_send = false

let fields = function
  | Control.Tdv_causal { tdv; causal } -> (tdv, causal)
  | Control.Nothing | Control.Tdv _ | Control.Full _ ->
      invalid_arg "Bhmr_v2: unexpected payload"

let must_force st ~src:_ payload =
  let m_tdv, m_causal = fields payload in
  Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal

let absorb st ~src payload =
  let m_tdv, m_causal = fields payload in
  for k = 0 to st.n - 1 do
    if m_tdv.(k) > st.tdv.(k) then begin
      st.tdv.(k) <- m_tdv.(k);
      Array.blit m_causal.(k) 0 st.causal.(k) 0 st.n
    end
    else if m_tdv.(k) = st.tdv.(k) then
      for l = 0 to st.n - 1 do
        st.causal.(k).(l) <- st.causal.(k).(l) || m_causal.(k).(l)
      done
  done;
  st.causal.(src).(st.pid) <- true;
  for l = 0 to st.n - 1 do
    st.causal.(l).(st.pid) <- st.causal.(l).(st.pid) || st.causal.(l).(src)
  done;
  (* restore the variant's invariant: diagonal permanently false *)
  for k = 0 to st.n - 1 do
    st.causal.(k).(k) <- false
  done

let tdv st = Some (Array.copy st.tdv)

let payload_bits ~n = (32 * n) + (n * n)

let after_first_send st = Array.exists (fun b -> b) st.sent_to

let predicates st ~src:_ payload =
  let m_tdv, m_causal = fields payload in
  [
    ("c1", Predicates.c1 ~sent_to:st.sent_to ~tdv:st.tdv ~m_tdv ~m_causal);
    ("c_fdas", Predicates.c_fdas ~after_first_send:(after_first_send st) ~tdv:st.tdv ~m_tdv);
    ("c_fdi", Predicates.c_fdi ~tdv:st.tdv ~m_tdv);
  ]
