module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng
module Channel = Rdt_dist.Channel
module Event_queue = Rdt_dist.Event_queue
module Pattern = Rdt_pattern.Pattern
module Ptypes = Rdt_pattern.Types

type config = {
  n : int;
  seed : int;
  env : Env.t;
  protocol : Protocol.t;
  channel : Channel.spec;
  basic_period : int * int;
  max_messages : int;
  max_time : int;
}

let default_config env protocol =
  {
    n = 8;
    seed = 1;
    env;
    protocol;
    channel = Channel.Uniform (5, 100);
    basic_period = (300, 700);
    max_messages = 2000;
    max_time = max_int / 2;
  }

type result = {
  pattern : Pattern.t;
  metrics : Metrics.t;
  predicate_counts : (string * int) list;
  hierarchy_violations : (string * string) list;
}

(* Implications expected among the named predicates (weaker => stronger in
   the sense of Section 5.2: a less conservative test implies the more
   conservative one). *)
let expected_implications =
  [ ("c1", "c_fdas"); ("c2", "c2'"); ("c2", "c_fdas"); ("c2'", "c_fdas"); ("c_fdas", "c_fdi") ]

type queued =
  | Tick of int
  | Basic of int
  | Arrival of { dst : int; src : int; handle : int; payload : Control.t }

let validate_config cfg =
  if cfg.n < 2 then invalid_arg "Runtime: n must be >= 2";
  if cfg.max_messages < 0 then invalid_arg "Runtime: negative message budget";
  (match Channel.validate cfg.channel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Runtime: bad channel spec: " ^ e));
  let lo, hi = cfg.basic_period in
  if lo < 0 || hi < lo then invalid_arg "Runtime: bad basic period"

let run cfg =
  validate_config cfg;
  let (module P : Protocol.S) = cfg.protocol in
  let (module E : Env.S) = cfg.env in
  let rng = Rng.create cfg.seed in
  let env_rng = Rng.split rng in
  let env = E.create ~n:cfg.n ~rng:env_rng in
  let states = Array.init cfg.n (fun pid -> P.create ~n:cfg.n ~pid) in
  let builder = Pattern.Builder.create ~n:cfg.n in
  let queue : queued Event_queue.t = Event_queue.create () in
  let interval_events = Array.make cfg.n 0 in
  let basic = ref 0
  and basic_skipped = ref 0
  and forced = ref 0
  and sent = ref 0
  and internal_events = ref 0
  and now = ref 0 in
  let pred_counts : (string, int ref) Hashtbl.t = Hashtbl.create 7 in
  let violations : (string * string, unit) Hashtbl.t = Hashtbl.create 7 in
  let take_checkpoint pid kind =
    let snapshot = P.tdv states.(pid) in
    ignore (Pattern.Builder.checkpoint ~kind ?tdv:snapshot ~time:!now builder pid);
    P.on_checkpoint states.(pid);
    interval_events.(pid) <- 0
  in
  (* Initial checkpoints: the builder records them automatically at
     creation; mirror them in the protocol states. *)
  Array.iter P.on_checkpoint states;
  let basic_enabled = cfg.basic_period <> (0, 0) in
  let draw_basic_delay () =
    let lo, hi = cfg.basic_period in
    Rng.int_in rng lo hi
  in
  let send_message ~src ~dst =
    if !sent < cfg.max_messages && src <> dst then begin
      incr sent;
      let payload = P.make_payload states.(src) ~dst in
      let handle = Pattern.Builder.send builder ~src ~dst in
      interval_events.(src) <- interval_events.(src) + 1;
      let delay = Channel.sample rng cfg.channel in
      Event_queue.schedule queue ~time:(!now + delay) (Arrival { dst; src; handle; payload });
      if P.force_after_send then begin
        incr forced;
        take_checkpoint src Ptypes.Forced
      end
    end
  in
  let do_action pid = function
    | Env.Send dst -> send_message ~src:pid ~dst
    | Env.Internal ->
        Pattern.Builder.internal builder pid;
        interval_events.(pid) <- interval_events.(pid) + 1;
        incr internal_events
    | Env.Checkpoint ->
        if interval_events.(pid) > 0 then begin
          incr basic;
          take_checkpoint pid Ptypes.Basic
        end
        else incr basic_skipped
  in
  (* Prime the queue. *)
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (Tick pid);
    if basic_enabled then Event_queue.schedule queue ~time:(draw_basic_delay ()) (Basic pid)
  done;
  let record_predicates ~dst ~src payload =
    let named = P.predicates states.(dst) ~src payload in
    match named with
    | [] -> ()
    | _ ->
        List.iter
          (fun (name, v) ->
            if v then
              match Hashtbl.find_opt pred_counts name with
              | Some r -> incr r
              | None -> Hashtbl.add pred_counts name (ref 1))
          named;
        List.iter
          (fun (weaker, stronger) ->
            match (List.assoc_opt weaker named, List.assoc_opt stronger named) with
            | Some true, Some false -> Hashtbl.replace violations (weaker, stronger) ()
            | _ -> ())
          expected_implications
  in
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | Tick pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (Tick pid)
              | None -> ()
            end
        | Basic pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              do_action pid Env.Checkpoint;
              Event_queue.schedule queue ~time:(t + draw_basic_delay ()) (Basic pid)
            end
        | Arrival { dst; src; handle; payload } ->
            record_predicates ~dst ~src payload;
            if P.must_force states.(dst) ~src payload then begin
              incr forced;
              take_checkpoint dst Ptypes.Forced
            end;
            P.absorb states.(dst) ~src payload;
            Pattern.Builder.recv builder handle;
            interval_events.(dst) <- interval_events.(dst) + 1;
            let reactions = E.on_deliver env ~pid:dst ~src in
            List.iter (do_action dst) reactions)
  done;
  let pattern = Pattern.Builder.finish ~final_checkpoints:true builder in
  let metrics =
    {
      Metrics.n = cfg.n;
      protocol = P.name;
      environment = E.name;
      seed = cfg.seed;
      basic = !basic;
      basic_skipped = !basic_skipped;
      forced = !forced;
      messages = !sent;
      internal_events = !internal_events;
      payload_bits_per_msg = P.payload_bits ~n:cfg.n;
      duration = !now;
    }
  in
  let predicate_counts =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) pred_counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let hierarchy_violations = Hashtbl.fold (fun k () acc -> k :: acc) violations [] in
  { pattern; metrics; predicate_counts; hierarchy_violations }
