type t = {
  n : int;
  protocol : string;
  environment : string;
  seed : int;
  basic : int;
  basic_skipped : int;
  forced : int;
  messages : int;
  internal_events : int;
  payload_bits_per_msg : int;
  duration : int;
}

let total_checkpoints t = t.n + t.basic + t.forced

let forced_per_basic t = if t.basic = 0 then 0.0 else float_of_int t.forced /. float_of_int t.basic

let forced_per_message t =
  if t.messages = 0 then 0.0 else float_of_int t.forced /. float_of_int t.messages

let pp ppf t =
  Format.fprintf ppf
    "%s/%s n=%d seed=%d: %d msgs, %d basic, %d forced (%.3f per basic), %d bits/msg, t=%d"
    t.protocol t.environment t.n t.seed t.messages t.basic t.forced (forced_per_basic t)
    t.payload_bits_per_msg t.duration
