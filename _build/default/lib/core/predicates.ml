let new_dep ~tdv ~m_tdv =
  let n = Array.length tdv in
  let rec loop k = k < n && (m_tdv.(k) > tdv.(k) || loop (k + 1)) in
  loop 0

let c1 ~sent_to ~tdv ~m_tdv ~m_causal =
  let n = Array.length tdv in
  let rec some_k j k =
    k < n && ((m_tdv.(k) > tdv.(k) && not m_causal.(k).(j)) || some_k j (k + 1))
  in
  let rec some_j j = j < n && ((sent_to.(j) && some_k j 0) || some_j (j + 1)) in
  some_j 0

let c2 ~pid ~tdv ~m_tdv ~m_simple = m_tdv.(pid) = tdv.(pid) && not m_simple.(pid)

let c2' ~pid ~tdv ~m_tdv = m_tdv.(pid) = tdv.(pid) && new_dep ~tdv ~m_tdv

let c_fdas ~after_first_send ~tdv ~m_tdv = after_first_send && new_dep ~tdv ~m_tdv

let c_fdi ~tdv ~m_tdv = new_dep ~tdv ~m_tdv
