(** Control information piggybacked on application messages.

    Each protocol family piggybacks a different amount of control data;
    the constructors below cover the whole hierarchy studied in the paper:
    nothing (event-pattern protocols), a transitive dependency vector
    (FDI, FDAS), the vector plus the boolean [causal] matrix (the two
    lighter variants of Section 5.1), or the full vector + [simple] array +
    [causal] matrix of the main protocol.

    Payloads are immutable snapshots: the sender deep-copies its state at
    send time, exactly as a real implementation would serialize it. *)

type t =
  | Nothing
  | Tdv of int array
  | Tdv_causal of { tdv : int array; causal : bool array array }
  | Full of { tdv : int array; simple : bool array; causal : bool array array }

val tdv : t -> int array option
(** The piggybacked dependency vector, if any (not copied). *)

val bits : t -> int
(** Size of the payload in bits, counting 32 bits per vector entry and one
    bit per boolean — the overhead metric of Section 5.2. *)

val copy_matrix : bool array array -> bool array array

val pp : Format.formatter -> t -> unit
