(** The output-commit problem (Section 1).

    Before a process releases an output to the outside world (which cannot
    be rolled back), the system must be able to recover to a state that
    still produces this output.  Under RDT, the set of local checkpoints
    that must first be made stable is exactly the minimum consistent
    global checkpoint containing the last local checkpoint preceding the
    output — i.e. the output's recorded dependency vector. *)

type requirement = {
  output_at : Rdt_pattern.Types.ckpt_id;
      (** the checkpoint ending the interval in which the output happens *)
  must_be_stable : Rdt_pattern.Types.ckpt_id list;
      (** checkpoints (one per process) to force to stable storage before
          releasing the output *)
}

val requirement :
  Rdt_pattern.Pattern.t -> pid:Rdt_pattern.Types.pid -> interval:int -> requirement option
(** Requirement for an output performed by [pid] during its checkpoint
    interval [interval].  [None] when no consistent global checkpoint
    covers the output (non-RDT patterns only).

    The checkpoint named by [output_at] is the one {e closing} the
    interval: once it and [must_be_stable] are stable, replaying from the
    recovery line regenerates the output deterministically. *)

val commit_latency_ckpts : Rdt_pattern.Pattern.t -> pid:Rdt_pattern.Types.pid -> interval:int -> int option
(** Number of checkpoints that must still reach stable storage, assuming
    checkpoints become stable in index order and everything strictly below
    the output's dependency vector is already stable — a proxy for the
    output-commit latency studied in the literature. *)
