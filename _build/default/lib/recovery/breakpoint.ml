module Pattern = Rdt_pattern.Pattern
module Types = Rdt_pattern.Types
module Chains = Rdt_pattern.Chains

type t = { target : Types.ckpt_id; line : int array; on_the_fly : bool }

let compute pat target =
  let c = Pattern.ckpt pat target in
  match c.Types.tdv with
  | Some v when Rdt_pattern.Consistency.consistent_global pat v ->
      Some { target; line = Array.copy v; on_the_fly = true }
  | Some _ | None -> (
      match Rdt_pattern.Consistency.min_consistent_containing pat [ target ] with
      | Some line -> Some { target; line; on_the_fly = false }
      | None -> None)

let restore_order pat bp =
  let cks = Array.to_list (Array.mapi (fun i x -> (i, x)) bp.line) in
  (* Sort by causal precedence between the line's checkpoints; ties (and
     concurrent pairs) break on pid for determinism. *)
  List.sort
    (fun a b ->
      if a = b then 0
      else if Chains.causally_precedes pat a b then -1
      else if Chains.causally_precedes pat b a then 1
      else compare a b)
    cks

let pp ppf bp =
  Format.fprintf ppf "breakpoint at %a: {%s}%s" Types.pp_ckpt_id bp.target
    (String.concat "; "
       (Array.to_list (Array.mapi (fun i x -> Printf.sprintf "C(%d,%d)" i x) bp.line)))
    (if bp.on_the_fly then " (on the fly)" else " (recomputed)")
