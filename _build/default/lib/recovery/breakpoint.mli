(** Causal distributed breakpoints (one of the dependability applications
    of Section 1).

    A causal distributed breakpoint for a target local checkpoint [C] is
    the earliest global state that includes [C] together with everything
    [C] causally depends on — i.e. the {e minimum} consistent global
    checkpoint containing [C].  Under RDT it is read directly off the
    transitive dependency vector recorded at [C]; this module also
    cross-checks against the first-principles computation. *)

type t = {
  target : Rdt_pattern.Types.ckpt_id;
  line : int array;  (** checkpoint index per process *)
  on_the_fly : bool;
      (** [true] when the line came from the recorded TDV (O(1)); [false]
          when it had to be recomputed by fixpoint *)
}

val compute : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> t option
(** [None] when no consistent global checkpoint contains the target (can
    happen only without RDT, e.g. a Z-cycle through the target). *)

val restore_order : Rdt_pattern.Pattern.t -> t -> Rdt_pattern.Types.ckpt_id list
(** The breakpoint's checkpoints, sorted so that every checkpoint appears
    after all the checkpoints its process causally depends on — the order
    a debugger would restore them in. *)

val pp : Format.formatter -> t -> unit
