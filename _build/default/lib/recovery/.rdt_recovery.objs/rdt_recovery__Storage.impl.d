lib/recovery/storage.ml: Array List Printf Rdt_pattern
