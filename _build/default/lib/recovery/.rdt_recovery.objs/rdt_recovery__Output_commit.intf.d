lib/recovery/output_commit.mli: Rdt_pattern
