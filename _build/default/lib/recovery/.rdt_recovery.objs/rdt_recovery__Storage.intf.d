lib/recovery/storage.mli: Rdt_pattern
