lib/recovery/output_commit.ml: Array List Rdt_pattern
