lib/recovery/message_log.mli: Rdt_pattern Recovery_line
