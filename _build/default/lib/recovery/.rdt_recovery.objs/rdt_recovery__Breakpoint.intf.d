lib/recovery/breakpoint.mli: Format Rdt_pattern
