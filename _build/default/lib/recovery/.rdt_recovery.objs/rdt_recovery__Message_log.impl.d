lib/recovery/message_log.ml: Array List Printf Rdt_pattern Recovery_line
