lib/recovery/breakpoint.ml: Array Format List Printf Rdt_pattern String
