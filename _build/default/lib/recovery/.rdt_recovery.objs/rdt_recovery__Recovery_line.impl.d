lib/recovery/recovery_line.ml: Array Format List Printf Rdt_pattern String
