lib/recovery/recovery_line.mli: Format Rdt_pattern
