(** Rollback recovery: recovery lines and the domino effect.

    After failures, every process must restart from a local checkpoint so
    that the resulting global checkpoint is consistent.  A failed process
    can restart at best from its last checkpoint on stable storage; the
    {e recovery line} is the {e maximum} consistent global checkpoint at
    or below those per-process bounds — maximising it minimises lost
    work.

    Without coordination the recovery line can cascade arbitrarily far
    back (the domino effect [9]); under RDT the dependencies that force
    rollback are exactly the ones the dependency vectors track, so the
    line is found in one monotone pass and never regresses past the
    minimum consistent global checkpoint of the surviving states. *)

type crash = {
  pid : Rdt_pattern.Types.pid;
  available : int;
      (** index of the last checkpoint of [pid] that survived the crash *)
}

type outcome = {
  line : int array;  (** the recovery line, one checkpoint index per process *)
  rolled_back_ckpts : int array;
      (** per process, how many of its checkpoints the rollback
          discards *)
  lost_events : int array;
      (** per process, how many of its events are undone (those after the
          recovery-line checkpoint) *)
  domino_depth : int;
      (** maximum number of checkpoints a {e surviving} process must
          discard — 0 means failures never cascade *)
}

val max_consistent_bounded : Rdt_pattern.Pattern.t -> int array -> int array
(** [max_consistent_bounded p bounds] is the maximum consistent global
    checkpoint [v] with [v.(i) <= bounds.(i)] for all [i].  Always exists
    (the initial global checkpoint is consistent).
    @raise Invalid_argument on a malformed bounds vector. *)

val recover : Rdt_pattern.Pattern.t -> crash list -> outcome
(** Computes the recovery line when the given processes crash (surviving
    processes are bounded by their last checkpoint).
    @raise Invalid_argument on out-of-range crashes or duplicated pids. *)

val pp_outcome : Format.formatter -> outcome -> unit
