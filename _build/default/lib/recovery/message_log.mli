(** Message logging on top of checkpointing.

    Rolling a system back to a recovery line [L] leaves two classes of
    problematic messages (Elnozahy-Johnson-Wang's survey [5] vocabulary):

    - {e orphans}: sent after [L] but delivered before [L] — these make a
      line inconsistent, and a consistent line has none;
    - {e in-transit} messages: sent before [L] but delivered after [L] —
      after rollback their sends are in the past and their deliveries in
      the undone future, so they must be {e replayed from a log} (or the
      computation deadlocks waiting for them).

    This module computes both sets, the log-truncation point a committed
    recovery line allows, and the replay cost of a crash — the quantities
    a sender-based logging layer needs.  Combined with RDT (the paper's
    Section 1 remark and [4]), logging in-transit messages makes
    non-deterministic computations recoverable as if piecewise
    deterministic. *)

val orphans : Rdt_pattern.Pattern.t -> line:int array -> int list
(** Message ids sent strictly after the line's checkpoint at their sender
    and delivered before (or at) the line's checkpoint at their receiver.
    Empty iff the line is consistent.
    @raise Invalid_argument on a malformed line. *)

val in_transit : Rdt_pattern.Pattern.t -> line:int array -> int list
(** Message ids crossing the line forward: sent before it, delivered
    after it.  These are the messages a logging layer must replay when
    the system restarts from [line]. *)

val collectible_logs : Rdt_pattern.Pattern.t -> line:int array -> int list
(** Message ids whose log entries can be discarded once [line] is
    committed: messages already delivered before the line (they can never
    be in-transit for this or any later line). *)

type replay_cost = {
  replayed_messages : int;  (** in-transit messages to re-inject *)
  reexecuted_events : int;
      (** events between the recovery line and the pre-crash state, summed
          over processes — the computation to redo *)
}

val replay_cost :
  Rdt_pattern.Pattern.t -> crash:Recovery_line.crash list -> replay_cost
(** Cost of recovering from the given crashes via
    {!Recovery_line.recover} plus message replay. *)
