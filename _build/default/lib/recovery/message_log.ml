module Pattern = Rdt_pattern.Pattern
module Types = Rdt_pattern.Types

let check_line pat line =
  if Array.length line <> Pattern.n pat then invalid_arg "Message_log: line length mismatch";
  Array.iteri
    (fun i x ->
      if x < 0 || x > Pattern.last_index pat i then
        invalid_arg (Printf.sprintf "Message_log: C(%d,%d) does not exist" i x))
    line

let select pat ~line ~f =
  check_line pat line;
  let out = ref [] in
  Array.iter (fun (m : Types.message) -> if f m then out := m.Types.id :: !out) (Pattern.messages pat);
  List.rev !out

let orphans pat ~line =
  select pat ~line ~f:(fun m ->
      m.Types.send_interval > line.(m.Types.src) && m.Types.recv_interval <= line.(m.Types.dst))

let in_transit pat ~line =
  select pat ~line ~f:(fun m ->
      m.Types.send_interval <= line.(m.Types.src) && m.Types.recv_interval > line.(m.Types.dst))

let collectible_logs pat ~line =
  select pat ~line ~f:(fun m -> m.Types.recv_interval <= line.(m.Types.dst))

type replay_cost = { replayed_messages : int; reexecuted_events : int }

let replay_cost pat ~crash =
  let outcome = Recovery_line.recover pat crash in
  let line = outcome.Recovery_line.line in
  {
    replayed_messages = List.length (in_transit pat ~line);
    reexecuted_events = Array.fold_left ( + ) 0 outcome.Recovery_line.lost_events;
  }
