module Pattern = Rdt_pattern.Pattern
module Types = Rdt_pattern.Types

type requirement = {
  output_at : Types.ckpt_id;
  must_be_stable : Types.ckpt_id list;
}

let requirement pat ~pid ~interval =
  if interval < 1 || interval > Pattern.last_index pat pid then
    invalid_arg "Output_commit.requirement: no such interval";
  (* The interval I_{pid,interval} is closed by C_{pid,interval}; the
     output depends on everything that checkpoint depends on. *)
  let target = (pid, interval) in
  match Rdt_pattern.Consistency.min_consistent_containing pat [ target ] with
  | None -> None
  | Some line ->
      Some
        {
          output_at = target;
          must_be_stable = Array.to_list (Array.mapi (fun i x -> (i, x)) line);
        }

let commit_latency_ckpts pat ~pid ~interval =
  match requirement pat ~pid ~interval with
  | None -> None
  | Some r -> Some (List.length (List.filter (fun (_, x) -> x > 0) r.must_be_stable))
