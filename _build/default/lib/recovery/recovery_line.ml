module Pattern = Rdt_pattern.Pattern
module Types = Rdt_pattern.Types

type crash = { pid : Types.pid; available : int }

type outcome = {
  line : int array;
  rolled_back_ckpts : int array;
  lost_events : int array;
  domino_depth : int;
}

let max_consistent_bounded pat bounds =
  let n = Pattern.n pat in
  if Array.length bounds <> n then invalid_arg "Recovery_line: bounds length mismatch";
  Array.iteri
    (fun i b ->
      if b < 0 || b > Pattern.last_index pat i then
        invalid_arg (Printf.sprintf "Recovery_line: bound C(%d,%d) does not exist" i b))
    bounds;
  let v = Array.copy bounds in
  let msgs = Pattern.messages pat in
  let changed = ref true in
  (* Lower the receiver side of every orphan; the maximum consistent
     vector below [bounds] is a fixpoint of this monotone operator. *)
  while !changed do
    changed := false;
    Array.iter
      (fun (m : Types.message) ->
        if m.Types.send_interval > v.(m.Types.src) && m.Types.recv_interval <= v.(m.Types.dst)
        then begin
          v.(m.Types.dst) <- m.Types.recv_interval - 1;
          if v.(m.Types.dst) < 0 then
            (* cannot happen: delivery intervals are >= 1 *)
            invalid_arg "Recovery_line: negative rollback";
          changed := true
        end)
      msgs
  done;
  v

let recover pat crashes =
  let n = Pattern.n pat in
  let bounds = Array.init n (fun i -> Pattern.last_index pat i) in
  let crashed = Array.make n false in
  List.iter
    (fun { pid; available } ->
      if pid < 0 || pid >= n then invalid_arg "Recovery_line.recover: pid out of range";
      if crashed.(pid) then invalid_arg "Recovery_line.recover: duplicate crash";
      if available < 0 || available > Pattern.last_index pat pid then
        invalid_arg "Recovery_line.recover: unavailable checkpoint";
      crashed.(pid) <- true;
      bounds.(pid) <- available)
    crashes;
  let line = max_consistent_bounded pat bounds in
  let rolled_back_ckpts = Array.init n (fun i -> bounds.(i) - line.(i)) in
  let lost_events =
    Array.init n (fun i ->
        let cks = Pattern.checkpoints pat i in
        let keep_pos = cks.(line.(i)).Types.pos in
        let upto_pos = cks.(bounds.(i)).Types.pos in
        max 0 (upto_pos - keep_pos))
  in
  let domino_depth =
    let d = ref 0 in
    for i = 0 to n - 1 do
      if not crashed.(i) then d := max !d rolled_back_ckpts.(i)
    done;
    !d
  in
  { line; rolled_back_ckpts; lost_events; domino_depth }

let pp_outcome ppf o =
  let pp_vec ppf v =
    Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int (Array.to_list v)))
  in
  Format.fprintf ppf "line=%a rolled_back=%a lost_events=%a domino=%d" pp_vec o.line pp_vec
    o.rolled_back_ckpts pp_vec o.lost_events o.domino_depth
