(* Tests for rdt_coordinated: the Chandy-Lamport snapshot runtime. *)

module S = Rdt_coordinated.Snapshot
module P = Rdt_pattern.Pattern
module Consistency = Rdt_pattern.Consistency

let check = Alcotest.(check bool)

let run ?(n = 5) ?(seed = 3) ?(messages = 600) ?(period = 400) envname =
  let env = Rdt_workloads.Registry.find_exn envname in
  S.run { (S.default_config env) with S.n; seed; max_messages = messages; initiation_period = period }

let environments = List.map (fun (n, _, _) -> n) Rdt_workloads.Registry.all

let test_snapshots_complete () =
  List.iter
    (fun envname ->
      let r = run envname in
      if r.S.metrics.S.snapshots_completed = 0 then
        Alcotest.failf "%s: no snapshot completed" envname;
      Alcotest.(check int)
        (envname ^ ": snapshot list matches metric")
        r.S.metrics.S.snapshots_completed (List.length r.S.snapshots))
    environments

let test_cuts_consistent () =
  List.iter
    (fun envname ->
      let r = run envname in
      List.iter
        (fun (s : S.snapshot) ->
          if not (Consistency.consistent_global r.S.pattern s.S.cut) then
            Alcotest.failf "%s: snapshot %d inconsistent" envname s.S.id)
        r.S.snapshots)
    environments

let test_channel_state_is_in_transit () =
  (* the channel states recorded by Chandy-Lamport are exactly the
     in-transit messages of the cut, as computed by the (independent)
     message-logging analysis *)
  List.iter
    (fun envname ->
      let r = run envname in
      List.iter
        (fun (s : S.snapshot) ->
          let recorded = List.sort compare s.S.channel_state in
          let analysed =
            List.sort compare (Rdt_recovery.Message_log.in_transit r.S.pattern ~line:s.S.cut)
          in
          if recorded <> analysed then
            Alcotest.failf "%s: snapshot %d channel state mismatch" envname s.S.id)
        r.S.snapshots)
    environments

let test_marker_cost () =
  let r = run "random" in
  Alcotest.(check int) "n(n-1) markers per snapshot"
    (r.S.metrics.S.snapshots_completed * S.markers_per_snapshot ~n:5)
    r.S.metrics.S.marker_messages

let test_one_checkpoint_per_snapshot () =
  let r = run "random" in
  let pat = r.S.pattern in
  (* each process has: initial + one per snapshot + final *)
  for i = 0 to P.n pat - 1 do
    let non_final =
      Array.fold_left
        (fun acc (c : Rdt_pattern.Types.ckpt) ->
          match c.kind with
          | Rdt_pattern.Types.Basic -> acc + 1
          | Rdt_pattern.Types.Initial | Rdt_pattern.Types.Forced | Rdt_pattern.Types.Final -> acc)
        0 (P.checkpoints pat i)
    in
    Alcotest.(check int)
      (Printf.sprintf "process %d checkpoints" i)
      r.S.metrics.S.snapshots_completed non_final
  done

let test_latency_ordering () =
  let r = run "random" in
  List.iter
    (fun (s : S.snapshot) ->
      check "completion after initiation" true (s.S.completed_at > s.S.initiated_at))
    r.S.snapshots;
  (* snapshots are sequential: each starts after the previous completed *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        check "no overlap" true (b.S.initiated_at >= a.S.completed_at);
        pairs rest
    | [ _ ] | [] -> ()
  in
  pairs r.S.snapshots

let test_deterministic () =
  let a = run "group" and b = run "group" in
  Alcotest.(check int) "same snapshot count" a.S.metrics.S.snapshots_completed
    b.S.metrics.S.snapshots_completed;
  check "same cuts" true
    (List.map (fun s -> s.S.cut) a.S.snapshots = List.map (fun s -> s.S.cut) b.S.snapshots)

let test_budget_respected () =
  let r = run ~messages:123 "random" in
  Alcotest.(check int) "app messages" 123 r.S.metrics.S.app_messages;
  check "pattern valid" true (Result.is_ok (P.validate r.S.pattern))

let test_validation () =
  let env = Rdt_workloads.Registry.find_exn "random" in
  Alcotest.check_raises "n too small" (Invalid_argument "Snapshot: n must be >= 2") (fun () ->
      ignore (S.run { (S.default_config env) with S.n = 1 }));
  Alcotest.check_raises "bad period"
    (Invalid_argument "Snapshot: initiation_period must be >= 1") (fun () ->
      ignore (S.run { (S.default_config env) with S.initiation_period = 0 }))

(* The contrast with CIC: coordinated snapshots also make every recorded
   checkpoint a member of a consistent global checkpoint, but they pay in
   control messages, which CIC never sends. *)
let test_no_useless_checkpoints () =
  let r = run "client-server" in
  let pat = r.S.pattern in
  List.iter
    (fun (s : S.snapshot) ->
      Array.iteri
        (fun i x ->
          if Consistency.useless pat (i, x) then
            Alcotest.failf "snapshot checkpoint C(%d,%d) useless" i x)
        s.S.cut)
    r.S.snapshots

(* ------------------------------------------------------------------ *)
(* Koo-Toueg                                                           *)
(* ------------------------------------------------------------------ *)

module KT = Rdt_coordinated.Koo_toueg

let run_kt ?(n = 5) ?(seed = 3) ?(messages = 600) envname =
  let env = Rdt_workloads.Registry.find_exn envname in
  KT.run { (KT.default_config env) with KT.n; seed; max_messages = messages }

let test_kt_rounds_commit () =
  List.iter
    (fun envname ->
      let r = run_kt envname in
      if r.KT.metrics.KT.rounds_committed = 0 then Alcotest.failf "%s: no round" envname;
      Alcotest.(check int)
        (envname ^ ": rounds recorded")
        r.KT.metrics.KT.rounds_committed (List.length r.KT.rounds))
    environments

let test_kt_cuts_consistent () =
  List.iter
    (fun envname ->
      let r = run_kt envname in
      List.iter
        (fun (rd : KT.round) ->
          if not (Consistency.consistent_global r.KT.pattern rd.KT.cut) then
            Alcotest.failf "%s: round %d cut inconsistent" envname rd.KT.id)
        r.KT.rounds)
    environments

let test_kt_partial_participation () =
  (* on the client-server chain, dependency does not always span all
     servers: some round should involve fewer than n participants *)
  let r = run_kt ~n:8 ~messages:900 "client-server" in
  check "some partial round" true
    (List.exists (fun (rd : KT.round) -> List.length rd.KT.participants < 8) r.KT.rounds);
  (* participants are exactly the processes whose checkpoint count grew *)
  List.iter
    (fun (rd : KT.round) ->
      check "initiator participates" true (List.mem 0 rd.KT.participants))
    r.KT.rounds

let test_kt_deterministic () =
  let a = run_kt "random" and b = run_kt "random" in
  check "same rounds" true
    (List.map (fun r -> r.KT.cut) a.KT.rounds = List.map (fun r -> r.KT.cut) b.KT.rounds)

let test_kt_control_and_checkpoints () =
  let r = run_kt "random" in
  check "control messages counted" true (r.KT.metrics.KT.control_messages > 0);
  (* total checkpoints = sum over rounds of participants *)
  let by_rounds =
    List.fold_left (fun a (rd : KT.round) -> a + List.length rd.KT.participants) 0 r.KT.rounds
  in
  Alcotest.(check int) "checkpoints = participants" by_rounds r.KT.metrics.KT.checkpoints_taken;
  check "pattern valid" true (Result.is_ok (P.validate r.KT.pattern))

let test_kt_validation () =
  let env = Rdt_workloads.Registry.find_exn "random" in
  Alcotest.check_raises "n" (Invalid_argument "Koo_toueg: n must be >= 2") (fun () ->
      ignore (KT.run { (KT.default_config env) with KT.n = 1 }))

let () =
  Alcotest.run "rdt_coordinated"
    [
      ( "chandy-lamport",
        [
          Alcotest.test_case "snapshots complete" `Quick test_snapshots_complete;
          Alcotest.test_case "cuts consistent" `Quick test_cuts_consistent;
          Alcotest.test_case "channel state = in-transit" `Quick test_channel_state_is_in_transit;
          Alcotest.test_case "marker cost" `Quick test_marker_cost;
          Alcotest.test_case "one checkpoint per snapshot" `Quick test_one_checkpoint_per_snapshot;
          Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "no useless checkpoints" `Quick test_no_useless_checkpoints;
        ] );
      ( "koo-toueg",
        [
          Alcotest.test_case "rounds commit" `Quick test_kt_rounds_commit;
          Alcotest.test_case "cuts consistent" `Quick test_kt_cuts_consistent;
          Alcotest.test_case "partial participation" `Quick test_kt_partial_participation;
          Alcotest.test_case "deterministic" `Quick test_kt_deterministic;
          Alcotest.test_case "control and checkpoints" `Quick test_kt_control_and_checkpoints;
          Alcotest.test_case "validation" `Quick test_kt_validation;
        ] );
    ]
