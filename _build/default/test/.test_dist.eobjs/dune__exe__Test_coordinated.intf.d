test/test_coordinated.mli:
