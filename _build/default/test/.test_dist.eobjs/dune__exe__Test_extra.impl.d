test/test_extra.ml: Alcotest Array Format List QCheck QCheck_alcotest Rdt_core Rdt_dist Rdt_harness Rdt_pattern Rdt_recovery Rdt_test_helpers Rdt_workloads Result String
