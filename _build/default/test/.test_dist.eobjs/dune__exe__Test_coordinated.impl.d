test/test_coordinated.ml: Alcotest Array List Printf Rdt_coordinated Rdt_pattern Rdt_recovery Rdt_workloads Result
