test/test_pattern.ml: Alcotest Array List QCheck QCheck_alcotest Rdt_core Rdt_pattern Rdt_test_helpers Result String
