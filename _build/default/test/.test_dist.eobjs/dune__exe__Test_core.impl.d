test/test_core.ml: Alcotest Array Format List QCheck QCheck_alcotest Rdt_core Rdt_pattern Rdt_test_helpers Rdt_workloads
