test/test_failures.ml: Alcotest Array List QCheck QCheck_alcotest Rdt_core Rdt_failures Rdt_pattern Rdt_workloads Result
