test/test_recovery.ml: Alcotest Array Fun List QCheck QCheck_alcotest Rdt_core Rdt_pattern Rdt_recovery Rdt_test_helpers Rdt_workloads Seq
