test/test_harness.ml: Alcotest List QCheck QCheck_alcotest Rdt_core Rdt_harness String
