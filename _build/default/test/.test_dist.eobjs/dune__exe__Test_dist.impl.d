test/test_dist.ml: Alcotest Array List QCheck QCheck_alcotest Rdt_dist Result
