test/test_workloads.ml: Alcotest List Rdt_core Rdt_dist Rdt_pattern Rdt_workloads Result
