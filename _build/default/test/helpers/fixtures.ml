module P = Rdt_pattern.Pattern

type fig1 = {
  pattern : P.t;
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
  m5 : int;
  m6 : int;
  m7 : int;
  i : int;
  j : int;
  k : int;
}

let figure1 () =
  let i = 0 and j = 1 and k = 2 in
  let b = P.Builder.create ~n:3 in
  (* I_{i,1}: send m1 *)
  let m1 = P.Builder.send b ~src:i ~dst:j in
  ignore (P.Builder.checkpoint b i) (* C_{i,1} *);
  (* I_{j,1}: recv m1, send m2, recv m3  (send m2 precedes recv m3: the
     junction of [m3; m2] is non-causal) *)
  P.Builder.recv b m1;
  let m2 = P.Builder.send b ~src:j ~dst:i in
  (* I_{k,1}: send m3 *)
  let m3 = P.Builder.send b ~src:k ~dst:j in
  ignore (P.Builder.checkpoint b k) (* C_{k,1} *);
  P.Builder.recv b m3;
  ignore (P.Builder.checkpoint b j) (* C_{j,1} *);
  (* I_{i,2}: recv m2 *)
  P.Builder.recv b m2;
  ignore (P.Builder.checkpoint b i) (* C_{i,2} *);
  (* I_{j,2}: send m4, recv m5, send m6 ([m5; m4] non-causal, [m5; m6]
     causal sibling) *)
  let m4 = P.Builder.send b ~src:j ~dst:k in
  (* I_{i,3}: send m5 *)
  let m5 = P.Builder.send b ~src:i ~dst:j in
  ignore (P.Builder.checkpoint b i) (* C_{i,3} *);
  P.Builder.recv b m5;
  let m6 = P.Builder.send b ~src:j ~dst:k in
  ignore (P.Builder.checkpoint b j) (* C_{j,2} *);
  (* I_{k,2}: recv m4, recv m6, send m7 ([m4; m7] causal) *)
  P.Builder.recv b m4;
  P.Builder.recv b m6;
  let m7 = P.Builder.send b ~src:k ~dst:j in
  ignore (P.Builder.checkpoint b k) (* C_{k,2} *);
  (* I_{j,3}: recv m7 *)
  P.Builder.recv b m7;
  ignore (P.Builder.checkpoint b j) (* C_{j,3} *);
  ignore (P.Builder.checkpoint b k) (* C_{k,3} *);
  let pattern = P.Builder.finish ~final_checkpoints:true b in
  { pattern; m1; m2; m3; m4; m5; m6; m7; i; j; k }

let two_crossing () =
  let b = P.Builder.create ~n:2 in
  let ma = P.Builder.send b ~src:0 ~dst:1 in
  let mb = P.Builder.send b ~src:1 ~dst:0 in
  P.Builder.recv b ma;
  P.Builder.recv b mb;
  ignore (P.Builder.checkpoint b 0) (* C_{0,1} *);
  ignore (P.Builder.checkpoint b 1) (* C_{1,1} *);
  P.Builder.finish ~final_checkpoints:true b

(* The textbook Z-cycle: m2 is sent by P_0 in I_{0,1} and delivered to P_1
   before C_{1,1}; m1 is sent by P_1 after C_{1,1} and delivered to P_0 in
   I_{0,1}, *after* the send of m2.  The chain [m1; m2] leaves C_{1,1} and
   returns before it. *)
let zcycle_fixture () =
  let b = P.Builder.create ~n:2 in
  let m2 = P.Builder.send b ~src:0 ~dst:1 in
  P.Builder.recv b m2;
  ignore (P.Builder.checkpoint b 1) (* C_{1,1} *);
  let m1 = P.Builder.send b ~src:1 ~dst:0 in
  P.Builder.recv b m1;
  ignore (P.Builder.checkpoint b 0) (* C_{0,1} *);
  P.Builder.finish ~final_checkpoints:true b

(* Found by random search (generator seed 276), hand-encoded: every
   non-causal *pair* of messages is causally doubled, yet a longer
   non-causal chain is not — RDT fails.  Demonstrates that the doubling
   characterization needs the full causal prefix (CM-paths), not just
   adjacent pairs. *)
let pairwise_insufficient () =
  let b = P.Builder.create ~n:4 in
  let m1 = P.Builder.send b ~src:0 ~dst:3 in
  let m0 = P.Builder.send b ~src:1 ~dst:2 in
  ignore (P.Builder.checkpoint b 2) (* C_{2,1} *);
  P.Builder.recv b m0;
  let m2 = P.Builder.send b ~src:1 ~dst:3 in
  P.Builder.recv b m1;
  P.Builder.recv b m2;
  let m3 = P.Builder.send b ~src:3 ~dst:0 in
  P.Builder.recv b m3;
  let m4 = P.Builder.send b ~src:2 ~dst:1 in
  P.Builder.recv b m4;
  let m5 = P.Builder.send b ~src:0 ~dst:3 in
  P.Builder.recv b m5;
  let m6 = P.Builder.send b ~src:3 ~dst:0 in
  let m7 = P.Builder.send b ~src:1 ~dst:3 in
  P.Builder.recv b m6;
  P.Builder.recv b m7;
  P.Builder.finish ~final_checkpoints:true b

let causal_ping_pong () =
  let b = P.Builder.create ~n:2 in
  let rec exchange rounds =
    if rounds > 0 then begin
      let req = P.Builder.send b ~src:0 ~dst:1 in
      P.Builder.recv b req;
      let rep = P.Builder.send b ~src:1 ~dst:0 in
      P.Builder.recv b rep;
      ignore (P.Builder.checkpoint b 0);
      ignore (P.Builder.checkpoint b 1);
      exchange (rounds - 1)
    end
  in
  exchange 3;
  P.Builder.finish ~final_checkpoints:true b
