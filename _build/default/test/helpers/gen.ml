module P = Rdt_pattern.Pattern
module Rng = Rdt_dist.Rng

let build ~n ~steps ~rng =
  let b = P.Builder.create ~n in
  let pending = ref [] in
  let npending = ref 0 in
  let pick_pending () =
    let k = Rng.int rng !npending in
    let h = List.nth !pending k in
    pending := List.filteri (fun i _ -> i <> k) !pending;
    decr npending;
    h
  in
  for _ = 1 to steps do
    let dice = Rng.float rng 1.0 in
    if dice < 0.40 || (!npending = 0 && dice < 0.80) then begin
      let src = Rng.int rng n in
      let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
      pending := P.Builder.send b ~src ~dst :: !pending;
      incr npending
    end
    else if dice < 0.80 then P.Builder.recv b (pick_pending ())
    else ignore (P.Builder.checkpoint b (Rng.int rng n))
  done;
  while !npending > 0 do
    P.Builder.recv b (pick_pending ())
  done;
  P.Builder.finish ~final_checkpoints:true b

let random_pattern ?n ?steps ~seed () =
  let rng = Rng.create seed in
  let n = match n with Some n -> n | None -> 2 + Rng.int rng 4 in
  let steps = match steps with Some s -> s | None -> 10 + Rng.int rng 71 in
  build ~n ~steps ~rng

let print_pattern p = Format.asprintf "%a" P.pp_summary p

let pattern_arbitrary =
  QCheck.make ~print:print_pattern
    (QCheck.Gen.map (fun seed -> random_pattern ~seed ()) QCheck.Gen.nat)

let small_pattern_arbitrary =
  QCheck.make ~print:print_pattern
    (QCheck.Gen.map
       (fun seed ->
         let rng = Rng.create (seed * 7 + 1) in
         let n = 2 + Rng.int rng 2 in
         build ~n ~steps:(8 + Rng.int rng 13) ~rng)
       QCheck.Gen.nat)
