(** Random checkpoint & communication patterns for property-based tests.

    The generator drives {!Rdt_pattern.Pattern.Builder} directly with a
    random interleaving of sends, deliveries and checkpoints — it is not
    constrained by any protocol, so the patterns freely contain non-causal
    chains, Z-cycles and RDT violations.  Everything derives
    deterministically from the seed. *)

val random_pattern : ?n:int -> ?steps:int -> seed:int -> unit -> Rdt_pattern.Pattern.t
(** [n] defaults to a seed-derived value in [\[2, 5\]]; [steps] (builder
    operations before draining) defaults to a seed-derived value in
    [\[10, 80\]]. *)

val pattern_arbitrary : Rdt_pattern.Pattern.t QCheck.arbitrary
(** QCheck arbitrary wrapping {!random_pattern} (prints the pattern
    summary on failure). *)

val small_pattern_arbitrary : Rdt_pattern.Pattern.t QCheck.arbitrary
(** Patterns small enough for exhaustive (exponential) reference
    computations: [n <= 3], few checkpoints per process. *)
