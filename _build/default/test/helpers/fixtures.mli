(** Hand-built checkpoint & communication patterns used across the test
    suite, starting with Figure 1 of the paper. *)

type fig1 = {
  pattern : Rdt_pattern.Pattern.t;
  (* message ids, named as in the paper *)
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
  m5 : int;
  m6 : int;
  m7 : int;
  i : int;  (** pid of P_i (= 0) *)
  j : int;  (** pid of P_j (= 1) *)
  k : int;  (** pid of P_k (= 2) *)
}

val figure1 : unit -> fig1
(** The checkpoint and communication pattern of Figure 1.a:

    - [\[m3; m2\]] is a (non-causal) message chain from [C_{k,1}] to
      [C_{i,2}];
    - [\[m5; m4\]] and [\[m5; m6\]] are chains realising [C_{i,3} ~>
      C_{k,2}], the latter causal (a causal sibling of the former);
    - [\[m3; m2; m5; m4; m7\]] is a non-causal chain, concatenation of the
      causal chains [\[m3\]], [\[m2; m5\]], [\[m4; m7\]];
    - the pair [(C_{k,1}, C_{j,1})] is consistent; [(C_{i,2}, C_{j,2})] is
      not (orphan [m5]);
    - the pattern violates RDT: the R-path [C_{k,1} ~> C_{i,2}] has no
      causal sibling. *)

val two_crossing : unit -> Rdt_pattern.Pattern.t
(** Two processes exchanging crossing messages within their first
    intervals, yielding an R-cycle between [C_{0,1}] and [C_{1,1}] — a
    benign cycle: the pair is nevertheless consistent (crossing messages
    create mutual R-edges but no orphan). *)

val zcycle_fixture : unit -> Rdt_pattern.Pattern.t
(** A genuine Z-cycle on [C_{1,1}]: a chain leaves after [C_{1,1}] and
    zigzags back before it, making that checkpoint useless (member of no
    consistent global checkpoint). *)

val pairwise_insufficient : unit -> Rdt_pattern.Pattern.t
(** A 4-process, 8-message pattern in which every non-causal {e pair} of
    messages has a causal sibling, yet RDT fails: the hidden dependency
    is carried only by a longer non-causal chain.  Pins the fact that
    pairwise doubling does not characterise RDT (the CM-path form
    does). *)

val causal_ping_pong : unit -> Rdt_pattern.Pattern.t
(** A small RDT-satisfying pattern: strictly alternating request/reply
    between two processes with checkpoints only between exchanges. *)
