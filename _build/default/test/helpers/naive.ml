module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types

let rgraph_edges pat =
  let edges = ref [] in
  for i = 0 to P.n pat - 1 do
    for x = 0 to P.last_index pat i - 1 do
      edges := ((i, x), (i, x + 1)) :: !edges
    done
  done;
  Array.iter
    (fun (m : T.message) ->
      edges := ((m.src, m.send_interval), (m.dst, m.recv_interval)) :: !edges)
    (P.messages pat);
  List.sort_uniq compare !edges

let reaches pat a b =
  let edges = rgraph_edges pat in
  let visited = Hashtbl.create 97 in
  let rec dfs v =
    v = b
    || (not (Hashtbl.mem visited v))
       && begin
            Hashtbl.add visited v ();
            List.exists (fun (u, w) -> u = v && dfs w) edges
          end
  in
  dfs a

(* Explicit message-graph DFS. [edge m m'] decides whether the chain may
   continue from message [m] with message [m']. *)
let message_dfs pat ~start ~accept ~edge =
  let msgs = P.messages pat in
  let nm = Array.length msgs in
  let visited = Array.make nm false in
  let rec dfs id =
    accept msgs.(id)
    || (not visited.(id))
       && begin
            visited.(id) <- true;
            let found = ref false in
            for id' = 0 to nm - 1 do
              if (not !found) && edge msgs.(id) msgs.(id') then found := dfs id'
            done;
            !found
          end
  in
  let found = ref false in
  for id = 0 to nm - 1 do
    if (not !found) && start msgs.(id) then found := dfs id
  done;
  !found

let zigzag pat (i, x) (j, y) =
  message_dfs pat
    ~start:(fun m -> m.T.src = i && m.T.send_interval >= x + 1)
    ~accept:(fun m -> m.T.dst = j && m.T.recv_interval <= y)
    ~edge:(fun m m' -> m'.T.src = m.T.dst && m.T.recv_interval <= m'.T.send_interval)

let causal_chain pat ~from_pos_after ~src (j, y) =
  message_dfs pat
    ~start:(fun m -> m.T.src = src && m.T.send_pos > from_pos_after)
    ~accept:(fun m -> m.T.dst = j && m.T.recv_interval <= y)
    ~edge:(fun m m' -> m'.T.src = m.T.dst && m.T.recv_pos < m'.T.send_pos)

let trackable pat (i, x) (j, y) =
  if i = j then x <= y
  else if x = 0 then true
  else
    let pos = (P.checkpoints pat i).(x - 1).T.pos in
    causal_chain pat ~from_pos_after:pos ~src:i (j, y)

let consistent_global pat v =
  let ok = ref true in
  Array.iter
    (fun (m : T.message) ->
      if m.T.send_interval > v.(m.T.src) && m.T.recv_interval <= v.(m.T.dst) then ok := false)
    (P.messages pat);
  !ok

let all_global_checkpoints pat =
  let n = P.n pat in
  let limits = Array.init n (fun i -> P.last_index pat i) in
  let rec go i acc =
    if i = n then [ Array.of_list (List.rev acc) ]
    else List.concat_map (fun x -> go (i + 1) (x :: acc)) (List.init (limits.(i) + 1) Fun.id)
  in
  List.to_seq (go 0 [])

let candidates pat (i, x) =
  Seq.filter
    (fun v -> v.(i) = x && consistent_global pat v)
    (all_global_checkpoints pat)

let fold_componentwise f pat c =
  match List.of_seq (candidates pat c) with
  | [] -> None
  | first :: rest ->
      let acc = Array.copy first in
      List.iter (fun v -> Array.iteri (fun k y -> acc.(k) <- f acc.(k) y) v) rest;
      (* lattice property: the fold must itself be consistent *)
      assert (consistent_global pat acc);
      Some acc

let min_gcp pat c = fold_componentwise min pat c

let max_gcp pat c = fold_componentwise max pat c
