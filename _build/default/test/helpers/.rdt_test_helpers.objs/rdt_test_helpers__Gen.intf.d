test/helpers/gen.mli: QCheck Rdt_pattern
