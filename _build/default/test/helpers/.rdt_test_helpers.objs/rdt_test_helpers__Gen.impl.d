test/helpers/gen.ml: Format List QCheck Rdt_dist Rdt_pattern
