test/helpers/fixtures.mli: Rdt_pattern
