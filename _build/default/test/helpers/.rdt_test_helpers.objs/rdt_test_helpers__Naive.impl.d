test/helpers/naive.ml: Array Fun Hashtbl List Rdt_pattern Seq
