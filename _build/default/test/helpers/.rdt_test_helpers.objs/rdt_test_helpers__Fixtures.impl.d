test/helpers/fixtures.ml: Rdt_pattern
