test/helpers/naive.mli: Rdt_pattern Seq
