(** Naive reference implementations of the pattern-theoretic relations,
    written directly from the paper's definitions with no attention to
    complexity.  The test suite checks the optimised library code against
    these on randomly generated patterns. *)

val rgraph_edges :
  Rdt_pattern.Pattern.t -> (Rdt_pattern.Types.ckpt_id * Rdt_pattern.Types.ckpt_id) list
(** All R-graph edges, from Definition (Section 3.1), deduplicated. *)

val reaches :
  Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> Rdt_pattern.Types.ckpt_id -> bool
(** Reflexive-transitive closure of {!rgraph_edges}, by plain DFS. *)

val zigzag :
  Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> Rdt_pattern.Types.ckpt_id -> bool
(** Netzer-Xu zigzag, by DFS over the explicit message graph
    (edge [m -> m'] iff [dst m = src m'] and
    [recv_interval m <= send_interval m']). *)

val causal_chain :
  Rdt_pattern.Pattern.t -> from_pos_after:int -> src:int -> Rdt_pattern.Types.ckpt_id -> bool
(** Is there a causal message chain whose first message is sent by [src]
    at a position [> from_pos_after], delivered to the target process in
    an interval [<= y]?  DFS over the causal message graph (edge iff
    [recv_pos m < send_pos m'] on the same process). *)

val trackable :
  Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> Rdt_pattern.Types.ckpt_id -> bool
(** Reference for {!Rdt_pattern.Chains.trackable} /
    {!Rdt_pattern.Tdv.trackable}. *)

val consistent_global : Rdt_pattern.Pattern.t -> int array -> bool
(** Reference orphan check, directly from Definition 2.2. *)

val all_global_checkpoints : Rdt_pattern.Pattern.t -> int array Seq.t
(** Every index vector (exponential; small patterns only). *)

val min_gcp : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> int array option
(** Exhaustive minimum consistent global checkpoint containing the
    checkpoint; also asserts the lattice (min-closure) property along the
    way.  Small patterns only. *)

val max_gcp : Rdt_pattern.Pattern.t -> Rdt_pattern.Types.ckpt_id -> int array option
