(* Tests for the rdt_dist substrate: PRNG, heap, event queue, logical
   clocks, channel models. *)

module Rng = Rdt_dist.Rng
module Heap = Rdt_dist.Heap
module Event_queue = Rdt_dist.Event_queue
module Vclock = Rdt_dist.Vclock
module Lamport = Rdt_dist.Lamport
module Channel = Rdt_dist.Channel

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check "different seeds diverge" true !differs

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* the split stream must not equal the parent's continuation *)
  let same = ref true in
  for _ = 1 to 20 do
    if Rng.bits64 a <> Rng.bits64 b then same := false
  done;
  check "split stream differs" false !same

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    check "0 <= v < 7" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_uniformish () =
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 8 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    counts

let test_rng_int_in () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    check "in [-3,3]" true (v >= -3 && v <= 3)
  done;
  Alcotest.(check int) "degenerate range" 5 (Rng.int_in rng 5 5)

let test_rng_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    check "p=0 never" false (Rng.bernoulli rng 0.0);
    check "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 19 in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  check "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 23 in
  let total = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Rng.exponential_int rng ~mean:40 in
    check "positive" true (v >= 1);
    total := !total + v
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check "mean near 40" true (abs_float (mean -. 40.0) < 3.0)

let test_rng_geometric () =
  let rng = Rng.create 29 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng 1.0);
  let total = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    total := !total + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !total /. float_of_int trials in
  (* mean of geometric(0.5) counting failures = 1.0 *)
  check "mean near 1.0" true (abs_float (mean -. 1.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_pick () =
  let rng = Rng.create 37 in
  for _ = 1 to 100 do
    let v = Rng.pick rng [| 5; 6; 7 |] in
    check "member" true (List.mem v [ 5; 6; 7 ])
  done

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  check "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.add h 3;
  Heap.add h 1;
  Heap.add h 2;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  check "empty again" true (Heap.is_empty h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let heap_sorts =
  QCheck.Test.make ~name:"heap sorts any int list" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 1; 2; 3 ];
  Heap.clear h;
  check "cleared" true (Heap.is_empty h);
  Heap.add h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:30 "c";
  Event_queue.schedule q ~time:10 "a";
  Event_queue.schedule q ~time:20 "b";
  Alcotest.(check (option (pair int string))) "a" (Some (10, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "b" (Some (20, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "c" (Some (30, "c")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Event_queue.pop q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.schedule q ~time:5 i
  done;
  for i = 0 to 99 do
    match Event_queue.pop q with
    | Some (5, v) -> Alcotest.(check int) "insertion order on ties" i v
    | _ -> Alcotest.fail "wrong pop"
  done

let test_queue_negative_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_queue.schedule: negative time") (fun () ->
      Event_queue.schedule q ~time:(-1) ())

let test_queue_peek_time () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty" None (Event_queue.peek_time q);
  Event_queue.schedule q ~time:7 ();
  Alcotest.(check (option int)) "peek" (Some 7) (Event_queue.peek_time q);
  Alcotest.(check int) "length" 1 (Event_queue.length q)

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

let test_vclock_basics () =
  let v = Vclock.create ~n:3 in
  Alcotest.(check int) "size" 3 (Vclock.size v);
  Vclock.incr v 1;
  Vclock.incr v 1;
  Alcotest.(check int) "incr" 2 (Vclock.get v 1);
  Vclock.set v 0 5;
  Alcotest.(check int) "set" 5 (Vclock.get v 0)

let test_vclock_merge () =
  let a = Vclock.of_array [| 1; 5; 0 |] and b = Vclock.of_array [| 3; 2; 0 |] in
  Vclock.merge a b;
  Alcotest.(check (array int)) "componentwise max" [| 3; 5; 0 |] (Vclock.to_array a)

let test_vclock_orders () =
  let a = Vclock.of_array [| 1; 2 |] in
  let b = Vclock.of_array [| 2; 2 |] in
  let c = Vclock.of_array [| 0; 3 |] in
  check "a <= b" true (Vclock.leq a b);
  check "a < b" true (Vclock.lt a b);
  check "b < b false" false (Vclock.lt b b);
  check "concurrent a c" true (Vclock.concurrent a c);
  check "not concurrent a b" false (Vclock.concurrent a b)

let vclock_lattice =
  QCheck.Test.make ~name:"vclock merge is least upper bound" ~count:300
    QCheck.(pair (array_of_size (QCheck.Gen.return 4) (0 -- 10)) (array_of_size (QCheck.Gen.return 4) (0 -- 10)))
    (fun (xs, ys) ->
      let a = Vclock.of_array xs and b = Vclock.of_array ys in
      let m = Vclock.copy a in
      Vclock.merge m b;
      Vclock.leq a m && Vclock.leq b m
      && Array.to_list (Vclock.to_array m) = List.map2 max (Array.to_list xs) (Array.to_list ys))

let test_lamport () =
  let c = Lamport.create () in
  Alcotest.(check int) "initial" 0 (Lamport.now c);
  Alcotest.(check int) "tick" 1 (Lamport.tick c);
  Alcotest.(check int) "observe bigger" 11 (Lamport.observe c 10);
  Alcotest.(check int) "observe smaller" 12 (Lamport.observe c 3)

(* ------------------------------------------------------------------ *)
(* Channels                                                            *)
(* ------------------------------------------------------------------ *)

let test_channel_bounds () =
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    let d = Channel.sample rng (Channel.Uniform (5, 10)) in
    check "uniform in range" true (d >= 5 && d <= 10)
  done;
  for _ = 1 to 100 do
    Alcotest.(check int) "fixed" 4 (Channel.sample rng (Channel.Fixed 4))
  done;
  for _ = 1 to 1000 do
    let d = Channel.sample rng (Channel.Bimodal { fast = 2; slow = 50; slow_prob = 0.5 }) in
    check "bimodal one of" true (d = 2 || d = 50)
  done

let test_channel_validate () =
  check "ok uniform" true (Channel.validate (Channel.Uniform (1, 5)) = Ok ());
  check "bad uniform" true (Result.is_error (Channel.validate (Channel.Uniform (5, 1))));
  check "bad fixed" true (Result.is_error (Channel.validate (Channel.Fixed 0)));
  check "bad bimodal" true
    (Result.is_error
       (Channel.validate (Channel.Bimodal { fast = 5; slow = 2; slow_prob = 0.5 })))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rdt_dist"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform-ish" `Quick test_rng_int_uniformish;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          q heap_sorts;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "negative time" `Quick test_queue_negative_time;
          Alcotest.test_case "peek/length" `Quick test_queue_peek_time;
        ] );
      ( "clocks",
        [
          Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
          Alcotest.test_case "vclock merge" `Quick test_vclock_merge;
          Alcotest.test_case "vclock orders" `Quick test_vclock_orders;
          q vclock_lattice;
          Alcotest.test_case "lamport" `Quick test_lamport;
        ] );
      ( "channel",
        [
          Alcotest.test_case "bounds" `Quick test_channel_bounds;
          Alcotest.test_case "validate" `Quick test_channel_validate;
        ] );
    ]
