(* Tests for rdt_harness: statistics, tables, experiment plumbing, and a
   smoke-level check that the figure reproductions have the paper's
   shape. *)

module Stats = Rdt_harness.Stats
module Table = Rdt_harness.Table
module Experiment = Rdt_harness.Experiment
module Experiments = Rdt_harness.Experiments

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  checkf "mean" 0.0 (Stats.mean s);
  checkf "variance" 0.0 (Stats.variance s);
  Alcotest.check_raises "min" (Invalid_argument "Stats.min: empty") (fun () ->
      ignore (Stats.min s))

let test_stats_known_values () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "variance (unbiased)" (32.0 /. 7.0) (Stats.variance s);
  checkf "min" 2.0 (Stats.min s);
  checkf "max" 9.0 (Stats.max s)

let test_stats_single () =
  let s = Stats.of_list [ 3.5 ] in
  checkf "mean" 3.5 (Stats.mean s);
  checkf "variance" 0.0 (Stats.variance s);
  checkf "ci" 0.0 (Stats.ci95_half_width s)

let stats_matches_direct =
  QCheck.Test.make ~name:"welford matches direct mean/variance" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 40) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      abs_float (Stats.mean s -. mean) < 1e-6
      && abs_float (Stats.variance s -. var) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "23456" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "5 lines (header, rule, row, rule, row)" 5 (List.length lines);
  (* all lines same width *)
  match lines with
  | first :: rest ->
      List.iter
        (fun l -> Alcotest.(check int) "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no output"

let test_table_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "1.250" (Table.cell_f 1.25);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125)

(* ------------------------------------------------------------------ *)
(* Experiment plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_workload_lookup () =
  let w = Experiment.workload ~n:4 "random" in
  Alcotest.(check int) "n" 4 w.Experiment.n;
  Alcotest.check_raises "unknown env"
    (Invalid_argument
       "unknown environment \"nope\" (valid: random, group, client-server, ring, prodcons, \
        master-worker, stencil)") (fun () -> ignore (Experiment.workload "nope"))

let test_run_once_deterministic () =
  let w = Experiment.workload ~n:4 ~max_messages:200 "random" in
  let p = Rdt_core.Registry.find_exn "bhmr" in
  let a = Experiment.run_once w p ~seed:3 and b = Experiment.run_once w p ~seed:3 in
  Alcotest.(check int) "same forced" a.metrics.Rdt_core.Metrics.forced
    b.metrics.Rdt_core.Metrics.forced;
  check "rdt verified" true (Experiment.verify_rdt a)

let test_aggregate_counts () =
  let w = Experiment.workload ~n:4 ~max_messages:150 "random" in
  let p = Rdt_core.Registry.find_exn "fdas" in
  let agg = Experiment.aggregate w p ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "three runs" 3 (Stats.count agg.Experiment.forced);
  checkf "messages fixed" 150.0 (Stats.mean agg.Experiment.messages)

let test_ratio_pairing () =
  let w = Experiment.workload ~n:4 ~max_messages:300 "client-server" in
  let bhmr = Rdt_core.Registry.find_exn "bhmr" in
  let fdas = Rdt_core.Registry.find_exn "fdas" in
  (* a protocol against itself is exactly 1 *)
  let self = Experiment.ratio_vs_baseline w fdas ~baseline:fdas ~seeds:[ 1; 2 ] in
  checkf "self ratio" 1.0 (Stats.mean self);
  let r = Experiment.ratio_vs_baseline w bhmr ~baseline:fdas ~seeds:[ 1; 2 ] in
  check "bhmr beats fdas on client-server" true (Stats.mean r < 0.9)

(* ------------------------------------------------------------------ *)
(* Experiment shapes (quick seeds)                                     *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 2 ]

let series_means fig label =
  match List.find_opt (fun s -> s.Experiments.label = label) fig.Experiments.series with
  | None -> Alcotest.failf "series %s missing" label
  | Some s -> List.map (fun p -> Stats.mean p.Experiments.stats) s.Experiments.points

let test_fig_client_server_shape () =
  let fig = Experiments.fig_client_server ~seeds () in
  let bhmr = series_means fig "bhmr" in
  let v1 = series_means fig "bhmr-v1" in
  (* strong reduction everywhere, and bhmr at least as good as v1 *)
  List.iter (fun r -> check "bhmr << fdas" true (r < 0.8)) bhmr;
  List.iter2 (fun a b -> check "bhmr <= v1" true (a <= b +. 0.02)) bhmr v1

let test_fig_random_shape () =
  let fig = Experiments.fig_random ~seeds () in
  List.iter
    (fun label ->
      List.iter
        (fun r -> check (label ^ " never worse than fdas") true (r <= 1.0 +. 1e-9))
        (series_means fig label))
    [ "bhmr"; "bhmr-v1"; "bhmr-v2" ]

let test_claim_ten_percent_structured_envs () =
  let reductions = Experiments.claim_ten_percent ~seeds () in
  List.iter
    (fun (label, reduction) ->
      check (label ^ " nonnegative") true (reduction >= -0.01);
      (* the structured environments comfortably exceed the paper's 10% *)
      if label = "client-server (n=8)" || label = "master-worker (n=8)" then
        check (label ^ " >= 10%") true (reduction >= 0.10))
    reductions

let test_overhead_table_monotone () =
  let t = Experiments.table_overhead ~ns:[ 2; 64 ] () in
  let rendered = Table.render t in
  check "has bhmr row" true
    (String.split_on_char '\n' rendered
    |> List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "bhmr"))

let () =
  Alcotest.run "rdt_harness"
    [
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "single" `Quick test_stats_single;
          qt stats_matches_direct;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "workload lookup" `Quick test_workload_lookup;
          Alcotest.test_case "run_once deterministic" `Quick test_run_once_deterministic;
          Alcotest.test_case "aggregate" `Quick test_aggregate_counts;
          Alcotest.test_case "ratio pairing" `Quick test_ratio_pairing;
        ] );
      ( "figures",
        [
          Alcotest.test_case "client-server shape" `Slow test_fig_client_server_shape;
          Alcotest.test_case "random shape" `Slow test_fig_random_shape;
          Alcotest.test_case "10% claim (structured envs)" `Slow
            test_claim_ten_percent_structured_envs;
          Alcotest.test_case "overhead table" `Quick test_overhead_table_monotone;
        ] );
    ]
