(* rdtlint — typed-AST lint over the repo's own cmt files.

   Run from the dune context root (dune actions already are), pointing
   at source trees whose .objs directories hold the cmts:

     rdtlint --allowlist .rdtlint lib test

   Exit 0: clean.  Exit 1: findings.  Exit 2: configuration or load
   error (bad allowlist, unreadable cmt, nothing to lint). *)

let usage = "rdtlint [options] PATH..."

let () =
  let rules = ref None in
  let only = ref [] in
  let skip = ref [] in
  let allowlist_file = ref None in
  let obs_prefixes = ref [] in
  let excludes = ref [] in
  let list_rules = ref false in
  let json = ref false in
  let strict_allowlist = ref false in
  let paths = ref [] in
  let split s = String.split_on_char ',' s |> List.map String.trim in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> rules := Some (split s)),
        "IDS  comma-separated rule ids to run (default: all)" );
      ( "--only",
        Arg.String (fun s -> only := !only @ split s),
        "RULE  run only this rule (repeatable, comma-separable)" );
      ( "--skip",
        Arg.String (fun s -> skip := !skip @ split s),
        "RULE  drop this rule from the run (repeatable, comma-separable)" );
      ( "--allowlist",
        Arg.String (fun s -> allowlist_file := Some s),
        "FILE  allowlist file (RULE path[:LINE] per line)" );
      ( "--strict-allowlist",
        Arg.Set strict_allowlist,
        " report allowlist entries that suppressed nothing as STALE findings" );
      ("--json", Arg.Set json, " one JSON object per finding, same order as the plain output");
      ( "--obs-prefix",
        Arg.String (fun s -> obs_prefixes := s :: !obs_prefixes),
        "DIR  source-path prefix treated as observation-only by A2 (default: lib/obs/)" );
      ( "--exclude",
        Arg.String (fun s -> excludes := s :: !excludes),
        "DIR  path prefix to skip (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " list rule ids and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rdt_lint.Rule.t) -> Printf.printf "%-4s %s\n" r.id r.doc)
      Rdt_lint.Rules.all;
    exit 0
  end;
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("rdtlint: " ^ m); exit 2) fmt in
  let paths = List.rev !paths in
  if paths = [] then fail "no paths given (try: rdtlint lib test)";
  let resolve id =
    match Rdt_lint.Rules.find id with
    | Some r -> r
    | None -> fail "unknown rule id %S (see --list-rules)" id
  in
  let rules =
    match !rules with None -> Rdt_lint.Rules.all | Some ids -> List.map resolve ids
  in
  let rules =
    match List.map resolve !only with
    | [] -> rules
    | picked ->
        List.filter
          (fun (r : Rdt_lint.Rule.t) ->
            List.exists (fun (o : Rdt_lint.Rule.t) -> String.equal o.id r.id) picked)
          rules
  in
  let rules =
    let dropped = List.map resolve !skip in
    List.filter
      (fun (r : Rdt_lint.Rule.t) ->
        not (List.exists (fun (s : Rdt_lint.Rule.t) -> String.equal s.id r.id) dropped))
      rules
  in
  if rules = [] then fail "the --only/--skip combination leaves no rule to run";
  let allowlist =
    match !allowlist_file with
    | None -> Rdt_lint.Allowlist.empty
    | Some f -> (
        match Rdt_lint.Allowlist.load f with Ok a -> a | Error e -> fail "%s" e)
  in
  let obs_prefixes =
    match !obs_prefixes with [] -> [ "lib/obs/" ] | ps -> List.rev ps
  in
  let r =
    Rdt_lint.Driver.run ~rules ~allowlist ~obs_prefixes ~excludes:(List.rev !excludes)
      ~strict_allowlist:!strict_allowlist paths
  in
  List.iter (fun e -> prerr_endline ("rdtlint: " ^ e)) r.Rdt_lint.Driver.errors;
  if r.Rdt_lint.Driver.errors <> [] then exit 2;
  if r.Rdt_lint.Driver.units = 0 then
    fail "no implementation cmts found under %s (build first: dune build @all)"
      (String.concat " " paths);
  let render = if !json then Rdt_lint.Finding.to_json else Rdt_lint.Finding.to_string in
  List.iter (fun f -> print_endline (render f)) r.Rdt_lint.Driver.findings;
  if r.Rdt_lint.Driver.findings <> [] then exit 1
