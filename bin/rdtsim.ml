(* rdtsim — command-line driver for the RDT checkpointing library.

   Subcommands:
     run          simulate one (environment, protocol) pair and report
     verify       run + full offline RDT verification (3 checkers)
     experiments  reproduce the paper's figures and tables
     table        print selected experiment tables (shardable via --jobs)
     recover      simulate crashes and compute the recovery line
     snapshot     coordinated Chandy-Lamport snapshots over a workload
     twophase     coordinated Koo-Toueg two-phase checkpointing
     crashrun     inject online crashes and recover while the run continues
     watch        stream a trace (or a live run) through the incremental online checker
     serve        daemon: many concurrent client streams over a Unix socket
     feed         client: stream a recorded trace to a running serve daemon
     list         available protocols and environments *)

open Cmdliner

let protocol_conv =
  let parse s =
    match Rdt_core.Registry.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown protocol %S (try: %s)" s
               (String.concat ", " (List.map Rdt_core.Protocol.name Rdt_core.Registry.all))))
  in
  let print ppf p = Format.pp_print_string ppf (Rdt_core.Protocol.name p) in
  Arg.conv (parse, print)

let env_conv =
  let parse s =
    match Rdt_workloads.Registry.find s with
    | Some f -> Ok (s, f)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown environment %S (try: %s)" s
               (String.concat ", " Rdt_workloads.Registry.names)))
  in
  let print ppf (name, _) = Format.pp_print_string ppf name in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv (Rdt_core.Registry.find_exn "bhmr")
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL" ~doc:"Checkpointing protocol.")

let env_arg =
  Arg.(
    value
    & opt env_conv ("random", fun () -> Rdt_workloads.Registry.find_exn "random")
    & info [ "e"; "env" ] ~docv:"ENV" ~doc:"Workload environment.")

let n_arg =
  Arg.(value & opt int 8 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let messages_arg =
  Arg.(
    value & opt int 2000 & info [ "m"; "messages" ] ~docv:"M" ~doc:"Application message budget.")

(* ---- network-fault flags (shared by run, verify and crashrun) ---- *)

let partition_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "bad partition %S (expected PIDS:FROM-TO, e.g. 0,3:4000-6000)" s))
    in
    match String.split_on_char ':' s with
    | [ pids; window ] -> (
        match String.split_on_char '-' window with
        | [ a; b ] -> (
            try
              Ok
                {
                  Rdt_dist.Faults.between =
                    List.map int_of_string (String.split_on_char ',' pids);
                  from_t = int_of_string a;
                  to_t = int_of_string b;
                }
            with Failure _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let print ppf (p : Rdt_dist.Faults.partition) =
    Format.fprintf ppf "%s:%d-%d"
      (String.concat "," (List.map string_of_int p.between))
      p.from_t p.to_t
  in
  Arg.conv (parse, print)

let intermittent_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf "bad intermittent link %S (expected HOST:FROM-TO:UP/DOWN, e.g. 2:0-8000:150/350)" s))
    in
    match String.split_on_char ':' s with
    | [ host; window; cycle ] -> (
        match (String.split_on_char '-' window, String.split_on_char '/' cycle) with
        | [ a; b ], [ up; down ] -> (
            try
              Ok
                {
                  Rdt_dist.Faults.host = int_of_string host;
                  from_t = int_of_string a;
                  to_t = int_of_string b;
                  up = int_of_string up;
                  down = int_of_string down;
                }
            with Failure _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let print ppf (l : Rdt_dist.Faults.intermittent) =
    Format.fprintf ppf "%d:%d-%d:%d/%d" l.host l.from_t l.to_t l.up l.down
  in
  Arg.conv (parse, print)

let faults_term =
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Per-packet drop probability; any fault flag routes messages through the \
                reliable-delivery transport.")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P" ~doc:"Probability a packet is duplicated by the network.")
  in
  let reorder =
    Arg.(
      value & opt float 0.0
      & info [ "reorder" ] ~docv:"P"
          ~doc:"Probability a packet is held back by an adversarial extra delay.")
  in
  let reorder_window =
    Arg.(
      value & opt int 50
      & info [ "reorder-window" ] ~docv:"W"
          ~doc:"Maximum extra delay of a held-back packet (with $(b,--reorder)).")
  in
  let partition =
    Arg.(
      value
      & opt_all partition_conv []
      & info [ "partition" ] ~docv:"PIDS:FROM-TO"
          ~doc:"Cut the comma-separated processes off from everyone else between the two \
                instants, e.g. $(b,3:4000-6000) (repeatable).")
  in
  let intermittent =
    Arg.(
      value
      & opt_all intermittent_conv []
      & info [ "intermittent" ] ~docv:"HOST:FROM-TO:UP/DOWN"
          ~doc:"Give the host a mobile-style flapping link: inside the window its links \
                repeat UP connected instants then DOWN severed ones, e.g. \
                $(b,2:0-8000:150/350) (repeatable).")
  in
  let retx_timeout =
    Arg.(
      value
      & opt int Rdt_dist.Transport.default_params.retx_timeout
      & info [ "retx-timeout" ] ~docv:"T" ~doc:"Initial retransmission timeout of the transport.")
  in
  let max_retx =
    Arg.(
      value
      & opt int Rdt_dist.Transport.default_params.max_retx
      & info [ "max-retx" ] ~docv:"K"
          ~doc:"Retransmissions before a message is abandoned as undeliverable.")
  in
  let mk drop dup reorder reorder_window partitions intermittent retx_timeout max_retx =
    let spec =
      {
        Rdt_dist.Faults.drop;
        dup;
        reorder;
        reorder_window = (if reorder > 0.0 then reorder_window else 0);
        partitions;
        intermittent;
      }
    in
    let params = { Rdt_dist.Transport.default_params with retx_timeout; max_retx } in
    let transport =
      if Rdt_dist.Faults.is_none spec && params = Rdt_dist.Transport.default_params then None
      else Some params
    in
    (spec, transport)
  in
  Term.(
    const mk $ drop $ dup $ reorder $ reorder_window $ partition $ intermittent $ retx_timeout
    $ max_retx)

let config ?trace ?online env protocol n seed messages (faults, transport) =
  Rdt_core.Runtime.configure ~n ~seed ~messages ~faults ?transport ?trace ?online
    ((fun (_, f) -> f ()) env)
    protocol

(* ---- event tracing (run, verify, recover and crashrun) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL event trace of the run to $(docv), one self-describing JSON object \
           per line; $(b,rdtsim trace) summarizes, filters and replay-checks it offline.")

(* Run [f] with a trace recorder: [Trace.null] when no file was asked
   for, otherwise a JSONL channel recorder with the run's [Meta] header
   already written. *)
let with_trace file ~mode ~n ~protocol ~env ~seed f =
  match file with
  | None -> f Rdt_obs.Trace.null
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          let tr = Rdt_obs.Trace.to_channel oc in
          Rdt_obs.Trace.emit tr
            (Rdt_obs.Trace.Meta
               { n; protocol = Rdt_core.Protocol.name protocol; env = fst env; seed; mode });
          f tr)

let print_metrics (r : Rdt_core.Runtime.result) =
  Format.printf "%a@." Rdt_core.Metrics.pp r.metrics;
  Format.printf "%a@." Rdt_pattern.Pattern.pp_summary r.pattern;
  (match r.transport with
  | None -> ()
  | Some s -> Format.printf "%a@." Rdt_dist.Transport.pp_stats s);
  if r.predicate_counts <> [] then
    Format.printf "predicates fired: %s@."
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.predicate_counts))

let run_cmd =
  let doc = "Simulate one run and print its metrics." in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the rollback-dependency graph in Graphviz format.")
  in
  let draw =
    Arg.(
      value & flag
      & info [ "draw" ]
          ~doc:"Print an ASCII space-time diagram of the run (small runs only).")
  in
  let action env protocol n seed messages net dot draw trace =
    with_trace trace ~mode:"run" ~n ~protocol ~env ~seed @@ fun tr ->
    let r = Rdt_core.Runtime.run (config ~trace:tr env protocol n seed messages net) in
    print_metrics r;
    if draw then begin
      match Rdt_pattern.Render.ascii r.pattern with
      | Ok diagram -> print_string diagram
      | Error e -> Format.printf "cannot draw: %s@." e
    end;
    match dot with
    | None -> ()
    | Some file ->
        let g = Rdt_pattern.Rgraph.build r.pattern in
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (Rdt_pattern.Rgraph.to_dot g));
        Format.printf "R-graph written to %s@." file
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const action $ env_arg $ protocol_arg $ n_arg $ seed_arg $ messages_arg $ faults_term
      $ dot $ draw $ trace_arg)

(* ---- checker-algorithm selection (verify and watch) ---- *)

type algo_sel = All | One of Rdt_core.Checker.algo

let algo_conv =
  let parse s =
    if String.lowercase_ascii s = "all" then Ok All
    else
      match Rdt_core.Checker.algo_of_string s with
      | Ok a -> Ok (One a)
      | Error e -> Error (`Msg e)
  in
  let print ppf = function
    | All -> Format.pp_print_string ppf "all"
    | One a -> Format.pp_print_string ppf (Rdt_core.Checker.algo_name a)
  in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(
    value
    & opt (some algo_conv) None
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "Checker algorithm passed to $(b,Checker.run): $(b,all) (the default), \
           $(b,rgraph), $(b,chains), $(b,doubling) or $(b,online).")

(* the pre-unification spelling; kept as an alias so existing scripts
   survive the Checker API migration *)
let deprecated_checker_arg =
  Arg.(
    value
    & opt (some algo_conv) None
    & info [ "checker" ] ~docv:"ALGO" ~docs:"DEPRECATED ALIASES"
        ~doc:"Deprecated alias of $(b,--algo).")

let resolve_algo_sel algo checker =
  match (algo, checker) with
  | Some sel, _ -> sel
  | None, Some sel ->
      Format.eprintf "rdtsim: --checker is deprecated; use --algo instead@.";
      sel
  | None, None -> All

(* the name recorded in [Verdict] trace events; "rgraph_tdv" predates the
   unified API and is kept so old traces keep replay-checking cleanly *)
let verdict_name = function
  | `Rgraph -> "rgraph_tdv"
  | a -> Rdt_core.Checker.algo_name a

let checker_label = function
  | `Rgraph -> "R-graph vs TDV     "
  | `Chains -> "causal-chain search"
  | `Doubling -> "CM-path doubling   "
  | `Online -> "incremental online "

let verify_cmd =
  let doc = "Simulate one run and verify the RDT property offline (all four checkers)." in
  let action env protocol n seed messages net algo checker trace =
    let sel = resolve_algo_sel algo checker in
    with_trace trace ~mode:"verify" ~n ~protocol ~env ~seed @@ fun tr ->
    let r = Rdt_core.Runtime.run (config ~trace:tr env protocol n seed messages net) in
    print_metrics r;
    let algos = match sel with All -> Rdt_core.Checker.all_algos | One a -> [ a ] in
    (* record each checker's verdict in the trace so [rdtsim trace replay]
       can assert the rebuilt pattern agrees with the live run *)
    let reports =
      List.map
        (fun a ->
          let rep = Rdt_core.Checker.run ~algo:a r.pattern in
          Rdt_obs.Trace.emit tr
            (Rdt_obs.Trace.Verdict { checker = verdict_name a; rdt = rep.Rdt_core.Checker.rdt });
          Format.printf "%s: %a@." (checker_label a) Rdt_core.Checker.pp_report rep;
          rep)
        algos
    in
    Format.printf "Corollary 4.5      : %s@."
      (if Rdt_core.Min_gcp.corollary_holds r.pattern then "holds" else "VIOLATED");
    if List.exists (fun (rep : Rdt_core.Checker.report) -> not rep.rdt) reports then exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const action $ env_arg $ protocol_arg $ n_arg $ seed_arg $ messages_arg $ faults_term
      $ algo_arg $ deprecated_checker_arg $ trace_arg)

(* ---- grid sharding flags (experiments and table) ---- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Shard the experiment grid across $(docv) domains (default: $(b,RDT_JOBS) or 1). \
              The printed tables are bit-identical for every value.")

let resolve_jobs = function
  | None -> Rdt_harness.Pool.default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Cli: --jobs expects a positive integer"

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the machine-readable timing report (grid wall-clock, cells/sec, per-cell \
              and per-protocol run cost) to $(docv).")

let write_report report json =
  match json with
  | None -> ()
  | Some file ->
      Rdt_harness.Bench_report.record_obs report;
      Rdt_harness.Bench_report.write file report;
      Format.printf "timing report written to %s@." file

let experiments_cmd =
  let doc = "Reproduce the paper's figures and tables." in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use 3 seeds instead of 10 (fast smoke run).")
  in
  let action quick jobs json =
    let jobs = resolve_jobs jobs in
    let report = Rdt_harness.Bench_report.create ~jobs in
    Rdt_harness.Experiments.run_all ~quick ~jobs ~report ();
    write_report report json
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const action $ quick $ jobs_arg $ json_arg)

let table_cmd =
  let doc = "Print selected experiment tables of the paper's evaluation." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the named tables on seeds 1..K and prints them.  The underlying experiment \
         grids shard their cells across $(b,--jobs) domains; every cell draws its randomness \
         from a seed derived from the cell coordinates alone, so the output is bit-identical \
         for every $(b,--jobs) value.";
    ]
  in
  let table_names =
    [
      "protocols"; "overhead"; "claim"; "mingcp"; "ablation"; "recovery"; "coordinated";
      "breakeven"; "goodput"; "faults"; "online"; "durable"; "fuzz"; "scale"; "serve";
    ]
  in
  let names_arg =
    Arg.(
      value
      & pos_all (enum (List.map (fun n -> (n, n)) table_names)) []
      & info [] ~docv:"TABLE"
          ~doc:
            (Printf.sprintf "Tables to print (default: all).  One of %s."
               (String.concat ", " table_names)))
  in
  let seeds_arg =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"K" ~doc:"Run each grid on seeds 1..$(docv).")
  in
  let action names jobs seeds_k json =
    let jobs = resolve_jobs jobs in
    if seeds_k < 1 then invalid_arg "Cli: --seeds expects a positive integer";
    let seeds = List.init seeds_k (fun i -> i + 1) in
    let report = Rdt_harness.Bench_report.create ~jobs in
    let names = if names = [] then table_names else names in
    let module E = Rdt_harness.Experiments in
    let t0 = Rdt_obs.Meter.now () in
    List.iter
      (fun name ->
        let hdr title = Format.printf "@.== %s ==@." title in
        match name with
        | "protocols" ->
            hdr "TAB-PROTOCOLS: forced checkpoints per 100 basic (n=8)";
            Rdt_harness.Table.print (E.table_protocols ~jobs ~report ~seeds ())
        | "overhead" ->
            hdr "TAB-OVERHEAD: piggyback bits per message";
            Rdt_harness.Table.print (E.table_overhead ())
        | "claim" ->
            hdr "CLAIM-10PCT: reduction of forced checkpoints vs FDAS";
            List.iter
              (fun (label, reduction) ->
                Format.printf "  %-22s %5.1f%%  %s@." label (100.0 *. reduction)
                  (if reduction >= 0.10 then "(>= 10%: yes)" else "(>= 10%: no)"))
              (E.claim_ten_percent ~jobs ~report ~seeds ())
        | "mingcp" ->
            hdr "TAB-MINGCP: Corollary 4.5 (on-the-fly minimum global checkpoint)";
            Rdt_harness.Table.print (E.table_min_gcp ~jobs ~report ~seeds ())
        | "ablation" ->
            hdr "ABLATION: predicate firings per variant (client-server, n=8)";
            Rdt_harness.Table.print (E.table_ablation ~jobs ~report ~seeds ())
        | "recovery" ->
            hdr "TAB-RECOVERY: useless checkpoints, domino and replay (client-server, n=6)";
            Rdt_harness.Table.print (E.table_recovery ~jobs ~report ~seeds ())
        | "coordinated" ->
            hdr "TAB-COORDINATED: coordinated snapshots vs CIC (random, n=8)";
            Rdt_harness.Table.print (E.table_coordinated ~jobs ~report ~seeds ())
        | "breakeven" ->
            hdr "BREAK-EVEN: checkpoint size above which bhmr beats fdas in total overhead";
            Rdt_harness.Table.print (E.table_breakeven ~jobs ~report ~seeds ())
        | "goodput" ->
            hdr "TAB-GOODPUT: online crash recovery, 3 crashes (random, n=6)";
            Rdt_harness.Table.print (E.table_goodput ~jobs ~report ~seeds ())
        | "faults" ->
            hdr
              "TAB-FAULTS: forced-checkpoint inflation and retransmission cost vs drop rate \
               (bhmr, n=6)";
            Rdt_harness.Table.print (E.table_faults ~jobs ~report ~seeds ())
        | "online" ->
            hdr "BENCH-ONLINE: amortized per-event cost of the incremental checker (bhmr, n=8)";
            Rdt_harness.Table.print (E.table_online ~report ())
        | "durable" ->
            hdr "BENCH-DURABLE: cost of crash-safe checker state (WAL + snapshots, bhmr, n=8)";
            Rdt_harness.Table.print (E.table_durable ~report ())
        | "fuzz" ->
            hdr "BENCH-FUZZ: adversarial scenario fuzzer throughput (mixed protocols)";
            Rdt_harness.Table.print (E.table_fuzz ~jobs ~report ())
        | "scale" ->
            hdr "BENCH-SCALE: sharded engine throughput (cbr, ring, n=10000)";
            Rdt_harness.Table.print (E.table_scale ~jobs ~report ())
        | "serve" ->
            hdr "BENCH-SERVE: multi-stream serving over the session wire protocol (bhmr, n=8)";
            Rdt_harness.Table.print (E.table_serve ~jobs ~report ())
        | _ -> assert false)
      names;
    Rdt_harness.Bench_report.set_wall report (Rdt_obs.Meter.now () -. t0);
    write_report report json
  in
  Cmd.v
    (Cmd.info "table" ~doc ~man)
    Term.(const action $ names_arg $ jobs_arg $ seeds_arg $ json_arg)

let recover_cmd =
  let doc = "Simulate crashes at the end of a run and compute the recovery line." in
  let crash_arg =
    Arg.(
      value & opt_all int [ 0 ]
      & info [ "crash" ] ~docv:"PID" ~doc:"Process that crashes (repeatable).")
  in
  let at_arg =
    Arg.(
      value & opt float 0.9
      & info [ "at" ] ~docv:"FRACTION"
          ~doc:"Crash time as a fraction of the run duration; the crashed processes lose every \
                checkpoint taken after it.")
  in
  let action env protocol n seed messages net crashes at trace =
    with_trace trace ~mode:"recover" ~n ~protocol ~env ~seed @@ fun tr ->
    let r = Rdt_core.Runtime.run (config ~trace:tr env protocol n seed messages net) in
    print_metrics r;
    let pat = r.pattern in
    let crash_time =
      int_of_float (at *. float_of_int r.metrics.Rdt_core.Metrics.duration)
    in
    let crashes =
      List.map
        (fun pid ->
          (* the crash destroys the volatile state and everything after
             [crash_time]: restart from the last durable checkpoint *)
          let cks = Rdt_pattern.Pattern.checkpoints pat pid in
          let available = ref 0 in
          Array.iter
            (fun (c : Rdt_pattern.Types.ckpt) ->
              if c.kind <> Rdt_pattern.Types.Final && c.time <= crash_time then
                available := c.index)
            cks;
          { Rdt_recovery.Recovery_line.pid; available = !available })
        (List.sort_uniq compare crashes)
    in
    let outcome = Rdt_recovery.Recovery_line.recover pat crashes in
    Format.printf "crash at t=%d of: %s@." crash_time
      (String.concat ", "
         (List.map (fun c -> string_of_int c.Rdt_recovery.Recovery_line.pid) crashes));
    Format.printf "%a@." Rdt_recovery.Recovery_line.pp_outcome outcome
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      const action $ env_arg $ protocol_arg $ n_arg $ seed_arg $ messages_arg $ faults_term
      $ crash_arg $ at_arg $ trace_arg)

let snapshot_cmd =
  let doc = "Run coordinated (Chandy-Lamport) snapshots over a workload and verify the cuts." in
  let period_arg =
    Arg.(
      value & opt int 500
      & info [ "period" ] ~docv:"T" ~doc:"Delay between snapshot initiations.")
  in
  let action env n seed messages period =
    let module S = Rdt_coordinated.Snapshot in
    let r =
      S.run
        {
          (S.default_config ((fun (_, f) -> f ()) env)) with
          S.n;
          seed;
          max_messages = messages;
          initiation_period = period;
        }
    in
    Format.printf
      "%d app messages, %d snapshots completed, %d markers, mean latency %.0f@."
      r.S.metrics.S.app_messages r.S.metrics.S.snapshots_completed
      r.S.metrics.S.marker_messages r.S.metrics.S.mean_latency;
    List.iter
      (fun (s : S.snapshot) ->
        let consistent = Rdt_pattern.Consistency.consistent_global r.S.pattern s.S.cut in
        Format.printf "snapshot %d at t=%d..%d: cut [%s], %d in-transit, consistent=%b@."
          s.S.id s.S.initiated_at s.S.completed_at
          (String.concat ";" (List.map string_of_int (Array.to_list s.S.cut)))
          (List.length s.S.channel_state) consistent)
      r.S.snapshots
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(const action $ env_arg $ n_arg $ seed_arg $ messages_arg $ period_arg)

let twophase_cmd =
  let doc = "Run Koo-Toueg two-phase coordinated checkpointing over a workload." in
  let period_arg =
    Arg.(
      value & opt int 500
      & info [ "period" ] ~docv:"T" ~doc:"Delay between checkpoint rounds.")
  in
  let action env n seed messages period =
    let module KT = Rdt_coordinated.Koo_toueg in
    let r =
      KT.run
        {
          (KT.default_config ((fun (_, f) -> f ()) env)) with
          KT.n;
          seed;
          max_messages = messages;
          initiation_period = period;
        }
    in
    Format.printf
      "%d app messages, %d rounds, %d control messages, %d checkpoints, mean %.1f        participants, mean latency %.0f@."
      r.KT.metrics.KT.app_messages r.KT.metrics.KT.rounds_committed
      r.KT.metrics.KT.control_messages r.KT.metrics.KT.checkpoints_taken
      r.KT.metrics.KT.mean_participants r.KT.metrics.KT.mean_latency;
    List.iter
      (fun (rd : KT.round) ->
        Format.printf "round %d t=%d..%d: %d participants, cut [%s], consistent=%b@." rd.KT.id
          rd.KT.initiated_at rd.KT.committed_at
          (List.length rd.KT.participants)
          (String.concat ";" (List.map string_of_int (Array.to_list rd.KT.cut)))
          (Rdt_pattern.Consistency.consistent_global r.KT.pattern rd.KT.cut))
      r.KT.rounds
  in
  Cmd.v (Cmd.info "twophase" ~doc)
    Term.(const action $ env_arg $ n_arg $ seed_arg $ messages_arg $ period_arg)

let crashrun_cmd =
  let doc = "Inject fail-stop crashes during the run and recover online." in
  let crash_arg =
    Arg.(
      value
      & opt_all (t2 ~sep:'@' int int) [ (0, 3000) ]
      & info [ "crash" ] ~docv:"PID@TIME" ~doc:"Crash of PID at TIME (repeatable).")
  in
  let repair_arg =
    Arg.(value & opt int 200 & info [ "repair" ] ~docv:"D" ~doc:"Downtime before recovery.")
  in
  let action env protocol n seed messages net crashes repair trace =
    let module CS = Rdt_failures.Crash_sim in
    with_trace trace ~mode:"crashrun" ~n ~protocol ~env ~seed @@ fun tr ->
    let faults, transport = net in
    let crashes =
      List.map (fun (victim, at) -> { CS.victim; at; repair_delay = repair }) crashes
    in
    let r =
      CS.run
        (CS.configure ~n ~seed ~messages ~crashes ~faults ?transport ~trace:tr
           ((fun (_, f) -> f ()) env)
           protocol)
    in
    List.iter
      (fun (rc : CS.recovery) ->
        Format.printf
          "crash of P%d at t=%d: line=[%s] undone=%d ckpts_undone=%d dead_msgs=%d replayed=%d@."
          rc.crash.victim rc.crash.at
          (String.concat ";" (List.map string_of_int (Array.to_list rc.line)))
          rc.events_undone rc.checkpoints_undone rc.messages_undone rc.messages_replayed)
      r.recoveries;
    Format.printf
      "surviving: %d deliveries, %d basic + %d forced checkpoints, %d events undone total@."
      r.metrics.CS.messages_delivered r.metrics.CS.basic r.metrics.CS.forced
      r.metrics.CS.total_events_undone;
    if r.metrics.CS.retransmissions + r.metrics.CS.packets_dropped + r.metrics.CS.undeliverable > 0
    then
      Format.printf "network: %d retransmissions, %d packets dropped, %d undeliverable@."
        r.metrics.CS.retransmissions r.metrics.CS.packets_dropped r.metrics.CS.undeliverable;
    Format.printf "%a@." Rdt_pattern.Pattern.pp_summary r.pattern;
    let rep = Rdt_core.Checker.run r.pattern in
    Rdt_obs.Trace.emit tr
      (Rdt_obs.Trace.Verdict { checker = "rgraph_tdv"; rdt = rep.Rdt_core.Checker.rdt });
    Format.printf "RDT on the surviving execution: %a@." Rdt_core.Checker.pp_report rep
  in
  Cmd.v (Cmd.info "crashrun" ~doc)
    Term.(
      const action $ env_arg $ protocol_arg $ n_arg $ seed_arg $ messages_arg $ faults_term
      $ crash_arg $ repair_arg $ trace_arg)

(* ---- offline trace tooling ---- *)

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JSONL trace file.")

let load_trace file =
  match Rdt_obs.Trace.read_file file with
  | Ok events -> events
  | Error e ->
      Format.eprintf "rdtsim: %s@." e;
      exit 2

let trace_summary_cmd =
  let doc = "Summarize a trace: event counts by kind, forced-checkpoint predicates." in
  let action file =
    let events = load_trace file in
    (match Rdt_obs.Replay.meta events with
    | Some (n, protocol, env, seed, mode) ->
        Format.printf "%s: protocol=%s env=%s n=%d seed=%d@." mode protocol env n seed
    | None -> ());
    Format.printf "%a@." Rdt_obs.Replay.pp_summary (Rdt_obs.Replay.summarize events)
  in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const action $ trace_file_arg)

let trace_filter_cmd =
  let doc = "Reprint the events of the selected kinds, one JSON object per line." in
  let kinds_arg =
    Arg.(
      non_empty
      & pos_right 0 (enum (List.map (fun k -> (k, k)) Rdt_obs.Trace.kind_names)) []
      & info [] ~docv:"KIND"
          ~doc:
            (Printf.sprintf "Event kinds to keep.  One of %s."
               (String.concat ", " Rdt_obs.Trace.kind_names)))
  in
  let action file kinds =
    List.iter
      (fun ev ->
        if List.mem (Rdt_obs.Trace.kind_name ev) kinds then
          print_endline (Rdt_obs.Trace.encode ev))
      (load_trace file)
  in
  Cmd.v (Cmd.info "filter" ~doc) Term.(const action $ trace_file_arg $ kinds_arg)

let trace_replay_cmd =
  let doc =
    "Rebuild the run's pattern from a trace, re-run the three RDT checkers on it, and check \
     the verdicts against the ones recorded in the trace (non-zero exit on mismatch)."
  in
  let action file =
    let events = load_trace file in
    match Rdt_obs.Replay.rebuild events with
    | Error e ->
        Format.eprintf "rdtsim: cannot rebuild the pattern: %s@." e;
        exit 2
    | Ok pat ->
        Format.printf "%a@." Rdt_pattern.Pattern.pp_summary pat;
        let replayed =
          List.map
            (fun a -> (verdict_name a, (Rdt_core.Checker.run ~algo:a pat).Rdt_core.Checker.rdt))
            Rdt_core.Checker.all_algos
        in
        List.iter
          (fun (name, rdt) ->
            Format.printf "replayed %-10s: %s@." name
              (if rdt then "RDT holds" else "RDT VIOLATED"))
          replayed;
        let recorded = Rdt_obs.Replay.verdicts events in
        if recorded = [] then
          Format.printf "no verdicts recorded in the trace; nothing to compare@."
        else begin
          let mismatches =
            List.filter
              (fun (name, rdt) -> List.assoc_opt name replayed <> Some rdt)
              recorded
          in
          if mismatches = [] then
            Format.printf "replay agrees with the %d recorded verdict(s)@."
              (List.length recorded)
          else begin
            List.iter
              (fun (name, rdt) ->
                Format.printf "MISMATCH %s: live run recorded rdt=%b@." name rdt)
              mismatches;
            exit 1
          end
        end
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const action $ trace_file_arg)

let trace_cmd =
  let doc = "Summarize, filter, or replay-and-check a JSONL event trace." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Operates on trace files produced by the $(b,--trace) option of $(b,run), \
         $(b,verify), $(b,recover) and $(b,crashrun).  $(b,replay) turns a trace into a \
         correctness artifact: it rebuilds the checkpoint-and-communication pattern from \
         the events alone and asserts that the offline RDT checkers reach the same verdicts \
         as the live run.";
    ]
  in
  Cmd.group (Cmd.info "trace" ~doc ~man) [ trace_summary_cmd; trace_filter_cmd; trace_replay_cmd ]

(* ---- the stream-subcommand surface (watch, serve, feed) ----

   One flag group and one exit-code table, consumed by all three
   subcommands instead of copy-pasted per command. *)

(* The unified exit-code table.  [Session.Wire.exit_code_of_reject]
   implements the same mapping for wire-level rejections. *)
let exit_code_man =
  [
    `S Manpage.s_exit_status;
    `P
      "The stream subcommands ($(b,watch), $(b,serve), $(b,feed)) share one exit-code \
       table: $(b,0) the stream completed and RDT held; $(b,1) the stream completed and \
       the final verdict is RDT violated; $(b,2) the stream is inconsistent (an event no \
       run could have produced, a stream ending mid-rollback-cascade, or a protocol error \
       on the serve socket); $(b,3) durable state is corrupt beyond every recovery \
       fallback, or the service is unreachable.";
  ]

(* --durable DIR / --snapshot-every K / --trace FILE, shared verbatim by
   watch and serve. *)
let session_flags_term =
  let durable_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "durable" ] ~docv:"DIR"
          ~doc:
            "Persist checker state under $(docv) (write-ahead log + snapshots) and \
             auto-resume from it on restart.  $(b,watch) keeps one session in $(docv); \
             $(b,serve) keeps one per stream in $(docv)/$(i,STREAM)/.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt int Rdt_durable.Session.default_config.Rdt_durable.Session.snapshot_every
      & info [ "snapshot-every" ] ~docv:"K"
          ~doc:"With $(b,--durable): install a snapshot generation every $(docv) events.")
  in
  Term.(
    const (fun durable snapshot_every trace -> (durable, snapshot_every, trace))
    $ durable_arg $ snapshot_every_arg $ trace_arg)

let inconsistent_exit e =
  Format.eprintf "rdtsim: inconsistent trace: %s@." e;
  exit 2

(* Drive one checker session over a recorded event list: skip the
   already-durable prefix, optionally pace (gives kill-mid-stream
   harnesses a window), exit 2 on an inconsistent event or a stream
   that ends mid-rollback-cascade.  Returns the final summary. *)
let drive_session sess events ~skip ~pace =
  let module O = Rdt_check.Online in
  if skip > List.length events then
    inconsistent_exit
      (Printf.sprintf "durable state covers %d events but the trace has only %d" skip
         (List.length events));
  List.iteri
    (fun i ev ->
      if i >= skip then begin
        if pace > 0 then Unix.sleepf (1e-6 *. float_of_int pace);
        match Rdt_check.Session.observe sess ev with
        | Ok () -> ()
        | Error e -> inconsistent_exit e
      end)
    events;
  let engine = Rdt_check.Session.engine sess in
  (match O.orphan_messages engine with
  | [] -> ()
  | orphans ->
      inconsistent_exit
        (Printf.sprintf "stream ends mid-rollback-cascade (orphaned messages %s)"
           (String.concat ", " (List.map string_of_int orphans))));
  Rdt_check.Session.close sess;
  O.summary engine

let watch_cmd =
  let doc = "Stream events through the incremental online RDT checker." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "With $(i,FILE), streams a recorded JSONL trace (produced by $(b,--trace)) through \
         the incremental checker one event at a time: the engine maintains the R-graph, \
         per-checkpoint reachability and TDV-witness state online, retracts state across \
         $(b,rollback) events, and latches the index of the first event whose prefix \
         violated RDT.  Without $(i,FILE), simulates a run live with the checker tee'd \
         into the event stream.  The verdict goes to stdout; per-event cost goes to \
         stderr.  Exits 1 on a violated final verdict, 2 on an inconsistent trace.";
      `P
        "With $(b,--durable) $(i,DIR), checker state is persisted under $(i,DIR) as a \
         CRC-checked write-ahead log plus periodic snapshot generations, and the process \
         may be killed at any instant: rerunning the same command recovers the newest \
         valid state (degrading to an older snapshot generation, or a full WAL replay, if \
         the newest is damaged), resumes the stream where durability left off, and reaches \
         the verdict an uninterrupted run would have.  Recovery details go to stderr.  \
         Exits 3 when the durable state is corrupt beyond every fallback.";
    ]
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace file to stream (default: simulate a live run).")
  in
  let pace_arg =
    Arg.(
      value
      & opt int 0
      & info [ "pace" ] ~docv:"MICROS"
          ~doc:
            "Sleep $(docv) microseconds between streamed events (gives kill-mid-stream \
             harnesses a window; 0 = full speed).")
  in
  let action env protocol n seed messages net file (durable, snapshot_every, trace) pace =
    let module O = Rdt_check.Online in
    let finish ?dt (s : O.summary) =
      Format.printf "%a@." O.pp_summary s;
      (match dt with
      | Some dt when s.events > 0 ->
          Format.eprintf "streamed %d events in %.3f s (%.0f ns/event)@." s.events dt
            (1e9 *. dt /. float_of_int s.events)
      | _ -> ());
      if not s.rdt then exit 1
    in
    (match (trace, file) with
    | Some _, Some _ ->
        Format.eprintf "rdtsim: --trace records the live run; drop it when streaming FILE@.";
        exit Cmd.Exit.cli_error
    | _ -> ());
    match (durable, file) with
    | Some _, None ->
        Format.eprintf "rdtsim: --durable needs a trace FILE to stream@.";
        exit Cmd.Exit.cli_error
    | Some dir, Some file -> (
        let events = load_trace file in
        match O.trace_process_count events with
        | Error e -> inconsistent_exit e
        | Ok n -> (
            try
              let config =
                { Rdt_durable.Session.default_config with Rdt_durable.Session.snapshot_every }
              in
              let s, info = Rdt_durable.Session.open_ ~config ~dir ~n ~track_open:true () in
              (match info with
              | Some r ->
                  Format.eprintf "rdtsim: recovered: %a@." Rdt_durable.Session.pp_recovery r
              | None -> ());
              let skip = O.events_seen (Rdt_durable.Session.engine s) in
              let sess = Rdt_durable.Session.checker_session s in
              let t0 = Rdt_obs.Meter.now () in
              let summary = drive_session sess events ~skip ~pace in
              finish ~dt:(Rdt_obs.Meter.now () -. t0) summary
            with Rdt_durable.Io.Error err ->
              Format.eprintf "rdtsim: unrecoverable durable state: %s@."
                (Rdt_durable.Io.error_message err);
              exit 3))
    | None, Some file -> (
        let events = load_trace file in
        match O.trace_process_count events with
        | Error e -> inconsistent_exit e
        | Ok n ->
            let sess = Rdt_check.Session.ephemeral ~n () in
            let t0 = Rdt_obs.Meter.now () in
            let summary = drive_session sess events ~skip:0 ~pace in
            finish ~dt:(Rdt_obs.Meter.now () -. t0) summary)
    | None, None ->
        with_trace trace ~mode:"watch" ~n ~protocol ~env ~seed (fun tr ->
            let r =
              Rdt_core.Runtime.run (config ~trace:tr ~online:true env protocol n seed messages net)
            in
            print_metrics r;
            match r.online with Some s -> finish s | None -> assert false)
  in
  Cmd.v
    (Cmd.info "watch" ~doc ~man:(man @ exit_code_man))
    Term.(
      const action $ env_arg $ protocol_arg $ n_arg $ seed_arg $ messages_arg $ faults_term
      $ file_arg $ session_flags_term $ pace_arg)

let serve_cmd =
  let doc = "Serve many concurrent trackability streams over a Unix socket." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a long-lived daemon on a Unix-domain socket.  Each client opens a named \
         $(i,stream) (a $(b,hello) frame), appends trace events in length-delimited JSONL \
         frames, and can at any point query the live verdict: $(b,rdt-so-far), $(b,zcycle), \
         $(b,summary), $(b,trackable), and minimum/maximum consistent global checkpoints of \
         a set (Corollary 4.5 machinery).  One incremental online checker runs per stream; \
         busy streams are applied in bounded batches fanned out across $(b,--jobs) domains.";
      `P
        "Streams outlive connections: a client that disconnects reattaches by re-sending \
         $(b,hello) with the same stream name and is told how many events are already \
         applied.  With $(b,--durable) $(i,DIR), every stream is also persisted (WAL + \
         snapshots) under $(i,DIR)/$(i,STREAM)/, so a SIGKILL'd daemon resumes all streams \
         with identical verdicts on restart.  Ingest is backpressured: when a stream's \
         pending queue exceeds $(b,--max-pending), the daemon stops reading that client's \
         socket until the backlog drains — no frame is ever dropped.";
      `P "$(b,rdtsim feed) is the matching client.  Shut down with SIGINT/SIGTERM.";
    ]
  in
  let socket_arg =
    Arg.(
      value & opt string "rdtsim.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 256
      & info [ "max-batch" ] ~docv:"B"
          ~doc:"Maximum events applied per stream per loop iteration.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 4096
      & info [ "max-pending" ] ~docv:"Q"
          ~doc:"Pending-queue bound per stream before ingest backpressure engages.")
  in
  let action socket (durable, snapshot_every, trace) jobs max_batch max_pending =
    let module Server = Rdt_serve.Server in
    let jobs = resolve_jobs jobs in
    let mapper =
      if jobs <= 1 then Server.seq_mapper
      else { Server.map = (fun f xs -> Rdt_harness.Pool.map ~jobs f xs) }
    in
    let stop_flag = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_flag := true));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop_flag := true));
    let with_audit k =
      match trace with
      | None -> k Rdt_obs.Trace.null
      | Some file -> Out_channel.with_open_text file (fun oc -> k (Rdt_obs.Trace.to_channel oc))
    in
    with_audit (fun tr ->
        let cfg =
          {
            Server.socket;
            durable_root = durable;
            snapshot_every;
            max_batch;
            max_pending;
          }
        in
        match Server.create ~mapper ~trace:tr cfg with
        | server ->
            Format.eprintf "serve: listening on %s (%s, jobs=%d)@." socket
              (match durable with
              | Some dir -> Printf.sprintf "durable under %s" dir
              | None -> "ephemeral")
              jobs;
            Server.run ~stop:(fun () -> !stop_flag) server;
            let open_streams = Server.streams server in
            Server.close server;
            Format.eprintf "serve: shut down (%d stream%s still open)@."
              (List.length open_streams)
              (if List.length open_streams = 1 then "" else "s")
        | exception Unix.Unix_error (e, _, _) ->
            Format.eprintf "rdtsim: serve: cannot listen on %s: %s@." socket
              (Unix.error_message e);
            exit 3)
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man:(man @ exit_code_man))
    Term.(
      const action $ socket_arg $ session_flags_term $ jobs_arg $ max_batch_arg
      $ max_pending_arg)

let feed_cmd =
  let doc = "Stream a recorded trace to a running serve daemon and print the verdict." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The client half of $(b,rdtsim serve): opens (or reattaches to) the named stream, \
         skips the prefix the daemon already holds, streams the rest of the trace in \
         batches, and prints the daemon's final verdict to stdout in exactly the format of \
         $(b,rdtsim watch) $(i,FILE) — the two outputs diff clean for the same trace.";
    ]
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace file to stream.")
  in
  let socket_arg =
    Arg.(
      value & opt string "rdtsim.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon.")
  in
  let stream_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "stream" ] ~docv:"NAME" ~doc:"Stream name to open or reattach to.")
  in
  let batch_arg =
    Arg.(
      value & opt int 128
      & info [ "batch" ] ~docv:"B" ~doc:"Events per $(b,events) frame.")
  in
  let pace_arg =
    Arg.(
      value & opt int 0
      & info [ "pace" ] ~docv:"MICROS"
          ~doc:
            "Stream at most one event per $(docv) microseconds, as $(b,watch --pace) does \
             (gives kill-mid-stream harnesses a window; 0 = full speed).")
  in
  let ask_arg =
    Arg.(
      value
      & opt_all (enum [ ("rdt-so-far", `Rdt_so_far); ("zcycle", `Zcycle) ]) []
      & info [ "ask" ] ~docv:"QUERY"
          ~doc:
            "Also run a live query ($(b,rdt-so-far) or $(b,zcycle)) after the stream is \
             fed; the answer goes to stderr (repeatable).")
  in
  let action file socket stream batch pace asks =
    let module W = Rdt_check.Session.Wire in
    let module Client = Rdt_serve.Client in
    if batch < 1 then invalid_arg "Cli: --batch expects a positive integer";
    let events = load_trace file in
    let fail_reject code error =
      Format.eprintf "rdtsim: feed: %s@." error;
      exit (W.exit_code_of_reject code)
    in
    let fail_transport error =
      Format.eprintf "rdtsim: feed: %s@." error;
      exit 3
    in
    match Rdt_check.Online.trace_process_count events with
    | Error e -> inconsistent_exit e
    | Ok n -> (
        let c =
          match Client.connect ~socket with
          | c -> c
          | exception Unix.Unix_error (e, _, _) ->
              fail_transport
                (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
        in
        (* responses arrive interleaved with our writes: acks flow back
           per applied batch and must be drained or the daemon's reply
           buffer (and ours) only grows *)
        let handle_async = function
          | W.Ack _ -> ()
          | W.Rejected { code; error } -> fail_reject code error
          | _ -> fail_transport "unexpected response from server"
        in
        let rec wait_for pick =
          match Client.recv c with
          | Error e -> fail_transport e
          | Ok resp -> (
              match pick resp with
              | Some v -> v
              | None ->
                  handle_async resp;
                  wait_for pick)
        in
        try
          Client.send c (W.Hello { version = W.version; stream; n });
          let resumed =
          wait_for (function
            | W.Welcome { resumed; _ } -> Some resumed
            | _ -> None)
        in
        if resumed > 0 then
          Format.eprintf "rdtsim: feed: resuming %s at event %d@." stream resumed;
        if resumed > List.length events then
          inconsistent_exit
            (Printf.sprintf "stream %s already holds %d events but the trace has only %d"
               stream resumed (List.length events));
        let t0 = Rdt_obs.Meter.now () in
        let rec batches = function
          | [] -> ()
          | evs ->
              let rec split k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | ev :: rest -> split (k - 1) (ev :: acc) rest
              in
              let frame, rest = split batch [] evs in
              (* per event, like watch --pace, not per frame *)
              if pace > 0 then Unix.sleepf (1e-6 *. float_of_int (pace * List.length frame));
              Client.send c (W.Events frame);
              List.iter handle_async (Client.poll c);
              batches rest
        in
        (try batches (List.filteri (fun i _ -> i >= resumed) events)
         with Failure e -> fail_transport e);
        (* force durability of the whole stream before querying; the
           resulting ack is indistinguishable from batch acks and is
           drained silently — Goodbye carries the authoritative count *)
        Client.send c W.Sync;
        List.iteri
          (fun i ask ->
            let query = match ask with `Rdt_so_far -> W.Rdt_so_far | `Zcycle -> W.Zcycle in
            Client.send c (W.Query { id = i; query });
            match
              wait_for (function
                | W.Answer { answer; _ } -> Some (Ok answer)
                | W.Failed { error; _ } -> Some (Error error)
                | _ -> None)
            with
            | Ok (W.Flag b) ->
                Format.eprintf "%s: %b@."
                  (match ask with `Rdt_so_far -> "rdt so far" | `Zcycle -> "zcycle")
                  b
            | Ok _ -> fail_transport "unexpected answer shape"
            | Error e -> Format.eprintf "rdtsim: feed: query failed: %s@." e)
          asks;
        Client.send c W.Bye;
        let seen, summary, orphans =
          wait_for (function
            | W.Goodbye { seen; summary; orphans } -> Some (seen, summary, orphans)
            | _ -> None)
        in
        let dt = Rdt_obs.Meter.now () -. t0 in
        Client.close c;
        (match orphans with
        | [] -> ()
        | orphans ->
            inconsistent_exit
              (Printf.sprintf "stream ends mid-rollback-cascade (orphaned messages %s)"
                 (String.concat ", " (List.map string_of_int orphans))));
        Format.printf "%a@." Rdt_check.Online.pp_summary summary;
        if summary.events > 0 then
          Format.eprintf "fed %d events in %.3f s (%.0f ns/event, %d total on stream)@."
            (List.length events - resumed)
            dt
            (1e9 *. dt /. float_of_int (max 1 (List.length events - resumed)))
            seen;
        if not summary.rdt then exit 1
        with Unix.Unix_error (e, _, _) ->
          (* a daemon that died mid-conversation: same exit as the
             failed-to-connect case, not an uncaught-exception trace *)
          fail_transport
            (Printf.sprintf "connection to %s lost: %s" socket (Unix.error_message e)))
  in
  Cmd.v
    (Cmd.info "feed" ~doc ~man:(man @ exit_code_man))
    Term.(
      const action $ file_arg $ socket_arg $ stream_arg $ batch_arg $ pace_arg $ ask_arg)

let fuzz_cmd =
  let doc = "Fuzz the whole stack with generated adversarial scenarios." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates $(b,--budget) scenarios — workload, protocol, channel model, network \
         faults (drops, duplicates, reordering, partitions, intermittent mobile-style \
         links) and crash/recovery schedules — each derived deterministically from \
         $(b,--seed) and its index, and executes every one with the online checker tee'd \
         into the live trace.  Each run is audited against the offline checkers, the \
         brute-force oracle (small runs), and a trace-replay round-trip; the first failing \
         scenario is shrunk to a 1-minimal counterexample and written out as a replayable \
         scenario plus its JSONL trace.";
      `P
        "The campaign is bit-identical across runs and across $(b,--jobs) values.  Exits 0 \
         when the budget is exhausted without a failure, 1 when a counterexample was found \
         (or $(b,--minimize) reproduced one), 2 on input errors.";
    ]
  in
  let budget_arg =
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc:"Scenarios to execute.")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "protocols" ] ~docv:"NAMES"
          ~doc:"Comma-separated protocol names to draw from (default: every protocol with \
                an RDT guarantee).")
  in
  let envs_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "envs" ] ~docv:"NAMES"
          ~doc:"Comma-separated environment names to draw from (default: all).")
  in
  let max_n_arg =
    Arg.(value & opt int 6 & info [ "max-n" ] ~docv:"N" ~doc:"Largest process count drawn.")
  in
  let max_messages_arg =
    Arg.(
      value & opt int 150
      & info [ "max-messages" ] ~docv:"M" ~doc:"Largest application-message budget drawn.")
  in
  let mutation_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Rdt_fuzz.Exec.mutation_of_string s) in
    let print ppf m = Format.pp_print_string ppf (Rdt_fuzz.Exec.mutation_name m) in
    Arg.conv (parse, print)
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some mutation_conv) None
      & info [ "mutate" ] ~docv:"MUTATION"
          ~doc:
            "Sanctioned fault injection into the checking pipeline, for exercising the \
             find-then-shrink machinery on a healthy tree: $(b,hide-rollbacks) or \
             $(b,flip-rgraph).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "fuzz-counterexample"
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:"Write a found counterexample to $(docv).json and its trace to \
                $(docv).trace.jsonl.")
  in
  let minimize_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:"Skip generation: load the scenario from $(docv), reproduce its failure and \
                shrink it.")
  in
  let print_failure (f : Rdt_fuzz.Fuzzer.failure) =
    Format.printf "counterexample (%s): %s@." (Rdt_fuzz.Exec.kind_name f.kind) f.detail;
    Format.printf "  original (size %4d): %a@." (Rdt_fuzz.Scenario.size f.original)
      Rdt_fuzz.Scenario.pp f.original;
    Format.printf "  shrunk   (size %4d): %a@." (Rdt_fuzz.Scenario.size f.shrunk)
      Rdt_fuzz.Scenario.pp f.shrunk;
    Format.printf "  shrink: %d accepted steps, %d executions@." f.shrink.steps f.shrink.execs
  in
  let write_counterexample ?mutation out (f : Rdt_fuzz.Fuzzer.failure) =
    Rdt_fuzz.Scenario.to_file (out ^ ".json") f.shrunk;
    let rep = Rdt_fuzz.Exec.run ?mutation f.shrunk in
    Out_channel.with_open_text (out ^ ".trace.jsonl") (fun oc ->
        List.iter
          (fun ev ->
            output_string oc (Rdt_obs.Trace.encode ev);
            output_char oc '\n')
          rep.Rdt_fuzz.Exec.events);
    Format.printf "scenario written to %s.json (replay: rdtsim fuzz --minimize %s.json%s)@." out
      out
      (match mutation with
      | None -> ""
      | Some m -> " --mutate " ^ Rdt_fuzz.Exec.mutation_name m);
    Format.printf "trace written to %s.trace.jsonl@." out
  in
  let action seed budget protocols envs max_n max_messages jobs mutation out minimize =
    let jobs = resolve_jobs jobs in
    match minimize with
    | Some file -> (
        match Rdt_fuzz.Scenario.of_file file with
        | Error e ->
            Format.eprintf "rdtsim: %s@." e;
            exit 2
        | Ok sc -> (
            match Rdt_fuzz.Fuzzer.minimize ?mutation sc with
            | Error e ->
                Format.printf "%s: %s@." file e;
                exit (if e = "scenario passes all checks; nothing to minimize" then 0 else 2)
            | Ok f ->
                print_failure f;
                write_counterexample ?mutation out f;
                exit 1))
    | None ->
        let space =
          let d = Rdt_fuzz.Scenario.default_space in
          {
            d with
            Rdt_fuzz.Scenario.protocols = Option.value protocols ~default:d.protocols;
            envs = Option.value envs ~default:d.envs;
            max_n;
            max_messages;
          }
        in
        let cfg = { Rdt_fuzz.Fuzzer.seed; budget; space; mutation } in
        Format.printf "fuzz: seed=%d budget=%d protocols=%s envs=%s max-n=%d max-messages=%d@."
          seed budget
          (String.concat "," space.Rdt_fuzz.Scenario.protocols)
          (String.concat "," space.Rdt_fuzz.Scenario.envs)
          max_n max_messages;
        let t0 = Rdt_obs.Meter.now () in
        let mapper = { Rdt_fuzz.Fuzzer.map = (fun f xs -> Rdt_harness.Pool.map ~jobs f xs) } in
        let rep = Rdt_fuzz.Fuzzer.run ~mapper cfg in
        let dt = Rdt_obs.Meter.now () -. t0 in
        let c = rep.Rdt_fuzz.Fuzzer.counts in
        Format.printf
          "scenarios %d: ok %d, rdt-violations %d, checker-divergences %d, drain-failures %d, \
           crashes %d@."
          rep.Rdt_fuzz.Fuzzer.scenarios c.Rdt_fuzz.Fuzzer.ok c.Rdt_fuzz.Fuzzer.violations
          c.Rdt_fuzz.Fuzzer.divergences c.Rdt_fuzz.Fuzzer.drain_failures
          c.Rdt_fuzz.Fuzzer.crashes;
        if rep.Rdt_fuzz.Fuzzer.scenarios > 0 then
          Format.eprintf "executed %d scenarios in %.2f s (%.1f scenarios/s, jobs=%d)@."
            rep.Rdt_fuzz.Fuzzer.scenarios dt
            (float_of_int rep.Rdt_fuzz.Fuzzer.scenarios /. dt)
            jobs;
        match rep.Rdt_fuzz.Fuzzer.failure with
        | None ->
            Format.printf "no counterexample found (budget exhausted)@.";
            exit 0
        | Some f ->
            Format.printf "counterexample at scenario #%d@." f.Rdt_fuzz.Fuzzer.index;
            print_failure f;
            write_counterexample ?mutation out f;
            exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const action $ seed_arg $ budget_arg $ protocols_arg $ envs_arg $ max_n_arg
      $ max_messages_arg $ jobs_arg $ mutate_arg $ out_arg $ minimize_arg)

let list_cmd =
  let doc = "List available protocols and environments." in
  let action () =
    Format.printf "Protocols:@.";
    List.iter
      (fun p ->
        Format.printf "  %-9s %s%s@." (Rdt_core.Protocol.name p) (Rdt_core.Protocol.describe p)
          (if Rdt_core.Protocol.ensures_rdt p then "" else "  [no RDT guarantee]"))
      Rdt_core.Registry.all;
    Format.printf "@.Environments:@.";
    List.iter
      (fun (name, descr, _) -> Format.printf "  %-14s %s@." name descr)
      Rdt_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const action $ const ())

let scale_cmd =
  let doc = "Run the sharded n = 10^4-class engine and print its deterministic result." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the checkpoint-before-receive ring workload on the sharded event core \
         ($(b,Rdt_harness.Scale)) and prints the run's deterministic fields — counters, final \
         time and the checksum over every final dependency vector — to stdout.  The shard \
         partition is a function of $(b,-n) alone and cross-shard merges are ordered by a \
         seed-derived tiebreak, so stdout is byte-identical for every $(b,--jobs) value: diff \
         two runs to audit the engine.  Wall-clock timing goes to stderr, keeping stdout \
         diffable.";
    ]
  in
  let n_arg =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Number of processes (>= 2).")
  in
  let messages_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "messages" ] ~docv:"M" ~doc:"Total messages sent across the run.")
  in
  let seed_scale_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed of the run.")
  in
  let action n messages seed jobs =
    let jobs = resolve_jobs jobs in
    let params = { Rdt_harness.Scale.default_params with Rdt_harness.Scale.n; messages; seed } in
    (match Rdt_harness.Scale.validate_params params with
    | Ok () -> ()
    | Error m -> invalid_arg ("Cli: " ^ m));
    let t0 = Rdt_obs.Meter.now () in
    let r = Rdt_harness.Scale.run ~jobs params in
    let dt = Rdt_obs.Meter.now () -. t0 in
    Format.printf "%a@." Rdt_harness.Scale.pp_result r;
    Format.eprintf "wall: %.3fs (%.0f events/s, jobs=%d)@." dt
      (float_of_int r.Rdt_harness.Scale.events /. Float.max 1e-9 dt)
      jobs
  in
  Cmd.v
    (Cmd.info "scale" ~doc ~man)
    Term.(const action $ n_arg $ messages_arg $ seed_scale_arg $ jobs_arg)

let main =
  let doc = "communication-induced checkpointing with rollback-dependency trackability" in
  Cmd.group
    (Cmd.info "rdtsim" ~version:"1.0.0" ~doc)
    [
      run_cmd; verify_cmd; experiments_cmd; table_cmd; recover_cmd; snapshot_cmd; twophase_cmd;
      crashrun_cmd; trace_cmd; watch_cmd; serve_cmd; feed_cmd; fuzz_cmd; scale_cmd; list_cmd;
    ]

let () =
  (* config validation (fault specs, transport params, delay models) raises
     Invalid_argument — render it as a user error, not an internal one *)
  try exit (Cmd.eval ~catch:false main)
  with Invalid_argument msg ->
    Format.eprintf "rdtsim: %s@." msg;
    exit Cmd.Exit.cli_error
