(* Benchmark and reproduction harness.

   Default: regenerate every table and figure of the paper's evaluation
   (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record), then run the bechamel micro-benchmarks of
   the protocol and analysis hot paths.

     dune exec bench/main.exe                 # everything (10 seeds)
     dune exec bench/main.exe -- --quick      # 3 seeds
     dune exec bench/main.exe -- --micro      # micro-benchmarks only
     dune exec bench/main.exe -- --no-micro   # experiments only
     dune exec bench/main.exe -- --jobs 4     # shard the grid over 4 domains
     dune exec bench/main.exe -- --json out.json   # timing report path

   A machine-readable timing report (grid wall-clock, cells/sec, per-cell
   and per-protocol run cost, micro estimates) is always written; the
   default path is BENCH_results.json in the working directory. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one Test.make per hot path                        *)
(* ------------------------------------------------------------------ *)

let run_config protocol n =
  {
    (Rdt_core.Runtime.default_config (Rdt_workloads.Registry.find_exn "random") protocol) with
    Rdt_core.Runtime.n;
    seed = 42;
    max_messages = 300;
  }

let protocol_tests =
  (* whole-run cost per protocol: 300 messages of random traffic *)
  List.concat_map
    (fun n ->
      List.map
        (fun pname ->
          let protocol = Rdt_core.Registry.find_exn pname in
          Test.make
            ~name:(Printf.sprintf "run/%s/n=%d" pname n)
            (Staged.stage (fun () -> ignore (Rdt_core.Runtime.run (run_config protocol n)))))
        [ "none"; "fdas"; "bhmr-v1"; "bhmr" ])
    [ 8; 32 ]

let analysis_tests =
  let protocol = Rdt_core.Registry.find_exn "bhmr" in
  let pattern = (Rdt_core.Runtime.run (run_config protocol 8)).Rdt_core.Runtime.pattern in
  [
    Test.make ~name:"analysis/rgraph-build"
      (Staged.stage (fun () -> ignore (Rdt_pattern.Rgraph.build pattern)));
    Test.make ~name:"analysis/rgraph-reach-all"
      (Staged.stage (fun () ->
           let g = Rdt_pattern.Rgraph.build pattern in
           ignore (Rdt_pattern.Rgraph.reaches g (0, 0) (1, 1))));
    Test.make ~name:"analysis/tdv-replay"
      (Staged.stage (fun () -> ignore (Rdt_pattern.Tdv.compute pattern)));
    Test.make ~name:"analysis/rdt-check"
      (Staged.stage (fun () -> ignore (Rdt_core.Checker.run pattern)));
    Test.make ~name:"analysis/min-gcp-fixpoint"
      (Staged.stage (fun () -> ignore (Rdt_core.Min_gcp.minimum pattern (0, 1))));
    Test.make ~name:"analysis/recovery-line"
      (Staged.stage (fun () ->
           let bounds =
             Array.init (Rdt_pattern.Pattern.n pattern) (fun i ->
                 Rdt_pattern.Pattern.last_index pattern i)
           in
           ignore (Rdt_recovery.Recovery_line.max_consistent_bounded pattern bounds)));
  ]

let run_micro ~report () =
  Format.printf "@.== MICRO: bechamel micro-benchmarks (ns per run) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"rdt" ~fmt:"%s %s" (protocol_tests @ analysis_tests) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Rdt_dist.Tbl.bindings_sorted ~compare:String.compare results in
  let table = Rdt_harness.Table.create ~header:[ "benchmark"; "time/run"; "r²" ] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      let pretty =
        if Float.is_nan estimate then "-"
        else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
        else Printf.sprintf "%.1f ns" estimate
      in
      if not (Float.is_nan estimate) then
        Rdt_harness.Bench_report.add_micro report ~name ~ns:estimate;
      Rdt_harness.Table.add_row table
        [ name; pretty; (if Float.is_nan r2 then "-" else Printf.sprintf "%.4f" r2) ])
    (List.sort compare rows);
  Rdt_harness.Table.print table

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* value of "--flag V" anywhere in argv, if present *)
let rec arg_value flag = function
  | [] | [ _ ] -> None
  | f :: v :: rest -> if f = flag then Some v else arg_value flag (v :: rest)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let quick = has "--quick" in
  let micro_only = has "--micro" in
  let no_micro = has "--no-micro" in
  let jobs =
    match arg_value "--jobs" args with
    | None -> Rdt_harness.Pool.default_jobs ()
    | Some v -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> j
        | Some _ | None -> invalid_arg "bench: --jobs expects a positive integer")
  in
  let json = Option.value (arg_value "--json" args) ~default:"BENCH_results.json" in
  let report = Rdt_harness.Bench_report.create ~jobs in
  let t0 = Rdt_obs.Meter.now () in
  if not micro_only then Rdt_harness.Experiments.run_all ~quick ~jobs ~report ();
  if not no_micro then run_micro ~report ();
  Rdt_harness.Bench_report.set_wall report (Rdt_obs.Meter.now () -. t0);
  Rdt_harness.Bench_report.record_obs report;
  Rdt_harness.Bench_report.write json report;
  Format.printf "@.wrote %s (wall %.2fs, %d cells, jobs=%d)@." json
    (Rdt_harness.Bench_report.wall report)
    (List.length (Rdt_harness.Bench_report.cells report))
    jobs;
  Format.print_flush ()
