(* Sparse TDV replay.  Live vectors, message payloads and per-checkpoint
   snapshots are sparse {!Rdt_dist.Vclock}s: a checkpoint's vector costs
   O(entries its interval actually depends on), not O(n), so the offline
   replay of an n = 10^4 pattern allocates proportionally to the causal
   spread instead of (ckpts + msgs) * n words.  [at] still hands out the
   dense [int array] of the mli — materialized on first request and
   memoized, since callers compare those arrays structurally. *)

module Vclock = Rdt_dist.Vclock

type t = {
  pat : Pattern.t;
  snapshots : Vclock.t array array; (* snapshots.(i).(x) = TDV_{i,x} *)
  finals : Vclock.t array;
  dense : int array option array array; (* memoized [at] views *)
}

let compute pat =
  let n = Pattern.n pat in
  let vectors = Array.init n (fun _ -> Vclock.create ~n) in
  (* Entry i of P_i's vector is the index of the current interval; it is 0
     until the initial checkpoint C_{i,0} is taken (first event of each
     process), after which it is x+1 for the last checkpoint x. *)
  let dummy = Vclock.create ~n in
  let snapshots =
    Array.init n (fun i -> Array.map (fun _ -> dummy) (Pattern.checkpoints pat i))
  in
  let payloads = Array.make (Pattern.num_messages pat) dummy in
  let order = Pattern.events_in_gseq_order pat in
  Array.iter
    (fun (i, _pos, ev) ->
      match ev with
      | Types.Ckpt x ->
          snapshots.(i).(x) <- Vclock.copy vectors.(i);
          Vclock.set vectors.(i) i (x + 1)
      | Types.Send id -> payloads.(id) <- Vclock.copy vectors.(i)
      | Types.Recv id -> Vclock.merge vectors.(i) payloads.(id)
      | Types.Internal -> ())
    order;
  {
    pat;
    snapshots;
    finals = Array.map Vclock.copy vectors;
    dense = Array.map (Array.map (fun _ -> None)) snapshots;
  }

let check_ckpt t (i, x) =
  if not (Pattern.has_ckpt t.pat (i, x)) then
    invalid_arg (Printf.sprintf "Tdv.at: C(%d,%d) does not exist" i x)

let at t (i, x) =
  check_ckpt t (i, x);
  match t.dense.(i).(x) with
  | Some a -> a
  | None ->
      let a = Vclock.to_array t.snapshots.(i).(x) in
      t.dense.(i).(x) <- Some a;
      a

let trackable t (i, x) (j, y) =
  if i = j then x <= y
  else begin
    check_ckpt t (j, y);
    Vclock.get t.snapshots.(j).(y) i >= x
  end

let final t i = Vclock.to_array t.finals.(i)
