(** Fixed-capacity mutable bitsets.

    Used for dense reachability computations over rollback-dependency
    graphs, where set-union over 64 nodes at a time is the difference
    between O(V·E) and O(V·E/64). *)

type t

val create : int -> t
(** [create n] is an empty set over the universe [\[0, n)]. *)

val capacity : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the universe of [t] to at least
    [\[0, n)], keeping every member.  A no-op when [n <= capacity t];
    never shrinks.  Lets incremental analyses (the online checker) add
    nodes to live reachability sets without rebuilding them. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val union_into : t -> t -> bool
(** [union_into dst src] adds every element of [src] to [dst]; returns
    [true] iff [dst] changed.  @raise Invalid_argument if [src] has a
    larger capacity than [dst]. *)

val union_into_iter : t -> t -> f:(int -> unit) -> bool
(** Like {!union_into}, but calls [f i] for each element [i] of [src]
    that was {e not} already in [dst] (the delta).  Each element is
    reported exactly once over any sequence of unions into [dst], which
    is what gives incremental transitive closure its amortized bound.
    @raise Invalid_argument if [src] has a larger capacity than [dst]. *)

val copy : t -> t

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val equal : t -> t -> bool
