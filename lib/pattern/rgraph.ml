type node = int

type t = {
  pat : Pattern.t;
  offsets : int array; (* offsets.(i) = node id of C_{i,0} *)
  num_nodes : int;
  succ : node list array; (* deduplicated adjacency *)
  edge_count : int;
  mutable scc_of : int array option; (* node -> scc id *)
  mutable scc_reach : Bitset.t array option; (* scc id -> reachable node set *)
  mutable scc_nontrivial : bool array option; (* scc id -> cycle flag *)
}

let pattern g = g.pat

let num_nodes g = g.num_nodes

let node_of_ckpt g (i, x) =
  if not (Pattern.has_ckpt g.pat (i, x)) then
    invalid_arg (Printf.sprintf "Rgraph.node_of_ckpt: C(%d,%d) does not exist" i x);
  g.offsets.(i) + x

let ckpt_of_node g v =
  let n = Pattern.n g.pat in
  let rec find i =
    if i = n - 1 || g.offsets.(i + 1) > v then (i, v - g.offsets.(i)) else find (i + 1)
  in
  if v < 0 || v >= g.num_nodes then invalid_arg "Rgraph.ckpt_of_node: out of range";
  find 0

let successors g v = g.succ.(v)

let edge_count g = g.edge_count

let build pat =
  let n = Pattern.n pat in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !total;
    total := !total + Array.length (Pattern.checkpoints pat i)
  done;
  let num_nodes = !total in
  let raw = Array.make num_nodes [] in
  (* program-order edges *)
  for i = 0 to n - 1 do
    let last = Pattern.last_index pat i in
    for x = 0 to last - 1 do
      let v = offsets.(i) + x in
      raw.(v) <- (v + 1) :: raw.(v)
    done
  done;
  (* message edges: C_{src,send_interval} -> C_{dst,recv_interval} *)
  Array.iter
    (fun (m : Types.message) ->
      let v = offsets.(m.Types.src) + m.Types.send_interval in
      let w = offsets.(m.Types.dst) + m.Types.recv_interval in
      raw.(v) <- w :: raw.(v))
    (Pattern.messages pat);
  let edge_count = ref 0 in
  let succ =
    Array.map
      (fun l ->
        let d = List.sort_uniq Int.compare l in
        edge_count := !edge_count + List.length d;
        d)
      raw
  in
  {
    pat;
    offsets;
    num_nodes;
    succ;
    edge_count = !edge_count;
    scc_of = None;
    scc_reach = None;
    scc_nontrivial = None;
  }

(* Iterative Tarjan SCC.  SCCs are emitted in reverse topological order of
   the condensation: when an SCC is completed, all SCCs it can reach have
   already been emitted — which lets the reachability pass below fill
   bitsets in emission order. *)
let compute_scc g =
  let nv = g.num_nodes in
  let index = Array.make nv (-1) in
  let lowlink = Array.make nv 0 in
  let on_stack = Array.make nv false in
  let scc_of = Array.make nv (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  let nontrivial = ref [] in
  (* explicit DFS stack: (node, remaining successors) *)
  for root = 0 to nv - 1 do
    if index.(root) < 0 then begin
      let call = ref [ (root, ref g.succ.(root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: above -> (
            match !rest with
            | w :: tl ->
                rest := tl;
                if index.(w) < 0 then begin
                  index.(w) <- !next_index;
                  lowlink.(w) <- !next_index;
                  incr next_index;
                  stack := w :: !stack;
                  on_stack.(w) <- true;
                  call := (w, ref g.succ.(w)) :: !call
                end
                else if on_stack.(w) then
                  lowlink.(v) <- min lowlink.(v) index.(w)
            | [] ->
                (* finish v *)
                if lowlink.(v) = index.(v) then begin
                  let id = !next_scc in
                  incr next_scc;
                  let size = ref 0 in
                  let continue = ref true in
                  while !continue do
                    match !stack with
                    | [] -> assert false
                    | w :: tl ->
                        stack := tl;
                        on_stack.(w) <- false;
                        scc_of.(w) <- id;
                        incr size;
                        if w = v then continue := false
                  done;
                  let self_loop = List.exists (Int.equal v) g.succ.(v) in
                  nontrivial := (!size > 1 || self_loop) :: !nontrivial
                end;
                call := above;
                (match above with
                | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
                | [] -> ()))
      done
    end
  done;
  let nontrivial = Array.of_list (List.rev !nontrivial) in
  g.scc_of <- Some scc_of;
  g.scc_nontrivial <- Some nontrivial;
  (scc_of, !next_scc, nontrivial)

let ensure_reach g =
  match (g.scc_of, g.scc_reach) with
  | Some scc_of, Some reach -> (scc_of, reach)
  | _ ->
      let scc_of, num_scc, _ = compute_scc g in
      let reach = Array.init num_scc (fun _ -> Bitset.create g.num_nodes) in
      (* Emission order is reverse topological: scc 0 is completed first and
         can only reach already-numbered SCCs. *)
      for v = 0 to g.num_nodes - 1 do
        Bitset.add reach.(scc_of.(v)) v
      done;
      (* For each node, union successor SCC sets into its own SCC set, in
         SCC id order (successors have smaller or equal ids). *)
      let nodes_by_scc = Array.make num_scc [] in
      for v = g.num_nodes - 1 downto 0 do
        nodes_by_scc.(scc_of.(v)) <- v :: nodes_by_scc.(scc_of.(v))
      done;
      for id = 0 to num_scc - 1 do
        List.iter
          (fun v ->
            List.iter
              (fun w ->
                let wid = scc_of.(w) in
                if wid <> id then ignore (Bitset.union_into reach.(id) reach.(wid)))
              g.succ.(v))
          nodes_by_scc.(id)
      done;
      g.scc_reach <- Some reach;
      (scc_of, reach)

let reachable_set g a =
  let scc_of, reach = ensure_reach g in
  reach.(scc_of.(node_of_ckpt g a))

let reaches g a b =
  let vb = node_of_ckpt g b in
  Bitset.mem (reachable_set g a) vb

let max_reaching_index g ~from_pid (j, y) =
  let target = node_of_ckpt g (j, y) in
  let scc_of, reach = ensure_reach g in
  let last = Pattern.last_index g.pat from_pid in
  let reaches_x x = Bitset.mem reach.(scc_of.(g.offsets.(from_pid) + x)) target in
  (* If C_{i,x} reaches the target then so does every C_{i,x'} with
     x' < x (via program-order edges), so the predicate is downward closed
     and the maximum is found by binary search. *)
  if not (reaches_x 0) then -1
  else begin
    let lo = ref 0 and hi = ref last in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if reaches_x mid then lo := mid else hi := mid - 1
    done;
    !lo
  end

let in_cycle g a =
  let v = node_of_ckpt g a in
  (match g.scc_of with None -> ignore (compute_scc g) | Some _ -> ());
  match (g.scc_of, g.scc_nontrivial) with
  | Some scc_of, Some nontrivial -> nontrivial.(scc_of.(v))
  | _ -> assert false

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph rgraph {\n  rankdir=LR;\n";
  for v = 0 to g.num_nodes - 1 do
    let i, x = ckpt_of_node g v in
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"C(%d,%d)\"];\n" v i x)
  done;
  for v = 0 to g.num_nodes - 1 do
    List.iter (fun w -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" v w)) g.succ.(v)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
