(** Checkpoint and communication patterns ([(H, C_H)] in the paper).

    A pattern is the complete record of a finished distributed computation:
    the per-process event sequences (sends, deliveries, checkpoints,
    internal events), the set of local checkpoints, and the messages with
    their send/delivery intervals.  Patterns are immutable once built; they
    are produced either by the simulation runtime or by hand through
    {!Builder} (used extensively in tests, e.g. to encode Figure 1 of the
    paper).

    A {e global sequence number} is attached to every event: a total order
    consistent with causality (deliveries always after the matching send).
    Offline analyses (transitive-dependency-vector replay, causal chains)
    process events in that order. *)

type t

(** {1 Building patterns} *)

module Builder : sig
  type b

  val create : n:int -> b
  (** A builder over processes [0 .. n-1].  The initial checkpoints
      [C_{i,0}] are taken automatically. *)

  val checkpoint : ?kind:Types.ckpt_kind -> ?tdv:int array -> ?time:int -> b -> Types.pid -> int
  (** [checkpoint b i] records that process [i] takes its next local
      checkpoint now; returns its index.  [kind] defaults to [Basic]. *)

  val send : ?time:int -> b -> src:Types.pid -> dst:Types.pid -> int
  (** [send b ~src ~dst] records a send event and returns a message handle
      to pass to {!recv}.  @raise Invalid_argument if [src = dst] or a pid
      is out of range. *)

  val recv : ?time:int -> b -> int -> unit
  (** [recv b h] records the delivery of message [h] at its destination.
      @raise Invalid_argument if [h] was already delivered or unknown. *)

  val internal : ?time:int -> b -> Types.pid -> unit
  (** A purely local event (does not affect dependencies; kept so traces
      are faithful). *)

  val finish : ?final_checkpoints:bool -> b -> t
  (** Freezes the pattern.  When [final_checkpoints] (default [true]), a
      [Final] checkpoint is appended to every process whose last event is
      not already a checkpoint, so every event lies in a complete interval.
      @raise Invalid_argument if some message was never delivered. *)

  val in_flight : b -> int list
  (** Handles of messages sent but not yet delivered. *)
end

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality: same processes, event sequences, global
    sequence numbers, checkpoints (including kinds and recorded TDVs)
    and messages.  Use this — never polymorphic [=] — to compare
    patterns: [t] carries an internal lazily built cache that polymorphic
    equality can see, so [=] may answer [false] on structurally equal
    patterns depending on which accessors were called first. *)

val compare : t -> t -> int
(** A total order consistent with {!equal} (same caveat about
    polymorphic [compare]). *)

(** {1 Accessors} *)

val n : t -> int
(** Number of processes. *)

val events : t -> Types.pid -> Types.event array
(** The event sequence of a process (do not mutate). *)

val gseq : t -> Types.pid -> pos:int -> int
(** Global sequence number of the event at [pos]. *)

val checkpoints : t -> Types.pid -> Types.ckpt array
(** The checkpoints of a process, by index; at least [C_{i,0}]. *)

val last_index : t -> Types.pid -> int
(** Index of the last checkpoint of the process. *)

val ckpt : t -> Types.ckpt_id -> Types.ckpt
(** @raise Invalid_argument if the checkpoint does not exist. *)

val has_ckpt : t -> Types.ckpt_id -> bool

val messages : t -> Types.message array
(** All messages, indexed by message id (do not mutate). *)

val message : t -> int -> Types.message

val num_messages : t -> int

val num_checkpoints : t -> int
(** Total over all processes. *)

val count_kind : t -> Types.ckpt_kind -> int

val interval_of_pos : t -> Types.pid -> pos:int -> int
(** The interval [I_{i,x}] containing the event at [pos]: [x] is the index
    of the first checkpoint at a position [> pos] (every event is inside a
    complete interval; checkpoints themselves delimit, with the convention
    that the checkpoint event at position [p] has interval equal to its own
    index). *)

val sends_of : t -> Types.pid -> int array
(** Message ids sent by the process, in increasing send position. *)

val recvs_of : t -> Types.pid -> int array
(** Message ids delivered at the process, in increasing delivery
    position. *)

val sends_between : t -> Types.pid -> lo:int -> hi:int -> int list
(** Message ids sent by the process at positions [p] with [lo < p < hi]. *)

val iter_ckpts : t -> (Types.ckpt -> unit) -> unit

val fold_ckpts : t -> init:'a -> f:('a -> Types.ckpt -> 'a) -> 'a

val events_in_gseq_order : t -> (Types.pid * int * Types.event) array
(** All events of all processes as [(pid, pos, event)], sorted by global
    sequence number.  Computed once and cached. *)

val validate : t -> (unit, string) result
(** Structural sanity check: positions consistent, intervals correct,
    deliveries after sends in the global order, checkpoint indices dense. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: processes, events, messages, checkpoints by kind. *)
