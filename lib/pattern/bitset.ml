(* Chunked, Roaring-style compressed bitset.

   The universe [0, capacity) is cut into chunks of 4096 indices.  A chunk
   is materialized only once a member lands in it, as either

   - [Sparse]: a sorted array of the member's low 12 bits — O(members)
     words while the chunk holds fewer than [promote_at] elements; or
   - [Dense]: a 512-byte bitmap (64 words of 64 bits), the representation
     of the old flat implementation, promoted to when a sparse chunk would
     outgrow the bitmap's footprint.

   An empty set over n elements therefore costs O(n / 4096) words instead
   of O(n / 64): the per-node reached-by sets of the online checker and
   the SCC reachability sets of {!Rgraph} stay proportional to what they
   actually contain, which is what makes n = 10^4 runs allocate linearly.
   The observable semantics — including the exactly-once, ascending delta
   reporting of [union_into_iter] that incremental transitive closure
   depends on — are those of the dense implementation, bit for bit; the
   old code survives as the differential-test reference
   [test/helpers/dense_bitset.ml]. *)

let chunk_bits = 12

let chunk_size = 1 lsl chunk_bits (* 4096 *)

let chunk_mask = chunk_size - 1

let chunk_words = chunk_size / 64 (* 64 words = 512 bytes *)

(* A sparse chunk of exactly [promote_at] members occupies the same
   8 * 64 bytes as the bitmap it is promoted to; beyond that, dense is
   both smaller and faster. *)
let promote_at = 64

type chunk =
  | Sparse of { mutable elts : int array; mutable len : int } (* sorted low bits *)
  | Dense of Bytes.t

type t = { mutable chunks : chunk option array; mutable capacity : int }

let slots_for n = (n + chunk_mask) lsr chunk_bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { chunks = Array.make (slots_for n) None; capacity = n }

let capacity t = t.capacity

let ensure_capacity t n =
  if n > t.capacity then begin
    let old_slots = Array.length t.chunks in
    let new_slots = slots_for n in
    if new_slots > old_slots then begin
      let chunks = Array.make new_slots None in
      Array.blit t.chunks 0 chunks 0 old_slots;
      t.chunks <- chunks
    end;
    t.capacity <- n
  end

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

(* ---- sparse-chunk primitives ------------------------------------- *)

(* First position in [elts.(0..len)] holding a value >= [x]. *)
let lower_bound elts len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if elts.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let sparse_mem s len x =
  let p = lower_bound s len x in
  p < len && s.(p) = x

let dense_of_sparse elts len =
  let b = Bytes.make (8 * chunk_words) '\000' in
  for k = 0 to len - 1 do
    let x = elts.(k) in
    let w = x lsr 6 and bit = x land 63 in
    Bytes.set_int64_le b (8 * w)
      (Int64.logor (Bytes.get_int64_le b (8 * w)) (Int64.shift_left 1L bit))
  done;
  b

(* ---- per-chunk add / mem / remove -------------------------------- *)

let chunk_add t slot low =
  match t.chunks.(slot) with
  | None ->
      let elts = Array.make 4 0 in
      elts.(0) <- low;
      t.chunks.(slot) <- Some (Sparse { elts; len = 1 })
  | Some (Dense b) ->
      let w = low lsr 6 and bit = low land 63 in
      Bytes.set_int64_le b (8 * w)
        (Int64.logor (Bytes.get_int64_le b (8 * w)) (Int64.shift_left 1L bit))
  | Some (Sparse s) ->
      let p = lower_bound s.elts s.len low in
      if not (p < s.len && s.elts.(p) = low) then
        if s.len = promote_at then begin
          let b = dense_of_sparse s.elts s.len in
          let w = low lsr 6 and bit = low land 63 in
          Bytes.set_int64_le b (8 * w)
            (Int64.logor (Bytes.get_int64_le b (8 * w)) (Int64.shift_left 1L bit));
          t.chunks.(slot) <- Some (Dense b)
        end
        else begin
          if s.len = Array.length s.elts then begin
            let bigger = Array.make (2 * Array.length s.elts) 0 in
            Array.blit s.elts 0 bigger 0 s.len;
            s.elts <- bigger
          end;
          Array.blit s.elts p s.elts (p + 1) (s.len - p);
          s.elts.(p) <- low;
          s.len <- s.len + 1
        end

let mem t i =
  check t i;
  match t.chunks.(i lsr chunk_bits) with
  | None -> false
  | Some (Sparse s) -> sparse_mem s.elts s.len (i land chunk_mask)
  | Some (Dense b) ->
      let low = i land chunk_mask in
      let w = low lsr 6 and bit = low land 63 in
      Int64.logand (Bytes.get_int64_le b (8 * w)) (Int64.shift_left 1L bit) <> 0L

let add t i =
  check t i;
  chunk_add t (i lsr chunk_bits) (i land chunk_mask)

let remove t i =
  check t i;
  match t.chunks.(i lsr chunk_bits) with
  | None -> ()
  | Some (Dense b) ->
      let low = i land chunk_mask in
      let w = low lsr 6 and bit = low land 63 in
      Bytes.set_int64_le b (8 * w)
        (Int64.logand (Bytes.get_int64_le b (8 * w))
           (Int64.lognot (Int64.shift_left 1L bit)))
  | Some (Sparse s) ->
      let low = i land chunk_mask in
      let p = lower_bound s.elts s.len low in
      if p < s.len && s.elts.(p) = low then begin
        Array.blit s.elts (p + 1) s.elts p (s.len - p - 1);
        s.len <- s.len - 1
      end

(* ---- iteration ---------------------------------------------------- *)

let bits_of_word f base word =
  let word = ref word in
  while !word <> 0L do
    let b = Int64.logand !word (Int64.neg !word) in
    let rec log2 v acc = if v = 1L then acc else log2 (Int64.shift_right_logical v 1) (acc + 1) in
    f (base + log2 b 0);
    word := Int64.logxor !word b
  done

let chunk_iter f base = function
  | None -> ()
  | Some (Sparse s) ->
      for k = 0 to s.len - 1 do
        f (base + s.elts.(k))
      done
  | Some (Dense b) ->
      for w = 0 to chunk_words - 1 do
        bits_of_word f (base + (64 * w)) (Bytes.get_int64_le b (8 * w))
      done

let iter f t =
  for slot = 0 to Array.length t.chunks - 1 do
    chunk_iter f (slot lsl chunk_bits) t.chunks.(slot)
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

(* ---- cardinal / equality ----------------------------------------- *)

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let chunk_cardinal = function
  | None -> 0
  | Some (Sparse s) -> s.len
  | Some (Dense b) ->
      let total = ref 0 in
      for w = 0 to chunk_words - 1 do
        total := !total + popcount64 (Bytes.get_int64_le b (8 * w))
      done;
      !total

let cardinal t =
  let total = ref 0 in
  Array.iter (fun c -> total := !total + chunk_cardinal c) t.chunks;
  !total

(* Equality is over contents, not representation: a sparse chunk, the
   dense chunk it would promote to, an all-zero dense chunk and a missing
   chunk can all describe the same set. *)
let chunk_word base = function
  | None -> 0L
  | Some (Dense b) -> Bytes.get_int64_le b (8 * base)
  | Some (Sparse s) ->
      let lo = base * 64 in
      let p = ref (lower_bound s.elts s.len lo) in
      let word = ref 0L in
      while !p < s.len && s.elts.(!p) < lo + 64 do
        word := Int64.logor !word (Int64.shift_left 1L (s.elts.(!p) - lo));
        incr p
      done;
      !word

let equal a b =
  a.capacity = b.capacity
  &&
  let slots = slots_for a.capacity in
  let rec slot_eq slot =
    slot >= slots
    ||
    let ca = a.chunks.(slot) and cb = b.chunks.(slot) in
    let rec word_eq w =
      w >= chunk_words || (chunk_word w ca = chunk_word w cb && word_eq (w + 1))
    in
    word_eq 0 && slot_eq (slot + 1)
  in
  slot_eq 0

let copy t =
  {
    capacity = t.capacity;
    chunks =
      Array.map
        (function
          | None -> None
          | Some (Dense b) -> Some (Dense (Bytes.sub b 0 (Bytes.length b)))
          | Some (Sparse s) -> Some (Sparse { elts = Array.sub s.elts 0 (max 1 s.len); len = s.len }))
        t.chunks;
  }

(* ---- union -------------------------------------------------------- *)

(* Union [src]'s chunk [sc] into [dst]'s slot [slot], calling [report]
   (ascending) for every element newly added to [dst]; returns true iff
   [dst] changed.  [report] may be a no-op for the plain union. *)
let chunk_union_into t slot sc ~base ~report =
  match sc with
  | None -> false
  | Some src_chunk -> (
      match t.chunks.(slot) with
      | None ->
          (* fresh copy; everything is new *)
          let copied =
            match src_chunk with
            | Dense b -> Dense (Bytes.sub b 0 (Bytes.length b))
            | Sparse s -> Sparse { elts = Array.sub s.elts 0 (max 1 s.len); len = s.len }
          in
          let any = ref false in
          chunk_iter
            (fun i ->
              any := true;
              report i)
            base (Some copied);
          if !any then begin
            t.chunks.(slot) <- Some copied;
            true
          end
          else false
      | Some (Dense db) -> (
          match src_chunk with
          | Dense sb ->
              let changed = ref false in
              for w = 0 to chunk_words - 1 do
                let d = Bytes.get_int64_le db (8 * w) and s = Bytes.get_int64_le sb (8 * w) in
                let delta = Int64.logand s (Int64.lognot d) in
                if delta <> 0L then begin
                  Bytes.set_int64_le db (8 * w) (Int64.logor d s);
                  changed := true;
                  bits_of_word report (base + (64 * w)) delta
                end
              done;
              !changed
          | Sparse s ->
              let changed = ref false in
              for k = 0 to s.len - 1 do
                let x = s.elts.(k) in
                let w = x lsr 6 and bit = x land 63 in
                let d = Bytes.get_int64_le db (8 * w) in
                if Int64.logand d (Int64.shift_left 1L bit) = 0L then begin
                  Bytes.set_int64_le db (8 * w) (Int64.logor d (Int64.shift_left 1L bit));
                  changed := true;
                  report (base + x)
                end
              done;
              !changed)
      | Some (Sparse d) -> (
          match src_chunk with
          | Sparse s ->
              (* merge two sorted arrays, reporting src-only elements *)
              let merged = Array.make (d.len + s.len) 0 in
              let delta = Array.make s.len 0 in
              let nd = ref 0 and i = ref 0 and j = ref 0 and m = ref 0 in
              while !i < d.len || !j < s.len do
                if !j >= s.len || (!i < d.len && d.elts.(!i) < s.elts.(!j)) then begin
                  merged.(!m) <- d.elts.(!i);
                  incr i;
                  incr m
                end
                else if !i >= d.len || d.elts.(!i) > s.elts.(!j) then begin
                  merged.(!m) <- s.elts.(!j);
                  delta.(!nd) <- s.elts.(!j);
                  incr nd;
                  incr j;
                  incr m
                end
                else begin
                  merged.(!m) <- d.elts.(!i);
                  incr i;
                  incr j;
                  incr m
                end
              done;
              if !nd = 0 then false
              else begin
                if !m > promote_at then t.chunks.(slot) <- Some (Dense (dense_of_sparse merged !m))
                else begin
                  d.elts <- merged;
                  d.len <- !m
                end;
                for k = 0 to !nd - 1 do
                  report (base + delta.(k))
                done;
                true
              end
          | Dense sb ->
              (* promote the destination, then run the dense/dense loop *)
              let db = dense_of_sparse d.elts d.len in
              t.chunks.(slot) <- Some (Dense db);
              let changed = ref false in
              for w = 0 to chunk_words - 1 do
                let dw = Bytes.get_int64_le db (8 * w) and sw = Bytes.get_int64_le sb (8 * w) in
                let delta = Int64.logand sw (Int64.lognot dw) in
                if delta <> 0L then begin
                  Bytes.set_int64_le db (8 * w) (Int64.logor dw sw);
                  changed := true;
                  bits_of_word report (base + (64 * w)) delta
                end
              done;
              !changed))

let union_into_gen ~what dst src ~report =
  if src.capacity > dst.capacity then invalid_arg ("Bitset." ^ what ^ ": capacity mismatch");
  let changed = ref false in
  for slot = 0 to Array.length src.chunks - 1 do
    if chunk_union_into dst slot src.chunks.(slot) ~base:(slot lsl chunk_bits) ~report then
      changed := true
  done;
  !changed

let union_into dst src = union_into_gen ~what:"union_into" dst src ~report:(fun _ -> ())

let union_into_iter dst src ~f = union_into_gen ~what:"union_into_iter" dst src ~report:f
