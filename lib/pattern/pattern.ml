type t = {
  n : int;
  events : Types.event array array;
  gseqs : int array array;
  ckpts : Types.ckpt array array;
  msgs : Types.message array;
  sends : int array array; (* per process, message ids by send position *)
  recvs : int array array; (* per process, message ids by delivery position *)
  mutable gorder : (Types.pid * int * Types.event) array option; (* cache *)
}

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type pending_msg = {
    p_id : int;
    p_src : int;
    p_dst : int;
    p_send_pos : int;
    p_send_interval : int;
    p_send_gseq : int;
    mutable p_recv_pos : int; (* -1 while in flight *)
    mutable p_recv_interval : int;
    mutable p_recv_gseq : int;
  }

  type proc = {
    mutable evs : Types.event list; (* reversed *)
    mutable evs_gseq : int list; (* reversed *)
    mutable n_events : int;
    mutable cks : Types.ckpt list; (* reversed *)
    mutable n_ckpts : int; (* = current interval index *)
  }

  type b = {
    n : int;
    procs : proc array;
    mutable msgs : pending_msg option array; (* slot = message id *)
    mutable n_msgs : int;
    mutable next_gseq : int;
    mutable frozen : bool;
  }

  let check_pid b i =
    if i < 0 || i >= b.n then invalid_arg "Pattern.Builder: pid out of range"

  let check_live b = if b.frozen then invalid_arg "Pattern.Builder: already finished"

  let push_event b i ev =
    let p = b.procs.(i) in
    let pos = p.n_events in
    p.evs <- ev :: p.evs;
    p.evs_gseq <- b.next_gseq :: p.evs_gseq;
    b.next_gseq <- b.next_gseq + 1;
    p.n_events <- pos + 1;
    pos

  let checkpoint_unchecked ?(kind = Types.Basic) ?tdv ?(time = 0) b i =
    let p = b.procs.(i) in
    let index = p.n_ckpts in
    let pos = push_event b i (Types.Ckpt index) in
    let ck = { Types.owner = i; index; kind; pos; time; tdv } in
    p.cks <- ck :: p.cks;
    p.n_ckpts <- index + 1;
    index

  let create ~n =
    if n <= 0 then invalid_arg "Pattern.Builder.create: n must be positive";
    let b =
      {
        n;
        procs =
          Array.init n (fun _ ->
              { evs = []; evs_gseq = []; n_events = 0; cks = []; n_ckpts = 0 });
        msgs = Array.make 64 None;
        n_msgs = 0;
        next_gseq = 0;
        frozen = false;
      }
    in
    for i = 0 to n - 1 do
      ignore (checkpoint_unchecked ~kind:Types.Initial b i)
    done;
    b

  let checkpoint ?kind ?tdv ?time b i =
    check_live b;
    check_pid b i;
    checkpoint_unchecked ?kind ?tdv ?time b i

  let send ?time:_ b ~src ~dst =
    check_live b;
    check_pid b src;
    check_pid b dst;
    if src = dst then invalid_arg "Pattern.Builder.send: src = dst";
    let id = b.n_msgs in
    let gseq = b.next_gseq in
    let pos = push_event b src (Types.Send id) in
    let m =
      {
        p_id = id;
        p_src = src;
        p_dst = dst;
        p_send_pos = pos;
        p_send_interval = b.procs.(src).n_ckpts;
        p_send_gseq = gseq;
        p_recv_pos = -1;
        p_recv_interval = -1;
        p_recv_gseq = -1;
      }
    in
    if id >= Array.length b.msgs then begin
      (* grow geometrically from the current capacity — never from the
         triggering id, which would tie the new size to the caller *)
      let cap = ref (max 1 (Array.length b.msgs)) in
      while id >= !cap do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap None in
      Array.blit b.msgs 0 bigger 0 b.n_msgs;
      b.msgs <- bigger
    end;
    b.msgs.(id) <- Some m;
    b.n_msgs <- id + 1;
    id

  let find_msg b h =
    if h < 0 || h >= b.n_msgs then invalid_arg "Pattern.Builder: unknown message handle";
    match b.msgs.(h) with
    | Some m -> m
    | None -> invalid_arg "Pattern.Builder: unknown message handle"

  let recv ?time:_ b h =
    check_live b;
    let m = find_msg b h in
    if m.p_recv_pos >= 0 then invalid_arg "Pattern.Builder.recv: message already delivered";
    let gseq = b.next_gseq in
    let pos = push_event b m.p_dst (Types.Recv h) in
    m.p_recv_pos <- pos;
    m.p_recv_interval <- b.procs.(m.p_dst).n_ckpts;
    m.p_recv_gseq <- gseq

  let internal ?time:_ b i =
    check_live b;
    check_pid b i;
    ignore (push_event b i Types.Internal)

  let in_flight b =
    let out = ref [] in
    for id = b.n_msgs - 1 downto 0 do
      match b.msgs.(id) with
      | Some m when m.p_recv_pos < 0 -> out := id :: !out
      | Some _ | None -> ()
    done;
    !out

  let finish ?(final_checkpoints = true) b =
    check_live b;
    (match in_flight b with
    | [] -> ()
    | _ :: _ -> invalid_arg "Pattern.Builder.finish: undelivered messages remain");
    if final_checkpoints then
      for i = 0 to b.n - 1 do
        let p = b.procs.(i) in
        let last_is_ckpt =
          match p.evs with Types.Ckpt _ :: _ -> true | _ -> false
        in
        if not last_is_ckpt then ignore (checkpoint_unchecked ~kind:Types.Final b i)
      done;
    b.frozen <- true;
    let events = Array.map (fun p -> Array.of_list (List.rev p.evs)) b.procs in
    let gseqs = Array.map (fun p -> Array.of_list (List.rev p.evs_gseq)) b.procs in
    let ckpts = Array.map (fun p -> Array.of_list (List.rev p.cks)) b.procs in
    let msgs =
      Array.init b.n_msgs (fun id ->
          match b.msgs.(id) with
          | None -> assert false
          | Some m ->
              {
                Types.id = m.p_id;
                src = m.p_src;
                dst = m.p_dst;
                send_pos = m.p_send_pos;
                recv_pos = m.p_recv_pos;
                send_interval = m.p_send_interval;
                recv_interval = m.p_recv_interval;
                send_gseq = m.p_send_gseq;
                recv_gseq = m.p_recv_gseq;
              })
    in
    let sends = Array.make b.n [||] and recvs = Array.make b.n [||] in
    for i = 0 to b.n - 1 do
      let ss = ref [] and rs = ref [] in
      Array.iter
        (fun ev ->
          match ev with
          | Types.Send id -> ss := id :: !ss
          | Types.Recv id -> rs := id :: !rs
          | Types.Ckpt _ | Types.Internal -> ())
        events.(i);
      sends.(i) <- Array.of_list (List.rev !ss);
      recvs.(i) <- Array.of_list (List.rev !rs)
    done;
    { n = b.n; events; gseqs; ckpts; msgs; sends; recvs; gorder = None }
end

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

(* Equality and ordering must ignore [gorder]: it is a lazily filled
   cache, so two structurally identical patterns can differ on it (one
   was iterated, the other was not).  Polymorphic [=] on [t] sees the
   cache and is therefore wrong; these are the only sanctioned
   comparisons (the rdtlint D2 rule flags polymorphic compare at [t]).
   Every remaining field is immutable first-order data, where structural
   comparison is exactly componentwise mathematical equality. *)
let structure t = (t.n, t.events, t.gseqs, t.ckpts, t.msgs, t.sends, t.recvs)

let equal a b = structure a = structure b

let compare a b = Stdlib.compare (structure a) (structure b)

let n t = t.n

let events t i = t.events.(i)

let gseq t i ~pos = t.gseqs.(i).(pos)

let checkpoints t i = t.ckpts.(i)

let last_index t i = Array.length t.ckpts.(i) - 1

let has_ckpt t (i, x) = i >= 0 && i < t.n && x >= 0 && x < Array.length t.ckpts.(i)

let ckpt t ((i, x) as id) =
  if not (has_ckpt t id) then
    invalid_arg (Printf.sprintf "Pattern.ckpt: C(%d,%d) does not exist" i x);
  t.ckpts.(i).(x)

let messages t = t.msgs

let message t id = t.msgs.(id)

let num_messages t = Array.length t.msgs

let num_checkpoints t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.ckpts

let count_kind t k =
  Array.fold_left
    (fun acc a ->
      Array.fold_left (fun acc c -> if c.Types.kind = k then acc + 1 else acc) acc a)
    0 t.ckpts

let interval_of_pos t i ~pos =
  (* Binary search for the first checkpoint with c.pos >= pos; intervals
     end at their checkpoint, and a checkpoint event belongs to its own
     index. *)
  let cks = t.ckpts.(i) in
  let lo = ref 0 and hi = ref (Array.length cks - 1) in
  if pos > cks.(!hi).Types.pos then
    invalid_arg "Pattern.interval_of_pos: event after final checkpoint";
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cks.(mid).Types.pos >= pos then hi := mid else lo := mid + 1
  done;
  cks.(!lo).Types.index

let sends_of t i = t.sends.(i)

let recvs_of t i = t.recvs.(i)

let sends_between t i ~lo ~hi =
  let out = ref [] in
  let arr = t.sends.(i) in
  for k = Array.length arr - 1 downto 0 do
    let m = t.msgs.(arr.(k)) in
    if m.Types.send_pos > lo && m.Types.send_pos < hi then out := m.Types.id :: !out
  done;
  !out

let iter_ckpts t f = Array.iter (fun a -> Array.iter f a) t.ckpts

let fold_ckpts t ~init ~f =
  Array.fold_left (fun acc a -> Array.fold_left f acc a) init t.ckpts

let events_in_gseq_order t =
  match t.gorder with
  | Some a -> a
  | None ->
      let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.events in
      let out = Array.make total (0, 0, Types.Internal) in
      let keys = Array.make total 0 in
      let k = ref 0 in
      for i = 0 to t.n - 1 do
        Array.iteri
          (fun pos ev ->
            out.(!k) <- (i, pos, ev);
            keys.(!k) <- t.gseqs.(i).(pos);
            incr k)
          t.events.(i)
      done;
      (* sort [out] by [keys] *)
      let idx = Array.init total (fun i -> i) in
      Array.sort (fun a b -> Int.compare keys.(a) keys.(b)) idx;
      let sorted = Array.map (fun j -> out.(j)) idx in
      t.gorder <- Some sorted;
      sorted

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ok = Ok () in
  let check_proc i =
    let cks = t.ckpts.(i) in
    if Array.length cks = 0 then err "process %d has no checkpoint" i
    else begin
      let bad = ref ok in
      Array.iteri
        (fun x c ->
          if c.Types.index <> x then bad := err "process %d: checkpoint index %d at slot %d" i c.Types.index x
          else if c.Types.owner <> i then bad := err "process %d: checkpoint with owner %d" i c.Types.owner
          else
            match t.events.(i).(c.Types.pos) with
            | Types.Ckpt y when y = x -> ()
            | _ -> bad := err "process %d: checkpoint %d position mismatch" i x)
        cks;
      !bad
    end
  in
  let check_msg (m : Types.message) =
    if m.Types.recv_pos < 0 then err "message %d undelivered" m.Types.id
    else if m.Types.recv_gseq <= m.Types.send_gseq then
      err "message %d delivered before sent in the global order" m.Types.id
    else if interval_of_pos t m.Types.src ~pos:m.Types.send_pos <> m.Types.send_interval
    then err "message %d: wrong send interval" m.Types.id
    else if interval_of_pos t m.Types.dst ~pos:m.Types.recv_pos <> m.Types.recv_interval
    then err "message %d: wrong recv interval" m.Types.id
    else ok
  in
  let rec first_error = function
    | [] -> ok
    | r :: rest -> ( match r with Ok () -> first_error rest | Error _ -> r)
  in
  let proc_checks = List.init t.n check_proc in
  let msg_checks = Array.to_list (Array.map check_msg t.msgs) in
  first_error (proc_checks @ msg_checks)

let pp_summary ppf t =
  let total_events = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.events in
  Format.fprintf ppf
    "pattern: %d processes, %d events, %d messages, %d checkpoints (%d basic, %d forced)"
    t.n total_events (Array.length t.msgs) (num_checkpoints t) (count_kind t Types.Basic)
    (count_kind t Types.Forced)
