(** Online crash-and-recovery simulation.

    The {!Rdt_core.Runtime} analyses failures offline, on the finished
    pattern; this runtime injects fail-stop crashes {e during} the run and
    executes a full checkpoint-based recovery:

    + at the crash instant the process stops: its volatile state (every
      event after its last checkpoint) is lost, its timers stop, and
      messages addressed to it are buffered by the (reliable) channels;
    + at repair time the system performs a synchronous recovery, as in
      Koo-Toueg-style rollback: every live process first secures its
      current state as a recovery checkpoint, the {e recovery line} — the
      maximum consistent global checkpoint under the crashed process's
      last durable checkpoint — is computed, and every process rolls back
      to its line checkpoint, restoring the {e protocol state} saved with
      it (each checkpoint carries a deep copy of the CIC protocol state,
      so dependency tracking resumes exactly where the checkpoint left
      it);
    + rolled-back sends are undone: their messages are discarded from the
      channels (dead messages never reach the application);
    + messages sent before the line whose deliveries were rolled back are
      {e replayed} from the sender-side log, re-entering the channels at
      repair time;
    + execution then continues — the application takes a different but
      consistent path (fail-stop recovery guarantees consistency, not
      deterministic re-execution).

    The result is the pattern of the {e surviving} execution (undone
    events do not appear), which for an RDT protocol must again satisfy
    RDT — the strongest end-to-end test of the protocol implementations,
    exercised by the test suite across crash plans, protocols and
    environments. *)

type crash = {
  victim : int;  (** process that fails *)
  at : int;  (** simulated crash time *)
  repair_delay : int;  (** downtime before the synchronous recovery *)
}

type config = {
  n : int;
  seed : int;
  env : Rdt_dist.Env.t;
  protocol : Rdt_core.Protocol.t;
  channel : Rdt_dist.Channel.spec;
  basic_period : int * int;
  max_messages : int;
  max_time : int;
  crashes : crash list;
  faults : Rdt_dist.Faults.spec;
      (** network faults under the crashes; requires [transport <> None]
          unless {!Rdt_dist.Faults.none} *)
  transport : Rdt_dist.Transport.params option;
      (** [None] (the default) keeps the reliable channels; [Some params]
          sends every message through a per-message stop-and-wait reliable
          transport over the faulty network (retransmission with the same
          backoff/jitter/[max_retx] policy as {!Rdt_dist.Transport} — the
          sliding-window link itself is not reused because rollback undoes
          sends and replays deliveries, which a fixed sequence history
          cannot express).  Crashes compose with the network: packets to a
          crashed process are lost and recovered by retransmission, a
          crashed sender's timers die with its volatile state and are
          re-armed at recovery, and a message still unacknowledged after
          [max_retx] retries is abandoned — it appears in neither the
          surviving pattern nor the delivered count, and is tallied in
          [metrics.undeliverable]. *)
  trace : Rdt_obs.Trace.t;
      (** structured event trace ({!Rdt_obs.Trace.null} by default).  On
          top of the {!Rdt_core.Runtime} events it records rollbacks
          (one per process actually truncated at a recovery) and message
          replays, so {!Rdt_obs.Replay.rebuild} reproduces the surviving
          pattern. *)
}

val default_config : Rdt_dist.Env.t -> Rdt_core.Protocol.t -> config
(** Same defaults as {!Rdt_core.Runtime.default_config}, no crashes, no
    faults, no transport. *)

val configure :
  ?n:int ->
  ?seed:int ->
  ?messages:int ->
  ?channel:Rdt_dist.Channel.spec ->
  ?basic_period:int * int ->
  ?max_time:int ->
  ?crashes:crash list ->
  ?faults:Rdt_dist.Faults.spec ->
  ?transport:Rdt_dist.Transport.params ->
  ?trace:Rdt_obs.Trace.t ->
  Rdt_dist.Env.t ->
  Rdt_core.Protocol.t ->
  config
(** Labelled constructor over {!default_config}, mirroring
    {!Rdt_core.Runtime.configure}: every optional argument defaults to
    the corresponding default field. *)

type recovery = {
  crash : crash;
  line : int array;  (** the recovery line rolled back to *)
  events_undone : int;
  checkpoints_undone : int;
  messages_undone : int;  (** sends discarded (dead messages) *)
  messages_replayed : int;  (** deliveries re-injected from the log *)
}

type metrics = {
  messages_delivered : int;  (** surviving deliveries in the final pattern *)
  basic : int;
  forced : int;  (** includes the recovery checkpoints *)
  duration : int;
  total_events_undone : int;
  total_messages_replayed : int;
  retransmissions : int;  (** data transmissions beyond each message's first *)
  packets_dropped : int;
      (** copies lost to drop sampling, partitions, or a crashed host *)
  undeliverable : int;  (** messages abandoned after [max_retx] retries *)
}

type result = {
  pattern : Rdt_pattern.Pattern.t;  (** the surviving execution *)
  recoveries : recovery list;  (** in occurrence order *)
  metrics : metrics;
}

val run : config -> result
(** @raise Invalid_argument on malformed configurations (bad pids,
    crashes out of order on the same process, non-positive repair
    delays). *)
