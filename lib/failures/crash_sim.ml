module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng
module Channel = Rdt_dist.Channel
module Event_queue = Rdt_dist.Event_queue
module Faults = Rdt_dist.Faults
module Transport = Rdt_dist.Transport
module Pattern = Rdt_pattern.Pattern
module Ptypes = Rdt_pattern.Types
module Protocol = Rdt_core.Protocol
module Trace = Rdt_obs.Trace
module Meter = Rdt_obs.Meter

type crash = { victim : int; at : int; repair_delay : int }

type config = {
  n : int;
  seed : int;
  env : Env.t;
  protocol : Protocol.t;
  channel : Channel.spec;
  basic_period : int * int;
  max_messages : int;
  max_time : int;
  crashes : crash list;
  faults : Faults.spec;
  transport : Transport.params option;
  trace : Trace.t;
}

let default_config env protocol =
  {
    n = 8;
    seed = 1;
    env;
    protocol;
    channel = Channel.Uniform (5, 100);
    basic_period = (300, 700);
    max_messages = 2000;
    max_time = max_int / 2;
    crashes = [];
    faults = Faults.none;
    transport = None;
    trace = Trace.null;
  }

let configure ?(n = 8) ?(seed = 1) ?(messages = 2000) ?(channel = Channel.Uniform (5, 100))
    ?(basic_period = (300, 700)) ?(max_time = max_int / 2) ?(crashes = [])
    ?(faults = Faults.none) ?transport ?(trace = Trace.null) env protocol =
  {
    n;
    seed;
    env;
    protocol;
    channel;
    basic_period;
    max_messages = messages;
    max_time;
    crashes;
    faults;
    transport;
    trace;
  }

type recovery = {
  crash : crash;
  line : int array;
  events_undone : int;
  checkpoints_undone : int;
  messages_undone : int;
  messages_replayed : int;
}

type metrics = {
  messages_delivered : int;
  basic : int;
  forced : int;
  duration : int;
  total_events_undone : int;
  total_messages_replayed : int;
  retransmissions : int;
  packets_dropped : int;
  undeliverable : int;
}

type result = { pattern : Pattern.t; recoveries : recovery list; metrics : metrics }

(* ------------------------------------------------------------------ *)
(* Internal trace                                                      *)
(* ------------------------------------------------------------------ *)

type msg_status =
  | Flight  (** sent, arrival pending in the channel *)
  | Delivered
  | Dead  (** its send was rolled back; never to be delivered *)
  | Replay  (** delivered once, delivery rolled back; awaiting replay *)
  | Undeliv  (** abandoned by the transport after [max_retx] retries *)

type msg = {
  m_id : int;
  m_src : int;
  m_dst : int;
  m_send_interval : int;
  m_payload : Rdt_core.Control.t;
  mutable m_recv_interval : int; (* -1 until (re)delivered *)
  mutable m_status : msg_status;
  (* networked mode: per-message stop-and-wait retransmission state.  A
     generation counter stamps each (re)start of the retransmission loop
     so that timers surviving a rollback or a crash go stale instead of
     double-driving the message. *)
  mutable m_attempts : int;
  mutable m_acked : bool;
  mutable m_gen : int;
}

type ckpt_meta = {
  c_index : int;
  c_kind : Ptypes.ckpt_kind;
  c_time : int;
  c_tdv : int array option; (* TDV_{i,x}: the vector saved *before* the bump *)
  c_restore : unit -> unit; (* re-install a fresh copy of the protocol state *)
}

type tev =
  | B_send of int (* msg id *)
  | B_recv of int
  | B_internal
  | B_ckpt of ckpt_meta

type queued =
  | Tick of int * int (* pid, timer epoch *)
  | Basic of int * int
  | Crash of crash
  | Repair of crash
  | Arrival of int (* msg id; reliable (non-networked) mode only *)
  | Packet of int (* msg id: one network copy of the data reaching dst *)
  | AckPkt of int (* msg id: the acknowledgement reaching src *)
  | Retx of int * int (* msg id, generation: retransmission timer *)

let validate cfg =
  if cfg.n < 2 then invalid_arg "Crash_sim: n must be >= 2";
  (match Channel.validate cfg.channel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Crash_sim: bad channel spec: " ^ e));
  (match Faults.validate ~n:cfg.n cfg.faults with
  | Ok () -> ()
  | Error e -> invalid_arg ("Crash_sim: bad fault spec: " ^ e));
  (match cfg.transport with
  | Some p -> (
      match Transport.validate_params p with
      | Ok () -> ()
      | Error e -> invalid_arg ("Crash_sim: bad transport params: " ^ e))
  | None ->
      if not (Faults.is_none cfg.faults) then
        invalid_arg "Crash_sim: fault injection requires a transport");
  let per_pid = Hashtbl.create 7 in
  List.iter
    (fun c ->
      if c.victim < 0 || c.victim >= cfg.n then invalid_arg "Crash_sim: victim out of range";
      if c.at < 0 then invalid_arg "Crash_sim: negative crash time";
      if c.repair_delay < 1 then invalid_arg "Crash_sim: repair_delay must be >= 1";
      (match Hashtbl.find_opt per_pid c.victim with
      | Some previous_end when c.at < previous_end ->
          invalid_arg "Crash_sim: overlapping crashes of the same process"
      | Some _ | None -> ());
      Hashtbl.replace per_pid c.victim (c.at + c.repair_delay))
    (List.sort (fun a b -> compare a.at b.at) cfg.crashes)

let run cfg =
  validate cfg;
  let (module P : Protocol.S) = cfg.protocol in
  let (module E : Env.S) = cfg.env in
  let tr = cfg.trace in
  let rng = Rng.create cfg.seed in
  let env = E.create ~n:cfg.n ~rng:(Rng.split rng) in
  let networked = cfg.transport <> None in
  (* the network stream is split only on the networked path so that
     transport-free runs keep the exact RNG stream (and hence results) of
     the original crash simulator *)
  let net_rng = if networked then Rng.split rng else rng in
  let tparams = match cfg.transport with Some p -> p | None -> Transport.default_params in
  let retransmissions = ref 0 and packets_dropped = ref 0 and undeliverable = ref 0 in
  let states = Array.init cfg.n (fun pid -> P.create ~n:cfg.n ~pid) in
  let queue : queued Event_queue.t = Event_queue.create () in
  let now = ref 0 in
  let stamp = ref 0 in
  let next_stamp () = incr stamp; !stamp in
  (* per-process trace, most recent first, with global stamps *)
  let traces : (int * tev) list array = Array.make cfg.n [] in
  let ckpt_count = Array.make cfg.n 0 in
  let interval_events = Array.make cfg.n 0 in
  let crashed = Array.make cfg.n false in
  (* timer epochs: bumped at each crash so that timer events scheduled
     before the crash are discarded, and fresh streams start at repair *)
  let epoch = Array.make cfg.n 0 in
  let buffers : int list array = Array.make cfg.n [] (* arrivals while down, reversed *) in
  let msgs : msg option array ref = ref (Array.make 256 None) in
  let n_msgs = ref 0 in
  let msg id = match !msgs.(id) with Some m -> m | None -> assert false in
  let basic = ref 0 and forced = ref 0 in
  let recoveries = ref [] in
  let basic_enabled = cfg.basic_period <> (0, 0) in
  let draw_basic () =
    let lo, hi = cfg.basic_period in
    Rng.int_in rng lo hi
  in
  let push_trace pid ev = traces.(pid) <- (next_stamp (), ev) :: traces.(pid) in
  let take_checkpoint ?(preds = []) pid kind =
    let index = ckpt_count.(pid) in
    let tdv = P.tdv states.(pid) in
    P.on_checkpoint states.(pid);
    let saved = P.copy states.(pid) in
    let meta =
      {
        c_index = index;
        c_kind = kind;
        c_time = !now;
        c_tdv = tdv;
        c_restore = (fun () -> states.(pid) <- P.copy saved);
      }
    in
    push_trace pid (B_ckpt meta);
    if Trace.on tr then Trace.emit tr (Ckpt { pid; index; kind; time = !now; tdv; preds });
    ckpt_count.(pid) <- index + 1;
    interval_events.(pid) <- 0
  in
  (* initial checkpoints C_{i,0} *)
  for pid = 0 to cfg.n - 1 do
    take_checkpoint pid Ptypes.Initial
  done;
  (* --------- networked mode: faulty links + per-message stop-and-wait ----
     The sliding-window {!Rdt_dist.Transport} assumes immutable link
     history, which rollback breaks (sends are undone, deliveries are
     replayed), so crashes compose with faults through a simpler
     per-message protocol: transmit, await ack, retransmit with the same
     exponential backoff + jitter, abandon as [Undeliv] after [max_retx]
     retries.  Exactly-once delivery is enforced by [m_status]; stale
     timers are retired by the generation counter. *)
  let rto k =
    let f = min (tparams.Transport.backoff ** float_of_int k) 32.0 in
    max 1 (int_of_float (float_of_int tparams.Transport.retx_timeout *. f))
  in
  let jitter () =
    if tparams.Transport.jitter > 0 then Rng.int_in net_rng 0 tparams.Transport.jitter else 0
  in
  let drop ~src ~dst =
    incr packets_dropped;
    if Trace.on tr then Trace.emit tr (Drop { src; dst; time = !now })
  in
  let through ~src ~dst mk =
    (* one attempt through the faulty network: a partition cut loses the
       whole attempt; otherwise each (possibly duplicated) copy is
       independently dropped and delayed *)
    if Faults.cuts cfg.faults ~time:!now ~src ~dst then drop ~src ~dst
    else
      let copies = if Rng.bernoulli net_rng cfg.faults.Faults.dup then 2 else 1 in
      for _ = 1 to copies do
        if Rng.bernoulli net_rng cfg.faults.Faults.drop then drop ~src ~dst
        else begin
          let d = Channel.sample net_rng cfg.channel in
          let d =
            if cfg.faults.Faults.reorder > 0.0 && Rng.bernoulli net_rng cfg.faults.Faults.reorder
            then d + Rng.int_in net_rng 1 cfg.faults.Faults.reorder_window
            else d
          in
          Event_queue.schedule queue ~time:(!now + d) (mk ())
        end
      done
  in
  let send_ack id =
    let m = msg id in
    through ~src:m.m_dst ~dst:m.m_src (fun () -> AckPkt id)
  in
  let transmit id =
    let m = msg id in
    m.m_attempts <- m.m_attempts + 1;
    if m.m_attempts > 1 then begin
      incr retransmissions;
      if Trace.on tr then
        Trace.emit tr
          (Retransmit
             { src = m.m_src; dst = m.m_dst; seq = id; attempt = m.m_attempts - 1; time = !now })
    end;
    through ~src:m.m_src ~dst:m.m_dst (fun () -> Packet id);
    Event_queue.schedule queue ~time:(!now + rto (m.m_attempts - 1) + jitter ()) (Retx (id, m.m_gen))
  in
  let net_start id =
    (* (re)arm the stop-and-wait loop for [id]; bumping the generation
       retires any timer still in the queue.  While the sender is down
       only the pending ack is forgotten — its recovery re-arms the loop
       ([m_acked] must be cleared even then, or an ack received before a
       rollback would block the rebuild). *)
    let m = msg id in
    m.m_acked <- false;
    if not crashed.(m.m_src) then begin
      m.m_gen <- m.m_gen + 1;
      m.m_attempts <- 0;
      transmit id
    end
  in
  let sent = ref 0 in
  let send_message ~src ~dst =
    if !sent < cfg.max_messages && src <> dst && not crashed.(src) then begin
      incr sent;
      let payload = P.make_payload states.(src) ~dst in
      let id = !n_msgs in
      if id = Array.length !msgs then begin
        let bigger = Array.make (2 * id) None in
        Array.blit !msgs 0 bigger 0 id;
        msgs := bigger
      end;
      !msgs.(id) <-
        Some
          {
            m_id = id;
            m_src = src;
            m_dst = dst;
            m_send_interval = ckpt_count.(src);
            m_payload = payload;
            m_recv_interval = -1;
            m_status = Flight;
            m_attempts = 0;
            m_acked = false;
            m_gen = 0;
          };
      n_msgs := id + 1;
      push_trace src (B_send id);
      if Trace.on tr then Trace.emit tr (Send { msg = id; src; dst; time = !now });
      interval_events.(src) <- interval_events.(src) + 1;
      if networked then net_start id
      else Event_queue.schedule queue ~time:(!now + Channel.sample rng cfg.channel) (Arrival id);
      if P.force_after_send then begin
        incr forced;
        take_checkpoint ~preds:[ "after-send" ] src Ptypes.Forced
      end
    end
  in
  let do_action pid = function
    | Env.Send dst -> send_message ~src:pid ~dst
    | Env.Internal ->
        if not crashed.(pid) then begin
          push_trace pid B_internal;
          if Trace.on tr then Trace.emit tr (Internal { pid; time = !now });
          interval_events.(pid) <- interval_events.(pid) + 1
        end
    | Env.Checkpoint ->
        if not crashed.(pid) then
          if interval_events.(pid) > 0 then begin
            incr basic;
            take_checkpoint pid Ptypes.Basic
          end
  in
  let deliver id =
    let m = msg id in
    let dst = m.m_dst in
    if P.must_force states.(dst) ~src:m.m_src m.m_payload then begin
      incr forced;
      let preds =
        (* name the predicates that fired, for the trace only (the
           evaluation is pure, and skipped when tracing is off) *)
        if Trace.on tr then
          List.filter_map
            (fun (name, v) -> if v then Some name else None)
            (P.predicates states.(dst) ~src:m.m_src m.m_payload)
        else []
      in
      take_checkpoint ~preds dst Ptypes.Forced
    end;
    P.absorb states.(dst) ~src:m.m_src m.m_payload;
    m.m_status <- Delivered;
    m.m_recv_interval <- ckpt_count.(dst);
    push_trace dst (B_recv id);
    if Trace.on tr then Trace.emit tr (Deliver { msg = id; src = m.m_src; dst; time = !now });
    interval_events.(dst) <- interval_events.(dst) + 1;
    List.iter (do_action dst) (E.on_deliver env ~pid:dst ~src:m.m_src)
  in
  (* ---------------- recovery ---------------- *)
  let last_ckpt_index pid =
    let rec scan = function
      | (_, B_ckpt c) :: _ -> c.c_index
      | _ :: rest -> scan rest
      | [] -> assert false
    in
    scan traces.(pid)
  in
  let compute_line bounds =
    (* maximum consistent vector under [bounds], over surviving delivered
       messages *)
    let v = Array.copy bounds in
    let changed = ref true in
    while !changed do
      changed := false;
      for id = 0 to !n_msgs - 1 do
        let m = msg id in
        if
          m.m_status = Delivered
          && m.m_send_interval > v.(m.m_src)
          && m.m_recv_interval <= v.(m.m_dst)
        then begin
          v.(m.m_dst) <- m.m_recv_interval - 1;
          if v.(m.m_dst) < 0 then invalid_arg "Crash_sim: negative rollback";
          changed := true
        end
      done
    done;
    v
  in
  let truncate_to pid index stats =
    (* discard every event after checkpoint [index] of [pid]; returns the
       kept suffixless trace with the target checkpoint on top *)
    let undone_sends = ref [] and undone_recvs = ref [] in
    let rec cut = function
      | (_, B_ckpt c) :: _ as kept when c.c_index = index ->
          c.c_restore ();
          kept
      | (_, ev) :: rest ->
          (match ev with
          | B_send id -> undone_sends := id :: !undone_sends
          | B_recv id -> undone_recvs := id :: !undone_recvs
          | B_ckpt _ -> incr (snd stats)
          | B_internal -> ());
          incr (fst stats);
          cut rest
      | [] -> assert false
    in
    traces.(pid) <- cut traces.(pid);
    ckpt_count.(pid) <- index + 1;
    interval_events.(pid) <- 0;
    (!undone_sends, !undone_recvs)
  in
  let recover (c : crash) =
    let recover_t0 = Meter.now () in
    let pid = c.victim in
    (* live processes secure their volatile state first *)
    for q = 0 to cfg.n - 1 do
      if (not crashed.(q)) && q <> pid && interval_events.(q) > 0 then begin
        incr forced;
        take_checkpoint ~preds:[ "recovery" ] q Ptypes.Forced
      end
    done;
    let bounds = Array.init cfg.n (fun q -> last_ckpt_index q) in
    (* the victim's bound is its last durable checkpoint, already in
       [bounds] since its volatile suffix is about to be discarded *)
    let line = compute_line bounds in
    let events_undone = ref 0 and ckpts_undone = ref 0 in
    let all_sends = ref [] and all_recvs = ref [] in
    for q = 0 to cfg.n - 1 do
      let undone_before = !events_undone in
      let s, r = truncate_to q line.(q) (events_undone, ckpts_undone) in
      if Trace.on tr && !events_undone > undone_before then
        Trace.emit tr (Rollback { pid = q; to_index = line.(q); time = !now });
      all_sends := s @ !all_sends;
      all_recvs := r @ !all_recvs
    done;
    (* classify rolled-back messages *)
    List.iter (fun id -> (msg id).m_status <- Dead) !all_sends;
    (* up before the replays so that replayed messages sent by the repaired
       process restart their retransmission loops immediately *)
    crashed.(pid) <- false;
    let restarted = Hashtbl.create 17 in
    let restart id =
      if not (Hashtbl.mem restarted id) then begin
        Hashtbl.add restarted id ();
        net_start id
      end
    in
    let replayed = ref 0 in
    List.iter
      (fun id ->
        let m = msg id in
        if m.m_status <> Dead then begin
          (* send survived: redeliver from the sender-side log *)
          m.m_status <- Replay;
          m.m_recv_interval <- -1;
          incr replayed;
          if Trace.on tr then
            Trace.emit tr (Replay { msg = id; src = m.m_src; dst = m.m_dst; time = !now });
          if networked then restart id
          else Event_queue.schedule queue ~time:(!now + Channel.sample rng cfg.channel) (Arrival id)
        end)
      !all_recvs;
    (* buffered arrivals for the repaired process re-enter the channel
       (reliable mode only; the networked path never buffers — packets to a
       crashed process are lost and retransmission recovers them) *)
    List.iter
      (fun id ->
        match (msg id).m_status with
        | Flight | Replay ->
            Event_queue.schedule queue ~time:(!now + Channel.sample rng cfg.channel) (Arrival id)
        | Dead | Delivered | Undeliv -> ())
      (List.rev buffers.(pid));
    buffers.(pid) <- [];
    if networked then
      (* the repaired process lost its retransmission timers with its
         volatile state: re-arm the loop for each of its messages still
         owed a delivery (including replays deferred while it was down) *)
      for id = 0 to !n_msgs - 1 do
        let m = msg id in
        if m.m_src = pid && (not m.m_acked) && (m.m_status = Flight || m.m_status = Replay) then
          restart id
      done;
    Event_queue.schedule queue ~time:(!now + 1) (Tick (pid, epoch.(pid)));
    if basic_enabled then
      Event_queue.schedule queue ~time:(!now + draw_basic ()) (Basic (pid, epoch.(pid)));
    recoveries :=
      {
        crash = c;
        line;
        events_undone = !events_undone;
        checkpoints_undone = !ckpts_undone;
        messages_undone = List.length !all_sends;
        messages_replayed = !replayed;
      }
      :: !recoveries;
    Meter.add_span Meter.default "crash_sim.recovery" (Meter.now () -. recover_t0);
    Meter.add Meter.default "crash_sim.events_undone" !events_undone;
    Meter.add Meter.default "crash_sim.messages_replayed" !replayed
  in
  (* ---------------- main loop ---------------- *)
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (Tick (pid, 0));
    if basic_enabled then Event_queue.schedule queue ~time:(draw_basic ()) (Basic (pid, 0))
  done;
  List.iter (fun c -> Event_queue.schedule queue ~time:c.at (Crash c)) cfg.crashes;
  let sim_t0 = Meter.now () in
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | Tick (pid, e) ->
            if
              e = epoch.(pid) && (not crashed.(pid)) && t <= cfg.max_time
              && !sent < cfg.max_messages
            then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (Tick (pid, e))
              | None -> ()
            end
        | Basic (pid, e) ->
            if
              e = epoch.(pid) && (not crashed.(pid)) && t <= cfg.max_time
              && !sent < cfg.max_messages
            then begin
              do_action pid Env.Checkpoint;
              Event_queue.schedule queue ~time:(t + draw_basic ()) (Basic (pid, e))
            end
        | Crash c ->
            if crashed.(c.victim) then invalid_arg "Crash_sim: victim already down";
            (* the volatile suffix is lost immediately; we discard it at
               repair time, which is equivalent since the process does
               nothing while down *)
            crashed.(c.victim) <- true;
            epoch.(c.victim) <- epoch.(c.victim) + 1;
            Event_queue.schedule queue ~time:(t + c.repair_delay) (Repair c)
        | Repair c -> recover c
        | Arrival id -> (
            let m = msg id in
            match m.m_status with
            | Dead | Undeliv -> () (* undone send: the message evaporates *)
            | Delivered -> () (* stale arrival from before a rollback *)
            | Flight | Replay ->
                if crashed.(m.m_dst) then buffers.(m.m_dst) <- id :: buffers.(m.m_dst)
                else deliver id)
        | Packet id -> (
            let m = msg id in
            match m.m_status with
            | Dead | Undeliv -> () (* stray copy of an undone/abandoned send *)
            | Delivered -> send_ack id (* redundant copy: just re-ack *)
            | Flight | Replay ->
                if crashed.(m.m_dst) then drop ~src:m.m_src ~dst:m.m_dst
                else begin
                  deliver id;
                  send_ack id
                end)
        | AckPkt id ->
            let m = msg id in
            if crashed.(m.m_src) then drop ~src:m.m_dst ~dst:m.m_src
            else (
              match m.m_status with
              | Delivered -> m.m_acked <- true
              | Flight | Replay ->
                  (* stale ack: the delivery it acknowledges was rolled
                     back (a genuine ack is always sent from [Delivered]
                     state, which only a rollback can leave).  Accepting
                     it would silence the retransmission loop re-armed at
                     recovery and strand the message undelivered. *)
                  ()
              | Dead | Undeliv -> ())
        | Retx (id, gen) -> (
            let m = msg id in
            if gen = m.m_gen && (not m.m_acked) && not crashed.(m.m_src) then
              match m.m_status with
              | Dead | Undeliv -> ()
              | Delivered when m.m_attempts > tparams.Transport.max_retx ->
                  () (* the receiver has it; only the acks were lost *)
              | Flight | Replay when m.m_attempts > tparams.Transport.max_retx ->
                  (* typed graceful degradation: give up, keep the run finite *)
                  m.m_status <- Undeliv;
                  incr undeliverable;
                  if Trace.on tr then
                    Trace.emit tr
                      (Undeliverable { msg = id; src = m.m_src; dst = m.m_dst; time = !now })
              | Flight | Replay | Delivered -> transmit id))
  done;
  Meter.add_span Meter.default "crash_sim.sim" (Meter.now () -. sim_t0);
  Meter.add Meter.default "crash_sim.runs" 1;
  Meter.add Meter.default "crash_sim.recoveries" (List.length !recoveries);
  (* ---------------- final pattern ---------------- *)
  let pattern_t0 = Meter.now () in
  let builder = Pattern.Builder.create ~n:cfg.n in
  let all = ref [] in
  for pid = 0 to cfg.n - 1 do
    List.iter (fun (s, ev) -> all := (s, pid, ev) :: !all) traces.(pid)
  done;
  let ordered = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !all in
  let handles = Hashtbl.create 97 in
  let delivered = ref 0 in
  List.iter
    (fun (_, pid, ev) ->
      match ev with
      | B_internal -> Pattern.Builder.internal builder pid
      | B_send id ->
          let m = msg id in
          (* abandoned messages never reached the application on either
             side: the surviving pattern excludes their sends *)
          if m.m_status <> Undeliv then
            Hashtbl.replace handles id (Pattern.Builder.send builder ~src:pid ~dst:m.m_dst)
      | B_recv id ->
          incr delivered;
          Pattern.Builder.recv builder (Hashtbl.find handles id)
      | B_ckpt c ->
          if c.c_index > 0 then
            ignore
              (Pattern.Builder.checkpoint ~kind:c.c_kind ?tdv:c.c_tdv ~time:c.c_time builder pid))
    ordered;
  let pattern = Pattern.Builder.finish ~final_checkpoints:true builder in
  Meter.add_span Meter.default "crash_sim.pattern" (Meter.now () -. pattern_t0);
  let recoveries = List.rev !recoveries in
  {
    pattern;
    recoveries;
    metrics =
      {
        messages_delivered = !delivered;
        basic = !basic;
        forced = !forced;
        duration = !now;
        total_events_undone = List.fold_left (fun a r -> a + r.events_undone) 0 recoveries;
        total_messages_replayed =
          List.fold_left (fun a r -> a + r.messages_replayed) 0 recoveries;
        retransmissions = !retransmissions;
        packets_dropped = !packets_dropped;
        undeliverable = !undeliverable;
      };
  }
