module Rng = Rdt_dist.Rng
module Faults = Rdt_dist.Faults
module Channel = Rdt_dist.Channel
module Json = Rdt_obs.Trace.Json

type crash = { victim : int; at : int; repair_delay : int }

type t = {
  run_seed : int;
  n : int;
  protocol : string;
  env : string;
  messages : int;
  basic_period : int * int;
  channel : Rdt_dist.Channel.spec;
  faults : Rdt_dist.Faults.spec;
  transport : bool;
  retx_timeout : int;
  max_retx : int;
  crashes : crash list;
}

type space = {
  protocols : string list;
  envs : string list;
  max_n : int;
  max_messages : int;
  fault_prob : float;
  crash_prob : float;
}

let default_space =
  {
    protocols = List.map Rdt_core.Protocol.name Rdt_core.Registry.rdt_protocols;
    envs = Rdt_workloads.Registry.names;
    max_n = 6;
    max_messages = 150;
    fault_prob = 0.6;
    crash_prob = 0.5;
  }

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let pick rng l = Rng.pick rng (Array.of_list l)

let generate ?(space = default_space) ~seed () =
  if space.protocols = [] then invalid_arg "Scenario.generate: empty protocol list";
  if space.envs = [] then invalid_arg "Scenario.generate: empty env list";
  if space.max_n < 2 then invalid_arg "Scenario.generate: max_n must be >= 2";
  if space.max_messages < 20 then invalid_arg "Scenario.generate: max_messages must be >= 20";
  let rng = Rng.create (Rng.derive_seed seed "fuzz.scenario") in
  let n = Rng.int_in rng 2 space.max_n in
  let protocol = pick rng space.protocols in
  let env = pick rng space.envs in
  let messages = Rng.int_in rng 20 space.max_messages in
  (* rough upper bound on interesting times: enough for schedules to land
     mid-run under the default delay scales *)
  let horizon = (25 * messages) + 1000 in
  let basic_period =
    pick rng [ (300, 700); (100, 300); (50, 800); (200, 200) ]
  in
  let channel =
    pick rng
      [
        Channel.Uniform (5, 100);
        Channel.Uniform (1, 300);
        Channel.Fixed 20;
        Channel.Bimodal { fast = 10; slow = 250; slow_prob = 0.1 };
      ]
  in
  let faults =
    if not (Rng.bernoulli rng space.fault_prob) then Faults.none
    else begin
      let rate cap = if Rng.bool rng then Rng.float rng cap else 0.0 in
      let drop = rate 0.25 in
      let dup = rate 0.2 in
      let reorder = rate 0.25 in
      let reorder_window = if reorder > 0.0 then Rng.int_in rng 10 80 else 0 in
      let partitions =
        List.init (Rng.int rng 3) (fun _ ->
            let a = Rng.int rng n in
            let between =
              if n > 2 && Rng.bool rng then [ a; (a + 1 + Rng.int rng (n - 1)) mod n ] else [ a ]
            in
            let from_t = Rng.int rng horizon in
            { Faults.between = List.sort_uniq compare between;
              from_t;
              to_t = from_t + Rng.int_in rng 200 2000;
            })
      in
      let intermittent =
        List.init (Rng.int rng 3) (fun _ ->
            let host = Rng.int rng n in
            let from_t = Rng.int rng horizon in
            {
              Faults.host;
              from_t;
              to_t = from_t + Rng.int_in rng 400 4000;
              up = Rng.int_in rng 50 400;
              down = Rng.int_in rng 50 400;
            })
      in
      { Faults.drop; dup; reorder; reorder_window; partitions; intermittent }
    end
  in
  let transport = (not (Faults.is_none faults)) || Rng.bernoulli rng 0.25 in
  let retx_timeout = if transport then Rng.int_in rng 100 400 else 250 in
  let max_retx = if transport then Rng.int_in rng 8 25 else 25 in
  let crashes =
    if not (Rng.bernoulli rng space.crash_prob) then []
    else begin
      let k = Rng.int_in rng 1 3 in
      let t = ref (Rng.int_in rng 300 (max 301 (horizon / 2))) in
      List.init k (fun _ ->
          let victim = Rng.int rng n in
          let at = !t in
          let repair_delay = Rng.int_in rng 50 500 in
          (* keep successive crashes globally disjoint so the per-victim
             non-overlap rule holds whatever victims were drawn *)
          t := at + repair_delay + Rng.int_in rng 300 1500;
          { victim; at; repair_delay })
    end
  in
  {
    run_seed = Rng.derive_seed seed "fuzz.run";
    n;
    protocol;
    env;
    messages;
    basic_period;
    channel;
    faults;
    transport;
    retx_timeout;
    max_retx;
    crashes;
  }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate sc =
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check cond msg = if cond then Ok () else Error msg in
  check (sc.n >= 2) "n must be >= 2" >>= fun () ->
  check (Option.is_some (Rdt_core.Registry.find sc.protocol))
    (Printf.sprintf "unknown protocol %S" sc.protocol)
  >>= fun () ->
  check
    (Option.is_some (Rdt_workloads.Registry.find sc.env))
    (Printf.sprintf "unknown env %S" sc.env)
  >>= fun () ->
  check (sc.messages >= 1) "messages must be >= 1" >>= fun () ->
  check (fst sc.basic_period >= 0 && snd sc.basic_period >= fst sc.basic_period)
    "basic_period must satisfy 0 <= lo <= hi"
  >>= fun () ->
  Faults.validate ~n:sc.n sc.faults >>= fun () ->
  check (sc.transport || Faults.is_none sc.faults) "faults require the transport" >>= fun () ->
  check (sc.retx_timeout >= 1) "retx_timeout must be >= 1" >>= fun () ->
  check (sc.max_retx >= 1) "max_retx must be >= 1" >>= fun () ->
  let rec crashes last = function
    | [] -> Ok ()
    | c :: rest ->
        check (c.victim >= 0 && c.victim < sc.n)
          (Printf.sprintf "crash victim %d out of range" c.victim)
        >>= fun () ->
        check (c.at >= 0) "crash time must be >= 0" >>= fun () ->
        check (c.repair_delay >= 1) "repair_delay must be >= 1" >>= fun () ->
        check (c.at > last) "crashes must be disjoint and in increasing time order" >>= fun () ->
        crashes (c.at + c.repair_delay) rest
  in
  crashes (-1) sc.crashes

(* ------------------------------------------------------------------ *)
(* Shrink measure                                                      *)
(* ------------------------------------------------------------------ *)

let size sc =
  let flag b = if b then 1 else 0 in
  sc.messages + (10 * sc.n)
  + (50 * List.length sc.crashes)
  + (30 * (List.length sc.faults.Faults.partitions + List.length sc.faults.Faults.intermittent))
  + 5
    * (flag (sc.faults.Faults.drop > 0.0)
      + flag (sc.faults.Faults.dup > 0.0)
      + flag (sc.faults.Faults.reorder > 0.0))
  + (5 * flag sc.transport)
  + (2 * flag (sc.basic_period <> (0, 0)))

let measure sc =
  let schedule =
    List.fold_left (fun acc c -> acc + c.at + c.repair_delay) 0 sc.crashes
    + List.fold_left
        (fun acc (p : Faults.partition) -> acc + p.from_t + p.to_t)
        0 sc.faults.Faults.partitions
    + List.fold_left
        (fun acc (l : Faults.intermittent) -> acc + l.from_t + l.to_t)
        0 sc.faults.Faults.intermittent
    + fst sc.basic_period + snd sc.basic_period
  in
  (size sc, schedule)

let restrict sc ~n =
  let faults =
    {
      sc.faults with
      Faults.partitions =
        List.filter_map
          (fun (p : Faults.partition) ->
            match List.filter (fun pid -> pid < n) p.between with
            | [] -> None
            | between -> Some { p with Faults.between })
          sc.faults.Faults.partitions;
      intermittent =
        List.filter (fun (l : Faults.intermittent) -> l.host < n) sc.faults.Faults.intermittent;
    }
  in
  { sc with n; faults; crashes = List.filter (fun c -> c.victim < n) sc.crashes }

let equal a b = a = b

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let encode sc =
  let b = Buffer.create 512 in
  let crash c =
    Printf.sprintf "{\"victim\":%d,\"at\":%d,\"repair\":%d}" c.victim c.at c.repair_delay
  in
  let partition (p : Faults.partition) =
    Printf.sprintf "{\"between\":[%s],\"from\":%d,\"to\":%d}"
      (String.concat "," (List.map string_of_int p.between))
      p.from_t p.to_t
  in
  let flaky (l : Faults.intermittent) =
    Printf.sprintf "{\"host\":%d,\"from\":%d,\"to\":%d,\"up\":%d,\"down\":%d}" l.host l.from_t
      l.to_t l.up l.down
  in
  let channel =
    match sc.channel with
    | Channel.Fixed d -> Printf.sprintf "{\"kind\":\"fixed\",\"delay\":%d}" d
    | Channel.Uniform (lo, hi) -> Printf.sprintf "{\"kind\":\"uniform\",\"lo\":%d,\"hi\":%d}" lo hi
    | Channel.Bimodal { fast; slow; slow_prob } ->
        Printf.sprintf "{\"kind\":\"bimodal\",\"fast\":%d,\"slow\":%d,\"slow_prob\":%s}" fast slow
          (float_lit slow_prob)
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"run_seed\":%d,\"n\":%d,\"protocol\":\"%s\",\"env\":\"%s\",\"messages\":%d,\"basic\":[%d,%d],\"channel\":%s,"
       sc.run_seed sc.n sc.protocol sc.env sc.messages (fst sc.basic_period)
       (snd sc.basic_period) channel);
  Buffer.add_string b
    (Printf.sprintf
       "\"faults\":{\"drop\":%s,\"dup\":%s,\"reorder\":%s,\"window\":%d,\"partitions\":[%s],\"intermittent\":[%s]},"
       (float_lit sc.faults.Faults.drop) (float_lit sc.faults.Faults.dup)
       (float_lit sc.faults.Faults.reorder) sc.faults.Faults.reorder_window
       (String.concat "," (List.map partition sc.faults.Faults.partitions))
       (String.concat "," (List.map flaky sc.faults.Faults.intermittent)));
  Buffer.add_string b
    (Printf.sprintf "\"transport\":%b,\"retx_timeout\":%d,\"max_retx\":%d,\"crashes\":[%s]}"
       sc.transport sc.retx_timeout sc.max_retx
       (String.concat "," (List.map crash sc.crashes)));
  Buffer.contents b

let decode line =
  let ( let* ) = Result.bind in
  let field obj name =
    match Json.member name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_f obj name =
    let* v = field obj name in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "field %S is not an integer" name)
  in
  let num_f obj name =
    let* v = field obj name in
    match v with
    | Json.Int i -> Ok (float_of_int i)
    | Json.Float f -> Ok f
    | _ -> Error (Printf.sprintf "field %S is not a number" name)
  in
  let str_f obj name =
    let* v = field obj name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "field %S is not a string" name)
  in
  let bool_f obj name =
    let* v = field obj name in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "field %S is not a boolean" name)
  in
  let list_f obj name of_item =
    let* v = field obj name in
    match v with
    | Json.Arr items ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* x = of_item item in
            Ok (x :: acc))
          items (Ok [])
    | _ -> Error (Printf.sprintf "field %S is not an array" name)
  in
  match Json.parse line with
  | Error e -> Error e
  | Ok (Json.Obj _ as obj) ->
      let* run_seed = int_f obj "run_seed" in
      let* n = int_f obj "n" in
      let* protocol = str_f obj "protocol" in
      let* env = str_f obj "env" in
      let* messages = int_f obj "messages" in
      let* basic =
        let* v = field obj "basic" in
        match v with
        | Json.Arr [ Json.Int lo; Json.Int hi ] -> Ok (lo, hi)
        | _ -> Error "field \"basic\" is not a pair of integers"
      in
      let* channel =
        let* c = field obj "channel" in
        let* kind = str_f c "kind" in
        match kind with
        | "fixed" ->
            let* d = int_f c "delay" in
            Ok (Channel.Fixed d)
        | "uniform" ->
            let* lo = int_f c "lo" in
            let* hi = int_f c "hi" in
            Ok (Channel.Uniform (lo, hi))
        | "bimodal" ->
            let* fast = int_f c "fast" in
            let* slow = int_f c "slow" in
            let* slow_prob = num_f c "slow_prob" in
            Ok (Channel.Bimodal { fast; slow; slow_prob })
        | k -> Error (Printf.sprintf "unknown channel kind %S" k)
      in
      let* faults =
        let* f = field obj "faults" in
        let* drop = num_f f "drop" in
        let* dup = num_f f "dup" in
        let* reorder = num_f f "reorder" in
        let* reorder_window = int_f f "window" in
        let* partitions =
          list_f f "partitions" (fun p ->
              let* between =
                list_f p "between" (function
                  | Json.Int i -> Ok i
                  | _ -> Error "non-integer partition member")
              in
              let* from_t = int_f p "from" in
              let* to_t = int_f p "to" in
              Ok { Faults.between; from_t; to_t })
        in
        let* intermittent =
          list_f f "intermittent" (fun l ->
              let* host = int_f l "host" in
              let* from_t = int_f l "from" in
              let* to_t = int_f l "to" in
              let* up = int_f l "up" in
              let* down = int_f l "down" in
              Ok { Faults.host; from_t; to_t; up; down })
        in
        Ok { Faults.drop; dup; reorder; reorder_window; partitions; intermittent }
      in
      let* transport = bool_f obj "transport" in
      let* retx_timeout = int_f obj "retx_timeout" in
      let* max_retx = int_f obj "max_retx" in
      let* crashes =
        list_f obj "crashes" (fun c ->
            let* victim = int_f c "victim" in
            let* at = int_f c "at" in
            let* repair_delay = int_f c "repair" in
            Ok { victim; at; repair_delay })
      in
      Ok
        {
          run_seed;
          n;
          protocol;
          env;
          messages;
          basic_period = basic;
          channel;
          faults;
          transport;
          retx_timeout;
          max_retx;
          crashes;
        }
  | Ok _ -> Error "not a JSON object"

let to_file path sc =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (encode sc);
      output_char oc '\n')

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
      match decode (String.trim contents) with
      | Ok sc -> Ok sc
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

let pp ppf sc =
  Format.fprintf ppf "@[<h>%s/%s n=%d msgs=%d seed=%d basic=[%d;%d] %a%s" sc.protocol sc.env sc.n
    sc.messages sc.run_seed (fst sc.basic_period) (snd sc.basic_period) Faults.pp sc.faults
    (if sc.transport then Printf.sprintf " transport(rto=%d,retx=%d)" sc.retx_timeout sc.max_retx
     else "");
  List.iter
    (fun c -> Format.fprintf ppf " crash{%d}@@%d+%d" c.victim c.at c.repair_delay)
    sc.crashes;
  Format.fprintf ppf "@]"
