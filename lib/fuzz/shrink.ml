module Faults = Rdt_dist.Faults
module Meter = Rdt_obs.Meter

type stats = { steps : int; execs : int }

let remove_nth k l = List.filteri (fun i _ -> i <> k) l

let map_nth k f l = List.mapi (fun i x -> if i = k then f x else x) l

(* Candidate moves, most aggressive first: structural deletions, then
   budget reductions, then schedule bisections.  Every candidate is
   strictly smaller under Scenario.measure (checked again by the loop). *)
let candidates (sc : Scenario.t) =
  let f = sc.faults in
  let drop_crashes =
    List.init (List.length sc.crashes) (fun k -> { sc with crashes = remove_nth k sc.crashes })
  in
  let drop_partitions =
    List.init (List.length f.Faults.partitions) (fun k ->
        { sc with faults = { f with Faults.partitions = remove_nth k f.Faults.partitions } })
  in
  let drop_intermittent =
    List.init (List.length f.Faults.intermittent) (fun k ->
        { sc with faults = { f with Faults.intermittent = remove_nth k f.Faults.intermittent } })
  in
  let zero_rates =
    (if f.Faults.drop > 0.0 then [ { sc with faults = { f with Faults.drop = 0.0 } } ] else [])
    @ (if f.Faults.dup > 0.0 then [ { sc with faults = { f with Faults.dup = 0.0 } } ] else [])
    @
    if f.Faults.reorder > 0.0 then
      [ { sc with faults = { f with Faults.reorder = 0.0; reorder_window = 0 } } ]
    else []
  in
  let drop_transport =
    if sc.transport && Faults.is_none f then [ { sc with transport = false } ] else []
  in
  let fewer_messages =
    if sc.messages > 1 then
      List.sort_uniq compare [ max 1 (sc.messages / 2); sc.messages - 1 ]
      |> List.filter (fun m -> m < sc.messages)
      |> List.map (fun m -> { sc with messages = m })
    else []
  in
  let fewer_processes = if sc.n > 2 then [ Scenario.restrict sc ~n:(sc.n - 1) ] else [] in
  let no_basics =
    if sc.basic_period <> (0, 0) then [ { sc with basic_period = (0, 0) } ] else []
  in
  let earlier_crashes =
    List.concat
      (List.init (List.length sc.crashes) (fun k ->
           let c = List.nth sc.crashes k in
           (if c.Scenario.at > 0 then
              [ { sc with crashes = map_nth k (fun c -> { c with Scenario.at = c.Scenario.at / 2 }) sc.crashes } ]
            else [])
           @
           if c.Scenario.repair_delay > 1 then
             [
               {
                 sc with
                 crashes =
                   map_nth k
                     (fun c ->
                       { c with Scenario.repair_delay = max 1 (c.Scenario.repair_delay / 2) })
                     sc.crashes;
               };
             ]
           else []))
  in
  let shorter_partitions =
    List.concat
      (List.init (List.length f.Faults.partitions) (fun k ->
           let p = List.nth f.Faults.partitions k in
           let halved =
             { p with Faults.to_t = p.Faults.from_t + ((p.Faults.to_t - p.Faults.from_t) / 2) }
           in
           let earlier = { p with Faults.from_t = p.Faults.from_t / 2; to_t = p.Faults.to_t - ((p.Faults.from_t + 1) / 2) } in
           List.filter_map
             (fun p' ->
               if p' <> p then
                 Some { sc with faults = { f with Faults.partitions = map_nth k (fun _ -> p') f.Faults.partitions } }
               else None)
             [ halved; earlier ]))
  in
  let shorter_intermittent =
    List.concat
      (List.init (List.length f.Faults.intermittent) (fun k ->
           let l = List.nth f.Faults.intermittent k in
           let halved =
             { l with Faults.to_t = l.Faults.from_t + ((l.Faults.to_t - l.Faults.from_t) / 2) }
           in
           if halved <> l then
             [ { sc with faults = { f with Faults.intermittent = map_nth k (fun _ -> halved) f.Faults.intermittent } } ]
           else []))
  in
  drop_crashes @ drop_partitions @ drop_intermittent @ zero_rates @ drop_transport
  @ fewer_messages @ fewer_processes @ no_basics @ earlier_crashes @ shorter_partitions
  @ shorter_intermittent

let same_kind k = function Exec.Fail { kind; _ } -> kind = k | Exec.Pass -> false

let minimize ?mutation sc0 =
  let execs = ref 1 in
  match Exec.classify ?mutation sc0 with
  | Exec.Pass -> (sc0, Exec.Pass, { steps = 0; execs = !execs })
  | Exec.Fail { kind; _ } as original ->
      let steps = ref 0 in
      let current = ref sc0 in
      let progress = ref true in
      while !progress do
        progress := false;
        let m = Scenario.measure !current in
        let rec try_candidates = function
          | [] -> ()
          | cand :: rest ->
              if
                Scenario.measure cand < m
                && Scenario.validate cand = Ok ()
                && begin
                     incr execs;
                     same_kind kind (Exec.classify ?mutation cand)
                   end
              then begin
                current := cand;
                incr steps;
                progress := true
              end
              else try_candidates rest
        in
        try_candidates (candidates !current)
      done;
      Meter.add Meter.default "fuzz.shrink_steps" !steps;
      Meter.add Meter.default "fuzz.shrink_execs" !execs;
      (!current, original, { steps = !steps; execs = !execs })
