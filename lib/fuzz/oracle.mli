(** First-principles RDT verdict, for cross-checking the real checkers on
    small patterns.

    The oracle re-derives Definition 2.3 directly: it enumerates the
    R-graph's edges (same-process order plus one edge per message),
    decides reachability by naive DFS, and decides on-line trackability
    of each reachable pair by an explicit causal-chain search — no TDV
    mechanism, no doubling argument, no shared code with
    {!Rdt_core.Checker}.  Exponential in spirit and quadratic in
    checkpoints per query, so the executor gates it behind {!affordable}. *)

val rdt : Rdt_pattern.Pattern.t -> bool
(** Every R-path between distinct checkpoints is on-line trackable. *)

val affordable : Rdt_pattern.Pattern.t -> bool
(** Small enough to run the oracle on ([n <= 3], few checkpoints and
    messages). *)
