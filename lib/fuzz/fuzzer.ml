module Rng = Rdt_dist.Rng
module Meter = Rdt_obs.Meter

type mapper = { map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let sequential = { map = List.map }

type config = {
  seed : int;
  budget : int;
  space : Scenario.space;
  mutation : Exec.mutation option;
}

let default_config =
  { seed = 1; budget = 200; space = Scenario.default_space; mutation = None }

type counts = {
  ok : int;
  violations : int;
  divergences : int;
  drain_failures : int;
  crashes : int;
}

type failure = {
  index : int;
  original : Scenario.t;
  kind : Exec.kind;
  detail : string;
  shrunk : Scenario.t;
  shrink : Shrink.stats;
}

type report = { scenarios : int; counts : counts; failure : failure option }

let scenario_at cfg i =
  Scenario.generate ~space:cfg.space
    ~seed:(Rng.derive_seed cfg.seed (Printf.sprintf "fuzz.cell.%d" i))
    ()

let shrink_failure ?mutation index sc kind detail =
  let shrunk, _, stats = Shrink.minimize ?mutation sc in
  { index; original = sc; kind; detail; shrunk; shrink = stats }

let run ?(mapper = sequential) cfg =
  if cfg.budget < 0 then invalid_arg "Fuzzer.run: negative budget";
  Meter.time Meter.default "fuzz.campaign" (fun () ->
      let outcomes =
        mapper.map
          (fun i -> (i, Exec.classify ?mutation:cfg.mutation (scenario_at cfg i)))
          (List.init cfg.budget Fun.id)
      in
      Meter.add Meter.default "fuzz.scenarios" cfg.budget;
      let counts =
        List.fold_left
          (fun acc (_, o) ->
            match o with
            | Exec.Pass -> { acc with ok = acc.ok + 1 }
            | Exec.Fail { kind = Exec.Rdt_violation; _ } ->
                { acc with violations = acc.violations + 1 }
            | Exec.Fail { kind = Exec.Checker_divergence; _ } ->
                { acc with divergences = acc.divergences + 1 }
            | Exec.Fail { kind = Exec.Drain_failure; _ } ->
                { acc with drain_failures = acc.drain_failures + 1 }
            | Exec.Fail { kind = Exec.Crash; _ } -> { acc with crashes = acc.crashes + 1 })
          { ok = 0; violations = 0; divergences = 0; drain_failures = 0; crashes = 0 }
          outcomes
      in
      let failure =
        (* smallest failing index: deterministic whatever the mapper *)
        List.fold_left
          (fun acc (i, o) ->
            match (acc, o) with
            | Some _, _ | _, Exec.Pass -> acc
            | None, Exec.Fail { kind; detail } -> Some (i, kind, detail))
          None outcomes
        |> Option.map (fun (i, kind, detail) ->
               shrink_failure ?mutation:cfg.mutation i (scenario_at cfg i) kind detail)
      in
      { scenarios = cfg.budget; counts; failure })

let minimize ?mutation sc =
  match Scenario.validate sc with
  | Error e -> Error (Printf.sprintf "invalid scenario: %s" e)
  | Ok () -> (
      match Exec.classify ?mutation sc with
      | Exec.Pass -> Error "scenario passes all checks; nothing to minimize"
      | Exec.Fail { kind; detail } -> Ok (shrink_failure ?mutation 0 sc kind detail))
