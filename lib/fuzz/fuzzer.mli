(** The fuzz campaign driver.

    A campaign executes [budget] scenarios, each generated from
    [Rng.derive_seed seed "fuzz.cell.<index>"] — a pure function of
    [(seed, index)], so the campaign's counts and its first failure are
    bit-identical whatever order (or parallelism) the cells run in.  On
    failure, the {e smallest-index} failing scenario is re-executed and
    handed to {!Shrink.minimize}.

    The driver takes the map function as a value (default sequential) so
    the harness can inject its deterministic domain pool without this
    library depending on it. *)

type mapper = { map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

val sequential : mapper

type config = {
  seed : int;
  budget : int;
  space : Scenario.space;
  mutation : Exec.mutation option;
}

val default_config : config
(** Seed 1, budget 200, {!Scenario.default_space}, no mutation. *)

type counts = {
  ok : int;
  violations : int;
  divergences : int;
  drain_failures : int;
  crashes : int;
}

type failure = {
  index : int;  (** scenario index within the campaign *)
  original : Scenario.t;
  kind : Exec.kind;
  detail : string;
  shrunk : Scenario.t;
  shrink : Shrink.stats;
}

type report = { scenarios : int; counts : counts; failure : failure option }

val scenario_at : config -> int -> Scenario.t
(** The [i]-th scenario of the campaign (pure). *)

val run : ?mapper:mapper -> config -> report
(** Executes the campaign.  The [fuzz.scenarios] counter and the
    per-classification [fuzz.*] counters in {!Rdt_obs.Meter.default}
    account the whole campaign. *)

val minimize : ?mutation:Exec.mutation -> Scenario.t -> (failure, string) result
(** Shrink one explicit scenario (the [--minimize] entry point): [Error]
    if the scenario is invalid or does not fail. *)
