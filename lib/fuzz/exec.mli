(** Scenario executor: one adversarial run, fully cross-checked.

    A scenario runs through {!Rdt_core.Runtime} (or
    {!Rdt_failures.Crash_sim} when it schedules crashes) with the online
    checker tee'd into the live trace stream.  The finished run is then
    audited from independent angles: transport conservation, agreement
    of all four {!Rdt_core.Checker} algorithms with the live engine and
    (when {!Oracle.affordable}) the brute-force oracle,
    {!Rdt_obs.Replay.rebuild} round-tripping the trace back to the exact
    surviving pattern, and — for RDT-guaranteeing protocols — the RDT
    verdict itself.  The first audit to fail classifies the outcome.

    Meters: each execution runs under the [fuzz.exec] span and bumps one
    [fuzz.<classification>] counter in {!Rdt_obs.Meter.default}. *)

(** Sanctioned fault injections into the {e checking} pipeline (never the
    simulation), for end-to-end tests of the find-then-shrink machinery
    on a healthy tree. *)
type mutation =
  | Hide_rollbacks
      (** drop [Rollback] events before the replay cross-check: any run
          with an effective rollback diverges *)
  | Flip_rgraph
      (** negate the R-graph checker's verdict in the agreement check:
          every run diverges, so the shrinker must reach the structural
          floor *)

val mutation_name : mutation -> string

val mutation_of_string : string -> (mutation, string) result
(** Recognizes ["hide-rollbacks"] and ["flip-rgraph"]. *)

type kind = Rdt_violation | Checker_divergence | Drain_failure | Crash

val kind_name : kind -> string
(** ["rdt-violation"], ["checker-divergence"], ["drain-failure"],
    ["crash"]. *)

type outcome = Pass | Fail of { kind : kind; detail : string }

type report = {
  scenario : Scenario.t;
  outcome : outcome;
  events : Rdt_obs.Trace.event list;
      (** the live trace, [Meta] header first (empty when the run itself
          crashed) *)
  rdt : bool;  (** the R-graph verdict of the surviving pattern *)
  first_violation : int option;  (** live engine's latched event index *)
}

val run : ?mutation:mutation -> Scenario.t -> report
(** @raise Invalid_argument on scenarios {!Scenario.validate} rejects —
    validate first. *)

val classify : ?mutation:mutation -> Scenario.t -> outcome
(** {!run} without retaining the events (what the fuzz loop calls). *)
