module Trace = Rdt_obs.Trace
module Meter = Rdt_obs.Meter
module Replay = Rdt_obs.Replay
module Online = Rdt_check.Online
module Checker = Rdt_core.Checker
module P = Rdt_pattern.Pattern

type mutation = Hide_rollbacks | Flip_rgraph

let mutation_name = function Hide_rollbacks -> "hide-rollbacks" | Flip_rgraph -> "flip-rgraph"

let mutation_of_string = function
  | "hide-rollbacks" -> Ok Hide_rollbacks
  | "flip-rgraph" -> Ok Flip_rgraph
  | s -> Error (Printf.sprintf "unknown mutation %S (expected hide-rollbacks or flip-rgraph)" s)

type kind = Rdt_violation | Checker_divergence | Drain_failure | Crash

let kind_name = function
  | Rdt_violation -> "rdt-violation"
  | Checker_divergence -> "checker-divergence"
  | Drain_failure -> "drain-failure"
  | Crash -> "crash"

type outcome = Pass | Fail of { kind : kind; detail : string }

type report = {
  scenario : Scenario.t;
  outcome : outcome;
  events : Trace.event list;
  rdt : bool;
  first_violation : int option;
}

(* The run itself: pattern + optional transport stats, with the live
   trace collected and the online engine fed through a tee. *)
let execute (sc : Scenario.t) eng collect =
  let protocol = Rdt_core.Registry.find_exn sc.protocol in
  let env = Rdt_workloads.Registry.find_exn sc.env in
  let tr = Trace.tee collect (Online.observer eng) in
  Trace.emit tr
    (Trace.Meta { n = sc.n; protocol = sc.protocol; env = sc.env; seed = sc.run_seed; mode = "fuzz" });
  let transport =
    if sc.transport then
      Some
        {
          Rdt_dist.Transport.default_params with
          retx_timeout = sc.retx_timeout;
          max_retx = sc.max_retx;
        }
    else None
  in
  if sc.crashes = [] then begin
    let cfg =
      Rdt_core.Runtime.configure ~n:sc.n ~seed:sc.run_seed ~messages:sc.messages
        ~channel:sc.channel ~basic_period:sc.basic_period ~faults:sc.faults ?transport ~trace:tr
        env protocol
    in
    let r = Rdt_core.Runtime.run cfg in
    (r.Rdt_core.Runtime.pattern, r.Rdt_core.Runtime.transport)
  end
  else begin
    let module CS = Rdt_failures.Crash_sim in
    let crashes =
      List.map
        (fun (c : Scenario.crash) ->
          { CS.victim = c.victim; at = c.at; repair_delay = c.repair_delay })
        sc.crashes
    in
    let cfg =
      CS.configure ~n:sc.n ~seed:sc.run_seed ~messages:sc.messages ~channel:sc.channel
        ~basic_period:sc.basic_period ~crashes ~faults:sc.faults ?transport ~trace:tr env
        protocol
    in
    let r = CS.run cfg in
    (r.CS.pattern, None)
  end

let audit ?mutation (sc : Scenario.t) eng events pat transport_stats =
  let fail kind detail = Fail { kind; detail } in
  (* 1. the run must have drained: with a transport, every accepted
     message ended delivered or abandoned *)
  let drain =
    match transport_stats with
    | Some (s : Rdt_dist.Transport.stats) ->
        if s.accepted <> s.delivered + s.undeliverable then
          Some
            (Printf.sprintf "transport conservation broken: accepted %d <> delivered %d + undeliverable %d"
               s.accepted s.delivered s.undeliverable)
        else None
    | None -> None
  in
  match drain with
  | Some detail -> fail Drain_failure detail
  | None -> (
      (* 2. a complete stream must not end mid-rollback-cascade *)
      match Online.orphan_messages eng with
      | _ :: _ as orphans ->
          fail Checker_divergence
            (Printf.sprintf "live stream ended with orphan deliveries of messages %s"
               (String.concat ", " (List.map string_of_int orphans)))
      | [] ->
          (* 3. all four checker algorithms and the live engine agree *)
          let rg = Checker.run pat in
          let rg_verdict =
            match mutation with Some Flip_rgraph -> not rg.Checker.rdt | _ -> rg.Checker.rdt
          in
          let verdicts =
            [
              ("rgraph", rg_verdict);
              ("chains", (Checker.run ~algo:`Chains pat).Checker.rdt);
              ("doubling", (Checker.run ~algo:`Doubling pat).Checker.rdt);
              ("online-pattern", (Checker.run ~algo:`Online pat).Checker.rdt);
              ("online-live", Online.rdt_so_far eng);
            ]
          in
          if List.exists (fun (_, v) -> v <> rg_verdict) verdicts then
            fail Checker_divergence
              (Printf.sprintf "checker verdicts disagree: %s"
                 (String.concat ", "
                    (List.map (fun (name, v) -> Printf.sprintf "%s=%b" name v) verdicts)))
          else if Oracle.affordable pat && Oracle.rdt pat <> rg_verdict then
            (* 4. brute-force oracle on small patterns *)
            fail Checker_divergence
              (Printf.sprintf "brute-force oracle says rdt=%b, checkers say %b"
                 (Oracle.rdt pat) rg_verdict)
          else begin
            (* 5. the trace must rebuild to the exact surviving pattern *)
            let replay_events =
              match mutation with
              | Some Hide_rollbacks ->
                  List.filter (function Trace.Rollback _ -> false | _ -> true) events
              | _ -> events
            in
            match Replay.rebuild replay_events with
            | Error e -> fail Checker_divergence (Printf.sprintf "replay rebuild failed: %s" e)
            | Ok rebuilt ->
                if not (P.equal rebuilt pat) then
                  fail Checker_divergence
                    "rebuilt pattern differs from the live run's surviving pattern"
                else if
                  (* 6. the protocol's guarantee itself *)
                  Rdt_core.Protocol.ensures_rdt (Rdt_core.Registry.find_exn sc.protocol)
                  && not rg_verdict
                then
                  fail Rdt_violation
                    (Printf.sprintf "protocol %s produced a non-RDT pattern%s" sc.protocol
                       (match Online.first_violation eng with
                       | Some i -> Printf.sprintf " (first violation at event %d)" i
                       | None -> ""))
                else Pass
          end)

let run ?mutation sc =
  (match Scenario.validate sc with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Exec.run: invalid scenario: %s" e));
  Meter.time Meter.default "fuzz.exec" (fun () ->
      let acc = ref [] in
      let collect = Trace.observer (fun ev -> acc := ev :: !acc) in
      let eng = Online.create ~n:sc.n () in
      let outcome, events, pat =
        match execute sc eng collect with
        | pat, stats ->
            let events = List.rev !acc in
            (audit ?mutation sc eng events pat stats, events, Some pat)
        | exception Online.Inconsistent e ->
            ( Fail
                {
                  kind = Checker_divergence;
                  detail = Printf.sprintf "online engine rejected the live stream: %s" e;
                },
              List.rev !acc,
              None )
        | exception e ->
            ( Fail { kind = Crash; detail = Printexc.to_string e },
              List.rev !acc,
              None )
      in
      (match outcome with
      | Pass -> Meter.incr Meter.default "fuzz.ok"
      | Fail { kind; _ } -> Meter.incr Meter.default ("fuzz." ^ kind_name kind));
      {
        scenario = sc;
        outcome;
        events;
        rdt = (match pat with Some p -> (Checker.run p).Checker.rdt | None -> false);
        first_violation = Online.first_violation eng;
      })

let classify ?mutation sc = (run ?mutation sc).outcome
