module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types

let rgraph_edges pat =
  let edges = ref [] in
  for i = 0 to P.n pat - 1 do
    for x = 0 to P.last_index pat i - 1 do
      edges := ((i, x), (i, x + 1)) :: !edges
    done
  done;
  Array.iter
    (fun (m : T.message) ->
      edges := ((m.src, m.send_interval), (m.dst, m.recv_interval)) :: !edges)
    (P.messages pat);
  List.sort_uniq compare !edges

let reaches edges a b =
  let visited = Hashtbl.create 97 in
  let rec dfs v =
    v = b
    || (not (Hashtbl.mem visited v))
       && begin
            Hashtbl.add visited v ();
            List.exists (fun (u, w) -> u = v && dfs w) edges
          end
  in
  dfs a

(* Causal message chain from [src] starting strictly after event position
   [from_pos_after], ending with a delivery in interval <= y of process j. *)
let causal_chain pat ~from_pos_after ~src (j, y) =
  let msgs = P.messages pat in
  let nm = Array.length msgs in
  let visited = Array.make nm false in
  let rec dfs id =
    (msgs.(id).T.dst = j && msgs.(id).T.recv_interval <= y)
    || (not visited.(id))
       && begin
            visited.(id) <- true;
            let found = ref false in
            for id' = 0 to nm - 1 do
              if
                (not !found)
                && msgs.(id').T.src = msgs.(id).T.dst
                && msgs.(id).T.recv_pos < msgs.(id').T.send_pos
              then found := dfs id'
            done;
            !found
          end
  in
  let found = ref false in
  for id = 0 to nm - 1 do
    if (not !found) && msgs.(id).T.src = src && msgs.(id).T.send_pos > from_pos_after then
      found := dfs id
  done;
  !found

let trackable pat (i, x) (j, y) =
  if i = j then x <= y
  else if x = 0 then true
  else
    let pos = (P.checkpoints pat i).(x - 1).T.pos in
    causal_chain pat ~from_pos_after:pos ~src:i (j, y)

let all_ckpts pat =
  List.concat
    (List.init (P.n pat) (fun i -> List.init (P.last_index pat i + 1) (fun x -> (i, x))))

let rdt pat =
  let edges = rgraph_edges pat in
  let cks = all_ckpts pat in
  List.for_all
    (fun a ->
      List.for_all (fun b -> (not (reaches edges a b)) || trackable pat a b) cks)
    cks

let affordable pat =
  P.n pat <= 3 && P.num_checkpoints pat <= 24 && P.num_messages pat <= 60
