(** The fuzzer's scenario DSL: one value describes one complete
    adversarial run.

    A scenario composes a workload pick from {!Rdt_workloads.Registry},
    a protocol choice, a channel-delay model, a network-fault schedule
    ({!Rdt_dist.Faults}: drop/dup/reorder, partition windows and
    intermittent mobile-style links), and a crash/recovery schedule for
    {!Rdt_failures.Crash_sim} — everything {!Rdt_core.Runtime} and the
    crash simulator need to execute it.  {!generate} derives a scenario
    deterministically from a single seed via {!Rdt_dist.Rng.derive_seed},
    so the whole fuzz campaign is a pure function of its base seed.

    Scenarios serialize to single-line JSON (read back with
    {!Rdt_obs.Trace.Json}) so a shrunk counterexample is a committable,
    replayable artifact. *)

type crash = { victim : int; at : int; repair_delay : int }

type t = {
  run_seed : int;  (** the runtime's RNG seed *)
  n : int;
  protocol : string;  (** {!Rdt_core.Registry} name *)
  env : string;  (** {!Rdt_workloads.Registry} name *)
  messages : int;  (** application message budget *)
  basic_period : int * int;
  channel : Rdt_dist.Channel.spec;
  faults : Rdt_dist.Faults.spec;
  transport : bool;
      (** route messages through the reliable-delivery transport; forced
          [true] whenever [faults] is non-none *)
  retx_timeout : int;
  max_retx : int;
  crashes : crash list;  (** in increasing [at] order *)
}

(** The space {!generate} samples from. *)
type space = {
  protocols : string list;
  envs : string list;
  max_n : int;
  max_messages : int;
  fault_prob : float;  (** probability a scenario injects network faults *)
  crash_prob : float;  (** probability a scenario schedules crashes *)
}

val default_space : space
(** All RDT-guaranteeing protocols, all registry environments,
    [max_n = 6], [max_messages = 150], faults with probability 0.6,
    crashes with probability 0.5. *)

val generate : ?space:space -> seed:int -> unit -> t
(** Deterministic: every draw comes from a SplitMix64 stream keyed by
    [Rng.derive_seed seed "fuzz.scenario"]; the embedded [run_seed] is
    keyed separately, so the scenario's shape and its run randomness are
    independent. *)

val validate : t -> (unit, string) result
(** Everything the runtimes would reject, checked up front: [n >= 2],
    known protocol and env names, positive budgets, well-formed fault
    spec ({!Rdt_dist.Faults.validate}), transport present when faults
    are, ordered non-overlapping crashes with valid victims. *)

val size : t -> int
(** Primary structural size, the shrinker's main objective: message
    budget, process count, and a weight per crash, fault window and
    fault dimension. *)

val measure : t -> int * int
(** [(size, schedule mass)] — the lexicographic shrink measure.  The
    second component sums crash times, repair delays, window endpoints
    and the basic-checkpoint period, so moves that only bisect times
    (leaving the structure alone) still strictly decrease the measure. *)

val restrict : t -> n:int -> t
(** Project the scenario onto the first [n] processes: crashes of
    removed victims are dropped, removed pids leave partition groups,
    and intermittent links of removed hosts disappear. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Codec} *)

val encode : t -> string
(** Single-line JSON. *)

val decode : string -> (t, string) result

val to_file : string -> t -> unit

val of_file : string -> (t, string) result
