(** Greedy scenario minimization.

    Given a failing scenario, repeatedly try structurally smaller
    variants — drop a crash or fault window, zero a fault rate, halve
    the message budget, remove a process, bisect crash times and window
    widths — re-executing each candidate deterministically and keeping
    it only if it still fails with the {e same} classification.  Every
    accepted step strictly decreases {!Scenario.measure}, so the loop
    terminates at a scenario that is 1-minimal with respect to the
    candidate moves: no single move both shrinks it and preserves the
    failure.

    Known limits: minimality is per-move, not global (a pair of moves
    applied together might still shrink further), and the schedule
    bisection only halves times toward zero, so an irreducible late
    crash keeps its order of magnitude. *)

type stats = {
  steps : int;  (** accepted shrink moves *)
  execs : int;  (** scenario executions spent (including rejected candidates) *)
}

val minimize : ?mutation:Exec.mutation -> Scenario.t -> Scenario.t * Exec.outcome * stats
(** [minimize sc] classifies [sc] and, if it fails, shrinks it while the
    failure kind is preserved; returns the minimized scenario, the
    original classification, and the work spent.  A passing scenario is
    returned unchanged. *)
