module Pattern = Rdt_pattern.Pattern

type t = { pat : Pattern.t; stable : bool array array }

let create pat =
  let stable =
    Array.init (Pattern.n pat) (fun i ->
        Array.init (Array.length (Pattern.checkpoints pat i)) (fun x -> x = 0))
  in
  { pat; stable }

let check t (i, x) =
  if not (Pattern.has_ckpt t.pat (i, x)) then
    invalid_arg (Printf.sprintf "Storage: C(%d,%d) does not exist" i x)

let make_stable t (i, x) =
  check t (i, x);
  t.stable.(i).(x) <- true

let is_stable t (i, x) =
  check t (i, x);
  t.stable.(i).(x)

let stable_count t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 t.stable

let stable_line t =
  Array.map
    (fun row ->
      let rec highest x = if x + 1 < Array.length row && row.(x + 1) then highest (x + 1) else x in
      highest 0)
    t.stable

let collectible t ~line =
  if Array.length line <> Pattern.n t.pat then invalid_arg "Storage.collectible: bad line";
  let out = ref [] in
  for i = Pattern.n t.pat - 1 downto 0 do
    (* never the initial checkpoint: [stable_line]'s per-process bound
       assumes [C_{i,0}] is always available, and a line of all zeros
       must remain a valid recovery target after any collection *)
    for x = min (line.(i) - 1) (Array.length t.stable.(i) - 1) downto 1 do
      if t.stable.(i).(x) then out := (i, x) :: !out
    done
  done;
  !out

let collect t ~line =
  let cks = collectible t ~line in
  List.iter (fun (i, x) -> t.stable.(i).(x) <- false) cks;
  List.length cks
