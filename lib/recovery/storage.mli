(** A stable-storage model for checkpoints.

    Tracks which local checkpoints have been flushed to stable storage and
    answers the garbage-collection question: once a recovery line is
    known, every checkpoint strictly below it on every process can never
    be needed again and may be reclaimed. *)

type t

val create : Rdt_pattern.Pattern.t -> t
(** Storage for a finished pattern; initially only the initial checkpoints
    [C_{i,0}] are stable. *)

val make_stable : t -> Rdt_pattern.Types.ckpt_id -> unit
(** Flush a checkpoint.  Idempotent.
    @raise Invalid_argument if it does not exist in the pattern. *)

val is_stable : t -> Rdt_pattern.Types.ckpt_id -> bool

val stable_count : t -> int

val stable_line : t -> int array
(** Per process, the highest index [x] such that checkpoints [0..x] are
    all stable — the best recovery bound a crash of that process allows. *)

val collectible : t -> line:int array -> Rdt_pattern.Types.ckpt_id list
(** Checkpoints that a recovery line makes reclaimable: every stable
    [C_{i,x}] with [0 < x < line.(i)].  Initial checkpoints are never
    collectible — {!stable_line} (and a recovery to the line of all
    zeros) assumes [C_{i,0}] remains available forever. *)

val collect : t -> line:int array -> int
(** Reclaims them; returns how many were discarded. *)
