(** The shipped experiment suite: one entry per table/figure of the
    paper's evaluation (see DESIGN.md for the experiment index and
    EXPERIMENTS.md for paper-vs-measured numbers).

    Every experiment both returns its data and can print a plain-text
    report.  [R] always denotes the paired ratio
    forced(protocol) / forced(FDAS) on identical workload and seed.

    Every grid decomposes into independent cells (one outer coordinate x
    one base seed) sharded across a {!Pool} when [?jobs] exceeds 1.  Cell
    RNG seeds come from {!Experiment.cell_seed}, a pure function of the
    cell coordinates, so the produced tables are bit-identical for every
    [jobs] value (and to a sequential run).  Paired runs — a protocol
    against its FDAS baseline, a faulty run against its reliable twin —
    happen inside one cell on one derived seed, preserving the paired
    design under parallelism.  Pass [?report] to collect per-cell wall
    times into a {!Bench_report}. *)

type point = { x : float; stats : Stats.t }

type series = { label : string; points : point list }

type figure = { id : string; title : string; xlabel : string; series : series list }

val print_figure : figure -> unit

(** {1 Figures} *)

val fig_random : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> figure
(** FIG-RANDOM: R vs number of processes in the general (uniform random)
    environment, for bhmr, bhmr-v1, bhmr-v2. *)

val fig_group : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> figure
(** FIG-8: R vs group size in overlapping group communication
    environments (n = 12). *)

val fig_client_server : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> figure
(** FIG-9: R vs number of servers in the client-server chain. *)

val fig_lost_work : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> figure
(** FIG-LOST-WORK (extension): fraction of all executed events undone by
    a crash of process 0 at 60% of the run, as a function of the mean
    basic-checkpoint period, for [none], [bcs] and [bhmr] (random
    workload, n = 6).  Uncoordinated checkpointing wastes its checkpoints
    (the recovery line ignores them); the protocols keep lost work
    proportional to the checkpoint period. *)

(** {1 Tables} *)

val table_protocols : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-PROTOCOLS: forced checkpoints per 100 basic checkpoints for every
    protocol of the hierarchy, in each environment (n = 8). *)

val table_overhead : ?ns:int list -> unit -> Table.t
(** TAB-OVERHEAD: piggyback size (bits/message) per protocol vs n. *)

val claim_ten_percent : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> (string * float) list
(** CLAIM-10PCT: per environment, the measured reduction
    [1 - R(bhmr vs fdas)].  The paper claims at least 10% in its study;
    see EXPERIMENTS.md for where our reproduction meets it. *)

val table_min_gcp : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-MINGCP: Corollary 4.5 validation — for each environment, the
    fraction of checkpoints whose on-line TDV equals the brute-force
    minimum consistent global checkpoint (expected 1.0 under every RDT
    protocol), and the mean rollback span of that minimum. *)

val table_ablation : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** ABLATION: which predicate fires how often, per protocol variant, on
    the client-server workload — quantifying what each piece of
    piggybacked knowledge buys. *)

val table_recovery : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-RECOVERY (extension): what the guarantees buy at recovery time.
    For [none], [bcs], [fdas] and [bhmr] on a chatty workload: the
    fraction of useless checkpoints (members of no consistent global
    checkpoint), and — after crashing process 0 in the middle of the run —
    the fraction of their work the {e survivors} lose, the in-transit
    messages a logging layer must replay, and the events to re-execute. *)

val table_coordinated : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-COORDINATED (extension): the introduction's contrast between
    coordinated checkpointing ("at the price of synchronization by means
    of additional control messages", Chandy-Lamport [3]) and CIC.  On the
    random workload: checkpoints taken, control messages, and total
    control overhead (marker traffic vs piggybacked bits) per approach. *)

val table_breakeven : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** BREAK-EVEN (extension): when is the protocol's n² piggyback worth it?
    Total overhead is modelled as [piggyback_bits × messages +
    checkpoint_cost × forced]; the table reports, per environment (n = 8),
    the forced-checkpoint savings of bhmr over FDAS, the extra piggyback
    it pays, and the break-even checkpoint size above which bhmr's total
    overhead is lower. *)

val table_goodput : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-GOODPUT (extension): online fault tolerance.  Under a fixed plan
    of three crashes (random workload, n = 6), per protocol: events
    undone by the rollbacks, messages replayed from logs, messages whose
    sends were destroyed, and the surviving deliveries — live domino
    effect versus surgical RDT recovery. *)

val table_faults : ?jobs:int -> ?report:Bench_report.t -> ?seeds:int list -> unit -> Table.t
(** TAB-FAULTS (extension): robustness of the protocol stack to an
    unreliable network.  For bhmr over the reliable-delivery transport
    (n = 6), per packet-drop rate and environment: the paired
    forced-checkpoint inflation [forced(faulty)/forced(reliable)], the
    retransmissions per application message, and the messages abandoned
    as undeliverable (0 at these rates).  The drop = 0 row isolates the
    effect of the transport's FIFO links alone. *)

val table_online : ?report:Bench_report.t -> ?min_events:int -> unit -> Table.t
(** BENCH-ONLINE (extension): amortized per-event cost of the
    incremental online checker on a >= [min_events]-event trace (default
    5000), against the cost of one full offline re-check — the unit of
    the "re-check after every event" strategy it replaces.  With
    [?report], records the [BENCH-ONLINE] cell plus the
    [online.ns_per_event], [online.offline_recheck_ns] and
    [online.speedup_vs_offline] micro entries, and the streamed events
    feed the [checker.online] span and [checker.online_events] counter
    via the metered {!Rdt_core.Checker.run} entry point. *)

val table_durable : ?report:Bench_report.t -> ?min_events:int -> unit -> Table.t
(** BENCH-DURABLE (extension): per-event cost of crash-safe checker
    state ({!Rdt_durable.Session}: write-ahead log + periodic snapshot
    generations) against the plain in-memory engine on the same
    >= [min_events]-event trace, plus a recovery pass over what was just
    written (asserting the recovered summary equals the uninterrupted
    one).  With [?report], records the [BENCH-DURABLE] cell and the
    [durable.ns_per_event] / [durable.overhead_vs_online] micros; the
    session itself meters the [durable.snapshot] span and the
    [wal.fsync] / [wal.bytes] / [recovery.replayed_events] counters into
    {!Rdt_obs.Meter.default}, which {!Bench_report.record_obs} snapshots
    into [BENCH_results.json]. *)

val table_fuzz : ?jobs:int -> ?report:Bench_report.t -> ?budget:int -> unit -> Table.t
(** BENCH-FUZZ (extension): throughput of the adversarial scenario
    fuzzer ({!Rdt_fuzz.Fuzzer}) over a [budget]-scenario campaign run on
    the deterministic domain pool.  On a healthy tree every scenario
    must pass all cross-checks; a failure raises [Invalid_argument] with
    the scenario index and classification, making the bench double as a
    regression gate.  With [?report], records the [BENCH-FUZZ] cell and
    the [fuzz.scenarios_per_sec] micro; the campaign itself meters the
    [fuzz.campaign] / [fuzz.exec] spans and the [fuzz.*] counters into
    {!Rdt_obs.Meter.default}. *)

val table_scale : ?jobs:int -> ?report:Bench_report.t -> ?params:Scale.params -> unit -> Table.t
(** BENCH-SCALE (extension): throughput of the sharded event core
    ({!Scale}) on the checkpoint-before-receive ring workload — by
    default {!Scale.default_params}: n = 10_000 processes, 10^6
    messages.  The table carries the deterministic run fields (event
    count, forced checkpoints, checksum) next to the two throughput
    figures; rerunning with a different [?jobs] changes only the
    timings, never the deterministic columns.  With [?report], records
    the [BENCH-SCALE] cell and the [scale.events_per_sec] /
    [scale.bytes_per_process] micros. *)

val table_serve :
  ?jobs:int -> ?report:Bench_report.t -> ?streams:int -> ?min_events:int -> unit -> Table.t
(** BENCH-SERVE (extension): the full [rdtsim serve] client/daemon path
    in-process — [streams] clients each stream the same recorded
    ~[min_events]-event trace to an {!Rdt_serve.Server} over a real
    Unix socket (framing, versioned codec, bounded-queue backpressure,
    batched apply fanned out over [jobs] domains), then ask live
    queries (summary + a Corollary 4.5 minimum-GCP) and close.  Doubles
    as a gate: every served verdict must equal the serial
    [Online.check_trace] baseline, or the bench raises.  With
    [?report], records the [BENCH-SERVE] cell and the
    [serve.events_per_sec] / [serve.query_ns] micros; the server
    meters the [serve.*] counters and spans into
    {!Rdt_obs.Meter.default}. *)

(** {1 Everything} *)

val run_all : ?quick:bool -> ?jobs:int -> ?report:Bench_report.t -> unit -> unit
(** Prints every figure and table ([quick] uses 3 seeds instead of 10). *)
