(** Streaming statistics accumulator (Welford's algorithm), used to
    aggregate metrics over seeds. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val ci95_half_width : t -> float
(** Half-width of the 95% normal-approximation confidence interval on the
    mean ([1.96 * stddev / sqrt count]); 0 with fewer than two samples. *)

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val merge : into:t -> t -> unit
(** [merge ~into:a b] folds [b]'s samples into [a] (Chan-Golub-LeVeque
    pairwise combination): afterwards [a] reports the statistics of both
    sample sets together.  [b] is unchanged.  Exact for count/min/max;
    mean and variance agree with element-wise {!add} up to the usual
    floating-point reassociation.  Deterministic: merging the same
    accumulators in the same order always yields the same bits. *)

val of_list : float list -> t

val pp : Format.formatter -> t -> unit
(** ["mean ± ci (n=..)"]. *)
