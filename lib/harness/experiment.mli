(** Running and aggregating simulation experiments.

    A {!workload} bundles everything but the protocol and the seed; the
    figure-level ratio the paper reports — forced checkpoints of a
    protocol over forced checkpoints of FDAS — is computed {e paired}: the
    two protocols run on the same workload with the same seed, and the
    per-seed ratios are aggregated. *)

type workload = {
  name : string;
  make_env : unit -> Rdt_dist.Env.t;
  n : int;
  channel : Rdt_dist.Channel.spec;
  basic_period : int * int;
  max_messages : int;
  faults : Rdt_dist.Faults.spec;
  transport : Rdt_dist.Transport.params option;
}

val workload :
  ?n:int ->
  ?max_messages:int ->
  ?channel:Rdt_dist.Channel.spec ->
  ?basic_period:int * int ->
  ?faults:Rdt_dist.Faults.spec ->
  ?transport:Rdt_dist.Transport.params ->
  ?make_env:(unit -> Rdt_dist.Env.t) ->
  string ->
  workload
(** [workload name] builds a workload from the environment registry entry
    [name] (or [make_env] when supplied) with defaults matching
    {!Rdt_core.Runtime.default_config}.  Passing a non-[none] [faults]
    spec without [transport] selects {!Rdt_dist.Transport.default_params}
    so the run still delivers reliably. *)

val run_once : workload -> Rdt_core.Protocol.t -> seed:int -> Rdt_core.Runtime.result
(** One run.  @raise Invalid_argument on unknown environment names. *)

val verify_rdt : Rdt_core.Runtime.result -> bool
(** Offline RDT check of the run's pattern. *)

type aggregate = {
  forced : Stats.t;
  basic : Stats.t;
  messages : Stats.t;
  forced_per_basic : Stats.t;
  forced_per_message : Stats.t;
}

val aggregate : workload -> Rdt_core.Protocol.t -> seeds:int list -> aggregate

val ratio_vs_baseline :
  workload -> Rdt_core.Protocol.t -> baseline:Rdt_core.Protocol.t -> seeds:int list -> Stats.t
(** Per-seed paired ratio forced(protocol)/forced(baseline); seeds where
    the baseline forces nothing are skipped. *)

val default_seeds : int list
(** Seeds used by the shipped experiments: [1..10]. *)

val quick_seeds : int list
(** [1..3], for smoke-level reproduction runs. *)

val cell_seed : string list -> int -> int
(** [cell_seed path seed] is the RNG seed of one cell of an experiment
    grid, derived from the cell's coordinates (e.g. [\["TAB-PROTOCOLS";
    env\]]) and the base seed by {!Rdt_dist.Rng.derive_seed}.  The
    derivation never consults shared generator state, so a cell's stream
    is the same whether the grid runs sequentially or sharded across a
    {!Pool} — the keystone of the bit-identical [--jobs N] guarantee.
    Cells that must stay {e paired} (a protocol against its baseline, a
    faulty run against the reliable run of the same workload) share one
    [path], so they keep drawing identical streams. *)
