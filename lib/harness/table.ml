type line =
  | Row of string list
  | Separator

type t = { header : string list; mutable lines : line list (* reversed *) }

let create ~header = { header; lines = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let header t = t.header

let rows t =
  List.filter_map (function Row r -> Some r | Separator -> None) (List.rev t.lines)

let render t =
  let rows = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Separator -> ()
      | Row r -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    rows;
  let buf = Buffer.create 256 in
  let pad i c =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w c else Printf.sprintf "%*s" w c
  in
  let emit_row r =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad r));
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf
      (String.concat "--"
         (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  rule ();
  List.iter (function Separator -> rule () | Row r -> emit_row r) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f x = Printf.sprintf "%.3f" x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
