module Runtime = Rdt_core.Runtime
module Protocol = Rdt_core.Protocol
module Channel = Rdt_dist.Channel
module Faults = Rdt_dist.Faults
module Transport = Rdt_dist.Transport

type workload = {
  name : string;
  make_env : unit -> Rdt_dist.Env.t;
  n : int;
  channel : Channel.spec;
  basic_period : int * int;
  max_messages : int;
  faults : Faults.spec;
  transport : Transport.params option;
}

let workload ?(n = 8) ?(max_messages = 2000) ?(channel = Channel.Uniform (5, 100))
    ?(basic_period = (300, 700)) ?(faults = Faults.none) ?transport ?make_env name =
  let make_env =
    match make_env with
    | Some f -> f
    | None ->
        (* validate the name eagerly so misspellings fail at construction *)
        ignore (Rdt_workloads.Registry.find_exn name);
        fun () -> Rdt_workloads.Registry.find_exn name
  in
  let transport =
    (* faults need a transport to recover reliable delivery; supply the
       defaults when the caller asked for faults but gave no params *)
    match transport with
    | Some _ as t -> t
    | None -> if Faults.is_none faults then None else Some Transport.default_params
  in
  { name; make_env; n; channel; basic_period; max_messages; faults; transport }

let run_once w protocol ~seed =
  Runtime.run
    {
      Runtime.n = w.n;
      seed;
      env = w.make_env ();
      protocol;
      channel = w.channel;
      basic_period = w.basic_period;
      max_messages = w.max_messages;
      max_time = max_int / 2;
      faults = w.faults;
      transport = w.transport;
      trace = Rdt_obs.Trace.null;
      online = false;
    }

let verify_rdt (r : Runtime.result) = (Rdt_core.Checker.run r.Runtime.pattern).Rdt_core.Checker.rdt

type aggregate = {
  forced : Stats.t;
  basic : Stats.t;
  messages : Stats.t;
  forced_per_basic : Stats.t;
  forced_per_message : Stats.t;
}

let aggregate w protocol ~seeds =
  let agg =
    {
      forced = Stats.create ();
      basic = Stats.create ();
      messages = Stats.create ();
      forced_per_basic = Stats.create ();
      forced_per_message = Stats.create ();
    }
  in
  List.iter
    (fun seed ->
      let r = run_once w protocol ~seed in
      let m = r.Runtime.metrics in
      Stats.add agg.forced (float_of_int m.Rdt_core.Metrics.forced);
      Stats.add agg.basic (float_of_int m.Rdt_core.Metrics.basic);
      Stats.add agg.messages (float_of_int m.Rdt_core.Metrics.messages);
      Stats.add agg.forced_per_basic (Rdt_core.Metrics.forced_per_basic m);
      Stats.add agg.forced_per_message (Rdt_core.Metrics.forced_per_message m))
    seeds;
  agg

let ratio_vs_baseline w protocol ~baseline ~seeds =
  let stats = Stats.create () in
  List.iter
    (fun seed ->
      let rp = run_once w protocol ~seed in
      let rb = run_once w baseline ~seed in
      let fp = rp.Runtime.metrics.Rdt_core.Metrics.forced
      and fb = rb.Runtime.metrics.Rdt_core.Metrics.forced in
      if fb > 0 then Stats.add stats (float_of_int fp /. float_of_int fb))
    seeds;
  stats

let default_seeds = List.init 10 (fun i -> i + 1)

let quick_seeds = [ 1; 2; 3 ]

let cell_seed path seed = Rdt_dist.Rng.derive_seed seed (String.concat "/" path)
