(** The scaled engine: an n = 10^4-class CIC simulation on the sharded
    event core.

    Runs a communication-induced-checkpointing workload — ring-local
    traffic with checkpoint-before-receive forced checkpoints, the purely
    local rule that keeps every pattern RDT — over {!Rdt_dist.Shard},
    with processes partitioned round-robin over shards and every
    per-process structure sparse ({!Rdt_dist.Vclock} dependency vectors
    piggybacked on messages).  Everything a run prints or returns is a
    pure function of {!params}: the shard count is derived from [n]
    (never from [jobs]), every process draws from its own
    {!Rdt_dist.Rng.derive_seed} stream, and cross-shard merges are
    ordered by the seeded tiebreak — so results are bit-identical for
    every [jobs] value.  This is the BENCH-SCALE workhorse (events/sec,
    bytes/process at n = 10_000, 10^6 messages) and, at small [n], a
    trace source the offline checkers can audit. *)

type params = {
  n : int;  (** processes (>= 2) *)
  messages : int;  (** total messages sent across the run (>= 0) *)
  seed : int;
  hop_span : int;  (** destinations are ring neighbours within this span (>= 1) *)
  basic_ckpt_every : int;
      (** a process takes a basic checkpoint every this many sends (>= 1) *)
}

val default_params : params
(** n = 10_000, messages = 1_000_000, seed = 1, hop_span = 8,
    basic_ckpt_every = 8. *)

val validate_params : params -> (unit, string) result

val shards_for : int -> int
(** Shard count used for an [n]-process run — a function of [n] only,
    so the event partition (and thus the output) never depends on the
    worker count. *)

type result = {
  shards : int;
  events : int;  (** events handled by the sharded core *)
  sent : int;
  delivered : int;
  ckpts_basic : int;
  ckpts_forced : int;
  final_time : int;  (** simulated clock when the queues drained *)
  payload_entries : int;  (** total nonzero vclock entries piggybacked *)
  payload_bytes : int;  (** wire-size estimate of those sparse payloads *)
  checksum : int;  (** digest of every final process vector; the
                       bit-identical-across-jobs witness *)
}

val pp_result : Format.formatter -> result -> unit
(** Deterministic rendering of every field (no timings): two runs that
    print identically are observably identical. *)

val run : ?jobs:int -> params -> result
(** Execute the workload on [jobs] domains (default
    {!Pool.default_jobs}).  @raise Invalid_argument on invalid params. *)

val run_traced : params -> result * Rdt_pattern.Pattern.t
(** Sequential run that also materializes the checkpoint-and-
    communication pattern for the offline checkers ({!Rdt_core.Checker})
    — the differential witness that the sharded engine produces real,
    checkable executions.  Memory is O(events): use small [n].  The
    result equals {!run}'s for the same params. *)
