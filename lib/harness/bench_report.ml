type cell = { table : string; protocol : string; env : string; seed : int; seconds : float }

type t = {
  jobs : int;
  mutable cells : cell list; (* reversed *)
  mutable wall : float;
  mutable micro : (string * float) list; (* reversed; benchmark name, ns/run *)
  mutable phases : (string * int * float) list; (* span name, calls, seconds; sorted *)
  mutable counters : (string * int) list; (* sorted *)
}

let create ~jobs = { jobs; cells = []; wall = 0.0; micro = []; phases = []; counters = [] }

let add t ~table ~protocol ~env ~seed ~seconds =
  t.cells <- { table; protocol; env; seed; seconds } :: t.cells

let add_micro t ~name ~ns = t.micro <- (name, ns) :: t.micro

let set_wall t wall = t.wall <- wall

let wall t = t.wall

let record_obs ?(meter = Rdt_obs.Meter.default) t =
  t.phases <-
    List.map
      (fun (name, s) -> (name, s.Rdt_obs.Meter.calls, s.Rdt_obs.Meter.seconds))
      (Rdt_obs.Meter.spans meter);
  t.counters <- Rdt_obs.Meter.counters meter

let phases t = t.phases

let counters t = t.counters

let cells t = List.rev t.cells

let micro t = List.rev t.micro

(* Deterministic (sorted) per-key totals; keyed cells keep grid order. *)
let totals key t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = key c in
      let secs, n = try Hashtbl.find tbl k with Not_found -> (0.0, 0) in
      Hashtbl.replace tbl k (secs +. c.seconds, n + 1))
    t.cells;
  Rdt_dist.Tbl.bindings_sorted ~compare:String.compare tbl
  |> List.map (fun (k, (secs, n)) -> (k, secs, n))

let per_protocol t = totals (fun c -> c.protocol) t

let per_table t = totals (fun c -> c.table) t

(* ------------------------------------------------------------------ *)
(* JSON rendering (no external dependency)                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x || Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" (if Float.is_nan x then 0.0 else x)
  else Printf.sprintf "%.6f" x

let to_json t =
  let buf = Buffer.create 4096 in
  let cells = cells t in
  let ncells = List.length cells in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rdt-bench/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" t.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"parallel_backend\": %b,\n" Pool.parallelism_available);
  Buffer.add_string buf (Printf.sprintf "  \"grid_wall_seconds\": %s,\n" (json_float t.wall));
  Buffer.add_string buf (Printf.sprintf "  \"cells\": %d,\n" ncells);
  Buffer.add_string buf
    (Printf.sprintf "  \"cells_per_second\": %s,\n"
       (json_float (if t.wall > 0.0 then float_of_int ncells /. t.wall else 0.0)));
  let obj_list name items render =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" name);
    List.iteri
      (fun i x ->
        Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
        Buffer.add_string buf (render x))
      items;
    Buffer.add_string buf (if items = [] then "]" else "\n  ]")
  in
  obj_list "per_protocol" (per_protocol t) (fun (p, secs, n) ->
      Printf.sprintf "{\"protocol\": \"%s\", \"seconds\": %s, \"cells\": %d}" (escape p)
        (json_float secs) n);
  Buffer.add_string buf ",\n";
  obj_list "per_table" (per_table t) (fun (tb, secs, n) ->
      Printf.sprintf "{\"table\": \"%s\", \"seconds\": %s, \"cells\": %d}" (escape tb)
        (json_float secs) n);
  Buffer.add_string buf ",\n";
  obj_list "micro" (micro t) (fun (name, ns) ->
      Printf.sprintf "{\"benchmark\": \"%s\", \"ns_per_run\": %s}" (escape name) (json_float ns));
  Buffer.add_string buf ",\n";
  obj_list "phases" t.phases (fun (name, calls, secs) ->
      Printf.sprintf "{\"phase\": \"%s\", \"calls\": %d, \"seconds\": %s}" (escape name) calls
        (json_float secs));
  Buffer.add_string buf ",\n";
  obj_list "counters" t.counters (fun (name, v) ->
      Printf.sprintf "{\"counter\": \"%s\", \"value\": %d}" (escape name) v);
  Buffer.add_string buf ",\n";
  obj_list "cell_timings" cells (fun c ->
      Printf.sprintf
        "{\"table\": \"%s\", \"protocol\": \"%s\", \"env\": \"%s\", \"seed\": %d, \"seconds\": %s}"
        (escape c.table) (escape c.protocol) (escape c.env) c.seed (json_float c.seconds));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write path t = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_json t))
