type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.mean

let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let ci95_half_width t =
  if t.count < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.count)

let min t = if t.count = 0 then invalid_arg "Stats.min: empty" else t.min

let max t = if t.count = 0 then invalid_arg "Stats.max: empty" else t.max

(* Chan-Golub-LeVeque pairwise combination of two Welford accumulators;
   exact on counts, stable on moments.  Lets grid cells accumulate their
   own Stats and the caller fold them in deterministic cell order. *)
let merge ~into:a b =
  if b.count > 0 then begin
    if a.count = 0 then begin
      a.count <- b.count;
      a.mean <- b.mean;
      a.m2 <- b.m2;
      a.min <- b.min;
      a.max <- b.max
    end
    else begin
      let na = float_of_int a.count and nb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let n = na +. nb in
      a.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      a.mean <- a.mean +. (delta *. nb /. n);
      a.count <- a.count + b.count;
      if b.min < a.min then a.min <- b.min;
      if b.max > a.max then a.max <- b.max
    end
  end

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp ppf t = Format.fprintf ppf "%.4f ± %.4f (n=%d)" (mean t) (ci95_half_width t) t.count
