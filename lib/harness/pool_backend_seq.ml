(* Sequential fallback backend (OCaml 4.x, no Domain module).  Selected by
   a dune rule; keeps the Pool interface — and therefore every caller —
   identical across the CI compiler matrix. *)

let parallelism_available = false

let cpu_count () = 1

let iter_slots ~jobs:_ ~count task =
  for i = 0 to count - 1 do
    task i
  done
