module Registry = Rdt_core.Registry
module Runtime = Rdt_core.Runtime

type point = { x : float; stats : Stats.t }

type series = { label : string; points : point list }

type figure = { id : string; title : string; xlabel : string; series : series list }

let fdas = Registry.find_exn "fdas"

let variants = [ "bhmr"; "bhmr-v1"; "bhmr-v2" ]

let print_figure f =
  Format.printf "@.== %s: %s ==@." f.id f.title;
  let t =
    Table.create
      ~header:(f.xlabel :: List.concat_map (fun s -> [ s.label; "±" ]) f.series)
  in
  (match f.series with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun i p ->
          let cells =
            List.concat_map
              (fun s ->
                let p = List.nth s.points i in
                [ Table.cell_f (Stats.mean p.stats); Table.cell_f (Stats.ci95_half_width p.stats) ])
              f.series
          in
          t |> fun t -> Table.add_row t (Printf.sprintf "%g" p.x :: cells))
        first.points);
  Table.print t

let ratio_series ?(seeds = Experiment.default_seeds) ~label ~xs ~workload_of () =
  let protocol = Registry.find_exn label in
  {
    label;
    points =
      List.map
        (fun x ->
          let w = workload_of x in
          { x; stats = Experiment.ratio_vs_baseline w protocol ~baseline:fdas ~seeds })
        xs;
  }

let fig_random ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let workload_of x = Experiment.workload ~n:(int_of_float x) ~max_messages:1500 "random" in
  {
    id = "FIG-RANDOM";
    title = "R = forced/forced(FDAS) in the general random environment";
    xlabel = "n";
    series =
      List.map (fun label -> ratio_series ~seeds ~label ~xs ~workload_of ()) variants;
  }

let fig_group ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 3.0; 4.0; 6.0 ] in
  let workload_of x =
    let params =
      { Rdt_workloads.Group_env.default_group_params with group_size = int_of_float x }
    in
    Experiment.workload ~n:12 ~max_messages:1500
      ~make_env:(fun () -> Rdt_workloads.Group_env.make ~params ())
      "group"
  in
  {
    id = "FIG-8";
    title = "R in overlapping group communication environments (n=12)";
    xlabel = "group size";
    series =
      List.map (fun label -> ratio_series ~seeds ~label ~xs ~workload_of ()) variants;
  }

let fig_client_server ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 4.0; 8.0; 16.0 ] in
  let workload_of x =
    Experiment.workload ~n:(int_of_float x) ~max_messages:1500 "client-server"
  in
  {
    id = "FIG-9";
    title = "R in client/server environments";
    xlabel = "n servers";
    series =
      List.map (fun label -> ratio_series ~seeds ~label ~xs ~workload_of ()) variants;
  }

let lost_work_fraction pat =
  (* crash process 0 at 60% of the run: restart from its last durable
     checkpoint before that instant *)
  let duration =
    Rdt_pattern.Pattern.fold_ckpts pat ~init:0 ~f:(fun acc c ->
        max acc c.Rdt_pattern.Types.time)
  in
  let crash_time = duration * 6 / 10 in
  let available = ref 0 in
  Array.iter
    (fun (c : Rdt_pattern.Types.ckpt) ->
      if c.kind <> Rdt_pattern.Types.Final && c.time <= crash_time then available := c.index)
    (Rdt_pattern.Pattern.checkpoints pat 0);
  let outcome =
    Rdt_recovery.Recovery_line.recover pat
      [ { Rdt_recovery.Recovery_line.pid = 0; available = !available } ]
  in
  let lost =
    Array.fold_left ( + ) 0 outcome.Rdt_recovery.Recovery_line.lost_events
  in
  let total =
    let t = ref 0 in
    for i = 0 to Rdt_pattern.Pattern.n pat - 1 do
      t := !t + Array.length (Rdt_pattern.Pattern.events pat i)
    done;
    !t
  in
  float_of_int lost /. float_of_int (max 1 total)

let fig_lost_work ?(seeds = Experiment.default_seeds) () =
  let periods = [ (100, 200); (300, 700); (800, 1600); (2000, 4000) ] in
  let series_of pname =
    let protocol = Registry.find_exn pname in
    {
      label = pname;
      points =
        List.map
          (fun (lo, hi) ->
            let w =
              Experiment.workload ~n:6 ~max_messages:1200 ~basic_period:(lo, hi) "random"
            in
            let stats = Stats.create () in
            List.iter
              (fun seed ->
                let r = Experiment.run_once w protocol ~seed in
                Stats.add stats (lost_work_fraction r.Runtime.pattern))
              seeds;
            { x = float_of_int (lo + hi) /. 2.0; stats })
          periods;
    }
  in
  {
    id = "FIG-LOST-WORK";
    title = "fraction of events undone by a crash at 60% of the run (random, n=6)";
    xlabel = "mean basic period";
    series = List.map series_of [ "none"; "bcs"; "bhmr" ];
  }

let hierarchy = [ "cbr"; "nras"; "cas"; "fdi"; "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ]

let environments = [ "random"; "group"; "client-server"; "prodcons"; "master-worker"; "stencil" ]

let table_protocols ?(seeds = Experiment.default_seeds) () =
  let t = Table.create ~header:("protocol" :: environments) in
  List.iter
    (fun pname ->
      let protocol = Registry.find_exn pname in
      let cells =
        List.map
          (fun ename ->
            let w = Experiment.workload ~n:8 ~max_messages:1500 ename in
            let agg = Experiment.aggregate w protocol ~seeds in
            Table.cell_f (100.0 *. Stats.mean agg.Experiment.forced_per_basic))
          environments
      in
      Table.add_row t (pname :: cells))
    hierarchy;
  t

let table_overhead ?(ns = [ 2; 4; 8; 16; 32; 64 ]) () =
  let t =
    Table.create ~header:("protocol" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
  in
  List.iter
    (fun p ->
      Table.add_row t
        (Rdt_core.Protocol.name p
        :: List.map
             (fun n -> string_of_int (Rdt_core.Protocol.payload_bits p ~n))
             ns))
    Registry.all;
  t

let claim_environments =
  [
    ("random (n=4)", fun () -> Experiment.workload ~n:4 ~max_messages:1500 "random");
    ( "group pairs (n=12)",
      fun () ->
        let params =
          { Rdt_workloads.Group_env.default_group_params with group_size = 2; multicast_prob = 0.0 }
        in
        Experiment.workload ~n:12 ~max_messages:1500
          ~make_env:(fun () -> Rdt_workloads.Group_env.make ~params ())
          "group" );
    ("client-server (n=8)", fun () -> Experiment.workload ~n:8 ~max_messages:1500 "client-server");
    ("master-worker (n=8)", fun () -> Experiment.workload ~n:8 ~max_messages:1500 "master-worker");
  ]

let claim_ten_percent ?(seeds = Experiment.default_seeds) () =
  let bhmr = Registry.find_exn "bhmr" in
  List.map
    (fun (label, mk) ->
      let stats = Experiment.ratio_vs_baseline (mk ()) bhmr ~baseline:fdas ~seeds in
      (label, 1.0 -. Stats.mean stats))
    claim_environments

let table_min_gcp ?(seeds = Experiment.quick_seeds) () =
  let bhmr = Registry.find_exn "bhmr" in
  let t =
    Table.create ~header:[ "environment"; "ckpts checked"; "TDV = min GCP"; "mean span" ]
  in
  List.iter
    (fun ename ->
      let w = Experiment.workload ~n:6 ~max_messages:600 ename in
      let checked = ref 0 and agree = ref 0 in
      let span = Stats.create () in
      List.iter
        (fun seed ->
          let r = Experiment.run_once w bhmr ~seed in
          let pat = r.Runtime.pattern in
          let tdv = Rdt_pattern.Tdv.compute pat in
          Rdt_pattern.Pattern.iter_ckpts pat (fun c ->
              let id = (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) in
              let online = Rdt_pattern.Tdv.at tdv id in
              incr checked;
              (match Rdt_pattern.Consistency.min_consistent_containing pat [ id ] with
              | Some v when v = Array.copy online -> incr agree
              | Some _ | None -> ());
              let _, x = id in
              Array.iteri
                (fun j y ->
                  if j <> fst id then
                    Stats.add span (float_of_int (min x (Rdt_pattern.Pattern.last_index pat j) - y)))
                online))
        seeds;
      Table.add_row t
        [
          ename;
          string_of_int !checked;
          Table.cell_pct (float_of_int !agree /. float_of_int (max 1 !checked));
          Table.cell_f (Stats.mean span);
        ])
    environments;
  t

let table_ablation ?(seeds = Experiment.default_seeds) () =
  let t =
    Table.create
      ~header:
        [ "protocol"; "forced"; "R vs fdas"; "c1 fires"; "c2 fires"; "c2' fires"; "c_fdas fires" ]
  in
  let w = Experiment.workload ~n:8 ~max_messages:1500 "client-server" in
  List.iter
    (fun pname ->
      let protocol = Registry.find_exn pname in
      let forced = Stats.create ()
      and ratio = Experiment.ratio_vs_baseline w protocol ~baseline:fdas ~seeds in
      let fires = Hashtbl.create 7 in
      List.iter
        (fun seed ->
          let r = Experiment.run_once w protocol ~seed in
          Stats.add forced (float_of_int r.Runtime.metrics.Rdt_core.Metrics.forced);
          List.iter
            (fun (name, count) ->
              let cur = try Hashtbl.find fires name with Not_found -> 0 in
              Hashtbl.replace fires name (cur + count))
            r.Runtime.predicate_counts)
        seeds;
      let avg name =
        match Hashtbl.find_opt fires name with
        | None -> "-"
        | Some total -> Table.cell_f (float_of_int total /. float_of_int (List.length seeds))
      in
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean forced);
          Table.cell_f (Stats.mean ratio);
          avg "c1";
          avg "c2";
          avg "c2'";
          avg "c_fdas";
        ])
    [ "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ];
  t

let table_recovery ?(seeds = Experiment.quick_seeds) () =
  let t =
    Table.create
      ~header:
        [ "protocol"; "useless ckpts"; "survivor loss"; "replayed msgs"; "redone events" ]
  in
  let w = Experiment.workload ~n:6 ~max_messages:800 "client-server" in
  List.iter
    (fun pname ->
      let protocol = Registry.find_exn pname in
      let useless = Stats.create ()
      and survivor_loss = Stats.create ()
      and replayed = Stats.create ()
      and redone = Stats.create () in
      List.iter
        (fun seed ->
          let r = Experiment.run_once w protocol ~seed in
          let pat = r.Runtime.pattern in
          let total = ref 0 and bad = ref 0 in
          Rdt_pattern.Pattern.iter_ckpts pat (fun c ->
              if c.Rdt_pattern.Types.kind <> Rdt_pattern.Types.Final then begin
                incr total;
                if
                  Rdt_pattern.Consistency.useless pat
                    (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index)
                then incr bad
              end);
          Stats.add useless (float_of_int !bad /. float_of_int (max 1 !total));
          (* crash process 0 halfway through its checkpoints *)
          let crash =
            [
              {
                Rdt_recovery.Recovery_line.pid = 0;
                available = Rdt_pattern.Pattern.last_index pat 0 / 2;
              };
            ]
          in
          let outcome = Rdt_recovery.Recovery_line.recover pat crash in
          let n = Rdt_pattern.Pattern.n pat in
          for i = 1 to n - 1 do
            let last = Rdt_pattern.Pattern.last_index pat i in
            if last > 0 then
              Stats.add survivor_loss
                (float_of_int outcome.Rdt_recovery.Recovery_line.rolled_back_ckpts.(i)
                /. float_of_int last)
          done;
          let cost = Rdt_recovery.Message_log.replay_cost pat ~crash in
          Stats.add replayed (float_of_int cost.Rdt_recovery.Message_log.replayed_messages);
          Stats.add redone (float_of_int cost.Rdt_recovery.Message_log.reexecuted_events))
        seeds;
      Table.add_row t
        [
          pname;
          Table.cell_pct (Stats.mean useless);
          Table.cell_pct (Stats.mean survivor_loss);
          Table.cell_f (Stats.mean replayed);
          Table.cell_f (Stats.mean redone);
        ])
    [ "none"; "bcs"; "fdas"; "bhmr" ];
  t

(* A marker message carries a snapshot id: charge 64 bits of control data
   per marker when comparing against piggybacked overheads. *)
let marker_bits = 64

let table_coordinated ?(seeds = Experiment.quick_seeds) () =
  let t =
    Table.create
      ~header:
        [
          "approach";
          "checkpoints";
          "control msgs";
          "overhead bits/app-msg";
          "snapshot latency";
        ]
  in
  let n = 8 and max_messages = 1500 in
  (* coordinated: Chandy-Lamport at the default initiation period *)
  let ckpts = Stats.create ()
  and control = Stats.create ()
  and bits = Stats.create ()
  and latency = Stats.create () in
  List.iter
    (fun seed ->
      let env = Rdt_workloads.Registry.find_exn "random" in
      let r =
        Rdt_coordinated.Snapshot.run
          { (Rdt_coordinated.Snapshot.default_config env) with n; seed; max_messages }
      in
      let m = r.Rdt_coordinated.Snapshot.metrics in
      Stats.add ckpts
        (float_of_int (m.Rdt_coordinated.Snapshot.snapshots_completed * n));
      Stats.add control (float_of_int m.Rdt_coordinated.Snapshot.marker_messages);
      Stats.add bits
        (float_of_int (m.Rdt_coordinated.Snapshot.marker_messages * marker_bits)
        /. float_of_int m.Rdt_coordinated.Snapshot.app_messages);
      Stats.add latency m.Rdt_coordinated.Snapshot.mean_latency)
    seeds;
  Table.add_row t
    [
      "chandy-lamport";
      Table.cell_f (Stats.mean ckpts);
      Table.cell_f (Stats.mean control);
      Table.cell_f (Stats.mean bits);
      Table.cell_f (Stats.mean latency);
    ];
  (* Koo-Toueg: blocking two-phase, dependency-directed *)
  let kt_ckpts = Stats.create ()
  and kt_control = Stats.create ()
  and kt_bits = Stats.create ()
  and kt_latency = Stats.create () in
  List.iter
    (fun seed ->
      let env = Rdt_workloads.Registry.find_exn "random" in
      let r =
        Rdt_coordinated.Koo_toueg.run
          { (Rdt_coordinated.Koo_toueg.default_config env) with n; seed; max_messages }
      in
      let m = r.Rdt_coordinated.Koo_toueg.metrics in
      Stats.add kt_ckpts (float_of_int m.Rdt_coordinated.Koo_toueg.checkpoints_taken);
      Stats.add kt_control (float_of_int m.Rdt_coordinated.Koo_toueg.control_messages);
      Stats.add kt_bits
        (float_of_int (m.Rdt_coordinated.Koo_toueg.control_messages * marker_bits)
        /. float_of_int m.Rdt_coordinated.Koo_toueg.app_messages);
      Stats.add kt_latency m.Rdt_coordinated.Koo_toueg.mean_latency)
    seeds;
  Table.add_row t
    [
      "koo-toueg";
      Table.cell_f (Stats.mean kt_ckpts);
      Table.cell_f (Stats.mean kt_control);
      Table.cell_f (Stats.mean kt_bits);
      Table.cell_f (Stats.mean kt_latency);
    ];
  (* CIC protocols: no control messages; overhead = piggyback *)
  List.iter
    (fun pname ->
      let protocol = Registry.find_exn pname in
      let w = Experiment.workload ~n ~max_messages "random" in
      let agg = Experiment.aggregate w protocol ~seeds in
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean agg.Experiment.forced +. Stats.mean agg.Experiment.basic);
          "0.000";
          string_of_int (Rdt_core.Protocol.payload_bits protocol ~n);
          "-";
        ])
    [ "bhmr"; "fdas"; "cbr" ];
  t

let table_breakeven ?(seeds = Experiment.default_seeds) () =
  let n = 8 and max_messages = 1500 in
  let bhmr = Registry.find_exn "bhmr" in
  let bits_fdas = Rdt_core.Protocol.payload_bits fdas ~n in
  let bits_bhmr = Rdt_core.Protocol.payload_bits bhmr ~n in
  let t =
    Table.create
      ~header:
        [
          "environment";
          "forced fdas";
          "forced bhmr";
          "extra piggyback (bits/msg)";
          "break-even ckpt size";
        ]
  in
  List.iter
    (fun ename ->
      let w = Experiment.workload ~n ~max_messages ename in
      let af = Experiment.aggregate w fdas ~seeds in
      let ab = Experiment.aggregate w bhmr ~seeds in
      let saved = Stats.mean af.Experiment.forced -. Stats.mean ab.Experiment.forced in
      let extra_bits = float_of_int ((bits_bhmr - bits_fdas) * max_messages) in
      let breakeven =
        if saved <= 0.0 then "inf"
        else
          let bits = extra_bits /. saved in
          Printf.sprintf "%.1f KiB" (bits /. 8192.0)
      in
      Table.add_row t
        [
          ename;
          Table.cell_f (Stats.mean af.Experiment.forced);
          Table.cell_f (Stats.mean ab.Experiment.forced);
          string_of_int (bits_bhmr - bits_fdas);
          breakeven;
        ])
    environments;
  t

let table_goodput ?(seeds = Experiment.quick_seeds) () =
  let module CS = Rdt_failures.Crash_sim in
  let t =
    Table.create
      ~header:[ "protocol"; "events undone"; "replayed"; "sends destroyed"; "delivered" ]
  in
  let crashes =
    [
      { CS.victim = 1; at = 2500; repair_delay = 200 };
      { CS.victim = 3; at = 5000; repair_delay = 200 };
      { CS.victim = 1; at = 7500; repair_delay = 200 };
    ]
  in
  List.iter
    (fun pname ->
      let protocol = Registry.find_exn pname in
      let undone = Stats.create ()
      and replayed = Stats.create ()
      and destroyed = Stats.create ()
      and delivered = Stats.create () in
      List.iter
        (fun seed ->
          let env = Rdt_workloads.Registry.find_exn "random" in
          let r =
            CS.run
              {
                (CS.default_config env protocol) with
                CS.n = 6;
                seed;
                max_messages = 1500;
                crashes;
              }
          in
          Stats.add undone (float_of_int r.CS.metrics.CS.total_events_undone);
          Stats.add replayed (float_of_int r.CS.metrics.CS.total_messages_replayed);
          Stats.add destroyed
            (float_of_int
               (List.fold_left (fun a (rc : CS.recovery) -> a + rc.CS.messages_undone) 0
                  r.CS.recoveries));
          Stats.add delivered (float_of_int r.CS.metrics.CS.messages_delivered))
        seeds;
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean undone);
          Table.cell_f (Stats.mean replayed);
          Table.cell_f (Stats.mean destroyed);
          Table.cell_f (Stats.mean delivered);
        ])
    [ "none"; "bcs"; "fdas"; "bhmr"; "cbr" ];
  t

let fault_envs = [ "random"; "group"; "client-server" ]

let table_faults ?(seeds = Experiment.quick_seeds) () =
  let bhmr = Registry.find_exn "bhmr" in
  let drops = [ 0.0; 0.02; 0.05; 0.1 ] in
  let t =
    Table.create
      ~header:
        ("drop"
        :: List.concat_map (fun e -> [ e ^ " R(forced)"; e ^ " retx/msg"; e ^ " undeliv" ]) fault_envs
        )
  in
  List.iter
    (fun drop ->
      let cells =
        List.concat_map
          (fun ename ->
            (* paired against the reliable run of the same seed; the
               drop=0 row isolates the effect of the FIFO transport alone *)
            let faults = { Rdt_dist.Faults.none with drop } in
            let w =
              Experiment.workload ~n:6 ~max_messages:800 ~faults
                ~transport:Rdt_dist.Transport.default_params ename
            in
            let w0 = Experiment.workload ~n:6 ~max_messages:800 ename in
            let ratio = Stats.create () and retx = Stats.create () in
            let undeliv = ref 0 in
            List.iter
              (fun seed ->
                let r = Experiment.run_once w bhmr ~seed in
                let r0 = Experiment.run_once w0 bhmr ~seed in
                let f = r.Runtime.metrics.Rdt_core.Metrics.forced
                and f0 = r0.Runtime.metrics.Rdt_core.Metrics.forced in
                if f0 > 0 then Stats.add ratio (float_of_int f /. float_of_int f0);
                match r.Runtime.transport with
                | Some s ->
                    Stats.add retx
                      (float_of_int s.Rdt_dist.Transport.retransmissions
                      /. float_of_int (max 1 s.Rdt_dist.Transport.accepted));
                    undeliv := !undeliv + s.Rdt_dist.Transport.undeliverable
                | None -> Stats.add retx 0.0)
              seeds;
            [
              Table.cell_f (Stats.mean ratio);
              Table.cell_f (Stats.mean retx);
              string_of_int !undeliv;
            ])
          fault_envs
      in
      Table.add_row t (Printf.sprintf "%g" drop :: cells))
    drops;
  t

let run_all ?(quick = false) () =
  let seeds = if quick then Experiment.quick_seeds else Experiment.default_seeds in
  print_figure (fig_random ~seeds ());
  print_figure (fig_group ~seeds ());
  print_figure (fig_client_server ~seeds ());
  Format.printf "@.== TAB-PROTOCOLS: forced checkpoints per 100 basic (n=8) ==@.";
  Table.print (table_protocols ~seeds ());
  Format.printf "@.== TAB-OVERHEAD: piggyback bits per message ==@.";
  Table.print (table_overhead ());
  Format.printf "@.== CLAIM-10PCT: reduction of forced checkpoints vs FDAS ==@.";
  List.iter
    (fun (label, reduction) ->
      Format.printf "  %-22s %5.1f%%  %s@." label (100.0 *. reduction)
        (if reduction >= 0.10 then "(>= 10%: yes)" else "(>= 10%: no)"))
    (claim_ten_percent ~seeds ());
  Format.printf "@.== TAB-MINGCP: Corollary 4.5 (on-the-fly minimum global checkpoint) ==@.";
  Table.print (table_min_gcp ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf "@.== ABLATION: predicate firings per variant (client-server, n=8) ==@.";
  Table.print (table_ablation ~seeds ());
  Format.printf "@.== TAB-RECOVERY: useless checkpoints, domino and replay (client-server, n=6) ==@.";
  Table.print (table_recovery ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf
    "@.== TAB-COORDINATED: coordinated snapshots vs CIC (random, n=8) ==@.";
  Table.print (table_coordinated ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf "@.== BREAK-EVEN: checkpoint size above which bhmr beats fdas in total overhead ==@.";
  Table.print (table_breakeven ~seeds ());
  print_figure (fig_lost_work ~seeds ());
  Format.printf "@.== TAB-GOODPUT: online crash recovery, 3 crashes (random, n=6) ==@.";
  Table.print (table_goodput ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf
    "@.== TAB-FAULTS: forced-checkpoint inflation and retransmission cost vs drop rate (bhmr, n=6) ==@.";
  Table.print (table_faults ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.print_flush ()
