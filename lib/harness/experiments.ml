module Registry = Rdt_core.Registry
module Runtime = Rdt_core.Runtime

type point = { x : float; stats : Stats.t }

type series = { label : string; points : point list }

type figure = { id : string; title : string; xlabel : string; series : series list }

let fdas = Registry.find_exn "fdas"

let variants = [ "bhmr"; "bhmr-v1"; "bhmr-v2" ]

let print_figure f =
  Format.printf "@.== %s: %s ==@." f.id f.title;
  let t =
    Table.create
      ~header:(f.xlabel :: List.concat_map (fun s -> [ s.label; "±" ]) f.series)
  in
  (match f.series with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun i p ->
          let cells =
            List.concat_map
              (fun s ->
                let p = List.nth s.points i in
                [ Table.cell_f (Stats.mean p.stats); Table.cell_f (Stats.ci95_half_width p.stats) ])
              f.series
          in
          t |> fun t -> Table.add_row t (Printf.sprintf "%g" p.x :: cells))
        first.points);
  Table.print t

(* ------------------------------------------------------------------ *)
(* The grid layer                                                      *)
(*                                                                     *)
(* Every figure/table below is decomposed into a flat list of          *)
(* independent cells — one (outer coordinate, seed) pair each — run    *)
(* through the Pool and folded back in deterministic cell order.  A    *)
(* cell derives its RNG seed from its own coordinates alone            *)
(* (Experiment.cell_seed), so the produced tables are bit-identical    *)
(* for every --jobs value.  Cells that must stay paired (a protocol    *)
(* against its baseline, faulty against reliable) share one seed path  *)
(* and perform both runs inside the cell.                              *)
(* ------------------------------------------------------------------ *)

(* Flat (outer x seed) cell list; cells of one outer coordinate stay
   contiguous so results regroup by simple chunking. *)
let grid_cells outer ~seeds =
  List.concat_map (fun o -> List.map (fun seed -> (o, seed)) seeds) outer

(* Split [xs] (the flat result list) back into one chunk per outer
   coordinate. *)
let regroup ~seeds xs =
  let k = List.length seeds in
  let rec go acc cur n = function
    | [] -> List.rev acc
    | x :: rest ->
        if n = 1 then go (List.rev (x :: cur) :: acc) [] k rest else go acc (x :: cur) (n - 1) rest
  in
  if k = 0 then [] else go [] [] k xs

(* Run one grid through the pool.  [coords] names each cell for the
   timing report; [f] must be self-contained (it runs on a worker
   domain). *)
let run_cells ?jobs ?report ~table ~coords ~f cells =
  let timed = Pool.map_timed ?jobs f cells in
  (match report with
  | None -> ()
  | Some r ->
      List.iter2
        (fun cell (_, seconds) ->
          let protocol, env, seed = coords cell in
          Bench_report.add r ~table ~protocol ~env ~seed ~seconds)
        cells timed);
  List.map fst timed

let mean_stats_of xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let mean_stats_opt xs = mean_stats_of (List.filter_map Fun.id xs)

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

(* The paired ratio forced(protocol)/forced(fdas): both runs inside one
   cell, on the seed derived from (figure, x) — identical for every
   series of the figure, so series stay comparable run to run. *)
let ratio_series ?jobs ?report ?(seeds = Experiment.default_seeds) ~fig ~label ~xs ~workload_of
    () =
  let protocol = Registry.find_exn label in
  let cells = grid_cells xs ~seeds in
  let ratios =
    run_cells ?jobs ?report ~table:fig cells
      ~coords:(fun (x, seed) -> (label, Printf.sprintf "x=%g" x, seed))
      ~f:(fun (x, seed) ->
        let w = workload_of x in
        let seed = Experiment.cell_seed [ fig; Printf.sprintf "x=%g" x ] seed in
        let rp = Experiment.run_once w protocol ~seed in
        let rb = Experiment.run_once w fdas ~seed in
        let fp = rp.Runtime.metrics.Rdt_core.Metrics.forced
        and fb = rb.Runtime.metrics.Rdt_core.Metrics.forced in
        if fb > 0 then Some (float_of_int fp /. float_of_int fb) else None)
  in
  {
    label;
    points = List.map2 (fun x rs -> { x; stats = mean_stats_opt rs }) xs (regroup ~seeds ratios);
  }

let fig_random ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let workload_of x = Experiment.workload ~n:(int_of_float x) ~max_messages:1500 "random" in
  {
    id = "FIG-RANDOM";
    title = "R = forced/forced(FDAS) in the general random environment";
    xlabel = "n";
    series =
      List.map
        (fun label -> ratio_series ?jobs ?report ~seeds ~fig:"FIG-RANDOM" ~label ~xs ~workload_of ())
        variants;
  }

let fig_group ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 3.0; 4.0; 6.0 ] in
  let workload_of x =
    let params =
      { Rdt_workloads.Group_env.default_group_params with group_size = int_of_float x }
    in
    Experiment.workload ~n:12 ~max_messages:1500
      ~make_env:(fun () -> Rdt_workloads.Group_env.make ~params ())
      "group"
  in
  {
    id = "FIG-8";
    title = "R in overlapping group communication environments (n=12)";
    xlabel = "group size";
    series =
      List.map
        (fun label -> ratio_series ?jobs ?report ~seeds ~fig:"FIG-8" ~label ~xs ~workload_of ())
        variants;
  }

let fig_client_server ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let xs = [ 2.0; 4.0; 8.0; 16.0 ] in
  let workload_of x =
    Experiment.workload ~n:(int_of_float x) ~max_messages:1500 "client-server"
  in
  {
    id = "FIG-9";
    title = "R in client/server environments";
    xlabel = "n servers";
    series =
      List.map
        (fun label -> ratio_series ?jobs ?report ~seeds ~fig:"FIG-9" ~label ~xs ~workload_of ())
        variants;
  }

let lost_work_fraction pat =
  (* crash process 0 at 60% of the run: restart from its last durable
     checkpoint before that instant *)
  let duration =
    Rdt_pattern.Pattern.fold_ckpts pat ~init:0 ~f:(fun acc c ->
        max acc c.Rdt_pattern.Types.time)
  in
  let crash_time = duration * 6 / 10 in
  let available = ref 0 in
  Array.iter
    (fun (c : Rdt_pattern.Types.ckpt) ->
      if c.kind <> Rdt_pattern.Types.Final && c.time <= crash_time then available := c.index)
    (Rdt_pattern.Pattern.checkpoints pat 0);
  let outcome =
    Rdt_recovery.Recovery_line.recover pat
      [ { Rdt_recovery.Recovery_line.pid = 0; available = !available } ]
  in
  let lost =
    Array.fold_left ( + ) 0 outcome.Rdt_recovery.Recovery_line.lost_events
  in
  let total =
    let t = ref 0 in
    for i = 0 to Rdt_pattern.Pattern.n pat - 1 do
      t := !t + Array.length (Rdt_pattern.Pattern.events pat i)
    done;
    !t
  in
  float_of_int lost /. float_of_int (max 1 total)

let fig_lost_work ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let fig = "FIG-LOST-WORK" in
  let periods = [ (100, 200); (300, 700); (800, 1600); (2000, 4000) ] in
  let series_of pname =
    let protocol = Registry.find_exn pname in
    let cells = grid_cells periods ~seeds in
    let fractions =
      run_cells ?jobs ?report ~table:fig cells
        ~coords:(fun ((lo, hi), seed) -> (pname, Printf.sprintf "period=%d-%d" lo hi, seed))
        ~f:(fun ((lo, hi), seed) ->
          let w =
            Experiment.workload ~n:6 ~max_messages:1200 ~basic_period:(lo, hi) "random"
          in
          let seed = Experiment.cell_seed [ fig; Printf.sprintf "%d-%d" lo hi ] seed in
          let r = Experiment.run_once w protocol ~seed in
          lost_work_fraction r.Runtime.pattern)
    in
    {
      label = pname;
      points =
        List.map2
          (fun (lo, hi) fs -> { x = float_of_int (lo + hi) /. 2.0; stats = mean_stats_of fs })
          periods (regroup ~seeds fractions);
    }
  in
  {
    id = fig;
    title = "fraction of events undone by a crash at 60% of the run (random, n=6)";
    xlabel = "mean basic period";
    series = List.map series_of [ "none"; "bcs"; "bhmr" ];
  }

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let hierarchy = [ "cbr"; "nras"; "cas"; "fdi"; "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ]

let environments = [ "random"; "group"; "client-server"; "prodcons"; "master-worker"; "stencil" ]

let table_protocols ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let table = "TAB-PROTOCOLS" in
  let coords = List.concat_map (fun p -> List.map (fun e -> (p, e)) environments) hierarchy in
  let cells = grid_cells coords ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun ((pname, ename), seed) -> (pname, ename, seed))
      ~f:(fun ((pname, ename), seed) ->
        let protocol = Registry.find_exn pname in
        let w = Experiment.workload ~n:8 ~max_messages:1500 ename in
        let seed = Experiment.cell_seed [ table; ename ] seed in
        let r = Experiment.run_once w protocol ~seed in
        Rdt_core.Metrics.forced_per_basic r.Runtime.metrics)
  in
  let t = Table.create ~header:("protocol" :: environments) in
  let grouped = regroup ~seeds results in
  List.iter
    (fun pname ->
      let cells_of_p =
        List.filter_map
          (fun ((p, e), vals) -> if p = pname then Some (e, vals) else None)
          (List.combine coords grouped)
      in
      let row =
        List.map
          (fun ename ->
            let vals = List.assoc ename cells_of_p in
            Table.cell_f (100.0 *. Stats.mean (mean_stats_of vals)))
          environments
      in
      Table.add_row t (pname :: row))
    hierarchy;
  t

let table_overhead ?(ns = [ 2; 4; 8; 16; 32; 64 ]) () =
  let t =
    Table.create ~header:("protocol" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
  in
  List.iter
    (fun p ->
      Table.add_row t
        (Rdt_core.Protocol.name p
        :: List.map
             (fun n -> string_of_int (Rdt_core.Protocol.payload_bits p ~n))
             ns))
    Registry.all;
  t

let claim_environments =
  [
    ("random (n=4)", fun () -> Experiment.workload ~n:4 ~max_messages:1500 "random");
    ( "group pairs (n=12)",
      fun () ->
        let params =
          { Rdt_workloads.Group_env.default_group_params with group_size = 2; multicast_prob = 0.0 }
        in
        Experiment.workload ~n:12 ~max_messages:1500
          ~make_env:(fun () -> Rdt_workloads.Group_env.make ~params ())
          "group" );
    ("client-server (n=8)", fun () -> Experiment.workload ~n:8 ~max_messages:1500 "client-server");
    ("master-worker (n=8)", fun () -> Experiment.workload ~n:8 ~max_messages:1500 "master-worker");
  ]

let claim_ten_percent ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let table = "CLAIM-10PCT" in
  let bhmr = Registry.find_exn "bhmr" in
  let cells = grid_cells claim_environments ~seeds in
  let ratios =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun ((label, _), seed) -> ("bhmr", label, seed))
      ~f:(fun ((label, mk), seed) ->
        let w = mk () in
        let seed = Experiment.cell_seed [ table; label ] seed in
        let rp = Experiment.run_once w bhmr ~seed in
        let rb = Experiment.run_once w fdas ~seed in
        let fp = rp.Runtime.metrics.Rdt_core.Metrics.forced
        and fb = rb.Runtime.metrics.Rdt_core.Metrics.forced in
        if fb > 0 then Some (float_of_int fp /. float_of_int fb) else None)
  in
  List.map2
    (fun (label, _) rs -> (label, 1.0 -. Stats.mean (mean_stats_opt rs)))
    claim_environments (regroup ~seeds ratios)

let table_min_gcp ?jobs ?report ?(seeds = Experiment.quick_seeds) () =
  let table = "TAB-MINGCP" in
  let bhmr = Registry.find_exn "bhmr" in
  let cells = grid_cells environments ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (ename, seed) -> ("bhmr", ename, seed))
      ~f:(fun (ename, seed) ->
        let w = Experiment.workload ~n:6 ~max_messages:600 ename in
        let seed = Experiment.cell_seed [ table; ename ] seed in
        let r = Experiment.run_once w bhmr ~seed in
        let pat = r.Runtime.pattern in
        let tdv = Rdt_pattern.Tdv.compute pat in
        let checked = ref 0 and agree = ref 0 in
        let span = Stats.create () in
        Rdt_pattern.Pattern.iter_ckpts pat (fun c ->
            let id = (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) in
            let online = Rdt_pattern.Tdv.at tdv id in
            incr checked;
            (match Rdt_pattern.Consistency.min_consistent_containing pat [ id ] with
            | Some v when v = Array.copy online -> incr agree
            | Some _ | None -> ());
            let _, x = id in
            Array.iteri
              (fun j y ->
                if j <> fst id then
                  Stats.add span (float_of_int (min x (Rdt_pattern.Pattern.last_index pat j) - y)))
              online);
        (!checked, !agree, span))
  in
  let t =
    Table.create ~header:[ "environment"; "ckpts checked"; "TDV = min GCP"; "mean span" ]
  in
  List.iter2
    (fun ename per_seed ->
      let checked = ref 0 and agree = ref 0 in
      let span = Stats.create () in
      List.iter
        (fun (c, a, s) ->
          checked := !checked + c;
          agree := !agree + a;
          Stats.merge ~into:span s)
        per_seed;
      Table.add_row t
        [
          ename;
          string_of_int !checked;
          Table.cell_pct (float_of_int !agree /. float_of_int (max 1 !checked));
          Table.cell_f (Stats.mean span);
        ])
    environments (regroup ~seeds results);
  t

let table_ablation ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let table = "ABLATION" in
  let protocols = [ "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ] in
  let cells = grid_cells protocols ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (pname, seed) -> (pname, "client-server", seed))
      ~f:(fun (pname, seed) ->
        let protocol = Registry.find_exn pname in
        let w = Experiment.workload ~n:8 ~max_messages:1500 "client-server" in
        let seed = Experiment.cell_seed [ table; "client-server" ] seed in
        let r = Experiment.run_once w protocol ~seed in
        let rb = Experiment.run_once w fdas ~seed in
        let fp = r.Runtime.metrics.Rdt_core.Metrics.forced
        and fb = rb.Runtime.metrics.Rdt_core.Metrics.forced in
        let ratio = if fb > 0 then Some (float_of_int fp /. float_of_int fb) else None in
        (fp, ratio, r.Runtime.predicate_counts))
  in
  let t =
    Table.create
      ~header:
        [ "protocol"; "forced"; "R vs fdas"; "c1 fires"; "c2 fires"; "c2' fires"; "c_fdas fires" ]
  in
  List.iter2
    (fun pname per_seed ->
      let forced = Stats.create () and ratio = Stats.create () in
      let fires = Hashtbl.create 7 in
      List.iter
        (fun (fp, r, counts) ->
          Stats.add forced (float_of_int fp);
          Option.iter (Stats.add ratio) r;
          List.iter
            (fun (name, count) ->
              let cur = try Hashtbl.find fires name with Not_found -> 0 in
              Hashtbl.replace fires name (cur + count))
            counts)
        per_seed;
      let avg name =
        match Hashtbl.find_opt fires name with
        | None -> "-"
        | Some total -> Table.cell_f (float_of_int total /. float_of_int (List.length seeds))
      in
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean forced);
          Table.cell_f (Stats.mean ratio);
          avg "c1";
          avg "c2";
          avg "c2'";
          avg "c_fdas";
        ])
    protocols (regroup ~seeds results);
  t

let table_recovery ?jobs ?report ?(seeds = Experiment.quick_seeds) () =
  let table = "TAB-RECOVERY" in
  let protocols = [ "none"; "bcs"; "fdas"; "bhmr" ] in
  let cells = grid_cells protocols ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (pname, seed) -> (pname, "client-server", seed))
      ~f:(fun (pname, seed) ->
        let protocol = Registry.find_exn pname in
        let w = Experiment.workload ~n:6 ~max_messages:800 "client-server" in
        let seed = Experiment.cell_seed [ table; "client-server" ] seed in
        let r = Experiment.run_once w protocol ~seed in
        let pat = r.Runtime.pattern in
        let total = ref 0 and bad = ref 0 in
        Rdt_pattern.Pattern.iter_ckpts pat (fun c ->
            if c.Rdt_pattern.Types.kind <> Rdt_pattern.Types.Final then begin
              incr total;
              if
                Rdt_pattern.Consistency.useless pat
                  (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index)
              then incr bad
            end);
        let useless = float_of_int !bad /. float_of_int (max 1 !total) in
        (* crash process 0 halfway through its checkpoints *)
        let crash =
          [
            {
              Rdt_recovery.Recovery_line.pid = 0;
              available = Rdt_pattern.Pattern.last_index pat 0 / 2;
            };
          ]
        in
        let outcome = Rdt_recovery.Recovery_line.recover pat crash in
        let n = Rdt_pattern.Pattern.n pat in
        let survivor_loss = ref [] in
        for i = n - 1 downto 1 do
          let last = Rdt_pattern.Pattern.last_index pat i in
          if last > 0 then
            survivor_loss :=
              (float_of_int outcome.Rdt_recovery.Recovery_line.rolled_back_ckpts.(i)
              /. float_of_int last)
              :: !survivor_loss
        done;
        let cost = Rdt_recovery.Message_log.replay_cost pat ~crash in
        ( useless,
          !survivor_loss,
          float_of_int cost.Rdt_recovery.Message_log.replayed_messages,
          float_of_int cost.Rdt_recovery.Message_log.reexecuted_events ))
  in
  let t =
    Table.create
      ~header:
        [ "protocol"; "useless ckpts"; "survivor loss"; "replayed msgs"; "redone events" ]
  in
  List.iter2
    (fun pname per_seed ->
      let useless = Stats.create ()
      and survivor_loss = Stats.create ()
      and replayed = Stats.create ()
      and redone = Stats.create () in
      List.iter
        (fun (u, losses, rep, red) ->
          Stats.add useless u;
          List.iter (Stats.add survivor_loss) losses;
          Stats.add replayed rep;
          Stats.add redone red)
        per_seed;
      Table.add_row t
        [
          pname;
          Table.cell_pct (Stats.mean useless);
          Table.cell_pct (Stats.mean survivor_loss);
          Table.cell_f (Stats.mean replayed);
          Table.cell_f (Stats.mean redone);
        ])
    protocols (regroup ~seeds results);
  t

(* A marker message carries a snapshot id: charge 64 bits of control data
   per marker when comparing against piggybacked overheads. *)
let marker_bits = 64

let table_coordinated ?jobs ?report ?(seeds = Experiment.quick_seeds) () =
  let table = "TAB-COORDINATED" in
  let n = 8 and max_messages = 1500 in
  let t =
    Table.create
      ~header:
        [
          "approach";
          "checkpoints";
          "control msgs";
          "overhead bits/app-msg";
          "snapshot latency";
        ]
  in
  (* coordinated: Chandy-Lamport at the default initiation period *)
  let cl =
    run_cells ?jobs ?report ~table seeds
      ~coords:(fun seed -> ("chandy-lamport", "random", seed))
      ~f:(fun seed ->
        let env = Rdt_workloads.Registry.find_exn "random" in
        let seed = Experiment.cell_seed [ table; "chandy-lamport" ] seed in
        let r =
          Rdt_coordinated.Snapshot.run
            { (Rdt_coordinated.Snapshot.default_config env) with n; seed; max_messages }
        in
        let m = r.Rdt_coordinated.Snapshot.metrics in
        ( float_of_int (m.Rdt_coordinated.Snapshot.snapshots_completed * n),
          float_of_int m.Rdt_coordinated.Snapshot.marker_messages,
          float_of_int (m.Rdt_coordinated.Snapshot.marker_messages * marker_bits)
          /. float_of_int m.Rdt_coordinated.Snapshot.app_messages,
          m.Rdt_coordinated.Snapshot.mean_latency ))
  in
  let add_means name rows =
    let a = Stats.create () and b = Stats.create () and c = Stats.create ()
    and d = Stats.create () in
    List.iter
      (fun (x, y, z, w) ->
        Stats.add a x;
        Stats.add b y;
        Stats.add c z;
        Stats.add d w)
      rows;
    Table.add_row t
      [
        name;
        Table.cell_f (Stats.mean a);
        Table.cell_f (Stats.mean b);
        Table.cell_f (Stats.mean c);
        Table.cell_f (Stats.mean d);
      ]
  in
  add_means "chandy-lamport" cl;
  (* Koo-Toueg: blocking two-phase, dependency-directed *)
  let kt =
    run_cells ?jobs ?report ~table seeds
      ~coords:(fun seed -> ("koo-toueg", "random", seed))
      ~f:(fun seed ->
        let env = Rdt_workloads.Registry.find_exn "random" in
        let seed = Experiment.cell_seed [ table; "koo-toueg" ] seed in
        let r =
          Rdt_coordinated.Koo_toueg.run
            { (Rdt_coordinated.Koo_toueg.default_config env) with n; seed; max_messages }
        in
        let m = r.Rdt_coordinated.Koo_toueg.metrics in
        ( float_of_int m.Rdt_coordinated.Koo_toueg.checkpoints_taken,
          float_of_int m.Rdt_coordinated.Koo_toueg.control_messages,
          float_of_int (m.Rdt_coordinated.Koo_toueg.control_messages * marker_bits)
          /. float_of_int m.Rdt_coordinated.Koo_toueg.app_messages,
          m.Rdt_coordinated.Koo_toueg.mean_latency ))
  in
  add_means "koo-toueg" kt;
  (* CIC protocols: no control messages; overhead = piggyback *)
  let cic_protocols = [ "bhmr"; "fdas"; "cbr" ] in
  let cells = grid_cells cic_protocols ~seeds in
  let cic =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (pname, seed) -> (pname, "random", seed))
      ~f:(fun (pname, seed) ->
        let protocol = Registry.find_exn pname in
        let w = Experiment.workload ~n ~max_messages "random" in
        let seed = Experiment.cell_seed [ table; "cic" ] seed in
        let r = Experiment.run_once w protocol ~seed in
        let m = r.Runtime.metrics in
        float_of_int (m.Rdt_core.Metrics.forced + m.Rdt_core.Metrics.basic))
  in
  List.iter2
    (fun pname per_seed ->
      let protocol = Registry.find_exn pname in
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean (mean_stats_of per_seed));
          "0.000";
          string_of_int (Rdt_core.Protocol.payload_bits protocol ~n);
          "-";
        ])
    cic_protocols (regroup ~seeds cic);
  t

let table_breakeven ?jobs ?report ?(seeds = Experiment.default_seeds) () =
  let table = "BREAK-EVEN" in
  let n = 8 and max_messages = 1500 in
  let bhmr = Registry.find_exn "bhmr" in
  let bits_fdas = Rdt_core.Protocol.payload_bits fdas ~n in
  let bits_bhmr = Rdt_core.Protocol.payload_bits bhmr ~n in
  let cells = grid_cells environments ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (ename, seed) -> ("bhmr", ename, seed))
      ~f:(fun (ename, seed) ->
        let w = Experiment.workload ~n ~max_messages ename in
        let seed = Experiment.cell_seed [ table; ename ] seed in
        let rf = Experiment.run_once w fdas ~seed in
        let rb = Experiment.run_once w bhmr ~seed in
        ( float_of_int rf.Runtime.metrics.Rdt_core.Metrics.forced,
          float_of_int rb.Runtime.metrics.Rdt_core.Metrics.forced ))
  in
  let t =
    Table.create
      ~header:
        [
          "environment";
          "forced fdas";
          "forced bhmr";
          "extra piggyback (bits/msg)";
          "break-even ckpt size";
        ]
  in
  List.iter2
    (fun ename per_seed ->
      let ff = mean_stats_of (List.map fst per_seed) in
      let fb = mean_stats_of (List.map snd per_seed) in
      let saved = Stats.mean ff -. Stats.mean fb in
      let extra_bits = float_of_int ((bits_bhmr - bits_fdas) * max_messages) in
      let breakeven =
        if saved <= 0.0 then "inf"
        else
          let bits = extra_bits /. saved in
          Printf.sprintf "%.1f KiB" (bits /. 8192.0)
      in
      Table.add_row t
        [
          ename;
          Table.cell_f (Stats.mean ff);
          Table.cell_f (Stats.mean fb);
          string_of_int (bits_bhmr - bits_fdas);
          breakeven;
        ])
    environments (regroup ~seeds results);
  t

let table_goodput ?jobs ?report ?(seeds = Experiment.quick_seeds) () =
  let table = "TAB-GOODPUT" in
  let module CS = Rdt_failures.Crash_sim in
  let protocols = [ "none"; "bcs"; "fdas"; "bhmr"; "cbr" ] in
  let crashes =
    [
      { CS.victim = 1; at = 2500; repair_delay = 200 };
      { CS.victim = 3; at = 5000; repair_delay = 200 };
      { CS.victim = 1; at = 7500; repair_delay = 200 };
    ]
  in
  let cells = grid_cells protocols ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun (pname, seed) -> (pname, "random", seed))
      ~f:(fun (pname, seed) ->
        let protocol = Registry.find_exn pname in
        let env = Rdt_workloads.Registry.find_exn "random" in
        let seed = Experiment.cell_seed [ table; "random" ] seed in
        let r =
          CS.run
            {
              (CS.default_config env protocol) with
              CS.n = 6;
              seed;
              max_messages = 1500;
              crashes;
            }
        in
        ( float_of_int r.CS.metrics.CS.total_events_undone,
          float_of_int r.CS.metrics.CS.total_messages_replayed,
          float_of_int
            (List.fold_left (fun a (rc : CS.recovery) -> a + rc.CS.messages_undone) 0
               r.CS.recoveries),
          float_of_int r.CS.metrics.CS.messages_delivered ))
  in
  let t =
    Table.create
      ~header:[ "protocol"; "events undone"; "replayed"; "sends destroyed"; "delivered" ]
  in
  List.iter2
    (fun pname per_seed ->
      let undone = Stats.create ()
      and replayed = Stats.create ()
      and destroyed = Stats.create ()
      and delivered = Stats.create () in
      List.iter
        (fun (u, r, des, del) ->
          Stats.add undone u;
          Stats.add replayed r;
          Stats.add destroyed des;
          Stats.add delivered del)
        per_seed;
      Table.add_row t
        [
          pname;
          Table.cell_f (Stats.mean undone);
          Table.cell_f (Stats.mean replayed);
          Table.cell_f (Stats.mean destroyed);
          Table.cell_f (Stats.mean delivered);
        ])
    protocols (regroup ~seeds results);
  t

let fault_envs = [ "random"; "group"; "client-server" ]

let table_faults ?jobs ?report ?(seeds = Experiment.quick_seeds) () =
  let table = "TAB-FAULTS" in
  let bhmr = Registry.find_exn "bhmr" in
  let drops = [ 0.0; 0.02; 0.05; 0.1 ] in
  let coords =
    List.concat_map (fun drop -> List.map (fun e -> (drop, e)) fault_envs) drops
  in
  let cells = grid_cells coords ~seeds in
  let results =
    run_cells ?jobs ?report ~table cells
      ~coords:(fun ((drop, ename), seed) -> ("bhmr", Printf.sprintf "%s drop=%g" ename drop, seed))
      ~f:(fun ((drop, ename), seed) ->
        (* paired against the reliable run of the same derived seed; the
           drop=0 row isolates the effect of the FIFO transport alone *)
        let faults = { Rdt_dist.Faults.none with drop } in
        let w =
          Experiment.workload ~n:6 ~max_messages:800 ~faults
            ~transport:Rdt_dist.Transport.default_params ename
        in
        let w0 = Experiment.workload ~n:6 ~max_messages:800 ename in
        let seed = Experiment.cell_seed [ table; ename; Printf.sprintf "%g" drop ] seed in
        let r = Experiment.run_once w bhmr ~seed in
        let r0 = Experiment.run_once w0 bhmr ~seed in
        let f = r.Runtime.metrics.Rdt_core.Metrics.forced
        and f0 = r0.Runtime.metrics.Rdt_core.Metrics.forced in
        let ratio = if f0 > 0 then Some (float_of_int f /. float_of_int f0) else None in
        match r.Runtime.transport with
        | Some s ->
            ( ratio,
              float_of_int s.Rdt_dist.Transport.retransmissions
              /. float_of_int (max 1 s.Rdt_dist.Transport.accepted),
              s.Rdt_dist.Transport.undeliverable )
        | None -> (ratio, 0.0, 0))
  in
  let t =
    Table.create
      ~header:
        ("drop"
        :: List.concat_map (fun e -> [ e ^ " R(forced)"; e ^ " retx/msg"; e ^ " undeliv" ]) fault_envs
        )
  in
  let grouped = List.combine coords (regroup ~seeds results) in
  List.iter
    (fun drop ->
      let row =
        List.concat_map
          (fun ename ->
            let per_seed = List.assoc (drop, ename) grouped in
            let ratio = mean_stats_opt (List.map (fun (r, _, _) -> r) per_seed) in
            let retx = mean_stats_of (List.map (fun (_, r, _) -> r) per_seed) in
            let undeliv = List.fold_left (fun a (_, _, u) -> a + u) 0 per_seed in
            [
              Table.cell_f (Stats.mean ratio);
              Table.cell_f (Stats.mean retx);
              string_of_int undeliv;
            ])
          fault_envs
      in
      Table.add_row t (Printf.sprintf "%g" drop :: row))
    drops;
  t

(* ------------------------------------------------------------------ *)
(* BENCH-ONLINE: amortized per-event cost of the incremental checker    *)
(* ------------------------------------------------------------------ *)

let table_online ?report ?(min_events = 5_000) () =
  let protocol = Registry.find_exn "bhmr" in
  let env = Rdt_workloads.Registry.find_exn "random" in
  (* one long run: the trace carries >= [min_events] events (every
     message is one send + one delivery, plus checkpoints) *)
  let tr = Rdt_obs.Trace.ring ~capacity:(8 * min_events) in
  let r =
    Runtime.run (Runtime.configure ~n:8 ~seed:1 ~messages:(min_events / 2) ~trace:tr env protocol)
  in
  let events = Rdt_obs.Trace.events tr in
  let nev = List.length events in
  (* offline cost of one full re-check, the unit of the "re-check after
     every event" strategy the online engine replaces *)
  let t0 = Rdt_obs.Meter.now () in
  let off = Rdt_core.Checker.run r.Runtime.pattern in
  let offline_s = Rdt_obs.Meter.now () -. t0 in
  (* online: stream the trace through a fresh engine, one event at a
     time; also exercises the metered pattern-mode entry point so the
     [checker.online] span and [checker.online_events] counter land in
     the report *)
  let t0 = Rdt_obs.Meter.now () in
  let verdict =
    match Rdt_check.Online.check_trace events with
    | Ok t -> Rdt_check.Online.rdt_so_far t
    | Error e -> invalid_arg ("Experiments.table_online: inconsistent trace: " ^ e)
  in
  let online_s = Rdt_obs.Meter.now () -. t0 in
  let rep = Rdt_core.Checker.run ~algo:`Online r.Runtime.pattern in
  assert (rep.Rdt_core.Checker.rdt = off.Rdt_core.Checker.rdt && verdict = off.Rdt_core.Checker.rdt);
  let ns_per_event = 1e9 *. online_s /. float_of_int (max 1 nev) in
  (* re-checking offline after every event costs ~[nev] full checks (the
     final-pattern check as the per-check unit); amortized online must
     beat it by orders of magnitude *)
  let speedup = float_of_int nev *. offline_s /. max 1e-9 online_s in
  (match report with
  | None -> ()
  | Some rp ->
      Bench_report.add rp ~table:"BENCH-ONLINE" ~protocol:"bhmr" ~env:"random" ~seed:1
        ~seconds:online_s;
      Bench_report.add_micro rp ~name:"online.ns_per_event" ~ns:ns_per_event;
      Bench_report.add_micro rp ~name:"online.offline_recheck_ns"
        ~ns:(1e9 *. offline_s);
      Bench_report.add_micro rp ~name:"online.speedup_vs_offline" ~ns:speedup);
  let t = Table.create ~header:[ "events"; "ns/event"; "offline check (ms)"; "speedup" ] in
  Table.add_row t
    [
      string_of_int nev;
      Table.cell_f ns_per_event;
      Table.cell_f (1e3 *. offline_s);
      Table.cell_f speedup;
    ];
  t

(* ------------------------------------------------------------------ *)
(* BENCH-DURABLE: cost of crash-safe checker state                      *)
(* ------------------------------------------------------------------ *)

(* Scratch directory without ambient randomness: the path is a function
   of the pid and a counter, both irrelevant to simulation output. *)
let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rdt-durable-bench-%d-%d" (Unix.getpid ()) !scratch_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let table_durable ?report ?(min_events = 5_000) () =
  let protocol = Registry.find_exn "bhmr" in
  let env = Rdt_workloads.Registry.find_exn "random" in
  let tr = Rdt_obs.Trace.ring ~capacity:(8 * min_events) in
  ignore
    (Runtime.run (Runtime.configure ~n:8 ~seed:1 ~messages:(min_events / 2) ~trace:tr env protocol));
  let events = Rdt_obs.Trace.events tr in
  let nev = List.length events in
  let n =
    match Rdt_check.Online.trace_process_count events with
    | Ok n -> n
    | Error e -> invalid_arg ("Experiments.table_durable: " ^ e)
  in
  (* baseline: the same stream through a plain in-memory engine *)
  let t0 = Rdt_obs.Meter.now () in
  let baseline =
    match Rdt_check.Online.check_trace events with
    | Ok t -> Rdt_check.Online.summary t
    | Error e -> invalid_arg ("Experiments.table_durable: inconsistent trace: " ^ e)
  in
  let online_s = Rdt_obs.Meter.now () -. t0 in
  (* durable: WAL every event, a snapshot generation every nev/8 *)
  let dir = scratch_dir () in
  rm_rf dir;
  let config =
    { Rdt_durable.Session.default_config with Rdt_durable.Session.snapshot_every = max 1 (nev / 8) }
  in
  let t0 = Rdt_obs.Meter.now () in
  let s, _ = Rdt_durable.Session.open_ ~config ~dir ~n ~track_open:true () in
  List.iter (Rdt_durable.Session.observe s) events;
  Rdt_durable.Session.close s;
  let durable_s = Rdt_obs.Meter.now () -. t0 in
  let snapshots = Rdt_durable.Session.generation s in
  assert (Rdt_check.Online.summary (Rdt_durable.Session.engine s) = baseline);
  (* recover from what just hit the disk: only the tail past the last
     snapshot replays, and the verdict must be the uninterrupted one *)
  let s2, info = Rdt_durable.Session.open_ ~config ~dir ~n ~track_open:true () in
  assert (Rdt_check.Online.summary (Rdt_durable.Session.engine s2) = baseline);
  Rdt_durable.Session.close s2;
  let replayed =
    match info with
    | Some i -> i.Rdt_durable.Session.replayed_events
    | None -> invalid_arg "Experiments.table_durable: durable directory came back empty"
  in
  rm_rf dir;
  let durable_ns = 1e9 *. durable_s /. float_of_int (max 1 nev) in
  let online_ns = 1e9 *. online_s /. float_of_int (max 1 nev) in
  let overhead = durable_s /. Float.max 1e-9 online_s in
  (match report with
  | None -> ()
  | Some rp ->
      Bench_report.add rp ~table:"BENCH-DURABLE" ~protocol:"bhmr" ~env:"random" ~seed:1
        ~seconds:durable_s;
      Bench_report.add_micro rp ~name:"durable.ns_per_event" ~ns:durable_ns;
      Bench_report.add_micro rp ~name:"durable.overhead_vs_online" ~ns:overhead);
  let t =
    Table.create
      ~header:[ "events"; "ns/event durable"; "ns/event online"; "overhead"; "snapshots"; "tail replayed" ]
  in
  Table.add_row t
    [
      string_of_int nev;
      Table.cell_f durable_ns;
      Table.cell_f online_ns;
      Table.cell_f overhead;
      string_of_int snapshots;
      string_of_int replayed;
    ];
  t

(* ------------------------------------------------------------------ *)
(* BENCH-FUZZ: throughput of the adversarial scenario fuzzer            *)
(* ------------------------------------------------------------------ *)

let table_fuzz ?jobs ?report ?(budget = 80) () =
  let mapper = { Rdt_fuzz.Fuzzer.map = (fun f xs -> Pool.map ?jobs f xs) } in
  let cfg = { Rdt_fuzz.Fuzzer.default_config with budget } in
  let t0 = Rdt_obs.Meter.now () in
  let rep = Rdt_fuzz.Fuzzer.run ~mapper cfg in
  let seconds = Rdt_obs.Meter.now () -. t0 in
  (* the bench doubles as a sanity gate: on a healthy tree every
     generated scenario must pass all cross-checks *)
  (match rep.Rdt_fuzz.Fuzzer.failure with
  | None -> ()
  | Some f ->
      invalid_arg
        (Printf.sprintf "Experiments.table_fuzz: scenario #%d failed (%s): %s"
           f.Rdt_fuzz.Fuzzer.index
           (Rdt_fuzz.Exec.kind_name f.Rdt_fuzz.Fuzzer.kind)
           f.Rdt_fuzz.Fuzzer.detail));
  let c = rep.Rdt_fuzz.Fuzzer.counts in
  assert (c.Rdt_fuzz.Fuzzer.ok = budget);
  let per_sec = float_of_int budget /. Float.max 1e-9 seconds in
  (match report with
  | None -> ()
  | Some rp ->
      Bench_report.add rp ~table:"BENCH-FUZZ" ~protocol:"mixed" ~env:"mixed" ~seed:cfg.Rdt_fuzz.Fuzzer.seed
        ~seconds;
      Bench_report.add_micro rp ~name:"fuzz.scenarios_per_sec" ~ns:per_sec);
  let t = Table.create ~header:[ "scenarios"; "ok"; "scenarios/s" ] in
  Table.add_row t
    [ string_of_int rep.Rdt_fuzz.Fuzzer.scenarios; string_of_int c.Rdt_fuzz.Fuzzer.ok; Table.cell_f per_sec ];
  t

(* ------------------------------------------------------------------ *)
(* BENCH-SCALE: the sharded engine at n = 10^4                         *)
(* ------------------------------------------------------------------ *)

let table_scale ?jobs ?report ?(params = Scale.default_params) () =
  (match Scale.validate_params params with
  | Ok () -> ()
  | Error m -> invalid_arg ("Experiments.table_scale: " ^ m));
  let t0 = Rdt_obs.Meter.now () in
  let r = Scale.run ?jobs params in
  let seconds = Rdt_obs.Meter.now () -. t0 in
  let events_per_sec = float_of_int r.Scale.events /. Float.max 1e-9 seconds in
  let bytes_per_process = float_of_int r.Scale.payload_bytes /. float_of_int params.Scale.n in
  (match report with
  | None -> ()
  | Some rp ->
      Bench_report.add rp ~table:"BENCH-SCALE" ~protocol:"cbr" ~env:"ring"
        ~seed:params.Scale.seed ~seconds;
      Bench_report.add_micro rp ~name:"scale.events_per_sec" ~ns:events_per_sec;
      Bench_report.add_micro rp ~name:"scale.bytes_per_process" ~ns:bytes_per_process);
  let t =
    Table.create
      ~header:
        [ "n"; "messages"; "shards"; "events"; "forced"; "events/s"; "bytes/proc"; "checksum" ]
  in
  Table.add_row t
    [
      string_of_int params.Scale.n;
      string_of_int params.Scale.messages;
      string_of_int r.Scale.shards;
      string_of_int r.Scale.events;
      string_of_int r.Scale.ckpts_forced;
      Table.cell_f events_per_sec;
      Table.cell_f bytes_per_process;
      Printf.sprintf "%016x" r.Scale.checksum;
    ];
  t

(* ------------------------------------------------------------------ *)
(* BENCH-SERVE: multi-stream serving over the session wire protocol    *)
(* ------------------------------------------------------------------ *)

(* The full client/daemon path in-process: N clients stream the same
   recorded trace to an [Rdt_serve.Server] over a real Unix socket —
   framing, codec, backpressure, batched parallel apply — then query it
   live and say goodbye.  Doubles as a gate: every per-stream verdict
   must equal the serial [Online.check_trace] baseline. *)
let table_serve ?jobs ?report ?(streams = 4) ?(min_events = 4_000) () =
  let module Server = Rdt_serve.Server in
  let module Client = Rdt_serve.Client in
  let module W = Rdt_check.Session.Wire in
  let protocol = Registry.find_exn "bhmr" in
  let env = Rdt_workloads.Registry.find_exn "random" in
  let tr = Rdt_obs.Trace.ring ~capacity:(8 * min_events) in
  ignore
    (Runtime.run (Runtime.configure ~n:8 ~seed:1 ~messages:(min_events / 2) ~trace:tr env protocol));
  let events = Rdt_obs.Trace.events tr in
  let nev = List.length events in
  let n =
    match Rdt_check.Online.trace_process_count events with
    | Ok n -> n
    | Error e -> invalid_arg ("Experiments.table_serve: " ^ e)
  in
  let baseline =
    match Rdt_check.Online.check_trace events with
    | Ok t -> Rdt_check.Online.summary t
    | Error e -> invalid_arg ("Experiments.table_serve: inconsistent trace: " ^ e)
  in
  let socket =
    incr scratch_counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdt-serve-%d-%d.sock" (Unix.getpid ()) !scratch_counter)
  in
  let meter = Rdt_obs.Meter.default in
  let query_span () =
    match List.assoc_opt "serve.query" (Rdt_obs.Meter.spans meter) with
    | Some s -> s
    | None -> { Rdt_obs.Meter.calls = 0; seconds = 0. }
  in
  let span0 = query_span () in
  let mapper = { Server.map = (fun f xs -> Pool.map ?jobs f xs) } in
  let server = Server.create ~mapper ~meter (Server.default_config ~socket) in
  let t0 = Rdt_obs.Meter.now () in
  let clients = Array.init streams (fun _ -> Client.connect ~socket) in
  let inbox = Array.make streams [] in
  let pump_until pred =
    let budget = ref 1_000_000 in
    while not (pred ()) do
      decr budget;
      if !budget = 0 then invalid_arg "Experiments.table_serve: server made no progress";
      (* the select timeout inside [step] doubles as the idle wait, so
         the loop never spins and never sleeps outside the server *)
      ignore (Server.step ~timeout:0.0005 server : int);
      Array.iteri (fun i c -> inbox.(i) <- inbox.(i) @ Client.poll c) clients
    done
  in
  let all_have pred = Array.for_all (fun rs -> List.exists pred rs) inbox in
  Array.iteri
    (fun i c ->
      Client.send c (W.Hello { version = W.version; stream = Printf.sprintf "bench-%d" i; n }))
    clients;
  pump_until (fun () -> all_have (function W.Welcome _ -> true | _ -> false));
  (* stream in frames of 256 events, draining between rounds so client
     inboxes and kernel buffers stay bounded *)
  let rec rounds evs =
    match evs with
    | [] -> ()
    | _ ->
        let rec split k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | ev :: rest -> split (k - 1) (ev :: acc) rest
        in
        let frame, rest = split 256 [] evs in
        Array.iter (fun c -> Client.send c (W.Events frame)) clients;
        while Server.step server > 0 do
          ()
        done;
        Array.iteri (fun i c -> inbox.(i) <- inbox.(i) @ Client.poll c) clients;
        rounds rest
  in
  rounds events;
  (* live queries: full summary plus a Corollary 4.5 minimum-GCP answer
     (forces a pattern reconstruction on the server) *)
  Array.iter
    (fun c ->
      Client.send c (W.Query { id = 0; query = W.Summary });
      Client.send c (W.Query { id = 1; query = W.Min_gcp [ (0, 0) ] }))
    clients;
  pump_until (fun () ->
      all_have (function W.Answer { id = 1; _ } -> true | _ -> false));
  Array.iter (fun rs ->
      List.iter
        (function
          | W.Answer { id = 0; answer = W.Stats s } ->
              if s <> baseline then
                invalid_arg "Experiments.table_serve: served summary diverged from baseline"
          | W.Answer { id = 1; answer = W.Cut None } ->
              invalid_arg "Experiments.table_serve: min-GCP query found no consistent cut"
          | W.Failed { error; _ } -> invalid_arg ("Experiments.table_serve: query failed: " ^ error)
          | _ -> ())
        rs)
    inbox;
  Array.iter (fun c -> Client.send c W.Bye) clients;
  pump_until (fun () -> all_have (function W.Goodbye _ -> true | _ -> false));
  let seconds = Rdt_obs.Meter.now () -. t0 in
  Array.iteri
    (fun i rs ->
      List.iter
        (function
          | W.Goodbye { summary; _ } ->
              if summary <> baseline then
                invalid_arg
                  (Printf.sprintf
                     "Experiments.table_serve: stream %d's verdict diverged from baseline" i)
          | _ -> ())
        rs)
    inbox;
  Array.iter Client.close clients;
  Server.close server;
  let span1 = query_span () in
  let queries = span1.Rdt_obs.Meter.calls - span0.Rdt_obs.Meter.calls in
  let query_ns =
    1e9
    *. (span1.Rdt_obs.Meter.seconds -. span0.Rdt_obs.Meter.seconds)
    /. float_of_int (max 1 queries)
  in
  let total = streams * nev in
  let events_per_sec = float_of_int total /. Float.max 1e-9 seconds in
  (match report with
  | None -> ()
  | Some rp ->
      Bench_report.add rp ~table:"BENCH-SERVE" ~protocol:"bhmr" ~env:"random" ~seed:1 ~seconds;
      Bench_report.add_micro rp ~name:"serve.events_per_sec" ~ns:events_per_sec;
      Bench_report.add_micro rp ~name:"serve.query_ns" ~ns:query_ns);
  let t =
    Table.create
      ~header:[ "streams"; "events/stream"; "events/s"; "queries"; "ns/query"; "rdt" ]
  in
  Table.add_row t
    [
      string_of_int streams;
      string_of_int nev;
      Table.cell_f events_per_sec;
      string_of_int queries;
      Table.cell_f query_ns;
      string_of_bool baseline.Rdt_check.Online.rdt;
    ];
  t

let run_all ?(quick = false) ?jobs ?report () =
  let seeds = if quick then Experiment.quick_seeds else Experiment.default_seeds in
  let t0 = Rdt_obs.Meter.now () in
  print_figure (fig_random ?jobs ?report ~seeds ());
  print_figure (fig_group ?jobs ?report ~seeds ());
  print_figure (fig_client_server ?jobs ?report ~seeds ());
  Format.printf "@.== TAB-PROTOCOLS: forced checkpoints per 100 basic (n=8) ==@.";
  Table.print (table_protocols ?jobs ?report ~seeds ());
  Format.printf "@.== TAB-OVERHEAD: piggyback bits per message ==@.";
  Table.print (table_overhead ());
  Format.printf "@.== CLAIM-10PCT: reduction of forced checkpoints vs FDAS ==@.";
  List.iter
    (fun (label, reduction) ->
      Format.printf "  %-22s %5.1f%%  %s@." label (100.0 *. reduction)
        (if reduction >= 0.10 then "(>= 10%: yes)" else "(>= 10%: no)"))
    (claim_ten_percent ?jobs ?report ~seeds ());
  Format.printf "@.== TAB-MINGCP: Corollary 4.5 (on-the-fly minimum global checkpoint) ==@.";
  Table.print (table_min_gcp ?jobs ?report ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf "@.== ABLATION: predicate firings per variant (client-server, n=8) ==@.";
  Table.print (table_ablation ?jobs ?report ~seeds ());
  Format.printf "@.== TAB-RECOVERY: useless checkpoints, domino and replay (client-server, n=6) ==@.";
  Table.print (table_recovery ?jobs ?report ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf
    "@.== TAB-COORDINATED: coordinated snapshots vs CIC (random, n=8) ==@.";
  Table.print
    (table_coordinated ?jobs ?report ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf "@.== BREAK-EVEN: checkpoint size above which bhmr beats fdas in total overhead ==@.";
  Table.print (table_breakeven ?jobs ?report ~seeds ());
  print_figure (fig_lost_work ?jobs ?report ~seeds ());
  Format.printf "@.== TAB-GOODPUT: online crash recovery, 3 crashes (random, n=6) ==@.";
  Table.print (table_goodput ?jobs ?report ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf
    "@.== TAB-FAULTS: forced-checkpoint inflation and retransmission cost vs drop rate (bhmr, n=6) ==@.";
  Table.print (table_faults ?jobs ?report ~seeds:(if quick then [ 1 ] else Experiment.quick_seeds) ());
  Format.printf
    "@.== BENCH-ONLINE: amortized per-event cost of the incremental checker (bhmr, n=8) ==@.";
  Table.print (table_online ?report ());
  Format.printf
    "@.== BENCH-DURABLE: cost of crash-safe checker state (WAL + snapshots, bhmr, n=8) ==@.";
  Table.print (table_durable ?report ());
  Format.printf "@.== BENCH-FUZZ: adversarial scenario fuzzer throughput (mixed protocols) ==@.";
  Table.print (table_fuzz ?jobs ?report ~budget:(if quick then 40 else 80) ());
  Format.printf
    "@.== BENCH-SCALE: sharded engine throughput (cbr, ring, n=%s) ==@."
    (if quick then "1000" else "10000");
  Table.print
    (table_scale ?jobs ?report
       ~params:
         (if quick then { Scale.default_params with Scale.n = 1_000; messages = 100_000 }
          else Scale.default_params)
       ());
  Format.printf
    "@.== BENCH-SERVE: multi-stream serving over the session wire protocol (bhmr, n=8) ==@.";
  Table.print (table_serve ?jobs ?report ~min_events:(if quick then 2_000 else 4_000) ());
  (match report with Some r -> Bench_report.set_wall r (Rdt_obs.Meter.now () -. t0) | None -> ());
  Format.print_flush ()
