(** Machine-readable performance record of an experiment/bench grid.

    Every run of the grid (see {!Experiments} and [bench/main.ml]) can
    collect one of these: per-cell wall-clock timings keyed by the cell's
    coordinates (table, protocol, environment, seed), the grid wall-clock,
    and optionally the micro-benchmark estimates.  [BENCH_results.json]
    (written by {!write}) is the perf trajectory future changes are
    measured against — see EXPERIMENTS.md.

    The timings are measurements, not simulation output: they vary from
    run to run while the tables stay bit-identical. *)

type cell = { table : string; protocol : string; env : string; seed : int; seconds : float }

type t

val create : jobs:int -> t

val add : t -> table:string -> protocol:string -> env:string -> seed:int -> seconds:float -> unit
(** Record one cell.  Cells are kept in insertion order, which for a grid
    run is the deterministic cell order — parallel and sequential runs of
    the same grid record the same cell sequence (timings aside). *)

val add_micro : t -> name:string -> ns:float -> unit
(** Record one micro-benchmark estimate (ns per run). *)

val set_wall : t -> float -> unit
(** Total wall-clock of the grid, timed by the caller around the whole
    run (not the sum of cell times: cells overlap under parallelism). *)

val wall : t -> float

val record_obs : ?meter:Rdt_obs.Meter.t -> t -> unit
(** Snapshot the metrics registry ({!Rdt_obs.Meter.default} unless given)
    into the report: per-phase timer spans ([runtime.sim],
    [runtime.pattern], [checker.*], [crash_sim.*], ...) and aggregate
    counters, rendered as the [phases] and [counters] JSON sections.
    Call once, after the grid finishes. *)

val phases : t -> (string * int * float) list
(** [(span, calls, seconds)], sorted by span name. *)

val counters : t -> (string * int) list

val cells : t -> cell list
(** In insertion (grid) order. *)

val micro : t -> (string * float) list

val per_protocol : t -> (string * float * int) list
(** Total seconds and cell count per protocol, sorted by name: the run
    cost each protocol contributes to the grid. *)

val per_table : t -> (string * float * int) list

val to_json : t -> string

val write : string -> t -> unit
(** [write path t] writes {!to_json} to [path]. *)
