(* Domain-pool backend (OCaml >= 5).  Selected by a dune rule; the 4.x
   build uses pool_backend_seq.ml instead.  Workers pull slot indices from
   a shared atomic counter; each slot is executed exactly once, and
   Domain.join gives the caller a happens-before edge over every slot's
   write. *)

let parallelism_available = true

let cpu_count () = Domain.recommended_domain_count ()

let iter_slots ~jobs ~count task =
  if jobs <= 1 || count <= 1 then
    for i = 0 to count - 1 do
      task i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < count then begin
          task i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs count - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end
