let parallelism_available = Pool_backend.parallelism_available

let cpu_count () = max 1 (Pool_backend.cpu_count ())

let max_jobs = 128

let default_jobs () =
  match Sys.getenv_opt "RDT_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> min j max_jobs
      | Some _ | None -> 1)

type ('a, 'b) slot =
  | Pending of 'a
  | Done of 'b * float
  | Failed of exn * Printexc.raw_backtrace

let run_slots ~jobs slots =
  let count = Array.length slots in
  let jobs = min jobs (min count max_jobs) in
  let task i =
    match slots.(i) with
    | Pending x -> (
        let t0 = Rdt_obs.Meter.now () in
        match x () with
        | y -> slots.(i) <- Done (y, Rdt_obs.Meter.now () -. t0)
        | exception e -> slots.(i) <- Failed (e, Printexc.get_raw_backtrace ()))
    | Done _ | Failed _ -> assert false
  in
  Pool_backend.iter_slots ~jobs ~count task;
  (* fail on the smallest failed index, independent of scheduling *)
  Array.iter
    (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending _ | Done _ -> ())
    slots

let map_timed ?jobs f xs =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let slots = Array.of_list (List.map (fun x -> Pending (fun () -> f x)) xs) in
  run_slots ~jobs slots;
  List.map
    (function Done (y, dt) -> (y, dt) | Pending _ | Failed _ -> assert false)
    (Array.to_list slots)

let map ?jobs f xs = List.map fst (map_timed ?jobs f xs)
