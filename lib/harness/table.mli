(** Plain-text table rendering for experiment reports. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit

val header : t -> string list

val rows : t -> string list list
(** The data rows in insertion order (separators omitted); the raw cells
    the determinism tests compare across [--jobs] values. *)

val render : t -> string
(** Column-aligned ASCII table. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : float -> string
(** Fixed three-decimal float formatting used throughout the reports. *)

val cell_pct : float -> string
(** A ratio as a percentage with one decimal. *)
