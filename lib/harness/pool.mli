(** A deterministic work-sharing pool for embarrassingly parallel grids.

    The experiment and bench harness decomposes every table/figure into
    independent {e cells} (protocol x environment x seed); {!map} runs one
    function per cell, sharding the cells over an OCaml 5 [Domain] pool.
    On OCaml 4.x the same interface is provided by a transparent
    sequential backend (selected at build time), so the code using the
    pool is identical on both compilers.

    {b Determinism.}  Tasks must be self-contained: each draws all its
    randomness from a seed derived from its own cell coordinates (see
    {!Rdt_dist.Rng.derive_seed}) and touches no shared mutable state.
    Results are written into the slot of the task's index, so the output
    list order — and, with deterministic tasks, its contents — is
    bit-identical for every [jobs] value, including [1] and the
    sequential backend.

    {b Exceptions.}  If tasks raise, the exception of the smallest task
    index is re-raised (with its backtrace) after all workers have
    joined, so failure behaviour is also independent of scheduling. *)

val parallelism_available : bool
(** [true] when the build has a real domain pool (OCaml >= 5), [false]
    under the sequential fallback. *)

val cpu_count : unit -> int
(** Recommended worker count for this machine ([1] under the sequential
    backend). *)

val default_jobs : unit -> int
(** The [RDT_JOBS] environment variable when set to a positive integer
    (clamped to [128]), else [1].  CLI entry points use this as the
    default of their [--jobs] flag so CI can exercise the parallel path
    without touching every call site. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by [min jobs
    (length xs)] workers.  [jobs] defaults to {!default_jobs}[ ()]; values
    [<= 1] run on the calling domain.  @raise Invalid_argument if a given
    [jobs] is [< 1]. *)

val map_timed : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b * float) list
(** Like {!map}, but pairs each result with the wall-clock seconds its
    task took on its worker.  The timings are measurement, not output:
    they vary run to run even though the results do not. *)
