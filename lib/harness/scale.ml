module Shard = Rdt_dist.Shard
module Rng = Rdt_dist.Rng
module Vclock = Rdt_dist.Vclock

type params = {
  n : int;
  messages : int;
  seed : int;
  hop_span : int;
  basic_ckpt_every : int;
}

let default_params = { n = 10_000; messages = 1_000_000; seed = 1; hop_span = 8; basic_ckpt_every = 8 }

let validate_params p =
  if p.n < 2 then Error "n must be >= 2"
  else if p.messages < 0 then Error "messages must be >= 0"
  else if p.hop_span < 1 then Error "hop_span must be >= 1"
  else if p.basic_ckpt_every < 1 then Error "basic_ckpt_every must be >= 1"
  else Ok ()

(* A function of n alone — the partition of processes over shards (and
   with it every cross-shard merge) must not depend on the worker count. *)
let shards_for n = max 1 (min 64 (n / 256))

(* Cross-shard messages travel at least this long; local ones may be
   faster.  The epoch width of the conservative driver. *)
let lookahead = 8

type ev =
  | Tick of int (* the process performs its next send *)
  | Recv of { dst : int; msg : int; payload : Vclock.t }

type result = {
  shards : int;
  events : int;
  sent : int;
  delivered : int;
  ckpts_basic : int;
  ckpts_forced : int;
  final_time : int;
  payload_entries : int;
  payload_bytes : int;
  checksum : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "shards: %d@.events: %d@.sent: %d@.delivered: %d@.ckpts_basic: %d@.ckpts_forced: \
     %d@.final_time: %d@.payload_entries: %d@.payload_bytes: %d@.checksum: %016x"
    r.shards r.events r.sent r.delivered r.ckpts_basic r.ckpts_forced r.final_time
    r.payload_entries r.payload_bytes r.checksum

(* FNV-1a over the sparse entries of every final vector, in (process,
   position) order: any divergence between two runs shows up here. *)
let fnv_prime = 0x100000001b3

let fnv acc x = (acc lxor x) * fnv_prime land max_int

(* Trace actions, logged per shard in handling order when tracing. *)
type action =
  | A_send of { src : int; dst : int; msg : int }
  | A_recv of { dst : int; msg : int }
  | A_ckpt of { p : int; index : int }

(* Per-shard counters live in their own record — one heap block per
   shard, so domains stepping different shards never write into the
   same cache line. *)
type stats = {
  mutable st_sent : int;
  mutable st_delivered : int;
  mutable st_basic : int;
  mutable st_forced : int;
  mutable st_entries : int;
  mutable st_bytes : int;
  mutable st_final_time : int;
}

type engine = {
  params : params;
  nshards : int;
  core : ev Shard.t;
  (* per-process state; a process is touched only by its own shard *)
  vectors : Vclock.t array;
  interval : int array; (* current checkpoint-interval index *)
  quota : int array;
  sent_p : int array;
  sent_since_ckpt : int array;
  rngs : Rng.t array;
  (* payload snapshot reused across consecutive sends: receivers only
     read payloads, so one immutable copy serves until the sender's own
     vector next mutates (checkpoint or merge), which clears the slot *)
  payload_cache : Vclock.t option array;
  stats : stats array;
  trace : (int * action) list array option; (* per-shard (time, action) log, newest first *)
}

(* Block partition: shard s owns the contiguous range of processes
   [s*n/shards, (s+1)*n/shards).  Contiguity matters twice over — the
   ring-local traffic stays mostly intra-shard, and the per-process
   arrays are written in disjoint cache-line ranges by the domains
   stepping different shards. *)
let shard_of e p = p * e.nshards / e.params.n

(* Wire-size estimate of a sparse payload: an entry-count header plus a
   (position, value) varint-free pair per nonzero entry. *)
let payload_size v = 8 + (16 * Vclock.nnz v)

let log e shard time action =
  match e.trace with Some logs -> logs.(shard) <- (time, action) :: logs.(shard) | None -> ()

let take_ckpt e ~shard ~time p ~forced =
  let x = e.interval.(p) in
  e.interval.(p) <- x + 1;
  Vclock.set e.vectors.(p) p (x + 1);
  e.payload_cache.(p) <- None;
  e.sent_since_ckpt.(p) <- 0;
  let st = e.stats.(shard) in
  if forced then st.st_forced <- st.st_forced + 1 else st.st_basic <- st.st_basic + 1;
  log e shard time (A_ckpt { p; index = x })

let handler e shard ~time ev =
  let st = e.stats.(shard) in
  if time > st.st_final_time then st.st_final_time <- time;
  match ev with
  | Tick p ->
      let rng = e.rngs.(p) in
      let n = e.params.n in
      (* basic checkpoints pace with the send counter, before the send *)
      if e.sent_p.(p) > 0 && e.sent_p.(p) mod e.params.basic_ckpt_every = 0 && e.sent_since_ckpt.(p) > 0
      then take_ckpt e ~shard ~time p ~forced:false;
      (* ring-local destination: bounded causal spread keeps vectors
         sparse; the span clamp keeps dst <> p however small n is *)
      let hop = Rng.int_in rng 1 (min e.params.hop_span (n - 1)) in
      let dst = if Rng.bool rng then (p + hop) mod n else (p - hop + n) mod n in
      (* globally unique id from the per-process quota ceiling *)
      let msg = (p * ((e.params.messages / e.params.n) + 1)) + e.sent_p.(p) in
      let payload =
        match e.payload_cache.(p) with
        | Some v -> v
        | None ->
            let v = Vclock.copy e.vectors.(p) in
            e.payload_cache.(p) <- Some v;
            v
      in
      st.st_sent <- st.st_sent + 1;
      st.st_entries <- st.st_entries + Vclock.nnz payload;
      st.st_bytes <- st.st_bytes + payload_size payload;
      e.sent_p.(p) <- e.sent_p.(p) + 1;
      e.sent_since_ckpt.(p) <- e.sent_since_ckpt.(p) + 1;
      log e shard time (A_send { src = p; dst; msg });
      let dshard = shard_of e dst in
      if dshard = shard then
        Shard.schedule e.core ~shard ~time:(time + 1 + Rng.int rng 3) (Recv { dst; msg; payload })
      else
        Shard.post e.core ~src:shard ~dst:dshard
          ~time:(time + lookahead + Rng.int rng 4)
          (Recv { dst; msg; payload });
      if e.sent_p.(p) < e.quota.(p) then
        Shard.schedule e.core ~shard ~time:(time + 1 + Rng.int rng 3) (Tick p)
  | Recv { dst; msg; payload } ->
      (* checkpoint-before-receive: if the process sent anything in its
         current interval, close the interval before merging — the CBR
         rule that makes every dependency trackable *)
      if e.sent_since_ckpt.(dst) > 0 then take_ckpt e ~shard ~time dst ~forced:true;
      Vclock.merge e.vectors.(dst) payload;
      e.payload_cache.(dst) <- None;
      st.st_delivered <- st.st_delivered + 1;
      log e shard time (A_recv { dst; msg })

let create ?(traced = false) params =
  (match validate_params params with
  | Ok () -> ()
  | Error m -> invalid_arg ("Scale: " ^ m));
  let n = params.n in
  let nshards = shards_for n in
  let core = Shard.create ~shards:nshards ~seed:params.seed ~lookahead () in
  let quota =
    Array.init n (fun p -> (params.messages / n) + if p < params.messages mod n then 1 else 0)
  in
  let e =
    {
      params;
      nshards;
      core;
      vectors = Array.init n (fun _ -> Vclock.create ~n);
      interval = Array.make n 0;
      quota;
      sent_p = Array.make n 0;
      sent_since_ckpt = Array.make n 0;
      rngs = Array.init n (fun p -> Rng.create (Rng.derive_seed params.seed (Printf.sprintf "proc.%d" p)));
      payload_cache = Array.make n None;
      stats =
        Array.init nshards (fun _ ->
            {
              st_sent = 0;
              st_delivered = 0;
              st_basic = 0;
              st_forced = 0;
              st_entries = 0;
              st_bytes = 0;
              st_final_time = 0;
            });
      trace = (if traced then Some (Array.make nshards []) else None);
    }
  in
  (* mirror the builder: C_{p,0} is taken at creation; entry p becomes 1 *)
  for p = 0 to n - 1 do
    e.interval.(p) <- 1;
    Vclock.set e.vectors.(p) p 1;
    if quota.(p) > 0 then Shard.schedule core ~shard:(shard_of e p) ~time:(p land 7) (Tick p)
  done;
  e

let sum f e = Array.fold_left (fun acc st -> acc + f st) 0 e.stats

let result_of e =
  let checksum =
    let offset_basis = Int64.to_int 0xcbf29ce484222325L land max_int in
    let acc = ref (fnv offset_basis e.params.n) in
    Array.iteri
      (fun p v ->
        acc := fnv !acc p;
        Vclock.iteri v ~f:(fun i x ->
            acc := fnv (fnv !acc i) x))
      e.vectors;
    !acc
  in
  {
    shards = e.nshards;
    events = Shard.total_stepped e.core;
    sent = sum (fun s -> s.st_sent) e;
    delivered = sum (fun s -> s.st_delivered) e;
    ckpts_basic = sum (fun s -> s.st_basic) e;
    ckpts_forced = sum (fun s -> s.st_forced) e;
    final_time = Array.fold_left (fun acc st -> max acc st.st_final_time) 0 e.stats;
    payload_entries = sum (fun s -> s.st_entries) e;
    payload_bytes = sum (fun s -> s.st_bytes) e;
    checksum;
  }

let drive ?jobs e =
  let shard_ids = List.init e.nshards Fun.id in
  let core = e.core in
  while not (Shard.finished core) do
    Shard.exchange core;
    ignore (Pool.map ?jobs (fun s -> Shard.step core ~shard:s ~handler:(handler e s)) shard_ids)
  done

let run ?jobs params =
  let e = create params in
  drive ?jobs e;
  result_of e

(* ------------------------------------------------------------------ *)
(* Traced runs: a pattern for the offline checkers                     *)
(* ------------------------------------------------------------------ *)

let build_pattern e =
  let module B = Rdt_pattern.Pattern.Builder in
  let logs = match e.trace with Some l -> l | None -> assert false in
  (* Global linearization: (time, shard, in-shard order).  Valid because
     every delivery is strictly later than its send (delays >= 1) and a
     process lives on exactly one shard, so its own order is preserved. *)
  let entries =
    Array.to_list (Array.mapi (fun shard l -> List.rev_map (fun (t, a) -> (t, shard, a)) l) logs)
    |> List.concat
    |> List.stable_sort (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
  in
  let b = B.create ~n:e.params.n in
  let handles = Hashtbl.create (max 16 (sum (fun s -> s.st_sent) e)) in
  List.iter
    (fun (time, _, action) ->
      match action with
      | A_send { src; dst; msg } -> Hashtbl.replace handles msg (B.send ~time b ~src ~dst)
      | A_recv { msg; _ } -> B.recv ~time b (Hashtbl.find handles msg)
      | A_ckpt { p; index = _ } -> ignore (B.checkpoint ~time b p))
    entries;
  B.finish b

let run_traced params =
  let e = create ~traced:true params in
  drive ~jobs:1 e;
  (result_of e, build_pattern e)
