(** The negative control, registered as ["none"]: independent
    (uncoordinated) checkpointing that never forces a checkpoint and
    piggybacks nothing.  Runs under it generally violate RDT and can
    exhibit the domino effect. *)

include Protocol.S
