module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng
module Channel = Rdt_dist.Channel
module Faults = Rdt_dist.Faults
module Transport = Rdt_dist.Transport
module Event_queue = Rdt_dist.Event_queue
module Pattern = Rdt_pattern.Pattern
module Ptypes = Rdt_pattern.Types
module Trace = Rdt_obs.Trace
module Meter = Rdt_obs.Meter

type config = {
  n : int;
  seed : int;
  env : Env.t;
  protocol : Protocol.t;
  channel : Channel.spec;
  basic_period : int * int;
  max_messages : int;
  max_time : int;
  faults : Faults.spec;
  transport : Transport.params option;
  trace : Trace.t;
  online : bool;
}

let default_config env protocol =
  {
    n = 8;
    seed = 1;
    env;
    protocol;
    channel = Channel.Uniform (5, 100);
    basic_period = (300, 700);
    max_messages = 2000;
    max_time = max_int / 2;
    faults = Faults.none;
    transport = None;
    trace = Trace.null;
    online = false;
  }

let configure ?(n = 8) ?(seed = 1) ?(messages = 2000) ?(channel = Channel.Uniform (5, 100))
    ?(basic_period = (300, 700)) ?(max_time = max_int / 2) ?(faults = Faults.none) ?transport
    ?(trace = Trace.null) ?(online = false) env protocol =
  {
    n;
    seed;
    env;
    protocol;
    channel;
    basic_period;
    max_messages = messages;
    max_time;
    faults;
    transport;
    trace;
    online;
  }

type result = {
  pattern : Pattern.t;
  metrics : Metrics.t;
  predicate_counts : (string * int) list;
  hierarchy_violations : (string * string) list;
  transport : Transport.stats option;
  online : Rdt_check.Online.summary option;
}

(* Implications expected among the named predicates (weaker => stronger in
   the sense of Section 5.2: a less conservative test implies the more
   conservative one). *)
let expected_implications =
  [ ("c1", "c_fdas"); ("c2", "c2'"); ("c2", "c_fdas"); ("c2'", "c_fdas"); ("c_fdas", "c_fdi") ]

type queued =
  | Tick of int
  | Basic of int
  | Arrival of { dst : int; src : int; handle : int; payload : Control.t }

let validate_config cfg =
  if cfg.n < 2 then invalid_arg "Runtime: n must be >= 2";
  if cfg.max_messages < 0 then invalid_arg "Runtime: negative message budget";
  (match Channel.validate cfg.channel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Runtime: bad channel spec: " ^ e));
  (match Faults.validate ~n:cfg.n cfg.faults with
  | Ok () -> ()
  | Error e -> invalid_arg ("Runtime: bad fault spec: " ^ e));
  (match cfg.transport with
  | Some p -> (
      match Transport.validate_params p with
      | Ok () -> ()
      | Error e -> invalid_arg ("Runtime: bad transport params: " ^ e))
  | None ->
      if not (Faults.is_none cfg.faults) then
        invalid_arg "Runtime: fault injection requires a transport (set cfg.transport)");
  let lo, hi = cfg.basic_period in
  if lo < 0 || hi < lo then invalid_arg "Runtime: bad basic period"

(* The reliable path: the paper's model verbatim, one [Arrival] event per
   message.  Kept separate from [run_faulty] so the seed behaviour (RNG
   stream included) is bit-for-bit unchanged when no transport is
   configured. *)
let run_reliable cfg =
  let (module P : Protocol.S) = cfg.protocol in
  let (module E : Env.S) = cfg.env in
  let tr = cfg.trace in
  let rng = Rng.create cfg.seed in
  let env_rng = Rng.split rng in
  let env = E.create ~n:cfg.n ~rng:env_rng in
  let states = Array.init cfg.n (fun pid -> P.create ~n:cfg.n ~pid) in
  let builder = Pattern.Builder.create ~n:cfg.n in
  let queue : queued Event_queue.t = Event_queue.create () in
  let interval_events = Array.make cfg.n 0 in
  let basic = ref 0
  and basic_skipped = ref 0
  and forced = ref 0
  and sent = ref 0
  and delivered = ref 0
  and internal_events = ref 0
  and now = ref 0 in
  let pred_counts : (string, int ref) Hashtbl.t = Hashtbl.create 7 in
  let violations : (string * string, unit) Hashtbl.t = Hashtbl.create 7 in
  let take_checkpoint ?(preds = []) pid kind =
    let snapshot = P.tdv states.(pid) in
    let index = Pattern.Builder.checkpoint ~kind ?tdv:snapshot ~time:!now builder pid in
    if Trace.on tr then
      Trace.emit tr (Ckpt { pid; index; kind; time = !now; tdv = snapshot; preds });
    P.on_checkpoint states.(pid);
    interval_events.(pid) <- 0
  in
  (* Initial checkpoints: the builder records them automatically at
     creation; mirror them in the protocol states. *)
  Array.iter P.on_checkpoint states;
  if Trace.on tr then
    for pid = 0 to cfg.n - 1 do
      Trace.emit tr
        (Ckpt { pid; index = 0; kind = Ptypes.Initial; time = 0; tdv = None; preds = [] })
    done;
  let basic_enabled = cfg.basic_period <> (0, 0) in
  let draw_basic_delay () =
    let lo, hi = cfg.basic_period in
    Rng.int_in rng lo hi
  in
  let send_message ~src ~dst =
    if !sent < cfg.max_messages && src <> dst then begin
      incr sent;
      let payload = P.make_payload states.(src) ~dst in
      let handle = Pattern.Builder.send builder ~src ~dst in
      if Trace.on tr then Trace.emit tr (Send { msg = handle; src; dst; time = !now });
      interval_events.(src) <- interval_events.(src) + 1;
      let delay = Channel.sample rng cfg.channel in
      Event_queue.schedule queue ~time:(!now + delay) (Arrival { dst; src; handle; payload });
      if P.force_after_send then begin
        incr forced;
        take_checkpoint ~preds:[ "after-send" ] src Ptypes.Forced
      end
    end
  in
  let do_action pid = function
    | Env.Send dst -> send_message ~src:pid ~dst
    | Env.Internal ->
        Pattern.Builder.internal builder pid;
        if Trace.on tr then Trace.emit tr (Internal { pid; time = !now });
        interval_events.(pid) <- interval_events.(pid) + 1;
        incr internal_events
    | Env.Checkpoint ->
        if interval_events.(pid) > 0 then begin
          incr basic;
          take_checkpoint pid Ptypes.Basic
        end
        else incr basic_skipped
  in
  (* Prime the queue. *)
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (Tick pid);
    if basic_enabled then Event_queue.schedule queue ~time:(draw_basic_delay ()) (Basic pid)
  done;
  (* Returns the names of the predicates that fired, so a forced
     checkpoint triggered by this arrival can be traced to its cause. *)
  let record_predicates ~dst ~src payload =
    let named = P.predicates states.(dst) ~src payload in
    match named with
    | [] -> []
    | _ ->
        List.iter
          (fun (name, v) ->
            if v then
              match Hashtbl.find_opt pred_counts name with
              | Some r -> incr r
              | None -> Hashtbl.add pred_counts name (ref 1))
          named;
        List.iter
          (fun (weaker, stronger) ->
            match (List.assoc_opt weaker named, List.assoc_opt stronger named) with
            | Some true, Some false -> Hashtbl.replace violations (weaker, stronger) ()
            | _ -> ())
          expected_implications;
        List.filter_map (fun (name, v) -> if v then Some name else None) named
  in
  let sim_t0 = Meter.now () in
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | Tick pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (Tick pid)
              | None -> ()
            end
        | Basic pid ->
            (* keep checkpointing while the computation still executes
               events: after the send budget is hit, in-flight arrivals
               keep extending intervals, and those intervals deserve the
               same basic-checkpoint coverage (once the channels drain,
               [sent = delivered] and the clock stops rescheduling) *)
            if t <= cfg.max_time && (!sent < cfg.max_messages || !delivered < !sent) then begin
              do_action pid Env.Checkpoint;
              Event_queue.schedule queue ~time:(t + draw_basic_delay ()) (Basic pid)
            end
        | Arrival { dst; src; handle; payload } ->
            let fired = record_predicates ~dst ~src payload in
            if P.must_force states.(dst) ~src payload then begin
              incr forced;
              take_checkpoint ~preds:fired dst Ptypes.Forced
            end;
            P.absorb states.(dst) ~src payload;
            Pattern.Builder.recv builder handle;
            incr delivered;
            if Trace.on tr then Trace.emit tr (Deliver { msg = handle; src; dst; time = !now });
            interval_events.(dst) <- interval_events.(dst) + 1;
            let reactions = E.on_deliver env ~pid:dst ~src in
            List.iter (do_action dst) reactions)
  done;
  Meter.add_span Meter.default "runtime.sim" (Meter.now () -. sim_t0);
  Meter.add Meter.default "runtime.runs" 1;
  Meter.add Meter.default "runtime.messages" !sent;
  Meter.add Meter.default "runtime.forced_ckpts" !forced;
  Meter.add Meter.default "runtime.basic_ckpts" !basic;
  let pattern =
    Meter.time Meter.default "runtime.pattern" (fun () ->
        Pattern.Builder.finish ~final_checkpoints:true builder)
  in
  let metrics =
    {
      Metrics.n = cfg.n;
      protocol = P.name;
      environment = E.name;
      seed = cfg.seed;
      basic = !basic;
      basic_skipped = !basic_skipped;
      forced = !forced;
      messages = !sent;
      internal_events = !internal_events;
      payload_bits_per_msg = P.payload_bits ~n:cfg.n;
      duration = !now;
    }
  in
  (* sorted traversal: these lists reach reports and JSON output, so
     they must be a pure function of the table contents *)
  let predicate_counts =
    Rdt_dist.Tbl.bindings_sorted ~compare:String.compare pred_counts
    |> List.map (fun (k, v) -> (k, !v))
  in
  let hierarchy_violations =
    Rdt_dist.Tbl.keys_sorted violations
      ~compare:(fun (a, b) (c, d) ->
        match String.compare a c with 0 -> String.compare b d | r -> r)
  in
  { pattern; metrics; predicate_counts; hierarchy_violations; transport = None; online = None }

(* ------------------------------------------------------------------ *)
(* The faulty path: lossy network + reliable-delivery transport         *)
(* ------------------------------------------------------------------ *)

type fqueued =
  | FTick of int
  | FBasic of int
  | FNet of Transport.wire

(* The pattern cannot be built incrementally on this path: a message the
   transport abandons ([Undeliverable]) must not appear in it (patterns
   require every message delivered), but whether a send is abandoned is only
   known later.  So the run records a global trace and replays it into a
   [Pattern.Builder] at the end, skipping undeliverable sends — exactly the
   scheme [Crash_sim] uses for rolled-back events. *)
type fev =
  | F_send of int (* app message id *)
  | F_recv of int
  | F_internal of int (* pid *)
  | F_ckpt of { pid : int; kind : Ptypes.ckpt_kind; time : int; tdv : int array option }

let run_faulty cfg params =
  let (module P : Protocol.S) = cfg.protocol in
  let (module E : Env.S) = cfg.env in
  let tr = cfg.trace in
  let rng = Rng.create cfg.seed in
  let env_rng = Rng.split rng in
  let net_rng = Rng.split rng in
  let env = E.create ~n:cfg.n ~rng:env_rng in
  let states = Array.init cfg.n (fun pid -> P.create ~n:cfg.n ~pid) in
  let notify (notice : Transport.notice) =
    if Trace.on tr then
      Trace.emit tr
        (match notice with
        | Transport.N_drop { src; dst; time } -> Drop { src; dst; time }
        | Transport.N_retransmit { src; dst; seq; attempt; time } ->
            Retransmit { src; dst; seq; attempt; time })
  in
  let tp : int Transport.t =
    Transport.create ~notify ~n:cfg.n ~params ~faults:cfg.faults ~channel:cfg.channel ~rng:net_rng
      ()
  in
  let queue : fqueued Event_queue.t = Event_queue.create () in
  let trace : fev list ref = ref [] (* reversed; processing order = global order *) in
  let msg_meta : (int, int * int * Control.t) Hashtbl.t = Hashtbl.create 256 in
  let undeliverable : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let interval_events = Array.make cfg.n 0 in
  let basic = ref 0
  and basic_skipped = ref 0
  and forced = ref 0
  and sent = ref 0
  and internal_events = ref 0
  and now = ref 0 in
  let pred_counts : (string, int ref) Hashtbl.t = Hashtbl.create 7 in
  let violations : (string * string, unit) Hashtbl.t = Hashtbl.create 7 in
  (* checkpoint indices are assigned at replay time; track them here so
     trace events carry the index the pattern will use *)
  let ckpt_index = Array.make cfg.n 0 in
  let take_checkpoint ?(preds = []) pid kind =
    let tdv = P.tdv states.(pid) in
    trace := F_ckpt { pid; kind; time = !now; tdv } :: !trace;
    if Trace.on tr then begin
      ckpt_index.(pid) <- ckpt_index.(pid) + 1;
      Trace.emit tr (Ckpt { pid; index = ckpt_index.(pid); kind; time = !now; tdv; preds })
    end;
    P.on_checkpoint states.(pid);
    interval_events.(pid) <- 0
  in
  (* Initial checkpoints: the builder records them automatically at replay
     time; mirror them in the protocol states. *)
  Array.iter P.on_checkpoint states;
  if Trace.on tr then
    for pid = 0 to cfg.n - 1 do
      Trace.emit tr
        (Ckpt { pid; index = 0; kind = Ptypes.Initial; time = 0; tdv = None; preds = [] })
    done;
  let basic_enabled = cfg.basic_period <> (0, 0) in
  let draw_basic_delay () =
    let lo, hi = cfg.basic_period in
    Rng.int_in rng lo hi
  in
  (* Returns the names of the predicates that fired, so a forced
     checkpoint triggered by this arrival can be traced to its cause. *)
  let record_predicates ~dst ~src payload =
    let named = P.predicates states.(dst) ~src payload in
    match named with
    | [] -> []
    | _ ->
        List.iter
          (fun (name, v) ->
            if v then
              match Hashtbl.find_opt pred_counts name with
              | Some r -> incr r
              | None -> Hashtbl.add pred_counts name (ref 1))
          named;
        List.iter
          (fun (weaker, stronger) ->
            match (List.assoc_opt weaker named, List.assoc_opt stronger named) with
            | Some true, Some false -> Hashtbl.replace violations (weaker, stronger) ()
            | _ -> ())
          expected_implications;
        List.filter_map (fun (name, v) -> if v then Some name else None) named
  in
  (* [Deliver] effects recurse into application reactions (a delivery may
     trigger sends, which produce further effects), hence the mutual
     recursion between effect processing and the action handlers. *)
  let rec process_effects effects =
    List.iter
      (function
        | Transport.Wire { at; wire } -> Event_queue.schedule queue ~time:at (FNet wire)
        | Transport.Undeliverable { msg = id; src; dst } ->
            Hashtbl.replace undeliverable id ();
            if Trace.on tr then Trace.emit tr (Undeliverable { msg = id; src; dst; time = !now })
        | Transport.Deliver { src; dst; msg = id } ->
            let _, _, payload = Hashtbl.find msg_meta id in
            let fired = record_predicates ~dst ~src payload in
            if P.must_force states.(dst) ~src payload then begin
              incr forced;
              take_checkpoint ~preds:fired dst Ptypes.Forced
            end;
            P.absorb states.(dst) ~src payload;
            trace := F_recv id :: !trace;
            if Trace.on tr then Trace.emit tr (Deliver { msg = id; src; dst; time = !now });
            interval_events.(dst) <- interval_events.(dst) + 1;
            List.iter (do_action dst) (E.on_deliver env ~pid:dst ~src))
      effects
  and send_message ~src ~dst =
    if !sent < cfg.max_messages && src <> dst then begin
      let id = !sent in
      incr sent;
      let payload = P.make_payload states.(src) ~dst in
      Hashtbl.replace msg_meta id (src, dst, payload);
      trace := F_send id :: !trace;
      if Trace.on tr then Trace.emit tr (Send { msg = id; src; dst; time = !now });
      interval_events.(src) <- interval_events.(src) + 1;
      let effects = Transport.send tp ~now:!now ~src ~dst id in
      (* a checkpoint-after-send checkpoint belongs between the send and
         any later event of [src], so take it before processing effects *)
      if P.force_after_send then begin
        incr forced;
        take_checkpoint ~preds:[ "after-send" ] src Ptypes.Forced
      end;
      process_effects effects
    end
  and do_action pid = function
    | Env.Send dst -> send_message ~src:pid ~dst
    | Env.Internal ->
        trace := F_internal pid :: !trace;
        if Trace.on tr then Trace.emit tr (Internal { pid; time = !now });
        interval_events.(pid) <- interval_events.(pid) + 1;
        incr internal_events
    | Env.Checkpoint ->
        if interval_events.(pid) > 0 then begin
          incr basic;
          take_checkpoint pid Ptypes.Basic
        end
        else incr basic_skipped
  in
  for pid = 0 to cfg.n - 1 do
    Event_queue.schedule queue ~time:(E.initial_tick_delay env ~pid) (FTick pid);
    if basic_enabled then Event_queue.schedule queue ~time:(draw_basic_delay ()) (FBasic pid)
  done;
  let sim_t0 = Meter.now () in
  let continue = ref true in
  while !continue do
    match Event_queue.pop queue with
    | None -> continue := false
    | Some (t, ev) -> (
        now := t;
        match ev with
        | FTick pid ->
            if t <= cfg.max_time && !sent < cfg.max_messages then begin
              let { Env.actions; next_tick_in } = E.on_tick env ~pid in
              List.iter (do_action pid) actions;
              match next_tick_in with
              | Some d -> Event_queue.schedule queue ~time:(t + max 1 d) (FTick pid)
              | None -> ()
            end
        | FBasic pid ->
            (* same semantics as the reliable path: basic checkpointing
               continues while the transport still has messages in flight
               (arrivals keep executing events after the send budget is
               hit), and stops once the channels drain *)
            if t <= cfg.max_time && (!sent < cfg.max_messages || Transport.in_flight tp > 0)
            then begin
              do_action pid Env.Checkpoint;
              Event_queue.schedule queue ~time:(t + draw_basic_delay ()) (FBasic pid)
            end
        | FNet wire -> process_effects (Transport.handle tp ~now:!now wire))
  done;
  Meter.add_span Meter.default "runtime.sim" (Meter.now () -. sim_t0);
  Meter.add Meter.default "runtime.runs" 1;
  Meter.add Meter.default "runtime.messages" !sent;
  Meter.add Meter.default "runtime.forced_ckpts" !forced;
  Meter.add Meter.default "runtime.basic_ckpts" !basic;
  (* the queue drained, so every message is settled: delivered or abandoned *)
  assert (Transport.in_flight tp = 0);
  let pattern =
    Meter.time Meter.default "runtime.pattern" (fun () ->
        let builder = Pattern.Builder.create ~n:cfg.n in
        let handles = Hashtbl.create 256 in
        List.iter
          (function
            | F_send id ->
                if not (Hashtbl.mem undeliverable id) then begin
                  let src, dst, _ = Hashtbl.find msg_meta id in
                  Hashtbl.replace handles id (Pattern.Builder.send builder ~src ~dst)
                end
            | F_recv id -> Pattern.Builder.recv builder (Hashtbl.find handles id)
            | F_internal pid -> Pattern.Builder.internal builder pid
            | F_ckpt { pid; kind; time; tdv } ->
                ignore (Pattern.Builder.checkpoint ~kind ?tdv ~time builder pid))
          (List.rev !trace);
        Pattern.Builder.finish ~final_checkpoints:true builder)
  in
  let metrics =
    {
      Metrics.n = cfg.n;
      protocol = P.name;
      environment = E.name;
      seed = cfg.seed;
      basic = !basic;
      basic_skipped = !basic_skipped;
      forced = !forced;
      (* delivered messages only, matching the pattern: abandoned sends
         are excluded from both *)
      messages = !sent - Hashtbl.length undeliverable;
      internal_events = !internal_events;
      payload_bits_per_msg = P.payload_bits ~n:cfg.n;
      duration = !now;
    }
  in
  (* sorted traversal: these lists reach reports and JSON output, so
     they must be a pure function of the table contents *)
  let predicate_counts =
    Rdt_dist.Tbl.bindings_sorted ~compare:String.compare pred_counts
    |> List.map (fun (k, v) -> (k, !v))
  in
  let hierarchy_violations =
    Rdt_dist.Tbl.keys_sorted violations
      ~compare:(fun (a, b) (c, d) ->
        match String.compare a c with 0 -> String.compare b d | r -> r)
  in
  {
    pattern;
    metrics;
    predicate_counts;
    hierarchy_violations;
    transport = Some (Transport.stats tp);
    online = None;
  }

let run cfg =
  validate_config cfg;
  let engine = if cfg.online then Some (Rdt_check.Online.create ~n:cfg.n ()) else None in
  let cfg =
    match engine with
    | None -> cfg
    | Some e -> { cfg with trace = Trace.tee cfg.trace (Rdt_check.Online.observer e) }
  in
  let r = match cfg.transport with None -> run_reliable cfg | Some params -> run_faulty cfg params in
  { r with online = Option.map Rdt_check.Online.summary engine }
