(** Checkpoint-Before-Receive (after Russell): every delivery lands in a
    fresh checkpoint interval, so no event precedes a delivery within its
    interval and RDT holds trivially — at the price of (almost) one
    forced checkpoint per delivery. *)

include Protocol.S
