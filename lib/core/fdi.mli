(** Fixed-Dependency-Interval: the dependency vector of an interval is
    frozen at the interval's first event, so any arriving message
    carrying a new dependency forces a checkpoint.  Strictly more
    conservative than {!Fdas}. *)

include Protocol.S
