module Pattern = Rdt_pattern.Pattern
module Rgraph = Rdt_pattern.Rgraph
module Tdv = Rdt_pattern.Tdv
module Chains = Rdt_pattern.Chains
module Ptypes = Rdt_pattern.Types
module Online = Rdt_check.Online

type violation = {
  from_ckpt : Ptypes.ckpt_id;
  to_ckpt : Ptypes.ckpt_id;
  tracked : int option;
}

type units = R_dependencies | Cm_paths

type algo = [ `Rgraph | `Chains | `Doubling | `Online ]

type report = {
  algo : algo;
  rdt : bool;
  violations : violation list;
  checked : int;
  units : units;
  first_violation : int option;
  seconds : float;
}

let max_reported = 20

let algo_name = function
  | `Rgraph -> "rgraph"
  | `Chains -> "chains"
  | `Doubling -> "doubling"
  | `Online -> "online"

let all_algos : algo list = [ `Rgraph; `Chains; `Doubling; `Online ]

let algo_of_string s =
  match String.lowercase_ascii s with
  | "rgraph" | "rgraph_tdv" | "tdv" -> Ok `Rgraph
  | "chains" -> Ok `Chains
  | "doubling" -> Ok `Doubling
  | "online" -> Ok `Online
  | _ ->
      Error
        (Printf.sprintf "unknown checker algorithm %S (expected rgraph, chains, doubling or online)"
           s)

let pp_violation ppf v =
  match v.tracked with
  | Some t ->
      Format.fprintf ppf "R-path %a ~> %a is not trackable (TDV entry = %d)" Ptypes.pp_ckpt_id
        v.from_ckpt Ptypes.pp_ckpt_id v.to_ckpt t
  | None ->
      Format.fprintf ppf "R-path %a ~> %a is not trackable (no TDV witness)" Ptypes.pp_ckpt_id
        v.from_ckpt Ptypes.pp_ckpt_id v.to_ckpt

let units_name = function R_dependencies -> "rollback dependencies" | Cm_paths -> "CM-paths"

let pp_report ppf r =
  if r.rdt then Format.fprintf ppf "RDT holds (%d %s checked)" r.checked (units_name r.units)
  else
    Format.fprintf ppf "RDT VIOLATED (%d %s checked):@,%a" r.checked (units_name r.units)
      (Format.pp_print_list pp_violation)
      r.violations

(* For every checkpoint C_{j,y} and every process i, the strongest real
   rollback dependency is x* = max { x | C_{i,x} ~> C_{j,y} }; the pattern
   is RDT iff that dependency is trackable everywhere: TDV_{j,y}.(i) >= x*
   for i <> j, and x* <= y for i = j (a same-process R-path backwards in
   time — C_{k,z} ~> C_{k,z-1} — is never trackable, Section 4.1.2).
   Dependencies that do not exist are never checked: x* = -1. *)
let check_with ~algo ~trackable pat =
  let g = Rgraph.build pat in
  let n = Pattern.n pat in
  let violations = ref [] in
  let count = ref 0 in
  let checked = ref 0 in
  for j = 0 to n - 1 do
    for y = 0 to Pattern.last_index pat j do
      for i = 0 to n - 1 do
        let x_star = Rgraph.max_reaching_index g ~from_pid:i (j, y) in
        if x_star >= 0 then begin
          incr checked;
          if not (trackable (i, x_star) (j, y)) then begin
            incr count;
            if !count <= max_reported then
              violations :=
                (* no TDV witness at this level: the trackability oracle
                   is abstract; the rgraph algo fills the entry in
                   afterwards *)
                { from_ckpt = (i, x_star); to_ckpt = (j, y); tracked = None } :: !violations
          end
        end
      done
    done
  done;
  {
    algo;
    rdt = !count = 0;
    violations = List.rev !violations;
    checked = !checked;
    units = R_dependencies;
    first_violation = None;
    seconds = 0.;
  }

let meter name checked f =
  Rdt_obs.Meter.time Rdt_obs.Meter.default name (fun () ->
      let r = f () in
      Rdt_obs.Meter.add Rdt_obs.Meter.default checked r.checked;
      r)

let run_rgraph ?tdv pat =
  meter "checker.rgraph_tdv" "checker.dependencies" @@ fun () ->
  let tdv = match tdv with Some t -> t | None -> Tdv.compute pat in
  let report = check_with ~algo:`Rgraph ~trackable:(fun a b -> Tdv.trackable tdv a b) pat in
  let violations =
    List.map
      (fun v ->
        let i, _ = v.from_ckpt in
        { v with tracked = Some (Tdv.at tdv v.to_ckpt).(i) })
      report.violations
  in
  { report with violations }

let run_chains pat =
  meter "checker.chains" "checker.dependencies" @@ fun () ->
  check_with ~algo:`Chains ~trackable:(fun a b -> Chains.trackable pat a b) pat

let run_doubling pat =
  meter "checker.doubling" "checker.cm_paths" @@ fun () ->
  let tdv = Tdv.compute pat in
  let cm = Chains.cm_paths pat in
  let undoubled = Chains.undoubled_cm_paths pat tdv in
  let violations =
    List.filteri
      (fun k _ -> k < max_reported)
      (List.map
         (fun (p : Chains.cm_path) ->
           let i, _ = p.origin in
           { from_ckpt = p.origin; to_ckpt = p.target; tracked = Some (Tdv.at tdv p.target).(i) })
         undoubled)
  in
  {
    algo = `Doubling;
    rdt = undoubled = [];
    violations;
    checked = List.length cm;
    units = Cm_paths;
    first_violation = None;
    seconds = 0.;
  }

let run_online pat =
  meter "checker.online" "checker.dependencies" @@ fun () ->
  let eng = Online.check_pattern pat in
  Rdt_obs.Meter.add Rdt_obs.Meter.default "checker.online_events" (Online.events_seen eng);
  let violations =
    Online.violations eng
    |> List.filteri (fun k _ -> k < max_reported)
    |> List.map (fun (v : Online.violation) ->
           { from_ckpt = v.from_ckpt; to_ckpt = v.to_ckpt; tracked = Some v.tracked })
  in
  {
    algo = `Online;
    rdt = Online.rdt_so_far eng;
    violations;
    checked = Online.checked eng;
    units = R_dependencies;
    first_violation = Online.first_violation eng;
    seconds = 0.;
  }

let run ?(algo = `Rgraph) ?tdv pat =
  let t0 = Rdt_obs.Meter.now () in
  let r =
    match algo with
    | `Rgraph -> run_rgraph ?tdv pat
    | `Chains -> run_chains pat
    | `Doubling -> run_doubling pat
    | `Online -> run_online pat
  in
  { r with seconds = Rdt_obs.Meter.now () -. t0 }

let strict_gaps pat =
  let n = Pattern.n pat in
  let gaps = ref 0 in
  for i = 0 to n - 1 do
    for x = 1 to Pattern.last_index pat i do
      let zr = Chains.zpath_from_interval pat (i, x) in
      let cr = Chains.causal_from_interval pat (i, x) in
      for j = 0 to n - 1 do
        if
          j <> i
          && zr.Chains.earliest.(j) < max_int
          && not (cr.Chains.earliest.(j) <= zr.Chains.earliest.(j))
        then incr gaps
      done
    done
  done;
  !gaps

let online_tdv_consistent pat =
  let tdv = Tdv.compute pat in
  let ok = ref true in
  Pattern.iter_ckpts pat (fun c ->
      match c.Ptypes.tdv with
      | None -> ()
      | Some online -> if online <> Tdv.at tdv (c.Ptypes.owner, c.Ptypes.index) then ok := false);
  !ok
