(** The paper's protocol (Figure 6): transitive dependency vector plus
    the [sent_to], [simple] and [causal] knowledge, forcing a checkpoint
    exactly when an arriving message would create an untrackable
    dependency (conditions C1 or C2).  The most sparing RDT protocol in
    the registry. *)

include Protocol.S
