(** The index-based protocol of Briatico, Ciuffoletti and Simoncini
    ("A distributed domino-effect free recovery algorithm", 1984): each
    process numbers its checkpoints with a logical index piggybacked on
    every message, and a message from a later index forces a checkpoint
    first.  Domino-effect free (no useless checkpoints), but hidden
    doubled dependencies remain: it does {e not} ensure RDT. *)

include Protocol.S
