(** No-Receive-After-Send (Russell): within an interval all deliveries
    precede all sends, so no non-causal junction can form and RDT
    holds. *)

include Protocol.S
