(** First weaker variant of the paper's protocol (Section 5.1, suggested
    by Y.-M. Wang): drops the [simple] array and replaces C2 with C2', a
    causal chain returning to its own sending interval with any new
    dependency.  Forces at least as often as {!Bhmr}, piggybacks [n]
    fewer bits. *)

include Protocol.S
