(** RDT verification — one entry point, four algorithms.

    Verifies Theorem 4.4 on a concrete pattern: every R-path
    [C_{i,x} ~> C_{j,y}] of the rollback-dependency graph is on-line
    trackable, i.e. the transitive dependency vector recorded at [C_{j,y}]
    (recomputed offline by {!Rdt_pattern.Tdv}) satisfies
    [TDV_{j,y}.(i) >= x].

    {!run} selects between four independent verdicts:
    - [`Rgraph]: R-graph reachability vs TDV replay (the primary offline
      check, and the default);
    - [`Chains]: R-graph reachability vs direct causal-chain search,
      bypassing the TDV mechanism entirely;
    - [`Doubling]: the visible characterization — no undoubled
      causal-message Z-path;
    - [`Online]: the incremental engine ({!Rdt_check.Online}) streaming
      the pattern's events, maintaining reachability and TDV state
      event by event.

    The test suite asserts that all four agree on every pattern. *)

type violation = {
  from_ckpt : Rdt_pattern.Types.ckpt_id;
  to_ckpt : Rdt_pattern.Types.ckpt_id;
  tracked : int option;
      (** the TDV entry that should have been [>= x], when the checker
          computed one; [None] for the chain-search checker, which decides
          trackability without a TDV (printed as "no TDV witness", never as
          a fabricated entry) *)
}

(** What {!report.checked} counts: [`Rgraph], [`Chains] and [`Online]
    count rollback dependencies (one per checkpoint pair [(C_{j,y}, P_i)]
    with a real R-path); [`Doubling] enumerates causal-message paths, a
    different population.  The unit is carried in the report so the counts
    are never cross-compared or printed as if commensurable. *)
type units = R_dependencies | Cm_paths

type algo = [ `Rgraph | `Chains | `Doubling | `Online ]

type report = {
  algo : algo;  (** which algorithm produced this report *)
  rdt : bool;
  violations : violation list;  (** capped at {!max_reported} *)
  checked : int;  (** witness count, in {!units} *)
  units : units;
  first_violation : int option;
      (** [`Online] only: index of the pattern event at which the verdict
          first became violated; [None] for the offline algorithms (they
          have no event order) and for RDT patterns *)
  seconds : float;  (** wall-clock cost of this verdict *)
}

val max_reported : int

val run : ?algo:algo -> ?tdv:Rdt_pattern.Tdv.t -> Rdt_pattern.Pattern.t -> report
(** [run ~algo pat] verifies [pat] with the selected algorithm
    (default [`Rgraph]).  [tdv] can be supplied to reuse a replay (used
    by [`Rgraph] only).  [`Rgraph] is O(V·E/64 + V·n·log V); [`Online]
    is O(events) amortized. *)

val algo_name : algo -> string
(** ["rgraph"], ["chains"], ["doubling"], ["online"]. *)

val algo_of_string : string -> (algo, string) result
(** Inverse of {!algo_name} (case-insensitive; also accepts the legacy
    spellings ["rgraph_tdv"] and ["tdv"] for [`Rgraph]). *)

val all_algos : algo list
(** Every algorithm, in the order reports are conventionally printed. *)

val strict_gaps : Rdt_pattern.Pattern.t -> int
(** A probe into a definitional subtlety.  Definition 3.3 read literally
    asks for a causal chain starting in {e exactly} the interval
    [I_{i,x}] that the R-path leaves from; the TDV test
    ([TDV_{j,y}.(i) >= x]) is weaker — it is also satisfied when only a
    {e later} interval of [P_i] reaches [P_j] causally.  This function
    counts the [(C_{i,x}, P_j)] pairs where some Z-path leaves exactly
    [I_{i,x}] and reaches [P_j], but no causal chain from [I_{i,x}]
    arrives at or before the same interval.

    Measured fact (pinned by the test suite): the event-pattern protocols
    (cbr, nras, cas) keep this at zero, while the TDV family (fdas, bhmr,
    …) does not — their guarantee is exactly the vector-level one, which
    is what Corollary 4.5 and the recovery algorithms need. *)

val online_tdv_consistent : Rdt_pattern.Pattern.t -> bool
(** Every checkpoint whose on-line protocol vector was recorded carries
    exactly the vector the offline replay computes — i.e. the protocol's
    TDV maintenance is faithful. *)

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
