(** Offline RDT verification.

    Verifies Theorem 4.4 on a concrete pattern: every R-path
    [C_{i,x} ~> C_{j,y}] of the rollback-dependency graph is on-line
    trackable, i.e. the transitive dependency vector recorded at [C_{j,y}]
    (recomputed offline by {!Rdt_pattern.Tdv}) satisfies
    [TDV_{j,y}.(i) >= x].

    Three independent verdicts are available:
    - {!check}: R-graph reachability vs TDV replay (the primary check);
    - {!check_chains}: R-graph reachability vs direct causal-chain search,
      bypassing the TDV mechanism entirely;
    - {!check_doubling}: the visible characterization — no undoubled
      causal-message Z-path.

    The test suite asserts that all three agree on every pattern. *)

type violation = {
  from_ckpt : Rdt_pattern.Types.ckpt_id;
  to_ckpt : Rdt_pattern.Types.ckpt_id;
  tracked : int option;
      (** the TDV entry that should have been [>= x], when the checker
          computed one; [None] for the chain-search checker, which decides
          trackability without a TDV (printed as "no TDV witness", never as
          a fabricated entry) *)
}

(** What {!report.checked} counts: {!check} and {!check_chains} count
    rollback dependencies (one per checkpoint pair [(C_{j,y}, P_i)] with a
    real R-path); {!check_doubling} enumerates causal-message paths, a
    different population.  The unit is carried in the report so the counts
    are never cross-compared or printed as if commensurable. *)
type units = R_dependencies | Cm_paths

type report = {
  rdt : bool;
  violations : violation list;  (** capped at {!max_reported} *)
  checked : int;
  units : units;
}

val max_reported : int

val check : ?tdv:Rdt_pattern.Tdv.t -> Rdt_pattern.Pattern.t -> report
(** Full verification; [tdv] can be supplied to reuse a replay.
    O(V·E/64 + V·n·log V). *)

val check_chains : Rdt_pattern.Pattern.t -> report
(** Verification with trackability recomputed by causal-chain search. *)

val check_doubling : Rdt_pattern.Pattern.t -> report
(** Verification through the CM-path doubling characterization;
    [checked] counts CM-paths ([units = Cm_paths]). *)

val strict_gaps : Rdt_pattern.Pattern.t -> int
(** A probe into a definitional subtlety.  Definition 3.3 read literally
    asks for a causal chain starting in {e exactly} the interval
    [I_{i,x}] that the R-path leaves from; the TDV test
    ([TDV_{j,y}.(i) >= x]) is weaker — it is also satisfied when only a
    {e later} interval of [P_i] reaches [P_j] causally.  This function
    counts the [(C_{i,x}, P_j)] pairs where some Z-path leaves exactly
    [I_{i,x}] and reaches [P_j], but no causal chain from [I_{i,x}]
    arrives at or before the same interval.

    Measured fact (pinned by the test suite): the event-pattern protocols
    (cbr, nras, cas) keep this at zero, while the TDV family (fdas, bhmr,
    …) does not — their guarantee is exactly the vector-level one, which
    is what Corollary 4.5 and the recovery algorithms need. *)

val online_tdv_consistent : Rdt_pattern.Pattern.t -> bool
(** Every checkpoint whose on-line protocol vector was recorded carries
    exactly the vector the offline replay computes — i.e. the protocol's
    TDV maintenance is faithful. *)

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
