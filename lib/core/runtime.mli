(** The simulation runtime: runs an application environment under a CIC
    protocol over the asynchronous-message substrate, and produces the
    resulting checkpoint and communication pattern plus run metrics.

    The model is the paper's: [n] sequential fail-stop processes, every
    ordered pair connected by a reliable asynchronous channel with
    unpredictable-but-finite delays.  Determinism: all randomness comes
    from a single seed, time is integer, and event-queue ties break on
    insertion order, so a run is a pure function of its configuration.

    Sequencing at a message arrival (statement S2 of Figure 6):
    + the protocol evaluates its forced-checkpoint predicate on the
      pre-delivery state;
    + if it fires, a [Forced] checkpoint is taken;
    + the piggybacked control information is merged;
    + the message is delivered to the application, whose reaction (e.g. a
      server forwarding a request) may send further messages.

    Basic checkpoints are scheduled per process with independently drawn
    periods; a scheduled basic checkpoint is skipped when the current
    interval is still empty (taking two checkpoints in a row would only
    inflate indices). *)

type config = {
  n : int;  (** number of processes (>= 2) *)
  seed : int;
  env : Rdt_dist.Env.t;
  protocol : Protocol.t;
  channel : Rdt_dist.Channel.spec;
  basic_period : int * int;
      (** each basic-checkpoint delay is drawn uniformly in this inclusive
          range; [(0, 0)] disables basic checkpoints *)
  max_messages : int;  (** budget of application messages *)
  max_time : int;  (** spontaneous activity stops after this time *)
  faults : Rdt_dist.Faults.spec;
      (** network faults injected below the transport; requires
          [transport <> None] unless {!Rdt_dist.Faults.none} *)
  transport : Rdt_dist.Transport.params option;
      (** [None] (the default) runs the paper's reliable channels exactly
          as before; [Some params] routes every message through the
          reliable-delivery transport over the faulty network *)
  trace : Rdt_obs.Trace.t;
      (** structured event trace recorder ({!Rdt_obs.Trace.null} by
          default: every instrumentation site reduces to one branch).
          Records sends, deliveries, checkpoints (with the predicates that
          fired for forced ones), and — on the transport path — drops,
          retransmissions and undeliverable messages *)
  online : bool;
      (** run an incremental {!Rdt_check.Online} checker alongside the
          simulation (tee'd into the trace stream), reporting the verdict
          and the first-violation event index in the result.  Costs one
          engine update per traced event; [false] by default *)
}

val default_config : Rdt_dist.Env.t -> Protocol.t -> config
(** 8 processes, seed 1, uniform channel delays in [\[5; 100\]], basic
    period in [\[300; 700\]], 2000 messages, no faults, no transport, no
    tracing, no online checker.  Fields are meant to be overridden with
    [{ (default_config e p) with ... }]. *)

val configure :
  ?n:int ->
  ?seed:int ->
  ?messages:int ->
  ?channel:Rdt_dist.Channel.spec ->
  ?basic_period:int * int ->
  ?max_time:int ->
  ?faults:Rdt_dist.Faults.spec ->
  ?transport:Rdt_dist.Transport.params ->
  ?trace:Rdt_obs.Trace.t ->
  ?online:bool ->
  Rdt_dist.Env.t ->
  Protocol.t ->
  config
(** Labelled constructor over {!default_config}: every optional argument
    defaults to the corresponding default field, so
    [configure ~seed ~trace env protocol] reads the same across
    {!Rdt_core.Runtime}, [Rdt_failures.Crash_sim] and the harness. *)

type result = {
  pattern : Rdt_pattern.Pattern.t;
      (** the delivered communication: a message the transport abandoned
          as undeliverable appears in neither sends nor deliveries *)
  metrics : Metrics.t;
  predicate_counts : (string * int) list;
      (** how many deliveries evaluated each named predicate to true *)
  hierarchy_violations : (string * string) list;
      (** pairs [(weaker, stronger)] observed violating the expected
          implication weaker => stronger at some delivery; always expected
          empty, recorded for the test suite *)
  transport : Rdt_dist.Transport.stats option;
      (** retransmission/ack/drop accounting; [None] on the reliable
          path *)
  online : Rdt_check.Online.summary option;
      (** the incremental checker's verdict after the last event, with
          the index of the first event whose prefix violated RDT;
          [Some _] iff the config set [online] *)
}

val run : config -> result
(** Executes the configured run to completion (message budget exhausted
    and all channels drained — with a transport, every message ends
    delivered or reported undeliverable in [transport] stats), ending with
    a final checkpoint per process.  The protocol sees each message at
    most once, at its first in-order arrival.
    @raise Invalid_argument on nonsensical configurations (bad channel or
    fault specs, faults without a transport, bad transport params). *)
