(** Second weaker variant of the paper's protocol (Section 5.1): drops C2
    entirely and holds the diagonal of the [causal] matrix permanently
    false, so C1 also covers the chains C2 used to break. *)

include Protocol.S
