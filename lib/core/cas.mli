(** Checkpoint-After-Send (Wu & Fuchs): every send is immediately
    followed by a forced checkpoint, so every message chain is causal and
    RDT holds trivially. *)

include Protocol.S
