(** Wang's Fixed-Dependency-After-Send: the dependency vector of an
    interval is frozen after the interval's first send; a message
    carrying a new dependency forces a checkpoint only if the process has
    already sent in the current interval.  The reference protocol the
    simulation study normalises against. *)

include Protocol.S
