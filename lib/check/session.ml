module T = Rdt_obs.Trace
module Json = Rdt_obs.Trace.Json

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type backend = {
  engine : unit -> Online.t;
  observe : T.event -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

(* [failed] (inconsistent stream) refuses further events but must not
   block [close] from releasing the backend's resources. *)
type t = { backend : backend; mutable failed : bool; mutable released : bool }

let of_backend backend = { backend; failed = false; released = false }

let ephemeral ?track_open ~n () =
  let eng = Online.create ?track_open ~n () in
  of_backend
    {
      engine = (fun () -> eng);
      observe = Online.observe eng;
      sync = (fun () -> ());
      close = (fun () -> ());
    }

let engine t = t.backend.engine ()

let observe t ev =
  if t.failed || t.released then Error "session is closed"
  else
    match t.backend.observe ev with
    | () -> Ok ()
    | exception Online.Inconsistent msg ->
        t.failed <- true;
        Error msg

let rec feed t = function
  | [] -> Ok ()
  | ev :: rest -> ( match observe t ev with Ok () -> feed t rest | Error _ as e -> e)

let sync t = if not t.released then t.backend.sync ()

let close t =
  if not t.released then begin
    t.released <- true;
    t.backend.close ()
  end

let closed t = t.failed || t.released
let summary t = Online.summary (engine t)

(* Reconstruct the pattern of the surviving history by synthesizing a
   minimal trace from the export and replaying it.  The export's global
   [seq] numbers restore cross-process order; they double as event
   times, so the rebuilt pattern matches the original in structure (and
   hence in every reachability/Min_gcp answer), not in timestamps. *)
let pattern t =
  let eng = engine t in
  match Online.orphan_messages eng with
  | _ :: _ as orphans ->
      Error
        (Printf.sprintf "stream is mid-rollback-cascade (orphaned messages %s)"
           (String.concat ", " (List.map string_of_int orphans)))
  | [] ->
      let e = Online.export eng in
      let route =
        let tbl = Hashtbl.create 64 in
        List.iter (fun (msg, src, dst) -> Hashtbl.replace tbl msg (src, dst)) e.routes;
        fun msg -> Hashtbl.find_opt tbl msg
      in
      let missing = ref None in
      let events = ref [] in
      let max_seq = ref 0 in
      Array.iteri
        (fun pid stack ->
          List.iter
            (fun (entry : Online.Export.entry) ->
              let ev =
                match entry with
                | Online.Export.Send { seq; msg } -> (
                    match route msg with
                    | Some (src, dst) -> Some (seq, T.Send { msg; src; dst; time = seq })
                    | None ->
                        if !missing = None then missing := Some msg;
                        None)
                | Online.Export.Recv { seq; msg } -> (
                    match route msg with
                    | Some (src, dst) -> Some (seq, T.Deliver { msg; src; dst; time = seq })
                    | None ->
                        if !missing = None then missing := Some msg;
                        None)
                | Online.Export.Internal { seq } -> Some (seq, T.Internal { pid; time = seq })
                | Online.Export.Ckpt { seq; index } ->
                    let kind =
                      if index = 0 then Rdt_pattern.Types.Initial else Rdt_pattern.Types.Basic
                    in
                    Some
                      ( seq,
                        T.Ckpt { pid; index; kind; time = seq; tdv = None; preds = [] } )
              in
              match ev with
              | Some ((seq, _) as tagged) ->
                  if seq > !max_seq then max_seq := seq;
                  events := tagged :: !events
              | None -> ())
            stack)
        e.stacks;
      (match !missing with
      | Some msg -> Error (Printf.sprintf "no route recorded for message %d" msg)
      | None ->
          let ordered =
            List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !events)
          in
          let undeliv =
            List.concat_map
              (fun msg ->
                match route msg with
                | Some (src, dst) ->
                    incr max_seq;
                    [ T.Undeliverable { msg; src; dst; time = !max_seq } ]
                | None -> [])
              e.undeliverable
          in
          let trace =
            T.Meta { n = e.n; protocol = ""; env = ""; seed = 0; mode = "session" }
            :: List.map snd ordered
            @ undeliv
          in
          Rdt_obs.Replay.rebuild trace)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

module Wire = struct
  let version = 1

  type query =
    | Rdt_so_far
    | Zcycle
    | Summary
    | Trackable of Rdt_pattern.Types.ckpt_id * Rdt_pattern.Types.ckpt_id
    | Min_gcp of Rdt_pattern.Types.ckpt_id list
    | Max_gcp of Rdt_pattern.Types.ckpt_id list

  type answer = Flag of bool | Stats of Online.summary | Cut of int array option
  type reject = Inconsistent | Unrecoverable | Protocol

  type request =
    | Hello of { version : int; stream : string; n : int }
    | Events of T.event list
    | Query of { id : int; query : query }
    | Sync
    | Bye

  type response =
    | Welcome of { version : int; stream : string; resumed : int }
    | Ack of { seen : int }
    | Answer of { id : int; answer : answer }
    | Failed of { id : int; error : string }
    | Rejected of { code : reject; error : string }
    | Goodbye of { seen : int; summary : Online.summary; orphans : int list }

  let exit_code_of_reject = function Inconsistent | Protocol -> 2 | Unrecoverable -> 3

  (* -- encoding ---------------------------------------------------- *)

  let escape = T.json_escape
  let ckpt_json (p, i) = Printf.sprintf "[%d,%d]" p i
  let set_json set = "[" ^ String.concat "," (List.map ckpt_json set) ^ "]"

  let query_json = function
    | Rdt_so_far -> {|{"q":"rdt-so-far"}|}
    | Zcycle -> {|{"q":"zcycle"}|}
    | Summary -> {|{"q":"summary"}|}
    | Trackable (a, b) ->
        Printf.sprintf {|{"q":"trackable","from":%s,"to":%s}|} (ckpt_json a) (ckpt_json b)
    | Min_gcp set -> Printf.sprintf {|{"q":"min-gcp","set":%s}|} (set_json set)
    | Max_gcp set -> Printf.sprintf {|{"q":"max-gcp","set":%s}|} (set_json set)

  let summary_json (s : Online.summary) =
    Printf.sprintf
      {|{"events":%d,"checkpoints":%d,"rdt":%b,"first_violation":%s,"zcycle":%b,"rebuilds":%d}|}
      s.events s.checkpoints s.rdt
      (match s.first_violation with None -> "null" | Some i -> string_of_int i)
      s.zcycle s.rebuilds

  let answer_json = function
    | Flag b -> Printf.sprintf {|{"a":"flag","v":%b}|} b
    | Stats s -> Printf.sprintf {|{"a":"stats","v":%s}|} (summary_json s)
    | Cut None -> {|{"a":"cut","v":null}|}
    | Cut (Some cut) ->
        Printf.sprintf {|{"a":"cut","v":[%s]}|}
          (String.concat "," (List.map string_of_int (Array.to_list cut)))

  let reject_name = function
    | Inconsistent -> "inconsistent"
    | Unrecoverable -> "unrecoverable"
    | Protocol -> "protocol"

  let encode_request = function
    | Hello { version; stream; n } ->
        Printf.sprintf {|{"req":"hello","v":%d,"stream":"%s","n":%d}|} version
          (escape stream) n
    | Events evs ->
        "{\"req\":\"events\",\"events\":["
        ^ String.concat "," (List.map T.encode evs)
        ^ "]}"
    | Query { id; query } ->
        Printf.sprintf {|{"req":"query","id":%d,"query":%s}|} id (query_json query)
    | Sync -> {|{"req":"sync"}|}
    | Bye -> {|{"req":"bye"}|}

  let encode_response = function
    | Welcome { version; stream; resumed } ->
        Printf.sprintf {|{"resp":"welcome","v":%d,"stream":"%s","resumed":%d}|} version
          (escape stream) resumed
    | Ack { seen } -> Printf.sprintf {|{"resp":"ack","seen":%d}|} seen
    | Answer { id; answer } ->
        Printf.sprintf {|{"resp":"answer","id":%d,"answer":%s}|} id (answer_json answer)
    | Failed { id; error } ->
        Printf.sprintf {|{"resp":"failed","id":%d,"error":"%s"}|} id (escape error)
    | Rejected { code; error } ->
        Printf.sprintf {|{"resp":"rejected","code":"%s","error":"%s"}|} (reject_name code)
          (escape error)
    | Goodbye { seen; summary; orphans } ->
        Printf.sprintf {|{"resp":"goodbye","seen":%d,"summary":%s,"orphans":[%s]}|} seen
          (summary_json summary)
          (String.concat "," (List.map string_of_int orphans))

  (* -- decoding ---------------------------------------------------- *)

  exception Bad of string

  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

  let field name j =
    match Json.member name j with Some v -> v | None -> bad "missing field %S" name

  let int_f name j = match field name j with Json.Int i -> i | _ -> bad "%S: not an int" name

  let str_f name j =
    match field name j with Json.String s -> s | _ -> bad "%S: not a string" name

  let bool_f name j =
    match field name j with Json.Bool b -> b | _ -> bad "%S: not a bool" name

  let ckpt_of_json = function
    | Json.Arr [ Json.Int p; Json.Int i ] -> (p, i)
    | _ -> bad "checkpoint id: expected [pid,index]"

  let set_f name j =
    match field name j with
    | Json.Arr items -> List.map ckpt_of_json items
    | _ -> bad "%S: not an array" name

  let query_of_json j =
    match str_f "q" j with
    | "rdt-so-far" -> Rdt_so_far
    | "zcycle" -> Zcycle
    | "summary" -> Summary
    | "trackable" -> Trackable (ckpt_of_json (field "from" j), ckpt_of_json (field "to" j))
    | "min-gcp" -> Min_gcp (set_f "set" j)
    | "max-gcp" -> Max_gcp (set_f "set" j)
    | q -> bad "unknown query %S" q

  let summary_of_json j : Online.summary =
    {
      events = int_f "events" j;
      checkpoints = int_f "checkpoints" j;
      rdt = bool_f "rdt" j;
      first_violation =
        (match field "first_violation" j with
        | Json.Null -> None
        | Json.Int i -> Some i
        | _ -> bad "\"first_violation\": not an int or null");
      zcycle = bool_f "zcycle" j;
      rebuilds = int_f "rebuilds" j;
    }

  let answer_of_json j =
    match str_f "a" j with
    | "flag" -> Flag (bool_f "v" j)
    | "stats" -> Stats (summary_of_json (field "v" j))
    | "cut" -> (
        match field "v" j with
        | Json.Null -> Cut None
        | Json.Arr items ->
            Cut
              (Some
                 (Array.of_list
                    (List.map
                       (function Json.Int i -> i | _ -> bad "cut: not an int")
                       items)))
        | _ -> bad "cut: not an array or null")
    | a -> bad "unknown answer %S" a

  let events_of_json j =
    match field "events" j with
    | Json.Arr items ->
        List.map
          (fun item ->
            match T.decode (Json.to_string item) with
            | Ok ev -> ev
            | Error e -> bad "bad event: %s" e)
          items
    | _ -> bad "\"events\": not an array"

  let int_list_f name j =
    match field name j with
    | Json.Arr items ->
        List.map (function Json.Int i -> i | _ -> bad "%S: not an int" name) items
    | _ -> bad "%S: not an array" name

  let reject_of_name = function
    | "inconsistent" -> Inconsistent
    | "unrecoverable" -> Unrecoverable
    | "protocol" -> Protocol
    | c -> bad "unknown reject code %S" c

  let decoding f line =
    match Json.parse line with
    | Error e -> Error e
    | Ok j -> ( match f j with v -> Ok v | exception Bad e -> Error e)

  let decode_request =
    decoding (fun j ->
        match str_f "req" j with
        | "hello" ->
            Hello { version = int_f "v" j; stream = str_f "stream" j; n = int_f "n" j }
        | "events" -> Events (events_of_json j)
        | "query" -> Query { id = int_f "id" j; query = query_of_json (field "query" j) }
        | "sync" -> Sync
        | "bye" -> Bye
        | r -> bad "unknown request %S" r)

  let decode_response =
    decoding (fun j ->
        match str_f "resp" j with
        | "welcome" ->
            Welcome { version = int_f "v" j; stream = str_f "stream" j; resumed = int_f "resumed" j }
        | "ack" -> Ack { seen = int_f "seen" j }
        | "answer" -> Answer { id = int_f "id" j; answer = answer_of_json (field "answer" j) }
        | "failed" -> Failed { id = int_f "id" j; error = str_f "error" j }
        | "rejected" ->
            Rejected { code = reject_of_name (str_f "code" j); error = str_f "error" j }
        | "goodbye" ->
            Goodbye
              {
                seen = int_f "seen" j;
                summary = summary_of_json (field "summary" j);
                orphans = int_list_f "orphans" j;
              }
        | r -> bad "unknown response %S" r)
end

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

module Frame = struct
  let max_payload = 16 * 1024 * 1024

  let encode payload =
    Printf.sprintf "%d %s\n" (String.length payload) payload

  type decoder = {
    buf : Buffer.t;
    mutable start : int;  (** consumed prefix of [buf] *)
    mutable poisoned : string option;
  }

  let decoder () = { buf = Buffer.create 4096; start = 0; poisoned = None }

  let buffered d = Buffer.length d.buf - d.start

  let compact d =
    if d.start > 0 && (d.start = Buffer.length d.buf || d.start > 1 lsl 16) then begin
      let rest = Buffer.sub d.buf d.start (Buffer.length d.buf - d.start) in
      Buffer.clear d.buf;
      Buffer.add_string d.buf rest;
      d.start <- 0
    end

  let feed d bytes ~off ~len = Buffer.add_subbytes d.buf bytes off len

  let poison d msg =
    d.poisoned <- Some msg;
    Error msg

  let next d =
    match d.poisoned with
    | Some msg -> Error msg
    | None ->
        let len = Buffer.length d.buf in
        let pos = ref d.start in
        let payload_len = ref 0 in
        let digits = ref 0 in
        let rec scan () =
          if !pos >= len then `More
          else
            match Buffer.nth d.buf !pos with
            | '0' .. '9' as c ->
                if !digits >= 9 then `Bad "frame length too long"
                else begin
                  payload_len := (!payload_len * 10) + (Char.code c - Char.code '0');
                  incr digits;
                  incr pos;
                  scan ()
                end
            | ' ' when !digits > 0 -> `Sized
            | c -> `Bad (Printf.sprintf "bad frame header byte %C" c)
        in
        (match scan () with
        | `More -> Ok None
        | `Bad msg -> poison d msg
        | `Sized ->
            if !payload_len > max_payload then
              poison d (Printf.sprintf "frame of %d bytes exceeds limit" !payload_len)
            else begin
              let body = !pos + 1 in
              if body + !payload_len + 1 > len then Ok None
              else if Buffer.nth d.buf (body + !payload_len) <> '\n' then
                poison d "frame missing trailing newline"
              else begin
                let payload = Buffer.sub d.buf body !payload_len in
                d.start <- body + !payload_len + 1;
                compact d;
                Ok (Some payload)
              end
            end)
end
