(** Unified checker-session surface.

    Before this module, each consumer of the online checker had its own
    ad-hoc entry point: [rdtsim watch] drove {!Online} (or
    [Rdt_durable.Session]) directly, tests called [Online.check_trace],
    and there was no way to serve a stream remotely at all.  [Session]
    extracts the one interface they all share — open, observe, query,
    snapshot, close — so the same driver loop works over an ephemeral
    in-memory engine, a crash-safe durable session, or (via {!Wire}) a
    socket to a remote [rdtsim serve] daemon.

    A session is a {e stream}: events are applied strictly in order,
    queries observe exactly the prefix applied so far, and an
    inconsistent event (one no run could have produced) permanently
    fails the stream without being persisted.

    {!Wire} defines the typed request/response vocabulary and its
    versioned JSON codec; {!Frame} the length-delimited framing both
    ends of a connection use.  Keeping the codec here (rather than in
    the server) means [watch], [serve], the [feed] client and the tests
    all speak — and type-check against — the same protocol. *)

(** {1 Sessions} *)

type backend = {
  engine : unit -> Online.t;
      (** The live engine answering queries.  For durable backends this
          is re-read per call: recovery may swap the engine instance. *)
  observe : Rdt_obs.Trace.event -> unit;
      (** Apply one event.  May raise [Online.Inconsistent]; the
          backend must not persist the offending event. *)
  sync : unit -> unit;  (** Force durability of everything observed. *)
  close : unit -> unit;  (** Release resources; engine stays queryable. *)
}
(** What a concrete store must provide.  {!Online} needs no wrapping
    beyond {!ephemeral}; [Rdt_durable.Session.checker_session] adapts a
    durable session; tests can interpose counting/fault-injecting
    backends. *)

type t

val of_backend : backend -> t

val ephemeral : ?track_open:bool -> n:int -> unit -> t
(** A session over a fresh in-memory {!Online.create} engine: [sync] is
    a no-op and nothing survives [close]. *)

val engine : t -> Online.t
(** The underlying engine, for read-only queries ({!Online.rdt_so_far},
    {!Online.trackable}, {!Online.summary}, ...).  Mutating it directly
    bypasses the backend's persistence — don't. *)

val observe : t -> Rdt_obs.Trace.event -> (unit, string) result
(** Apply one event.  [Error] reports an inconsistent stream
    ([Online.Inconsistent]); the session is closed to further events
    and {!closed} becomes [true].  Storage failures (e.g. a durable
    backend's I/O errors) are not stream errors and propagate as
    exceptions. *)

val feed : t -> Rdt_obs.Trace.event list -> (unit, string) result
(** {!observe} in order, stopping at the first inconsistent event. *)

val sync : t -> unit

val close : t -> unit
(** Idempotent.  The engine remains queryable after close. *)

val closed : t -> bool
(** [true] after {!close} or after an inconsistent event. *)

val summary : t -> Online.summary

val pattern : t -> (Rdt_pattern.Pattern.t, string) result
(** The checkpoint-and-communication pattern of everything observed so
    far, reconstructed from the engine's surviving history
    ({!Online.export} replayed through [Replay.rebuild]).  Event times
    are sequence numbers, not original trace times — causal structure
    (and hence every [Min_gcp] answer) is preserved exactly.  [Error]
    when the stream is mid-rollback-cascade ({!Online.orphan_messages}
    non-empty): surviving deliveries of rolled-back sends have no
    pattern yet. *)

(** {1 Wire protocol} *)

(** Typed request/response vocabulary for serving sessions over a
    byte stream, with a versioned single-line JSON codec built on
    {!Rdt_obs.Trace.Json} (events travel in the exact encoding
    {!Rdt_obs.Trace.encode} produces).  Version negotiation is
    pessimistic: a [Hello] carrying a version the server does not
    speak is rejected before any state is created. *)
module Wire : sig
  val version : int
  (** Current protocol version, [1].  Bump on any change to the frame
      vocabulary below; servers reject other versions. *)

  type query =
    | Rdt_so_far  (** Has RDT held over the whole stream so far? *)
    | Zcycle  (** Does the current pattern contain a Z-cycle? *)
    | Summary  (** Full verdict summary. *)
    | Trackable of Rdt_pattern.Types.ckpt_id * Rdt_pattern.Types.ckpt_id
    | Min_gcp of Rdt_pattern.Types.ckpt_id list
        (** Minimum consistent global checkpoint containing the set
            (Corollary 4.5 machinery); answered from the reconstructed
            pattern. *)
    | Max_gcp of Rdt_pattern.Types.ckpt_id list

  type answer =
    | Flag of bool
    | Stats of Online.summary
    | Cut of int array option
        (** A global checkpoint as checkpoint indices per process, or
            [None] when no consistent one contains the set. *)

  type reject =
    | Inconsistent  (** Stream no run could have produced — exit 2. *)
    | Unrecoverable  (** Durable state beyond recovery — exit 3. *)
    | Protocol  (** Malformed or out-of-order frame — exit 2. *)

  type request =
    | Hello of { version : int; stream : string; n : int }
        (** Open or reattach to stream [stream] over processes
            [0..n-1].  Must be the first frame on a connection. *)
    | Events of Rdt_obs.Trace.event list
        (** Append a batch.  Acknowledged (cumulatively) by [Ack]. *)
    | Query of { id : int; query : query }
        (** Answered by [Answer] or [Failed] echoing [id], after every
            previously sent event has been applied. *)
    | Sync  (** Force durability; acknowledged by [Ack]. *)
    | Bye  (** Graceful end of stream; answered by [Goodbye]. *)

  type response =
    | Welcome of { version : int; stream : string; resumed : int }
        (** [resumed] is the number of events already durable for this
            stream — the client must skip that prefix. *)
    | Ack of { seen : int }  (** Cumulative events applied. *)
    | Answer of { id : int; answer : answer }
    | Failed of { id : int; error : string }
        (** The query (not the stream) failed, e.g. an unknown
            checkpoint id or a mid-cascade pattern query. *)
    | Rejected of { code : reject; error : string }
        (** The stream is dead; every later frame is rejected too. *)
    | Goodbye of { seen : int; summary : Online.summary; orphans : int list }
        (** Final verdict.  [orphans] non-empty means the stream ended
            mid-rollback-cascade (exit 2 for the client). *)

  val exit_code_of_reject : reject -> int
  (** The unified exit-code table (see [rdtsim watch --help]):
      {!Inconsistent} and {!Protocol} map to 2, {!Unrecoverable} to 3. *)

  val encode_request : request -> string
  (** One JSON object, single line, no trailing newline. *)

  val decode_request : string -> (request, string) result

  val encode_response : response -> string

  val decode_response : string -> (response, string) result
end

(** Length-delimited framing: each frame is ["<len> <payload>\n"] where
    [len] is the byte length of [payload] in decimal.  The explicit
    length lets payloads stay opaque to the transport and makes torn
    frames detectable; the trailing newline keeps captures greppable as
    JSONL. *)
module Frame : sig
  val max_payload : int
  (** Frames larger than this are a protocol error (16 MiB). *)

  val encode : string -> string

  type decoder
  (** Incremental decoder for one byte stream.  Feed raw reads in any
      chunking; pull complete frames out with {!next}. *)

  val decoder : unit -> decoder

  val feed : decoder -> bytes -> off:int -> len:int -> unit

  val next : decoder -> (string option, string) result
  (** The next complete payload, [Ok None] if more bytes are needed,
      [Error] on malformed framing (the decoder is then poisoned). *)

  val buffered : decoder -> int
  (** Bytes fed but not yet returned by {!next}. *)
end
