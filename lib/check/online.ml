module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Bitset = Rdt_pattern.Bitset
module Vclock = Rdt_dist.Vclock
module Trace = Rdt_obs.Trace

exception Inconsistent of string

let bad fmt = Printf.ksprintf (fun s -> raise (Inconsistent s)) fmt

(* ------------------------------------------------------------------ *)
(* The incremental core                                                *)
(* ------------------------------------------------------------------ *)

(* One [core] is the R-graph of the events applied so far, with per-node
   reachability kept incrementally.  Nodes are checkpoints; each process
   additionally owns one OPEN node — the checkpoint that will close its
   current interval.  It is where message edges attach (a message sent or
   delivered in interval I_{i,x} touches C_{i,x}, which does not exist yet
   at event time), and it doubles as the Final checkpoint that
   [Builder.finish] would append if the run stopped here.

   Per node [v] we keep:
   - [reached_by.(v)]: the set of nodes with an R-path to [v].  Edge
     insertion restores the closure invariant (for every edge (u,w),
     {u} ∪ reached_by(u) ⊆ reached_by(w)) by worklist propagation;
     [Bitset.union_into_iter] reports each newly reached node exactly
     once, which is what makes the total propagation work proportional
     to the number of (source, target) pairs rather than re-scans.
   - [max_reach.(v)]: per process [i], the largest checkpoint index of
     [i] with an R-path to [v] (the x* of the offline checker), updated
     in O(1) per newly reached pair.  Stored as a sparse {!Vclock} with
     a +1 offset — entry 0 encodes "no path", entry [x+1] encodes index
     [x] — so a node only pays for the processes that actually reach it.
     [max_reach.(v)] at [owner v] starts at [cindex v]: reachability is
     reflexive in the offline R-graph.
   - [tdv.(v)]: while open, an alias of the owner's live TDV vector (the
     snapshot a Final here would record); frozen to a copy when the
     checkpoint is taken — exactly the [Tdv.compute] replay.  Sparse,
     like everything per-process here: at n = 10^4 a node touched by a
     handful of neighbours must cost O(touched), not O(n).

   A pair (v, i) is a violation iff [max_reach.(v).(i)] exceeds what the
   TDV tracks: [tdv.(v).(i)] for [i <> owner v], and [cindex v] for
   [i = owner v] (a same-process R-path backwards in time is never
   trackable, Section 4.1.2 of the paper).  For closed nodes both sides
   are frozen or monotone, so violations are latched as they appear; for
   open nodes both sides still move, so the per-process verdict is
   recomputed — only for processes touched by the event — in [refresh]. *)
type core = {
  n : int;
  mutable cap : int; (* capacity of the node arrays, >= num_nodes *)
  mutable num_nodes : int;
  mutable owner : int array;
  mutable cindex : int array;
  mutable closed : bool array;
  mutable succ : int list array;
  mutable reached_by : Bitset.t array;
  mutable max_reach : Vclock.t array; (* +1-encoded: 0 = unreached, x+1 = index x *)
  mutable tdv : Vclock.t array;
  mutable viol : Bitset.t array; (* closed nodes: latched per-process violation flags *)
  open_slot : int array; (* pid -> its open node *)
  open_events : int array; (* events in the open interval; 0 = no Final here *)
  vectors : Vclock.t array; (* live TDV vectors, as in Tdv.compute *)
  by_index : (int * int, int) Hashtbl.t; (* (pid, index) -> node *)
  msg_slot : (int, int) Hashtbl.t; (* message -> sender's node at send time *)
  payloads : (int, Vclock.t) Hashtbl.t;
  dirty : bool array; (* pid -> open verdict needs recomputing *)
  open_bad : bool array;
  mutable open_bad_count : int;
  mutable bad_pairs : int; (* violations among closed nodes, monotone *)
  mutable has_cycle : bool;
}

let dummy_bitset = Bitset.create 0

let dummy_vclock = Vclock.create ~n:1

let grow c =
  let new_cap = 2 * c.cap in
  let extend a fill =
    let b = Array.make new_cap fill in
    Array.blit a 0 b 0 c.num_nodes;
    b
  in
  c.owner <- extend c.owner 0;
  c.cindex <- extend c.cindex 0;
  c.closed <- extend c.closed false;
  c.succ <- extend c.succ [];
  c.reached_by <- extend c.reached_by dummy_bitset;
  c.max_reach <- extend c.max_reach dummy_vclock;
  c.tdv <- extend c.tdv dummy_vclock;
  c.viol <- extend c.viol dummy_bitset;
  for v = 0 to c.num_nodes - 1 do
    Bitset.ensure_capacity c.reached_by.(v) new_cap
  done;
  c.cap <- new_cap

let new_node c ~owner ~index ~tdv =
  if c.num_nodes = c.cap then grow c;
  let v = c.num_nodes in
  c.num_nodes <- v + 1;
  c.owner.(v) <- owner;
  c.cindex.(v) <- index;
  c.closed.(v) <- false;
  c.succ.(v) <- [];
  c.reached_by.(v) <- Bitset.create c.cap;
  let mr = Vclock.create ~n:c.n in
  Vclock.set mr owner (index + 1);
  c.max_reach.(v) <- mr;
  c.tdv.(v) <- tdv;
  c.viol.(v) <- dummy_bitset;
  Hashtbl.replace c.by_index (owner, index) v;
  v

(* [v] gained an R-path into [w]. *)
let new_pair c v w =
  if v = w then c.has_cycle <- true;
  let i = c.owner.(v) and x = c.cindex.(v) in
  let mr = c.max_reach.(w) in
  if x + 1 > Vclock.get mr i then begin
    Vclock.set mr i (x + 1);
    if c.closed.(w) then begin
      let allowed = if i = c.owner.(w) then c.cindex.(w) else Vclock.get c.tdv.(w) i in
      if x > allowed && not (Bitset.mem c.viol.(w) i) then begin
        Bitset.add c.viol.(w) i;
        c.bad_pairs <- c.bad_pairs + 1
      end
    end
    else c.dirty.(c.owner.(w)) <- true
  end

let add_edge c u w =
  if not (List.mem w c.succ.(u)) then begin
    c.succ.(u) <- w :: c.succ.(u);
    let q = Queue.create () in
    let changed = ref false in
    if not (Bitset.mem c.reached_by.(w) u) then begin
      Bitset.add c.reached_by.(w) u;
      new_pair c u w;
      changed := true
    end;
    if Bitset.union_into_iter c.reached_by.(w) c.reached_by.(u) ~f:(fun v -> new_pair c v w) then
      changed := true;
    if !changed then Queue.add w q;
    while not (Queue.is_empty q) do
      let z = Queue.pop q in
      List.iter
        (fun s ->
          if Bitset.union_into_iter c.reached_by.(s) c.reached_by.(z) ~f:(fun v -> new_pair c v s)
          then Queue.add s q)
        c.succ.(z)
    done
  end

let core_send c ~msg ~src =
  Hashtbl.replace c.payloads msg (Vclock.copy c.vectors.(src));
  Hashtbl.replace c.msg_slot msg c.open_slot.(src);
  c.open_events.(src) <- c.open_events.(src) + 1;
  c.dirty.(src) <- true

let core_deliver c ~msg ~dst =
  let u =
    match Hashtbl.find_opt c.msg_slot msg with
    | Some u -> u
    | None -> bad "surviving delivery of rolled-back send %d" msg
  in
  let p = Hashtbl.find c.payloads msg in
  Vclock.merge c.vectors.(dst) p;
  c.open_events.(dst) <- c.open_events.(dst) + 1;
  c.dirty.(dst) <- true;
  add_edge c u c.open_slot.(dst)

let core_internal c ~pid =
  c.open_events.(pid) <- c.open_events.(pid) + 1;
  c.dirty.(pid) <- true

let core_ckpt c ~pid ~index =
  let w = c.open_slot.(pid) in
  if c.cindex.(w) <> index then
    bad "checkpoint %d of pid %d out of order (expected index %d)" index pid c.cindex.(w);
  c.tdv.(w) <- Vclock.copy c.vectors.(pid);
  c.closed.(w) <- true;
  let vl = Bitset.create c.n in
  c.viol.(w) <- vl;
  let mr = c.max_reach.(w) and frozen = c.tdv.(w) in
  (* only processes with a path into [w] can violate; walk the sparse
     entries instead of all n.  i = pid cannot be violated here: no later
     checkpoint of pid exists yet *)
  Vclock.iteri mr ~f:(fun i enc ->
      if i <> pid && enc - 1 > Vclock.get frozen i then begin
        Bitset.add vl i;
        c.bad_pairs <- c.bad_pairs + 1
      end);
  Vclock.set c.vectors.(pid) pid (index + 1);
  let w' = new_node c ~owner:pid ~index:(index + 1) ~tdv:c.vectors.(pid) in
  c.open_slot.(pid) <- w';
  c.open_events.(pid) <- 0;
  c.dirty.(pid) <- true;
  add_edge c w w'

(* Exclude an undeliverable message's send from the pattern (mirroring
   [Replay.rebuild]): sends create no edges and no TDV effect, so the
   only retraction needed is the open-interval event count. *)
let core_retract_send c ~msg =
  (match Hashtbl.find_opt c.msg_slot msg with
  | Some u when not c.closed.(u) ->
      let src = c.owner.(u) in
      c.open_events.(src) <- c.open_events.(src) - 1;
      c.dirty.(src) <- true
  | _ -> ());
  Hashtbl.remove c.msg_slot msg;
  Hashtbl.remove c.payloads msg

let core_create ~n =
  let cap = max 16 (4 * n) in
  let c =
    {
      n;
      cap;
      num_nodes = 0;
      owner = Array.make cap 0;
      cindex = Array.make cap 0;
      closed = Array.make cap false;
      succ = Array.make cap [];
      reached_by = Array.make cap dummy_bitset;
      max_reach = Array.make cap dummy_vclock;
      tdv = Array.make cap dummy_vclock;
      viol = Array.make cap dummy_bitset;
      open_slot = Array.make n 0;
      open_events = Array.make n 0;
      vectors = Array.init n (fun _ -> Vclock.create ~n);
      by_index = Hashtbl.create (4 * n);
      msg_slot = Hashtbl.create 64;
      payloads = Hashtbl.create 64;
      dirty = Array.make n false;
      open_bad = Array.make n false;
      open_bad_count = 0;
      bad_pairs = 0;
      has_cycle = false;
    }
  in
  (* the builder takes C_{i,0} at creation; mirror that *)
  for pid = 0 to n - 1 do
    c.open_slot.(pid) <- new_node c ~owner:pid ~index:0 ~tdv:c.vectors.(pid);
    core_ckpt c ~pid ~index:0
  done;
  c

let recompute_open_bad c pid =
  if c.open_events.(pid) = 0 then false
  else begin
    let mr = c.max_reach.(c.open_slot.(pid)) and live = c.vectors.(pid) in
    let b = ref false in
    Vclock.iteri mr ~f:(fun i enc -> if i <> pid && enc - 1 > Vclock.get live i then b := true);
    !b
  end

(* ------------------------------------------------------------------ *)
(* The engine: surviving-history log + rollback-triggered rebuild      *)
(* ------------------------------------------------------------------ *)

(* [seq] restores global order when the per-process stacks are flattened
   after a rollback; the scheme is the same as [Replay.rebuild]'s. *)
type entry =
  | L_send of { seq : int; msg : int }
  | L_recv of { seq : int; msg : int }
  | L_internal of { seq : int }
  | L_ckpt of { seq : int; index : int }

let entry_seq = function
  | L_send { seq; _ } | L_recv { seq; _ } | L_internal { seq; _ } | L_ckpt { seq; _ } -> seq

type t = {
  n : int;
  track_open : bool;
  mutable core : core;
  stacks : entry list array; (* surviving entries per process, newest first *)
  routes : (int, int * int) Hashtbl.t;
  undeliv : (int, unit) Hashtbl.t;
  mutable seen : int;
  mutable first_violation : int option;
  mutable rebuilds : int;
  mutable orphans : int list;
      (* surviving deliveries whose send was rolled back: transiently legal
         mid-cascade (the receiver's own rollback has not been observed
         yet), inconsistent if still present when the stream ends *)
}

let create ?(track_open = true) ~n () =
  if n <= 0 then invalid_arg "Online.create: n must be positive";
  {
    n;
    track_open;
    core = core_create ~n;
    stacks = Array.make n [];
    routes = Hashtbl.create 64;
    undeliv = Hashtbl.create 8;
    seen = 0;
    first_violation = None;
    rebuilds = 0;
    orphans = [];
  }

let n t = t.n

let events_seen t = t.seen

let rdt_so_far t =
  t.core.bad_pairs = 0 && ((not t.track_open) || t.core.open_bad_count = 0)

let first_violation t = t.first_violation

let zcycle t = t.core.has_cycle

let rebuilds t = t.rebuilds

let orphan_messages t = List.rev t.orphans

let check_pid t pid what =
  if pid < 0 || pid >= t.n then bad "%s: pid %d out of range" what pid

(* settle the per-process open verdicts touched by the event *)
let settle t =
  let c = t.core in
  for pid = 0 to c.n - 1 do
    if c.dirty.(pid) then begin
      c.dirty.(pid) <- false;
      let b = recompute_open_bad c pid in
      if b <> c.open_bad.(pid) then begin
        c.open_bad.(pid) <- b;
        c.open_bad_count <- (c.open_bad_count + if b then 1 else -1)
      end
    end
  done

(* settle, then latch the first-violation index *)
let finish_step t =
  settle t;
  if t.first_violation = None && not (rdt_so_far t) then t.first_violation <- Some t.seen;
  t.seen <- t.seen + 1

let op_send t ~msg ~src ~dst =
  check_pid t src "send";
  check_pid t dst "send";
  Hashtbl.replace t.routes msg (src, dst);
  t.stacks.(src) <- L_send { seq = t.seen; msg } :: t.stacks.(src);
  core_send t.core ~msg ~src

let op_deliver t ~msg ~dst =
  check_pid t dst "deliver";
  if not (Hashtbl.mem t.routes msg) then bad "deliver of unknown message %d" msg;
  if Hashtbl.mem t.undeliv msg then bad "deliver of undeliverable message %d" msg;
  t.stacks.(dst) <- L_recv { seq = t.seen; msg } :: t.stacks.(dst);
  core_deliver t.core ~msg ~dst

let op_internal t ~pid =
  check_pid t pid "internal";
  t.stacks.(pid) <- L_internal { seq = t.seen } :: t.stacks.(pid);
  core_internal t.core ~pid

let op_checkpoint t ~pid ~index =
  check_pid t pid "ckpt";
  t.stacks.(pid) <- L_ckpt { seq = t.seen; index } :: t.stacks.(pid);
  core_ckpt t.core ~pid ~index

let op_undeliverable t ~msg =
  Hashtbl.replace t.undeliv msg ();
  core_retract_send t.core ~msg

let rebuild t =
  t.rebuilds <- t.rebuilds + 1;
  let c = core_create ~n:t.n in
  t.core <- c;
  let entries =
    Array.to_list t.stacks
    |> List.mapi (fun pid stack -> List.rev_map (fun e -> (pid, e)) stack)
    |> List.concat
    |> List.sort (fun (_, a) (_, b) -> compare (entry_seq a) (entry_seq b))
  in
  t.orphans <- [];
  List.iter
    (fun (pid, e) ->
      match e with
      | L_send { msg; _ } -> if not (Hashtbl.mem t.undeliv msg) then core_send c ~msg ~src:pid
      | L_recv { msg; _ } ->
          (* a delivery can outlive its send mid-cascade: the sender rolled
             back first and the receiver's rollback has not arrived yet.
             Exclude it from the rebuilt state; it must be popped by a
             later rollback for the stream to end consistently. *)
          if Hashtbl.mem c.msg_slot msg then core_deliver c ~msg ~dst:pid
          else t.orphans <- msg :: t.orphans
      | L_internal _ -> core_internal c ~pid
      | L_ckpt { index; _ } -> core_ckpt c ~pid ~index)
    entries;
  (* every open verdict is stale; settle them all *)
  for pid = 0 to t.n - 1 do
    c.dirty.(pid) <- true
  done

let op_rollback t ~pid ~to_index =
  check_pid t pid "rollback";
  let rec pop = function
    | L_ckpt { index; _ } :: _ as kept when index = to_index -> kept
    | [] ->
        if to_index = 0 then [] (* initial checkpoint: implicit, empty history *)
        else bad "rollback of pid %d to missing checkpoint %d" pid to_index
    | _ :: rest -> pop rest
  in
  t.stacks.(pid) <- pop t.stacks.(pid);
  rebuild t

let send t ~msg ~src ~dst =
  op_send t ~msg ~src ~dst;
  finish_step t

let deliver t ~msg ~dst =
  op_deliver t ~msg ~dst;
  finish_step t

let internal t ~pid =
  op_internal t ~pid;
  finish_step t

let checkpoint t ~pid ~index =
  op_checkpoint t ~pid ~index;
  finish_step t

let undeliverable t ~msg =
  op_undeliverable t ~msg;
  finish_step t

let rollback t ~pid ~to_index =
  op_rollback t ~pid ~to_index;
  finish_step t

let observe t (ev : Trace.event) =
  (match ev with
  | Meta _ | Verdict _ | Retransmit _ | Drop _ | Replay _ ->
      (* transport noise and annotations: no pattern effect (a replayed
         delivery shows up as a fresh Deliver) *)
      ()
  | Send { msg; src; dst; _ } -> op_send t ~msg ~src ~dst
  | Deliver { msg; dst; _ } -> op_deliver t ~msg ~dst
  | Internal { pid; _ } -> op_internal t ~pid
  | Ckpt { pid; index; kind; _ } ->
      check_pid t pid "ckpt";
      (* the initial C_{i,0} is taken at creation, like the builder's *)
      if kind <> T.Initial then op_checkpoint t ~pid ~index
  | Undeliverable { msg; _ } -> op_undeliverable t ~msg
  | Rollback { pid; to_index; _ } -> op_rollback t ~pid ~to_index);
  finish_step t

let observer t = Trace.observer (observe t)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let find_node t (i, x) =
  check_pid t i "query";
  match Hashtbl.find_opt t.core.by_index (i, x) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Online: C(%d,%d) does not exist" i x)

let trackable t (i, x) (j, y) =
  let _ = find_node t (i, x) and w = find_node t (j, y) in
  if i = j then x <= y else Vclock.get t.core.tdv.(w) i >= x

let reaches t a b =
  let u = find_node t a and w = find_node t b in
  u = w || Bitset.mem t.core.reached_by.(w) u

let in_cycle t a =
  let v = find_node t a in
  Bitset.mem t.core.reached_by.(v) v

let num_checkpoints t = t.core.num_nodes - t.n

(* a node contributes to the verdict iff it is a real checkpoint, or —
   when tracking open intervals — the Final that [Builder.finish] would
   append (only appended when the interval has events) *)
let eligible t v =
  let c = t.core in
  c.closed.(v) || (t.track_open && c.open_events.(c.owner.(v)) > 0)

let checked t =
  let c = t.core in
  let total = ref 0 in
  for v = 0 to c.num_nodes - 1 do
    (* +1 encoding: a stored (nonzero) entry is exactly a reached pair *)
    if eligible t v then total := !total + Vclock.nnz c.max_reach.(v)
  done;
  !total

type violation = { from_ckpt : T.ckpt_id; to_ckpt : T.ckpt_id; tracked : int }

let violations t =
  let c = t.core in
  let acc = ref [] in
  for v = 0 to c.num_nodes - 1 do
    if eligible t v then begin
      let mr = c.max_reach.(v) and j = c.owner.(v) and y = c.cindex.(v) in
      Vclock.iteri mr ~f:(fun i enc ->
          let allowed = if i = j then y else Vclock.get c.tdv.(v) i in
          if enc - 1 > allowed then
            acc := { from_ckpt = (i, enc - 1); to_ckpt = (j, y); tracked = allowed } :: !acc)
    end
  done;
  (* the offline checkers iterate (j, y, i); match their report order *)
  List.sort
    (fun a b ->
      compare (a.to_ckpt, fst a.from_ckpt) (b.to_ckpt, fst b.from_ckpt))
    !acc

type summary = {
  events : int;
  checkpoints : int;
  rdt : bool;
  first_violation : int option;
  zcycle : bool;
  rebuilds : int;
}

let summary t =
  {
    events = t.seen;
    checkpoints = num_checkpoints t;
    rdt = rdt_so_far t;
    first_violation = t.first_violation;
    zcycle = zcycle t;
    rebuilds = t.rebuilds;
  }

let pp_summary ppf s =
  Format.fprintf ppf "events: %d, checkpoints: %d, rdt: %b%s%s" s.events s.checkpoints s.rdt
    (match s.first_violation with
    | None -> ""
    | Some i -> Printf.sprintf ", first violation at event %d" i)
    (if s.rebuilds > 0 then Printf.sprintf ", rebuilds: %d" s.rebuilds else "")

(* ------------------------------------------------------------------ *)
(* Durable state: export / restore                                     *)
(* ------------------------------------------------------------------ *)

(* The durable image of an engine is its *history*, not its graphs: the
   per-process surviving-entry logs plus the message routing/abandonment
   tables and the three latched scalars.  [restore] then reconstructs
   the incremental R-graph/Bitset/TDV state by running the exact rebuild
   path a rollback uses, so a restored engine is bit-for-bit the state a
   rollback-free replay of the survivors would reach — serializing the
   closure sets themselves would only create a second, divergeable
   source of truth. *)
module Export = struct
  type entry =
    | Send of { seq : int; msg : int }
    | Recv of { seq : int; msg : int }
    | Internal of { seq : int }
    | Ckpt of { seq : int; index : int }

  type t = {
    n : int;
    track_open : bool;
    events_seen : int;
    first_violation : int option;
    rebuilds : int;
    stacks : entry list array;
    routes : (int * int * int) list;
    undeliverable : int list;
  }
end

let export t =
  let conv = function
    | L_send { seq; msg } -> Export.Send { seq; msg }
    | L_recv { seq; msg } -> Export.Recv { seq; msg }
    | L_internal { seq } -> Export.Internal { seq }
    | L_ckpt { seq; index } -> Export.Ckpt { seq; index }
  in
  {
    Export.n = t.n;
    track_open = t.track_open;
    events_seen = t.seen;
    first_violation = t.first_violation;
    rebuilds = t.rebuilds;
    stacks = Array.map (fun stack -> List.rev_map conv stack) t.stacks;
    routes =
      Rdt_dist.Tbl.bindings_sorted ~compare:Int.compare t.routes
      |> List.map (fun (msg, (src, dst)) -> (msg, src, dst));
    undeliverable = Rdt_dist.Tbl.keys_sorted ~compare:Int.compare t.undeliv;
  }

let restore (e : Export.t) =
  if e.Export.n <= 0 then bad "restore: n must be positive (got %d)" e.Export.n;
  if Array.length e.Export.stacks <> e.Export.n then
    bad "restore: %d survivor stacks for %d processes" (Array.length e.Export.stacks) e.Export.n;
  if e.Export.events_seen < 0 then bad "restore: negative event count %d" e.Export.events_seen;
  let t = create ~track_open:e.Export.track_open ~n:e.Export.n () in
  let conv = function
    | Export.Send { seq; msg } -> L_send { seq; msg }
    | Export.Recv { seq; msg } -> L_recv { seq; msg }
    | Export.Internal { seq } -> L_internal { seq }
    | Export.Ckpt { seq; index } -> L_ckpt { seq; index }
  in
  Array.iteri (fun pid stack -> t.stacks.(pid) <- List.rev_map conv stack) e.Export.stacks;
  List.iter (fun (msg, src, dst) -> Hashtbl.replace t.routes msg (src, dst)) e.Export.routes;
  List.iter (fun msg -> Hashtbl.replace t.undeliv msg ()) e.Export.undeliverable;
  (* reconstruction is the rollback rebuild; it must not count as one *)
  rebuild t;
  settle t;
  t.seen <- e.Export.events_seen;
  t.first_violation <- e.Export.first_violation;
  t.rebuilds <- e.Export.rebuilds;
  t

(* ------------------------------------------------------------------ *)
(* Whole-pattern and whole-trace convenience drivers                   *)
(* ------------------------------------------------------------------ *)

let feed t events = List.iter (observe t) events

let check_pattern pat =
  let t = create ~track_open:false ~n:(P.n pat) () in
  let messages = P.messages pat in
  Array.iter
    (fun (pid, _pos, ev) ->
      match ev with
      | T.Ckpt 0 -> () (* initial checkpoints are taken at creation *)
      | T.Ckpt x -> checkpoint t ~pid ~index:x
      | T.Send id -> send t ~msg:id ~src:pid ~dst:messages.(id).T.dst
      | T.Recv id -> deliver t ~msg:id ~dst:pid
      | T.Internal -> internal t ~pid)
    (P.events_in_gseq_order pat);
  t

let trace_n events =
  match List.find_map (function Trace.Meta { n; _ } -> Some n | _ -> None) events with
  | Some n -> n
  | None ->
      (* infer from the largest pid mentioned, as Replay.rebuild does *)
      let m = ref (-1) in
      List.iter
        (fun (ev : Trace.event) ->
          match ev with
          | Send { src; dst; _ }
          | Deliver { src; dst; _ }
          | Retransmit { src; dst; _ }
          | Drop { src; dst; _ }
          | Undeliverable { src; dst; _ }
          | Replay { src; dst; _ } ->
              m := max !m (max src dst)
          | Internal { pid; _ } | Ckpt { pid; _ } | Rollback { pid; _ } -> m := max !m pid
          | Meta _ | Verdict _ -> ())
        events;
      if !m < 0 then bad "empty trace: no events and no meta header";
      !m + 1

let orphan_error orphans =
  match List.sort_uniq Int.compare orphans with
  | [ msg ] -> Printf.sprintf "surviving delivery of rolled-back send %d" msg
  | msgs ->
      Printf.sprintf "surviving deliveries of rolled-back sends %s"
        (String.concat ", " (List.map string_of_int msgs))

let trace_process_count events =
  match trace_n events with n -> Ok n | exception Inconsistent e -> Error e

let check_trace events =
  try
    let t = create ~n:(trace_n events) () in
    feed t events;
    match orphan_messages t with [] -> Ok t | orphans -> Error (orphan_error orphans)
  with Inconsistent e -> Error e
