(** Incremental (event-streaming) RDT verification.

    The offline checkers in [Rdt_core.Checker] rebuild the full R-graph
    and re-run a whole-graph analysis for every verdict.  This engine is
    the on-line counterpart the paper's trackability notion calls for: it
    consumes one event at a time — live from a {!Rdt_obs.Trace} observer
    hooked into a run, streamed from a recorded JSONL trace, or replayed
    from a finished pattern — and maintains the R-graph, per-checkpoint
    reachability ({!Rdt_pattern.Bitset}-backed incremental transitive
    closure) and the TDV replay, so that after {e every} event it answers
    {!rdt_so_far}, {!zcycle} and {!trackable} without an O(graph)
    recheck.

    {b Verdict semantics.}  After any prefix of events, {!rdt_so_far}
    equals the offline verdict on the pattern that prefix would produce —
    including the Final checkpoints [Pattern.Builder.finish] appends to
    intervals that contain events.  The engine models those as per-process
    {e open} nodes whose TDV snapshot is the live vector.

    {b Rollbacks.}  On a [Rollback] trace event the engine retracts: it
    keeps a per-process surviving-history log (the same scheme as
    {!Rdt_obs.Replay.rebuild}), truncates it to the rolled-back
    checkpoint, and rebuilds the incremental state from the survivors.
    Replayed deliveries then arrive as fresh [Deliver] events.

    {b Complexity.}  Amortized near-constant per event: reachability
    propagation does O(1) work per {e newly established} (source
    checkpoint, target checkpoint) pair over the whole run — each pair is
    reported exactly once by the delta-union — plus O(n) bookkeeping per
    event for the touched processes' open intervals.  Rollbacks cost one
    rebuild of the surviving prefix. *)

exception Inconsistent of string
(** The event stream is not a consistent run (delivery of an unknown or
    undeliverable message, checkpoint index out of order, rollback to a
    missing checkpoint, ...). *)

type t

val create : ?track_open:bool -> n:int -> unit -> t
(** A fresh engine over processes [0..n-1], each with its initial
    checkpoint [C_{i,0}] already taken (builder semantics).
    [track_open] (default [true]) counts would-be Final checkpoints of
    event-carrying open intervals in the verdict — the right setting for
    live streams, where finals are never traced.  Pass [false] to judge
    exactly the checkpoints that exist (used to check finished
    patterns). *)

(** {1 Feeding events} *)

val observe : t -> Rdt_obs.Trace.event -> unit
(** Apply one trace event.  [Meta], [Verdict], [Retransmit], [Drop] and
    [Replay] are transport noise or annotations with no pattern effect;
    initial checkpoints are already taken.  Every observed event counts
    toward {!events_seen} and the {!first_violation} index.
    @raise Inconsistent on streams no run could have produced. *)

val observer : t -> Rdt_obs.Trace.t
(** [observer t] is a trace recorder feeding [t], for use with
    [Trace.tee]: hook the engine into any traced run without the
    instrumentation sites knowing. *)

val feed : t -> Rdt_obs.Trace.event list -> unit

val send : t -> msg:int -> src:int -> dst:int -> unit
(** Direct (trace-free) event application; same effect as observing the
    corresponding trace event. *)

val deliver : t -> msg:int -> dst:int -> unit

val internal : t -> pid:int -> unit

val checkpoint : t -> pid:int -> index:int -> unit
(** Take the next checkpoint of [pid]; [index] must be the next index in
    program order (@raise Inconsistent otherwise). *)

val undeliverable : t -> msg:int -> unit

val rollback : t -> pid:int -> to_index:int -> unit

(** {1 Per-event queries (amortized near-constant)} *)

val rdt_so_far : t -> bool
(** Offline-equivalent RDT verdict of everything seen so far. *)

val first_violation : t -> int option
(** Index (into the observed events, 0-based) of the event at which
    {!rdt_so_far} first became false; latched — a later rollback that
    removes the offending dependency does not unset it. *)

val zcycle : t -> bool
(** Whether the R-graph seen so far contains a Z-cycle (a checkpoint on a
    nontrivial cycle).  RDT patterns never do (Theorem 4.4 ⟹ acyclic). *)

val trackable : t -> Rdt_pattern.Types.ckpt_id -> Rdt_pattern.Types.ckpt_id -> bool
(** [trackable t (i, x) (j, y)]: does the dependency knowledge recorded
    so far track an [C_{i,x} ~> C_{j,y}] dependency — [x <= y] for
    [i = j], [TDV_{j,y}.(i) >= x] otherwise.  For [y] the owner's open
    interval this uses the live vector.  @raise Invalid_argument if a
    checkpoint does not exist. *)

val reaches : t -> Rdt_pattern.Types.ckpt_id -> Rdt_pattern.Types.ckpt_id -> bool
(** R-graph reachability (reflexive, like [Rgraph.reaches]). *)

val in_cycle : t -> Rdt_pattern.Types.ckpt_id -> bool

(** {1 State and reports} *)

val n : t -> int

val events_seen : t -> int

val num_checkpoints : t -> int
(** Checkpoints taken so far (excluding open intervals), initials
    included. *)

val rebuilds : t -> int
(** Rollback-triggered state rebuilds so far. *)

val orphan_messages : t -> int list
(** Surviving deliveries whose send was rolled back.  A rollback cascade
    is observed one process at a time, so between the sender's rollback
    and the receiver's the state is transiently inconsistent; the
    offending deliveries are excluded from the verdict until the
    receiver rolls back past them.  A stream that {e ends} with orphans
    is inconsistent ({!check_trace} rejects it, like
    [Replay.rebuild]). *)

val checked : t -> int
(** Rollback dependencies established so far — pairs [(C_{j,y}, P_i)]
    with a real R-path; matches the offline checkers' [checked] count. *)

type violation = {
  from_ckpt : Rdt_pattern.Types.ckpt_id;
  to_ckpt : Rdt_pattern.Types.ckpt_id;
  tracked : int;  (** the TDV entry that should have been [>= x] *)
}

val violations : t -> violation list
(** All currently-violated dependencies, strongest witness per pair, in
    the offline checkers' report order. *)

type summary = {
  events : int;
  checkpoints : int;
  rdt : bool;
  first_violation : int option;
  zcycle : bool;
  rebuilds : int;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** {1 Durable state}

    The engine's durable image is its {e history}, never its graphs: the
    per-process surviving-entry logs (the same structure the rollback
    rebuild replays), the message routing and abandonment tables, and
    the latched scalars.  {!restore} reconstructs the incremental
    R-graph / {!Rdt_pattern.Bitset} closure / TDV-witness state by
    running the rollback-rebuild path over the exported survivors, so
    restored state can never drift from what a live engine would hold —
    there is one source of truth.  [Rdt_durable.Snapshot] gives these a
    versioned, CRC-checked binary codec. *)

module Export : sig
  type entry =
    | Send of { seq : int; msg : int }
    | Recv of { seq : int; msg : int }
    | Internal of { seq : int }
    | Ckpt of { seq : int; index : int }
        (** One surviving history entry of a process; [seq] is the global
            observed-event index that restores cross-process order. *)

  type t = {
    n : int;
    track_open : bool;
    events_seen : int;
    first_violation : int option;
    rebuilds : int;
    stacks : entry list array;  (** per process, oldest first *)
    routes : (int * int * int) list;  (** [(msg, src, dst)], sorted by [msg] *)
    undeliverable : int list;  (** abandoned message ids, sorted *)
  }
end

val export : t -> Export.t
(** A deterministic, self-contained image of the engine's state: two
    engines with equal exports answer every query identically. *)

val restore : Export.t -> t
(** Rebuild a live engine from an export.  The result's {!summary},
    {!violations}, {!first_violation}, {!orphan_messages} and every
    query equal the exporting engine's at export time.
    @raise Inconsistent if the export is internally inconsistent (no
    run could have produced it). *)

(** {1 Whole-input drivers} *)

val check_pattern : Rdt_pattern.Pattern.t -> t
(** Stream a finished pattern's events through a fresh engine
    ([track_open = false]); the resulting verdict, violations and
    [checked] count equal the offline checkers' on the same pattern. *)

val trace_process_count : Rdt_obs.Trace.event list -> (int, string) result
(** The process count a stream of trace events implies: the [Meta]
    header's [n], or the largest pid mentioned plus one.  Errors on an
    empty trace. *)

val check_trace : Rdt_obs.Trace.event list -> (t, string) result
(** Stream a recorded trace ([track_open = true]); process count from the
    [Meta] header, or inferred.  Errors on inconsistent streams; a
    stream that ends mid-rollback-cascade reports {e all} orphaned
    message ids, like [Replay.rebuild]. *)
