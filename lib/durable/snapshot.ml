(* Versioned, CRC-checked binary snapshots of [Rdt_check.Online] engine
   exports, installed atomically and kept in generations.

   File image:

     magic   "RDTSNAP1"                     8 bytes
     len     u32 LE                         payload length
     payload version + Online.Export.t     (varint-packed)
     crc     u32 LE                         CRC-32 of the payload

   Install is write-tmp -> fsync -> rename -> fsync(dir); the previous
   generation file is left in place as the fallback the loader degrades
   to when the newest file fails its checksum.  Decoding never trusts a
   byte it has not checked: wrong magic, truncated payload, bad CRC and
   codec-level garbage all come back as [Error], so the session can walk
   down the generation chain instead of crashing — or worse, restoring a
   wrong state and producing a wrong verdict. *)

module Export = Rdt_check.Online.Export

let magic = "RDTSNAP1"

let version = 1

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let encode_payload (e : Export.t) =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w version;
  Codec.Writer.varint w e.n;
  Codec.Writer.byte w (if e.track_open then 1 else 0);
  Codec.Writer.varint w e.events_seen;
  Codec.Writer.opt_varint w e.first_violation;
  Codec.Writer.varint w e.rebuilds;
  Codec.Writer.varint w (List.length e.routes);
  List.iter
    (fun (msg, src, dst) ->
      Codec.Writer.varint w msg;
      Codec.Writer.varint w src;
      Codec.Writer.varint w dst)
    e.routes;
  Codec.Writer.varint w (List.length e.undeliverable);
  List.iter (Codec.Writer.varint w) e.undeliverable;
  Array.iter
    (fun stack ->
      Codec.Writer.varint w (List.length stack);
      List.iter
        (fun (entry : Export.entry) ->
          match entry with
          | Export.Send { seq; msg } ->
              Codec.Writer.byte w 0;
              Codec.Writer.varint w seq;
              Codec.Writer.varint w msg
          | Export.Recv { seq; msg } ->
              Codec.Writer.byte w 1;
              Codec.Writer.varint w seq;
              Codec.Writer.varint w msg
          | Export.Internal { seq } ->
              Codec.Writer.byte w 2;
              Codec.Writer.varint w seq
          | Export.Ckpt { seq; index } ->
              Codec.Writer.byte w 3;
              Codec.Writer.varint w seq;
              Codec.Writer.varint w index)
        stack)
    e.stacks;
  Codec.Writer.contents w

let decode_payload s =
  let r = Codec.Reader.of_string s in
  let v = Codec.Reader.varint r in
  if v <> version then Error (Printf.sprintf "unsupported snapshot version %d" v)
  else begin
    let n = Codec.Reader.varint r in
    if n <= 0 || n > 10_000_000 then Error (Printf.sprintf "implausible process count %d" n)
    else begin
      let track_open = Codec.Reader.byte r <> 0 in
      let events_seen = Codec.Reader.varint r in
      let first_violation = Codec.Reader.opt_varint r in
      let rebuilds = Codec.Reader.varint r in
      let routes =
        List.init (Codec.Reader.varint r) (fun _ ->
            let msg = Codec.Reader.varint r in
            let src = Codec.Reader.varint r in
            let dst = Codec.Reader.varint r in
            (msg, src, dst))
      in
      let undeliverable = List.init (Codec.Reader.varint r) (fun _ -> Codec.Reader.varint r) in
      let stacks =
        Array.init n (fun _ ->
            List.init (Codec.Reader.varint r) (fun _ ->
                match Codec.Reader.byte r with
                | 0 ->
                    let seq = Codec.Reader.varint r in
                    Export.Send { seq; msg = Codec.Reader.varint r }
                | 1 ->
                    let seq = Codec.Reader.varint r in
                    Export.Recv { seq; msg = Codec.Reader.varint r }
                | 2 -> Export.Internal { seq = Codec.Reader.varint r }
                | 3 ->
                    let seq = Codec.Reader.varint r in
                    Export.Ckpt { seq; index = Codec.Reader.varint r }
                | t -> raise (Codec.Reader.Short (Printf.sprintf "unknown entry tag %d" t))))
      in
      if Codec.Reader.remaining r <> 0 then
        Error (Printf.sprintf "%d trailing bytes after the export" (Codec.Reader.remaining r))
      else
        Ok
          {
            Export.n;
            track_open;
            events_seen;
            first_violation;
            rebuilds;
            stacks;
            routes;
            undeliverable;
          }
    end
  end

let encode e =
  let payload = encode_payload e in
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b magic;
  let len = Codec.Writer.create () in
  Codec.Writer.u32 len (String.length payload);
  Buffer.add_string b (Codec.Writer.contents len);
  Buffer.add_string b payload;
  let crc = Codec.Writer.create () in
  Codec.Writer.u32 crc (Codec.crc32 payload);
  Buffer.add_string b (Codec.Writer.contents crc);
  Buffer.contents b

let decode s =
  let header = String.length magic + 4 in
  if String.length s < header + 4 then Error "snapshot file truncated before the payload"
  else if String.sub s 0 (String.length magic) <> magic then Error "bad snapshot magic"
  else begin
    let r = Codec.Reader.of_string ~pos:(String.length magic) s in
    let len = Codec.Reader.u32 r in
    if String.length s <> header + len + 4 then
      Error
        (Printf.sprintf "snapshot length mismatch: header says %d payload bytes, file has %d" len
           (String.length s - header - 4))
    else begin
      let crc_stored = Codec.Reader.of_string ~pos:(header + len) s |> Codec.Reader.u32 in
      let crc_actual = Codec.crc32_sub s ~pos:header ~len in
      if crc_stored <> crc_actual then
        Error (Printf.sprintf "snapshot CRC mismatch (stored %08x, computed %08x)" crc_stored crc_actual)
      else
        match decode_payload (String.sub s header len) with
        | v -> v
        | exception Codec.Reader.Short what -> Error ("snapshot payload malformed: " ^ what)
    end
  end

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let filename ~gen = Printf.sprintf "snap-%d.bin" gen

let path ~dir ~gen = Filename.concat dir (filename ~gen)

let parse_filename name =
  match String.length name with
  | l when l > 9 && String.sub name 0 5 = "snap-" && String.sub name (l - 4) 4 = ".bin" ->
      int_of_string_opt (String.sub name 5 (l - 9))
  | _ -> None

let generations ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map parse_filename
  |> List.sort (fun a b -> Int.compare b a)

let install ~dir ~gen e =
  let final = path ~dir ~gen in
  let tmp = final ^ ".tmp" in
  let fd = Io.openfile ~name:tmp tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     Io.write_all ~name:"snap" fd (Bytes.of_string (encode e));
     Io.fsync ~name:"snap" fd
   with
  | () -> Io.close_noerr fd
  | exception exn ->
      Io.close_noerr fd;
      raise exn);
  Io.rename ~src:tmp ~dst:final;
  Io.fsync_dir dir

let load ~dir ~gen =
  match Io.read_file ~name:"snap" (path ~dir ~gen) with
  | None -> Error (Printf.sprintf "snapshot generation %d does not exist" gen)
  | Some s -> decode s

let remove ~dir ~gen = try Sys.remove (path ~dir ~gen) with Sys_error _ -> ()
