(** Binary primitives shared by the snapshot and WAL codecs.

    Deterministic by construction: the encoding of a value is a pure
    function of the value, so snapshots of equal engine states are
    byte-identical (the crash-matrix tests rely on it). *)

val crc32 : string -> int
(** IEEE CRC-32 (the zlib polynomial) of the whole string, as a
    non-negative int. *)

val crc32_sub : string -> pos:int -> len:int -> int

module Writer : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit

  val varint : t -> int -> unit
  (** Unsigned LEB128.  @raise Invalid_argument on negatives: every
      integer the durable layer persists is a count or an index. *)

  val opt_varint : t -> int option -> unit
  (** [None] as [0], [Some v] as [v + 1]. *)

  val u32 : t -> int -> unit
  (** Fixed-width little-endian 32-bit (lengths and CRCs, so a torn tail
      is detected by size arithmetic alone). *)

  val string_raw : t -> string -> unit
  (** Raw bytes, no length prefix (frame payloads whose length travels
      in a fixed-width field). *)

  val string_ : t -> string -> unit
  val contents : t -> string
end

module Reader : sig
  exception Short of string
  (** Truncated or malformed input.  Callers translate: a WAL tail cut
      here is an expected torn write; a snapshot cut here is
      corruption. *)

  type t

  val of_string : ?pos:int -> ?len:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val byte : t -> int
  val varint : t -> int
  val opt_varint : t -> int option
  val u32 : t -> int

  val take : t -> int -> string
  (** Exactly [len] raw bytes (frame payloads, whose length travels in a
      fixed-width field outside the payload). *)

  val string_ : t -> string
end
