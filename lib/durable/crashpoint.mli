(** Deterministic fault injection for the durable I/O path.

    The write path ({!Io}, {!Wal}, {!Snapshot}) announces every
    potentially-torn instant — each buffer write, fsync, rename and
    directory fsync — as a numbered {e crash site}.  A test arms the
    hook at site [N]; the [N]th hit raises {!Crash}, which unwinds
    without flushing anything, leaving the files exactly as a SIGKILL at
    that instant would.  Driving [N] over [1..]{!hits} proves the
    recovery invariant at {e every} site.

    Disarmed (the default, and the only production state) a site hit is
    two loads and an increment.  The crash schedule is a pure function
    of [at], so a matrix cell is replayable; tests derive [at] values
    from {!Rdt_dist.Rng} streams where they sample instead of
    enumerating. *)

exception Crash of string
(** The injected abort; the payload is the site label. *)

val reset : unit -> unit
(** Disarm and zero the site counter. *)

val arm : at:int -> unit
(** Zero the counter and crash at the [at]-th site hit (1-based).
    @raise Invalid_argument if [at < 1]. *)

val disarm : unit -> unit
(** Stop crashing but keep counting (used right after a caught crash so
    recovery itself runs to completion). *)

val hits : unit -> int
(** Sites hit since the last {!reset}/{!arm} — a disarmed dry run over a
    workload yields the matrix bound. *)

val armed : unit -> bool

val hit : string -> unit
(** Announce an atomic site (fsync, rename).  May raise {!Crash}. *)

val cap : string -> int -> int
(** Announce a write site of [len] bytes.  Returns how many bytes to
    actually write: [len] normally, [len / 2] when this hit is the armed
    one — the caller writes the torn prefix and then calls {!crash},
    so recovery is exercised against CRC-invalid tails, not only cleanly
    missing ones. *)

val crash : string -> 'a
(** Raise {!Crash} (after a partial {!cap} write). *)
