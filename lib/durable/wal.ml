(* Append-only write-ahead log of observed trace events, one segment
   per snapshot generation.

   [wal-<gen>.log] holds the events observed while generation [gen] was
   the newest installed snapshot (gen 0: since the fresh engine).  Each
   segment starts with a header record naming the generation, the number
   of events already covered by that snapshot and the engine geometry,
   so a segment is self-describing and replay never guesses.

   Every record — header and event alike — is framed

     u32 LE   payload length
     payload  (header: varint-packed; events: Trace JSONL line)
     u32 LE   CRC-32 of the payload

   A crash can tear the last frame; the reader stops at the longest
   valid prefix and reports the tear, and the writer truncates it away
   when the segment is reopened for append.  A damaged *header* is
   different: nothing after it can be trusted, so the whole segment is
   an error and recovery falls back a generation. *)

module Trace = Rdt_obs.Trace

let version = 1

(* Frames beyond this are treated as torn garbage rather than attempted:
   a single trace event is tiny, so a huge length field can only be a
   corrupt frame header. *)
let max_frame = 1 lsl 20

type header = { gen : int; base_events : int; n : int; track_open : bool }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w (String.length payload);
  Codec.Writer.string_raw w payload;
  Codec.Writer.u32 w (Codec.crc32 payload);
  Codec.Writer.contents w

let encode_header h =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w version;
  Codec.Writer.varint w h.gen;
  Codec.Writer.varint w h.base_events;
  Codec.Writer.varint w h.n;
  Codec.Writer.byte w (if h.track_open then 1 else 0);
  Codec.Writer.contents w

let decode_header s =
  match
    let r = Codec.Reader.of_string s in
    let v = Codec.Reader.varint r in
    if v <> version then Error (Printf.sprintf "unsupported WAL version %d" v)
    else begin
      let gen = Codec.Reader.varint r in
      let base_events = Codec.Reader.varint r in
      let n = Codec.Reader.varint r in
      let track_open = Codec.Reader.byte r <> 0 in
      if Codec.Reader.remaining r <> 0 then Error "trailing bytes in WAL header"
      else Ok { gen; base_events; n; track_open }
    end
  with
  | v -> v
  | exception Codec.Reader.Short what -> Error ("WAL header malformed: " ^ what)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let filename ~gen = Printf.sprintf "wal-%d.log" gen

let path ~dir ~gen = Filename.concat dir (filename ~gen)

let parse_filename name =
  match String.length name with
  | l when l > 8 && String.sub name 0 4 = "wal-" && String.sub name (l - 4) 4 = ".log" ->
      int_of_string_opt (String.sub name 4 (l - 8))
  | _ -> None

let segments ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map parse_filename
  |> List.sort Int.compare

let remove ~dir ~gen = try Sys.remove (path ~dir ~gen) with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type read_result = {
  header : header;
  events : Trace.event list;
  valid_len : int;  (** byte length of the longest valid prefix *)
  torn : string option;  (** why reading stopped before end-of-file, if it did *)
}

(* Pull one frame; [Ok None] is a clean end-of-file, [Error] a tear. *)
let read_frame r =
  if Codec.Reader.remaining r = 0 then Ok None
  else
    match
      let len = Codec.Reader.u32 r in
      if len > max_frame then Error (Printf.sprintf "frame length %d exceeds limit" len)
      else begin
        let body = Codec.Reader.take r len in
        let crc = Codec.Reader.u32 r in
        if crc <> Codec.crc32 body then Error "frame CRC mismatch"
        else Ok (Some body)
      end
    with
    | v -> v
    | exception Codec.Reader.Short _ -> Error "frame torn at end of segment"

let read ~dir ~gen =
  match Io.read_file ~name:"wal" (path ~dir ~gen) with
  | None -> Error (Printf.sprintf "WAL segment %d does not exist" gen)
  | Some s -> (
      let r = Codec.Reader.of_string s in
      match read_frame r with
      | Ok None -> Error (Printf.sprintf "WAL segment %d is empty" gen)
      | Error why -> Error (Printf.sprintf "WAL segment %d header unreadable: %s" gen why)
      | Ok (Some hdr_payload) -> (
          match decode_header hdr_payload with
          | Error why -> Error (Printf.sprintf "WAL segment %d: %s" gen why)
          | Ok header ->
              let events = ref [] in
              let valid_len = ref (Codec.Reader.pos r) in
              let torn = ref None in
              let rec loop () =
                match read_frame r with
                | Ok None -> ()
                | Error why -> torn := Some why
                | Ok (Some payload) -> (
                    match Trace.decode payload with
                    | Error why ->
                        (* CRC passed but the payload is not an event:
                           not a torn write, still untrustworthy — stop
                           here exactly as for a tear. *)
                        torn := Some ("undecodable event record: " ^ why)
                    | Ok ev ->
                        events := ev :: !events;
                        valid_len := Codec.Reader.pos r;
                        loop ())
              in
              loop ();
              Ok { header; events = List.rev !events; valid_len = !valid_len; torn = !torn }))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  fd : Unix.file_descr;
  wgen : int;
  pending : Buffer.t;  (** framed records not yet written to the fd *)
  mutable unsynced : int;  (** records written or pending since the last fsync *)
  mutable closed : bool;
}

let gen w = w.wgen

let create ~dir ~gen:g ~header:h =
  let p = path ~dir ~gen:g in
  let fd = Io.openfile ~name:p p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let w = { fd; wgen = g; pending = Buffer.create 4096; unsynced = 0; closed = false } in
  (try
     Io.write_all ~name:"wal" fd (Bytes.of_string (frame (encode_header { h with gen = g })));
     Io.fsync ~name:"wal" fd;
     Io.fsync_dir dir
   with exn ->
     Io.close_noerr fd;
     raise exn);
  w

(* Reopen an existing segment for append, discarding a torn tail found
   by {!read}. *)
let reopen ~dir ~gen:g ~valid_len =
  let p = path ~dir ~gen:g in
  let fd = Io.openfile ~name:p p [ Unix.O_WRONLY ] 0o644 in
  (try
     Io.ftruncate ~name:p fd valid_len;
     ignore (Unix.lseek fd valid_len Unix.SEEK_SET)
   with exn ->
     Io.close_noerr fd;
     raise exn);
  { fd; wgen = g; pending = Buffer.create 4096; unsynced = 0; closed = false }

let append w ev =
  let record = frame (Trace.encode ev) in
  Buffer.add_string w.pending record;
  w.unsynced <- w.unsynced + 1;
  String.length record

let flush w =
  if Buffer.length w.pending > 0 then begin
    let bytes = Buffer.to_bytes w.pending in
    Buffer.clear w.pending;
    Io.write_all ~name:"wal" w.fd bytes
  end

let sync w =
  flush w;
  if w.unsynced > 0 then begin
    Io.fsync ~name:"wal" w.fd;
    w.unsynced <- 0
  end

let close w =
  if not w.closed then begin
    w.closed <- true;
    (try sync w
     with exn ->
       Io.close_noerr w.fd;
       raise exn);
    Io.close_noerr w.fd
  end

let abort w =
  if not w.closed then begin
    w.closed <- true;
    Io.close_noerr w.fd
  end
