(** The durable-session driver: an {!Rdt_check.Online} engine whose
    state survives being killed at any instant.

    A session directory holds numbered WAL segments ([wal-<g>.log],
    never deleted — a full replay from generation 0 is always the last
    fallback) and the newest few snapshot generations ([snap-<g>.bin]).
    {!observe} runs the engine first, then appends the event to the
    active segment, fsyncing every [wal_fsync_every] events and
    installing a fresh snapshot generation every [snapshot_every];
    a crash loses at most the un-synced tail, which the caller re-feeds
    (resume from {!Rdt_check.Online.events_seen} of the recovered
    {!engine}).

    Recovery degrades gracefully: newest snapshot + segment replay, then
    each older snapshot, then full-WAL replay, and only when every chain
    fails raises [Io.Error (Corrupt _)].  The recovered engine is
    bit-identical in its answers to an uninterrupted run over the same
    durable prefix — the crash-matrix tests in [test/test_durable.ml]
    hold this for every crash site. *)

type config = {
  snapshot_every : int;  (** events between snapshot installs *)
  wal_fsync_every : int;  (** events between WAL fsyncs *)
  keep_snapshots : int;  (** snapshot generations retained (>= 2) *)
}

val default_config : config
(** [{ snapshot_every = 1000; wal_fsync_every = 32; keep_snapshots = 2 }] *)

type recovery = {
  restored_gen : int option;  (** snapshot used; [None] = full-WAL replay *)
  replayed_events : int;
  skipped : (int * string) list;
      (** snapshot generations that failed validation, newest first;
          their files are deleted after a successful recovery *)
  torn : (int * string) list;  (** segments whose torn tail was cut *)
}

val pp_recovery : Format.formatter -> recovery -> unit

type t

val open_ :
  ?config:config ->
  ?meter:Rdt_obs.Meter.t ->
  dir:string ->
  n:int ->
  track_open:bool ->
  unit ->
  t * recovery option
(** Open (creating [dir] if needed) or recover a session.  [None]: the
    directory held no durable state and a fresh engine was started.
    [Some info]: state was recovered; resume feeding events from index
    [Online.events_seen (engine t)].

    Meters [recovery.replayed_events]; {!observe} meters [wal.bytes],
    [wal.fsync] and the [durable.snapshot] span.

    @raise Io.Error [(Corrupt _)] when no recovery chain succeeds, or
    the durable state disagrees with [n]/[track_open]; other [Io.Error]s
    on I/O failure.
    @raise Invalid_argument on a nonsensical [config]. *)

val observe : t -> Rdt_obs.Trace.event -> unit
(** Engine first, then the WAL — an event the engine rejects
    ([Online.Inconsistent]) is never persisted. *)

val engine : t -> Rdt_check.Online.t
(** Query freely ([summary], [violations], ...); do not feed it
    directly — events bypassing {!observe} would not be durable. *)

val dir : t -> string

val generation : t -> int
(** Generation of the active WAL segment (= newest installed snapshot,
    0 before the first install). *)

val sync : t -> unit
(** Force the buffered WAL tail to stable storage now. *)

val close : t -> unit
(** Sync and release (idempotent). *)

val abort : t -> unit
(** Release {e without} syncing — crash-simulation teardown: whatever a
    simulated crash left un-flushed must stay lost. *)

val checker_session : t -> Rdt_check.Session.t
(** Adapt a durable session to the unified checker-session interface:
    [observe] is {!observe} (engine first, WAL second — an inconsistent
    event is never persisted), [sync] is {!sync}, [close] is {!close}.
    The adapter shares this session's state; drive a given session
    through one surface or the other, not both. *)
