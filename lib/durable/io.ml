(* Crash-instrumented, retrying I/O primitives for the durable layer.

   Everything here goes through raw [Unix] file descriptors on purpose:
   stdlib channels keep userland buffers that a [with_open_*] finalizer
   flushes even when an exception unwinds — which would make a simulated
   crash *more* durable than a real one and hide torn-write bugs.  Here
   a byte reaches the kernel only through [write_all], and durability is
   claimed only after [fsync] returns. *)

type error =
  | No_space of string  (** ENOSPC while writing the named file *)
  | Io_error of string  (** transient error that survived the bounded retry *)
  | Corrupt of string  (** durable state damaged beyond every fallback *)

exception Error of error

let error_message = function
  | No_space what -> Printf.sprintf "no space left on device while writing %s" what
  | Io_error what -> Printf.sprintf "I/O error: %s" what
  | Corrupt what -> Printf.sprintf "durable state corrupt beyond recovery: %s" what

let fail e = raise (Error e)

(* Transient-failure policy: EINTR and EAGAIN retry immediately, then
   with a short linear backoff; the attempt budget is generous but
   finite, so a persistently failing device surfaces as a typed error
   instead of a hang.  ENOSPC is never transient. *)
let max_attempts = 25

let backoff attempt =
  (* first retries are free (EINTR after a signal is the common case);
     later ones wait attempt-proportionally, capped well under a second.
     The sleep reads real time and is sanctioned in .rdtlint: it can
     only delay durable I/O, never influence simulation output. *)
  if attempt > 2 then Unix.sleepf (Float.min 0.1 (0.002 *. float_of_int attempt))

let rec retrying ~name ~attempt f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> fail (No_space name)
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
      if attempt >= max_attempts then
        fail (Io_error (Printf.sprintf "%s: still interrupted after %d attempts" name attempt))
      else begin
        backoff attempt;
        retrying ~name ~attempt:(attempt + 1) f
      end
  | exception Unix.Unix_error (e, fn, _) ->
      fail (Io_error (Printf.sprintf "%s: %s (%s)" name (Unix.error_message e) fn))

let with_retries ~name f = retrying ~name ~attempt:1 f

(* [write_all] is the one place bytes reach a descriptor.  Short writes
   loop; the crashpoint cap may truncate the quota to simulate a torn
   write, in which case the torn prefix is written and the crash raised
   only after it — the on-disk image really is torn. *)
let write_all ~name fd bytes =
  let len = Bytes.length bytes in
  let quota = Crashpoint.cap (name ^ ".write") len in
  let rec go pos =
    if pos < quota then begin
      let n =
        with_retries ~name (fun () -> Unix.write fd bytes pos (quota - pos))
      in
      if n = 0 then fail (Io_error (name ^ ": write returned 0"));
      go (pos + n)
    end
  in
  go 0;
  if quota < len then Crashpoint.crash (name ^ ".write.torn")

let fsync ~name fd =
  Crashpoint.hit (name ^ ".fsync");
  with_retries ~name (fun () -> Unix.fsync fd)

(* Directory fsync makes renames/creations themselves durable; some
   filesystems refuse fsync on a directory fd — degrade silently, the
   data fsync already happened. *)
let fsync_dir dir =
  Crashpoint.hit "dir.fsync";
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let rename ~src ~dst =
  Crashpoint.hit "rename";
  with_retries ~name:("rename " ^ dst) (fun () -> Unix.rename src dst)

let openfile ~name path flags perm =
  with_retries ~name (fun () -> Unix.openfile path flags perm)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let read_file ~name path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | exception Unix.Unix_error (e, fn, _) ->
      fail (Io_error (Printf.sprintf "%s: %s (%s)" name (Unix.error_message e) fn))
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          let buf = Buffer.create 65536 in
          let chunk = Bytes.create 65536 in
          let rec go () =
            let n = with_retries ~name (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              go ()
            end
          in
          go ();
          Some (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Non-durable raw-descriptor helpers.  These exist so the rest of the
   repo never touches [Unix] file primitives directly (the S1 lint rule
   confines them to this unit): the durable policy lives above, these
   carry only the EINTR discipline. *)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let ftruncate ~name fd len = with_retries ~name (fun () -> Unix.ftruncate fd len)

(* Socket-side reads/writes for the serve layer: EINTR retries here so
   callers never see it; EAGAIN/EWOULDBLOCK escape untouched — on a
   nonblocking descriptor they are the event loop's control flow, not
   failures — and so does every other [Unix_error]. *)
let rec recv fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv fd buf off len

let rec send_substring fd s off len =
  match Unix.write_substring fd s off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> send_substring fd s off len
