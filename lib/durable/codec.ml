(* Binary primitives shared by the snapshot and WAL codecs: CRC-32
   (the IEEE 802.3 polynomial, reflected, the one zlib uses) and a
   little varint/string layer.  Deterministic by construction — the
   encoding of a value is a pure function of the value, so snapshots of
   equal engine states are byte-identical. *)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let byte b v = Buffer.add_char b (Char.chr (v land 0xFF))

  (* unsigned LEB128; every integer we persist is >= 0 *)
  let varint b v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec go v =
      if v < 0x80 then byte b v
      else begin
        byte b (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  let opt_varint b = function None -> varint b 0 | Some v -> varint b (v + 1)

  let u32 b v =
    byte b v;
    byte b (v lsr 8);
    byte b (v lsr 16);
    byte b (v lsr 24)

  let string_raw = Buffer.add_string

  let string_ b s =
    varint b (String.length s);
    string_raw b s

  let contents = Buffer.contents
end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  exception Short of string
  (* truncated / malformed input; the codecs translate this into their
     own error reporting (a WAL tail cut here is expected, a snapshot
     cut here is corruption) *)

  type t = { buf : string; mutable pos : int; limit : int }

  let of_string ?(pos = 0) ?len buf =
    let limit = match len with None -> String.length buf | Some l -> pos + l in
    if pos < 0 || limit > String.length buf then invalid_arg "Codec.Reader.of_string";
    { buf; pos; limit }

  let pos r = r.pos

  let remaining r = r.limit - r.pos

  let byte r =
    if r.pos >= r.limit then raise (Short "byte");
    let v = Char.code r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let varint r =
    let rec go shift acc =
      if shift > 62 then raise (Short "varint overflow");
      let b = byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let opt_varint r = match varint r with 0 -> None | v -> Some (v - 1)

  let u32 r =
    let a = byte r in
    let b = byte r in
    let c = byte r in
    let d = byte r in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let take r len =
    if len < 0 || len > remaining r then raise (Short "take");
    let s = String.sub r.buf r.pos len in
    r.pos <- r.pos + len;
    s

  let string_ r =
    let len = varint r in
    if len > remaining r then raise (Short "string");
    take r len
end
