(** Versioned, CRC-checked binary snapshots of {!Rdt_check.Online}
    engine exports, kept in numbered generations.

    File image: magic ["RDTSNAP1"], u32 payload length, varint-packed
    payload (format version + {!Rdt_check.Online.Export.t}), u32 CRC-32
    of the payload.  {!install} is write-tmp -> fsync -> rename ->
    fsync(dir); the previous generation stays on disk as the fallback
    {!load} callers degrade to on checksum failure. *)

val version : int
(** Current wire-format version (encoded in the payload). *)

val encode : Rdt_check.Online.Export.t -> string
(** Full file image.  Deterministic: equal exports encode to identical
    bytes. *)

val decode : string -> (Rdt_check.Online.Export.t, string) result
(** Validates magic, length and CRC before touching the payload; any
    damage comes back as [Error], never an exception or a wrong
    export. *)

val filename : gen:int -> string
(** [snap-<gen>.bin]. *)

val path : dir:string -> gen:int -> string

val generations : dir:string -> int list
(** Snapshot generations present in [dir], newest first. *)

val install : dir:string -> gen:int -> Rdt_check.Online.Export.t -> unit
(** Atomically install generation [gen].  @raise Io.Error on ENOSPC or
    persistent I/O failure; may raise {!Crashpoint.Crash} under fault
    injection. *)

val load : dir:string -> gen:int -> (Rdt_check.Online.Export.t, string) result
(** [Error] covers both a missing generation and a corrupt one. *)

val remove : dir:string -> gen:int -> unit
(** Best-effort delete (retention, and disposal of known-bad files). *)
