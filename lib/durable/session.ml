(* The durable-session driver: an [Rdt_check.Online] engine whose state
   survives being killed at any instant.

   Layout of a session directory:

     wal-<g>.log    events observed while snapshot generation [g] was
                    the newest installed one (g = 0: since the fresh
                    engine).  Segments are never deleted, so a
                    full-WAL replay from generation 0 always remains
                    the fallback of last resort.
     snap-<g>.bin   engine export after [base_events g] events; only
                    the newest [keep_snapshots] generations are kept.

   Write order at a snapshot install (every crash window in between is
   covered by the recovery scan):

     1. sync the active segment          (events durable before the
                                          snapshot claims to cover them)
     2. Snapshot.install (tmp -> fsync -> rename -> dir fsync)
     3. create wal-<g+1> (header, fsync)
     4. switch writers, close the old segment
     5. prune snapshot generations older than the kept window

   Recovery tries, in order: newest snapshot + replay of segments from
   its generation up; each older snapshot likewise; a full replay from
   wal-0; and only when every chain fails raises the typed
   [Io.Error (Corrupt _)].  A chain failure is any of: snapshot CRC /
   decode failure, [Online.Inconsistent] during restore or replay, a
   missing or header-damaged segment in the middle of the chain, or an
   events-seen discontinuity between segments.  Known-bad snapshot
   files are deleted after a successful recovery. *)

module Online = Rdt_check.Online
module Trace = Rdt_obs.Trace
module Meter = Rdt_obs.Meter

type config = { snapshot_every : int; wal_fsync_every : int; keep_snapshots : int }

let default_config = { snapshot_every = 1000; wal_fsync_every = 32; keep_snapshots = 2 }

type recovery = {
  restored_gen : int option;  (** snapshot used; [None] = full-WAL replay *)
  replayed_events : int;
  skipped : (int * string) list;  (** snapshot generations that failed, newest first *)
  torn : (int * string) list;  (** segments whose tail was cut *)
}

let pp_recovery ppf r =
  (match r.restored_gen with
  | Some g -> Format.fprintf ppf "restored snapshot generation %d" g
  | None -> Format.fprintf ppf "no usable snapshot; full WAL replay");
  Format.fprintf ppf ", replayed %d event%s" r.replayed_events
    (if r.replayed_events = 1 then "" else "s");
  List.iter
    (fun (g, why) -> Format.fprintf ppf "@\nskipped snapshot generation %d: %s" g why)
    r.skipped;
  List.iter
    (fun (g, why) -> Format.fprintf ppf "@\ntruncated torn tail of segment %d: %s" g why)
    r.torn

type t = {
  dir : string;
  config : config;
  meter : Meter.t;
  track_open : bool;
  mutable engine : Online.t;
  mutable wal : Wal.writer;
  mutable base_events : int;  (** events covered by the newest snapshot *)
  mutable unsynced : int;
  mutable closed : bool;
}

let engine t = t.engine

let dir t = t.dir

let generation t = Wal.gen t.wal

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

(* A recovery chain that cannot proceed; recovery falls back to the next
   older snapshot (and eventually to full replay). *)
exception Chain_failed of string

let clean_tmp dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)

(* The newest segment's header can be torn by a crash during segment
   creation; at that point none of its events were durable (appends only
   start after the header fsync returns) and everything it would cover
   is still in the previous segment, so deleting it is safe.  A damaged
   header anywhere *else* is real corruption and must fail the chains
   that cross it. *)
let drop_unreadable_last_segment ~dir segs =
  match List.rev segs with
  | [] -> []
  | last :: _ -> (
      match Wal.read ~dir ~gen:last with
      | Ok _ -> segs
      | Error _ ->
          Wal.remove ~dir ~gen:last;
          List.filter (fun g -> g <> last) segs)

(* Replay segments [start_gen, start_gen+1, ...] (all that exist) into
   [engine].  Returns (events replayed, torn notes, last segment's
   generation and valid length — [None] when no segment >= start_gen
   exists). *)
let replay_chain ~dir ~segs ~start_gen engine =
  let chain = List.filter (fun g -> g >= start_gen) segs in
  let replayed = ref 0 in
  let torn = ref [] in
  let last = ref None in
  List.iteri
    (fun i g ->
      if g <> start_gen + i then
        raise (Chain_failed (Printf.sprintf "WAL segment %d missing" (start_gen + i)));
      match Wal.read ~dir ~gen:g with
      | Error why -> raise (Chain_failed why)
      | Ok rr ->
          if rr.Wal.header.Wal.base_events <> Online.events_seen engine then
            raise
              (Chain_failed
                 (Printf.sprintf "segment %d starts at event %d but engine holds %d" g
                    rr.Wal.header.Wal.base_events (Online.events_seen engine)));
          (try List.iter (Online.observe engine) rr.Wal.events
           with Online.Inconsistent why ->
             raise (Chain_failed (Printf.sprintf "replay of segment %d: %s" g why)));
          replayed := !replayed + List.length rr.Wal.events;
          (match rr.Wal.torn with
          | Some why ->
              if i < List.length chain - 1 then
                (* a tear in the *middle* of the chain means later
                   segments' events sit on top of lost ones *)
                raise (Chain_failed (Printf.sprintf "segment %d torn mid-chain: %s" g why))
              else torn := (g, why) :: !torn
          | None -> ());
          last := Some (g, rr.Wal.valid_len))
    chain;
  (!replayed, List.rev !torn, !last)

(* One candidate chain: restore [snapshot] (None = fresh engine needing
   wal-0's header for its geometry) and replay forward. *)
let try_chain ~dir ~segs snapshot =
  match snapshot with
  | Some gen -> (
      match Snapshot.load ~dir ~gen with
      | Error why -> Error why
      | Ok export -> (
          match Online.restore export with
          | exception Online.Inconsistent why -> Error ("restore: " ^ why)
          | engine -> (
              try
                let replayed, torn, last = replay_chain ~dir ~segs ~start_gen:gen engine in
                Ok (engine, export.Online.Export.track_open, replayed, torn, last, gen)
              with Chain_failed why -> Error why)))
  | None -> (
      (* full replay: wal-0 must exist and its header provides n *)
      if not (List.mem 0 segs) then Error "no WAL segment 0 for a full replay"
      else
        match Wal.read ~dir ~gen:0 with
        | Error why -> Error why
        | Ok rr -> (
            let h = rr.Wal.header in
            let engine = Online.create ~track_open:h.Wal.track_open ~n:h.Wal.n () in
            try
              let replayed, torn, last = replay_chain ~dir ~segs ~start_gen:0 engine in
              Ok (engine, h.Wal.track_open, replayed, torn, last, 0)
            with Chain_failed why -> Error why))

let recover ~dir ~segs ~snaps =
  let rec go skipped = function
    | [] -> (
        match try_chain ~dir ~segs None with
        | Ok (engine, track_open, replayed, torn, last, base_gen) ->
            ( engine,
              track_open,
              last,
              base_gen,
              { restored_gen = None; replayed_events = replayed; skipped = List.rev skipped; torn }
            )
        | Error why ->
            Io.fail
              (Io.Corrupt
                 (String.concat "; "
                    (List.rev_map (fun (g, w) -> Printf.sprintf "snapshot %d: %s" g w) skipped
                    @ [ "full replay: " ^ why ]))))
    | gen :: older -> (
        match try_chain ~dir ~segs (Some gen) with
        | Ok (engine, track_open, replayed, torn, last, base_gen) ->
            ( engine,
              track_open,
              last,
              base_gen,
              {
                restored_gen = Some gen;
                replayed_events = replayed;
                skipped = List.rev skipped;
                torn;
              } )
        | Error why -> go ((gen, why) :: skipped) older)
  in
  let engine, track_open, last, base_gen, info = go [] snaps in
  (* dispose of snapshots proven bad — they must not shadow good ones
     on the next recovery *)
  List.iter (fun (g, _) -> Snapshot.remove ~dir ~gen:g) info.skipped;
  (engine, track_open, last, base_gen, info)

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let make ~dir ~config ~meter ~track_open ~engine ~wal ~base_events =
  { dir; config; meter; track_open; engine; wal; base_events; unsynced = 0; closed = false }

let open_ ?(config = default_config) ?(meter = Meter.default) ~dir ~n ~track_open () =
  if config.snapshot_every < 1 then invalid_arg "Session.open_: snapshot_every < 1";
  if config.wal_fsync_every < 1 then invalid_arg "Session.open_: wal_fsync_every < 1";
  if config.keep_snapshots < 2 then invalid_arg "Session.open_: keep_snapshots < 2";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  clean_tmp dir;
  (* a directory whose only content was a header-torn newest segment
     (crash during the very first writes) counts as empty: nothing in it
     was ever durable *)
  let segs = drop_unreadable_last_segment ~dir (Wal.segments ~dir) in
  let snaps = Snapshot.generations ~dir in
  if segs = [] && snaps = [] then begin
    let engine = Online.create ~track_open ~n () in
    let wal =
      Wal.create ~dir ~gen:0 ~header:{ Wal.gen = 0; base_events = 0; n; track_open }
    in
    (make ~dir ~config ~meter ~track_open ~engine ~wal ~base_events:0, None)
  end
  else begin
    let engine, rec_track_open, last, base_gen, info = recover ~dir ~segs ~snaps in
    if Online.n engine <> n then
      Io.fail
        (Io.Corrupt
           (Printf.sprintf "durable state is for %d processes, this run has %d"
              (Online.n engine) n));
    if rec_track_open <> track_open then
      Io.fail (Io.Corrupt "durable state disagrees on open-interval tracking");
    Meter.add meter "recovery.replayed_events" info.replayed_events;
    (* reopen (or recreate) the segment appends continue into *)
    let wal, base_events =
      match last with
      | Some (g, valid_len) ->
          (* base of the active segment = events its snapshot covers *)
          let base =
            match Wal.read ~dir ~gen:g with
            | Ok rr -> rr.Wal.header.Wal.base_events
            | Error _ -> Online.events_seen engine
          in
          (Wal.reopen ~dir ~gen:g ~valid_len, base)
      | None ->
          (* snapshot installed but its segment never created *)
          ( Wal.create ~dir ~gen:base_gen
              ~header:
                {
                  Wal.gen = base_gen;
                  base_events = Online.events_seen engine;
                  n;
                  track_open;
                },
            Online.events_seen engine )
    in
    (make ~dir ~config ~meter ~track_open ~engine ~wal ~base_events, Some info)
  end

(* ------------------------------------------------------------------ *)
(* Steady state                                                        *)
(* ------------------------------------------------------------------ *)

let sync t =
  Wal.flush t.wal;
  if t.unsynced > 0 then begin
    Wal.sync t.wal;
    Meter.incr t.meter "wal.fsync";
    t.unsynced <- 0
  end

let prune_snapshots t =
  match Snapshot.generations ~dir:t.dir with
  | [] -> ()
  | gens ->
      List.iteri (fun i g -> if i >= t.config.keep_snapshots then Snapshot.remove ~dir:t.dir ~gen:g) gens

let install_snapshot t =
  Meter.time t.meter "durable.snapshot" (fun () ->
      sync t;
      let gen = Wal.gen t.wal + 1 in
      let seen = Online.events_seen t.engine in
      Snapshot.install ~dir:t.dir ~gen (Online.export t.engine);
      let wal =
        Wal.create ~dir:t.dir ~gen
          ~header:
            { Wal.gen; base_events = seen; n = Online.n t.engine; track_open = t.track_open }
      in
      let old = t.wal in
      t.wal <- wal;
      t.base_events <- seen;
      Wal.close old;
      prune_snapshots t)

let observe t ev =
  if t.closed then invalid_arg "Session.observe: closed";
  Online.observe t.engine ev;
  let bytes = Wal.append t.wal ev in
  Meter.add t.meter "wal.bytes" bytes;
  t.unsynced <- t.unsynced + 1;
  if t.unsynced >= t.config.wal_fsync_every then sync t;
  if Online.events_seen t.engine - t.base_events >= t.config.snapshot_every then
    install_snapshot t

let close t =
  if not t.closed then begin
    t.closed <- true;
    sync t;
    Wal.close t.wal
  end

let abort t =
  if not t.closed then begin
    t.closed <- true;
    Wal.abort t.wal
  end

let checker_session t =
  Rdt_check.Session.of_backend
    {
      Rdt_check.Session.engine = (fun () -> engine t);
      observe = (fun ev -> observe t ev);
      sync = (fun () -> sync t);
      close = (fun () -> close t);
    }
