(* Deterministic crash injection for the durable I/O layer.

   Every potentially-torn point of the write path (buffer write, fsync,
   rename, directory fsync) calls [hit]/[cap] with a site label.  Sites
   are counted; when armed at N, the Nth hit raises [Crash], simulating
   the process dying at exactly that instant — the exception unwinds
   without flushing anything, so the on-disk state is what a real
   SIGKILL would leave (modulo the kernel page cache, which the recovery
   contract does not rely on anyway: durability is claimed only after
   fsync returns).

   The state is global and test-only by convention: production code
   never arms it, and a disarmed hit is two loads and an increment. *)

exception Crash of string

type state = { mutable hits : int; mutable arm_at : int }
(* arm_at = 0: disarmed (counting only) *)

let st = { hits = 0; arm_at = 0 }

let reset () =
  st.hits <- 0;
  st.arm_at <- 0

let arm ~at =
  if at < 1 then invalid_arg "Crashpoint.arm: at must be >= 1";
  st.hits <- 0;
  st.arm_at <- at

let disarm () = st.arm_at <- 0

let hits () = st.hits

let armed () = st.arm_at > 0

let crash site = raise (Crash site)

let hit site =
  st.hits <- st.hits + 1;
  if st.arm_at > 0 && st.hits = st.arm_at then crash site

(* Write sites can die *mid-write*: [cap site len] returns how many of
   [len] bytes the caller may write; when the armed site is reached the
   caller writes only the first half (a torn record on disk) and must
   then call [crash] — recovery has to cope with a CRC-invalid tail, not
   just a cleanly missing one. *)
let cap _site len =
  st.hits <- st.hits + 1;
  if st.arm_at > 0 && st.hits = st.arm_at then len / 2 else len
