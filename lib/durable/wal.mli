(** Append-only write-ahead log of observed trace events, one segment
    per snapshot generation.

    [wal-<gen>.log] holds the events observed while snapshot generation
    [gen] was the newest installed one (gen 0: since the fresh engine).
    Records are length-prefixed and CRC-checked; a crash can tear the
    final frame, which {!read} detects and stops before, and {!reopen}
    truncates away.  A damaged {e header} record invalidates the whole
    segment ([Error] from {!read}), forcing recovery down a
    generation. *)

type header = {
  gen : int;
  base_events : int;  (** events already covered by snapshot [gen] *)
  n : int;
  track_open : bool;
}

val filename : gen:int -> string
(** [wal-<gen>.log]. *)

val path : dir:string -> gen:int -> string

val segments : dir:string -> int list
(** Segment generations present in [dir], oldest first (replay order). *)

val remove : dir:string -> gen:int -> unit

(** {1 Reading} *)

type read_result = {
  header : header;
  events : Rdt_obs.Trace.event list;
  valid_len : int;  (** byte length of the longest valid prefix *)
  torn : string option;
      (** why reading stopped before end-of-file, if it did (expected
          after a crash; the tail past [valid_len] is garbage) *)
}

val read : dir:string -> gen:int -> (read_result, string) result

(** {1 Writing} *)

type writer

val create : dir:string -> gen:int -> header:header -> writer
(** Start segment [gen] (truncating any leftover), write its header
    record and make it durable.  The [gen] field of [header] is
    overridden with [gen].  @raise Io.Error on I/O failure; may raise
    {!Crashpoint.Crash} under fault injection. *)

val reopen : dir:string -> gen:int -> valid_len:int -> writer
(** Reopen an existing segment for append, truncating the torn tail
    found by {!read}. *)

val gen : writer -> int

val append : writer -> Rdt_obs.Trace.event -> int
(** Buffer one event record in memory ({!flush}/{!sync} move it to the
    kernel / to stable storage); returns the record's framed size in
    bytes (for metering). *)

val flush : writer -> unit

val sync : writer -> unit
(** Flush, then fsync if anything was appended since the last sync.
    Durability of appended events may be claimed only after this
    returns. *)

val close : writer -> unit
(** Sync, then close (idempotent). *)

val abort : writer -> unit
(** Close {e without} flushing the pending buffer — the crash-simulation
    teardown: the un-flushed tail must stay lost, exactly as a real kill
    would leave it. *)
