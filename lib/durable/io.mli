(** Crash-instrumented, retrying I/O primitives.

    The durable layer's only route to the filesystem.  Raw [Unix]
    descriptors (no stdlib channel buffering: a finalizer flush would
    make simulated crashes {e more} durable than real ones), transient
    failures (EINTR/EAGAIN, short writes) retried with a bounded linear
    backoff, ENOSPC and persistent failures surfaced as the typed
    {!error}, and every potentially-torn instant announced to
    {!Crashpoint}. *)

type error =
  | No_space of string  (** ENOSPC while writing the named file *)
  | Io_error of string  (** transient error that survived the bounded retry *)
  | Corrupt of string  (** durable state damaged beyond every fallback *)

exception Error of error

val error_message : error -> string

val fail : error -> 'a
(** [raise (Error e)]. *)

val write_all : name:string -> Unix.file_descr -> Bytes.t -> unit
(** Write every byte, looping over short writes.  Crash site
    [name.write] (with torn-prefix semantics: an armed hit writes half
    the bytes for real, then raises). *)

val fsync : name:string -> Unix.file_descr -> unit
(** Crash site [name.fsync]; durability may be claimed only after this
    returns. *)

val fsync_dir : string -> unit
(** Make renames/creations in the directory durable (best-effort where
    the filesystem refuses directory fsync).  Crash site [dir.fsync]. *)

val rename : src:string -> dst:string -> unit
(** Atomic install step.  Crash site [rename]. *)

val openfile : name:string -> string -> Unix.open_flag list -> int -> Unix.file_descr

val close_noerr : Unix.file_descr -> unit

val read_file : name:string -> string -> string option
(** Whole-file read; [None] if the file does not exist. *)

val unlink_quiet : string -> unit
(** [unlink], swallowing every [Unix_error] (ENOENT being the point). *)

val ftruncate : name:string -> Unix.file_descr -> int -> unit
(** Truncate with the bounded retry policy; used to drop a torn WAL tail. *)

val recv : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.read] retrying EINTR only.  EAGAIN/EWOULDBLOCK and every other
    [Unix_error] escape untouched: on the serve layer's nonblocking
    sockets they are event-loop control flow, not failures. *)

val send_substring : Unix.file_descr -> string -> int -> int -> int
(** [Unix.write_substring] with the same EINTR-only retry as {!recv}. *)
