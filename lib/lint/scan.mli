(** Shared typed-AST helpers for the rules. *)

val normalize_path : Path.t -> string
(** Source-level spelling of a resolved path: strips dune's wrapped-library
    mangling ([Rdt_pattern__Pattern] to [Pattern]) and a leading [Stdlib]
    ([Stdlib.Random.int] to [Random.int]). *)

val matches : string -> string -> bool
(** [matches name target]: exact match, or — when [target] is
    multi-component like ["Pool.map"] — a module-prefixed match such as
    ["Rdt_harness.Pool.map"].  Single-component targets never match by
    suffix (["Atomic.incr"] is not a use of ["incr"]). *)

val matches_any : string -> string list -> bool
val find_target : string -> string list -> string option

val type_mentions : targets:string list -> Types.type_expr -> string option
(** Walks the structure of the type (arrows, tuples, constructor
    arguments) looking for a nominal constructor matching one of
    [targets].  Purely structural: it does not expand abbreviations or
    look inside abstract types, which is the documented false-negative
    of the type-based rules. *)

val type_has_arrow : Types.type_expr -> bool
val first_param : Types.type_expr -> Types.type_expr option

val iter_expressions : Typedtree.structure -> (Typedtree.expression -> unit) -> unit
val iter_expressions_in_expr : Typedtree.expression -> (Typedtree.expression -> unit) -> unit

val bound_idents_in : Typedtree.expression -> Ident.t list
(** Every ident bound anywhere inside the expression (parameters, lets,
    cases, for indices) — the closure-local set of the R1 escape
    heuristic. *)
