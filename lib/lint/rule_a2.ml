(* A2 — observability purity.

   Code under lib/obs/ (the prefixes are configurable so the fixture
   suite can exercise the rule elsewhere) observes runs; it must never
   mutate pattern or runtime state.  Rdt_obs cannot even link against
   Rdt_core, so runtime entry points are unreachable by construction;
   what remains reachable — and is flagged here — is mutation of
   pattern-owned values: writes into the arrays the Pattern accessors
   expose ("do not mutate"), writes to record fields of pattern types,
   and the mutating Bitset API (e.g. on a set obtained from
   Rgraph.reachable_set).  Building a *fresh* pattern through
   Pattern.Builder (as Replay.rebuild does) is the sanctioned
   construction API and is not flagged. *)

let pattern_types =
  [
    "Pattern.t"; "Rgraph.t"; "Bitset.t"; "Vclock.t"; "Tdv.t"; "Types.ckpt"; "Types.message";
    "Types.event";
  ]

(* The chunked Bitset kept the dense API's mutator names, so the same
   list covers both representations. *)
let bitset_mutators =
  [
    "Bitset.add";
    "Bitset.remove";
    "Bitset.union_into";
    "Bitset.union_into_iter";
    "Bitset.ensure_capacity";
  ]

(* Sparse dependency vectors are shared as widely as reachability sets
   (message payloads, checker state): observation code must treat them
   as read-only too. *)
let vclock_mutators = [ "Vclock.set"; "Vclock.incr"; "Vclock.merge" ]

let array_writes = [ "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit" ]

let check (ctx : Rule.ctx) structure =
  let applies = List.exists (fun p -> String.starts_with ~prefix:p ctx.file) ctx.obs_prefixes in
  if applies then
    Scan.iter_expressions structure (fun e ->
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_setfield (tgt, _, ld, _) -> (
            match Scan.type_mentions ~targets:pattern_types tgt.Typedtree.exp_type with
            | Some t ->
                ctx.report ~rule:"A2" ~loc:e.Typedtree.exp_loc
                  (Printf.sprintf
                     "observation-only code writes field '%s' of a value involving %s; \
                      lib/obs must not mutate pattern or runtime state"
                     ld.Types.lbl_name t)
            | None -> ())
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, (_, Some a0) :: _) -> (
            let n = Scan.normalize_path p in
            match Scan.find_target n bitset_mutators with
            | Some t ->
                ctx.report ~rule:"A2" ~loc:e.Typedtree.exp_loc
                  (Printf.sprintf
                     "observation-only code calls mutating %s; reachability sets exposed by \
                      the pattern layer must be treated as read-only here"
                     t)
            | None -> (
                match Scan.find_target n vclock_mutators with
                | Some t ->
                    ctx.report ~rule:"A2" ~loc:e.Typedtree.exp_loc
                      (Printf.sprintf
                         "observation-only code calls mutating %s; dependency vectors \
                          (message payloads, checker state) must be treated as read-only here"
                         t)
                | None -> (
                    if Scan.matches_any n array_writes then
                      match Scan.type_mentions ~targets:pattern_types a0.Typedtree.exp_type with
                      | Some t ->
                          ctx.report ~rule:"A2" ~loc:e.Typedtree.exp_loc
                            (Printf.sprintf
                               "observation-only code writes into an array involving %s (the \
                                Pattern accessors expose internal arrays: do not mutate)"
                               t)
                      | None -> ())))
        | _ -> ())

let rule =
  {
    Rule.id = "A2";
    doc = "lib/obs is observation-only: no mutation of pattern/runtime state";
    check;
  }
