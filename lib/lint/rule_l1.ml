(* L1 — fd lifecycle.

   A function that acquires a raw file descriptor (Unix.openfile /
   socket / accept, Io.openfile, or any callee whose summary acquires)
   must do one of three things with it: release it (Unix.close /
   Io.close_noerr / a callee whose summary releases that parameter —
   [Fun.protect ~finally] works out of the box because the release
   inside the finally closure is an ordinary occurrence), return it
   (any tail position of any enclosing function counts, so
   [with_retries (fun () -> Unix.openfile ...)] is a return), or store
   it / hand it off (a record field, a constructor, an argument to a
   function the analysis cannot prove harmless — all conservatively
   silent).

   What is flagged:
   - an acquired descriptor that is discarded on the spot (sequence
     position, [ignore], or a binding pattern that drops it);
   - a bound descriptor whose every occurrence is a known pure fd
     operation (read/write/lseek/...) with no release, no tail return,
     and no escape: that is a leak on every call, which a long-running
     [rdtsim serve] daemon turns from cosmetic into an outage. *)

(* fd operations that neither release nor retain their descriptor *)
let neutral_ops =
  [
    "Unix.read";
    "Unix.write";
    "Unix.write_substring";
    "Unix.single_write";
    "Unix.fsync";
    "Unix.ftruncate";
    "Unix.lseek";
    "Unix.set_nonblock";
    "Unix.clear_nonblock";
    "Unix.listen";
    "Unix.bind";
    "Unix.getsockname";
    "Unix.getpeername";
    "Unix.setsockopt";
    "Unix.shutdown";
    "Io.read";
    "Io.write_all";
    "Io.fsync";
    "Io.ftruncate";
    "Io.recv";
    "Io.send_substring";
  ]

let fd_type ty = Scan.type_mentions ~targets:[ "Unix.file_descr" ] ty <> None

let span (e : Typedtree.expression) =
  (e.exp_loc.loc_start.pos_cnum, e.exp_loc.loc_end.pos_cnum)

(* All [Tpat_var]/[Tpat_alias] binders with their types. *)
let pat_idents p0 =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (q : k Typedtree.general_pattern) ->
          (match q.pat_desc with
          | Typedtree.Tpat_var (id, _) -> acc := (id, q.pat_type) :: !acc
          | Typedtree.Tpat_alias (_, id, _) -> acc := (id, q.pat_type) :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.pat it q);
    }
  in
  it.pat it p0;
  !acc

type apply = { cname : string; cpath : Path.t; args : Typedtree.expression list }

let analyze_def (ctx : Rule.ctx) (def : Callgraph.def) =
  let env = ctx.env in
  let graph = env.Summary.graph in
  let source = def.source in
  (* --- collect roles within the def's own code ------------------- *)
  let applies = ref [] in
  let bound = Hashtbl.create 16 (* span of bound expr -> binder idents * types *) in
  let arg_of = Hashtbl.create 64 (* span of expr -> head cname of the consuming apply *) in
  let seqpos = Hashtbl.create 16 (* span of expr -> () : value discarded by sequencing *) in
  let tails = Hashtbl.create 32 (* span of expr -> () : tail of some enclosing function *) in
  let rec mark_tails (e : Typedtree.expression) =
    Hashtbl.replace tails (span e) ();
    match e.exp_desc with
    | Texp_let (_, _, b) -> mark_tails b
    | Texp_sequence (_, b) -> mark_tails b
    | Texp_ifthenelse (_, t, f) ->
        mark_tails t;
        Option.iter mark_tails f
    | Texp_match (_, cases, _) -> List.iter (fun c -> mark_tails c.Typedtree.c_rhs) cases
    | Texp_try (b, cases) ->
        mark_tails b;
        List.iter (fun c -> mark_tails c.Typedtree.c_rhs) cases
    | _ -> ()
  in
  Summary.iter_own graph ~source def.fn (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, raw_args) ->
          let args = List.filter_map (fun (_, a) -> a) raw_args in
          let cname = Scan.normalize_path p in
          applies := { cname; cpath = p; args } :: !applies;
          List.iter (fun a -> Hashtbl.replace arg_of (span a) cname) args
      | Texp_let (_, vbs, _) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              Hashtbl.replace bound (span vb.vb_expr) (pat_idents vb.vb_pat))
            vbs
      | Texp_match (scrut, cases, _) ->
          Hashtbl.replace bound (span scrut)
            (List.concat_map (fun c -> pat_idents c.Typedtree.c_lhs) cases)
      | Texp_sequence (a, _) -> Hashtbl.replace seqpos (span a) ()
      | Texp_function { cases; _ } -> List.iter (fun c -> mark_tails c.Typedtree.c_rhs) cases
      | _ -> ());
  List.iter (fun b -> mark_tails b) def.bodies;
  let applies = !applies in
  (* --- occurrence analysis for one acquired descriptor ----------- *)
  let leaks id =
    let uid = Ident.unique_name id in
    let is_x (a : Typedtree.expression) =
      match a.exp_desc with
      | Texp_ident (Path.Pident i, _, _) -> String.equal (Ident.unique_name i) uid
      | _ -> false
    in
    let released = ref false in
    let escaped = ref false in
    let handled = Hashtbl.create 8 (* spans of occurrences accounted for *) in
    List.iter
      (fun ap ->
        let rel = Summary.call_releases env ~source ~cname:ap.cname ap.cpath in
        List.iteri
          (fun i a ->
            if is_x a then begin
              Hashtbl.replace handled (span a) ();
              if List.mem i rel then released := true
              else if not (Scan.matches_any ap.cname neutral_ops) then escaped := true
            end)
          ap.args)
      applies;
    Summary.iter_own graph ~source def.fn (fun e ->
        if is_x e then
          if Hashtbl.mem tails (span e) then escaped := true
          else if not (Hashtbl.mem handled (span e)) then escaped := true);
    (not !released) && not !escaped
  in
  (* --- classify each acquire site -------------------------------- *)
  Summary.iter_own graph ~source def.fn (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
        when Summary.call_acquires env ~source ~cname:(Scan.normalize_path p) p
             && (not (Scan.type_has_arrow e.exp_type))
             && fd_type e.exp_type -> (
          let s = span e in
          let report msg = ctx.report ~rule:"L1" ~loc:e.exp_loc msg in
          match Hashtbl.find_opt bound s with
          | Some binders -> (
              match List.filter (fun (_, ty) -> fd_type ty) binders with
              | [] ->
                  report
                    "the file descriptor acquired here is dropped by the binding pattern \
                     without being closed; bind it and release it on every path"
              | fds ->
                  List.iter
                    (fun (id, _) ->
                      if leaks id then
                        report
                          (Printf.sprintf
                             "file descriptor '%s' is neither closed on any path, returned, \
                              nor stored: it leaks on every call; release it (e.g. \
                              Fun.protect ~finally with Io.close_noerr)"
                             (Ident.name id)))
                    fds)
          | None ->
              if Hashtbl.mem tails s then ()
              else if Hashtbl.mem seqpos s then
                report
                  "the file descriptor acquired here is discarded by the sequence without \
                   being closed; bind it and release it on every path"
              else (
                match Hashtbl.find_opt arg_of s with
                | Some "ignore" ->
                    report
                      "the file descriptor acquired here is ignored without being closed; \
                       bind it and release it on every path"
                | Some _ | None -> ()))
      | _ -> ())

let check (ctx : Rule.ctx) _structure =
  List.iter (analyze_def ctx) (Callgraph.defs_in ctx.env.Summary.graph ~source:ctx.file)

let rule =
  {
    Rule.id = "L1";
    doc =
      "fd lifecycle: an acquired file descriptor must be released on all paths, returned, or \
       stored (summary-based; Fun.protect recognized)";
    check;
  }
