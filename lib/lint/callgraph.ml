(* Whole-cmt-set callgraph: every toplevel and let-bound function
   definition, indexed so call sites can be resolved across units.

   Two indexes:
   - by ident stamp, scoped to the defining unit — [Ident] stamps are
     only unique within one compilation, so the key is
     ["source|unique_name"]; same-unit references always resolve
     through [Path.Pident], nested lets included;
   - by source-level dotted name ("Io.openfile", "Session.Frame.next")
     — cross-unit references arrive as [Path.Pdot] spellings which
     [Scan.normalize_path] reduces to the same form modulo a leading
     wrapper-module prefix, which [resolve] strips component by
     component.  A dotted name defined by two different units is
     ambiguous and resolves to nothing rather than to either. *)

type def = {
  id : string;  (** ["source|unique_name"] — unique across the whole cmt set *)
  name : string;  (** display name: dotted for toplevel defs, bare for nested lets *)
  params : Ident.t list;  (** curried value parameters, outermost first *)
  bodies : Typedtree.expression list;  (** the body (bodies, for [function]-style defs) *)
  fn : Typedtree.expression;  (** the whole function expression *)
  loc : Location.t;
  source : string;  (** source path of the defining unit *)
}

type t = {
  by_uid : (string, def) Hashtbl.t;
  by_name : (string, def) Hashtbl.t;
  ambiguous : (string, unit) Hashtbl.t;
  mutable defs : def list;  (** registration order, reversed — see [defs] *)
}

let uid_key ~source id = source ^ "|" ^ Ident.unique_name id

let peel_params fn =
  let rec go acc (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { param; cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
        go (param :: acc) c_rhs
    | Texp_function { param; cases; _ } ->
        (List.rev (param :: acc), List.map (fun c -> c.Typedtree.c_rhs) cases)
    | _ -> (List.rev acc, [ e ])
  in
  go [] fn

let is_function (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let module_name_of_source source =
  Filename.basename source |> Filename.remove_extension |> String.capitalize_ascii

let add t ~prefix ~source (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) when is_function vb.vb_expr ->
      let params, bodies = peel_params vb.vb_expr in
      let name =
        match prefix with
        | Some m -> m ^ "." ^ Ident.name id
        | None -> Ident.name id
      in
      let d =
        {
          id = uid_key ~source id;
          name;
          params;
          bodies;
          fn = vb.vb_expr;
          loc = vb.vb_loc;
          source;
        }
      in
      if not (Hashtbl.mem t.by_uid d.id) then t.defs <- d :: t.defs;
      Hashtbl.replace t.by_uid d.id d;
      if prefix <> None then
        if Hashtbl.mem t.by_name name || Hashtbl.mem t.ambiguous name then begin
          Hashtbl.remove t.by_name name;
          Hashtbl.replace t.ambiguous name ()
        end
        else Hashtbl.replace t.by_name name d
  | _ -> ()

(* Toplevel defs of a structure, recursing into named submodules so
   "Mod.Sub.fn" is indexed under its source-level spelling. *)
let rec add_structure_items t ~prefix ~source (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (add t ~prefix:(Some prefix) ~source) vbs
      | Tstr_module mb -> add_module_binding t ~prefix ~source mb
      | Tstr_recmodule mbs -> List.iter (add_module_binding t ~prefix ~source) mbs
      | _ -> ())
    str.str_items

and add_module_binding t ~prefix ~source (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some mid ->
      let rec strip (me : Typedtree.module_expr) =
        match me.mod_desc with
        | Tmod_structure s -> Some s
        | Tmod_constraint (me', _, _, _) -> strip me'
        | _ -> None
      in
      (match strip mb.mb_expr with
      | Some s -> add_structure_items t ~prefix:(prefix ^ "." ^ Ident.name mid) ~source s
      | None -> ())

(* Nested [let f = fun ... in] defs anywhere in the unit, indexed by
   stamp only (their dotted spelling is not addressable). *)
let add_nested t ~source (str : Typedtree.structure) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Typedtree.exp_desc with
          | Texp_let (_, vbs, _) -> List.iter (add t ~prefix:None ~source) vbs
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str

let build units =
  let t =
    {
      by_uid = Hashtbl.create 512;
      by_name = Hashtbl.create 512;
      ambiguous = Hashtbl.create 8;
      defs = [];
    }
  in
  List.iter
    (fun (source, str) ->
      add_structure_items t ~prefix:(module_name_of_source source) ~source str;
      add_nested t ~source str)
    units;
  t

(* All defs, in registration order: unit by unit (the driver loads
   units in sorted-cmt-path order), toplevel before nested within a
   unit — deterministic without touching hash-table iteration order. *)
let defs t = List.rev t.defs

let mem_uid t ~source id = Hashtbl.mem t.by_uid (uid_key ~source id)

(* "Rdt_durable.Io.openfile" and "Io.openfile" must hit the same def:
   drop leading components until the lookup lands (or nothing is left). *)
let resolve_name t name =
  let rec go name =
    match Hashtbl.find_opt t.by_name name with
    | Some d -> Some d
    | None -> (
        match String.index_opt name '.' with
        | Some i -> go (String.sub name (i + 1) (String.length name - i - 1))
        | None -> None)
  in
  go name

(* [source] is the unit the reference occurs in: a [Pident] can only
   name a binder of the same compilation unit. *)
let resolve t ~source (p : Path.t) =
  match p with
  | Path.Pident id -> Hashtbl.find_opt t.by_uid (uid_key ~source id)
  | _ -> resolve_name t (Scan.normalize_path p)

let defs_in t ~source = List.filter (fun d -> String.equal d.source source) (defs t)
