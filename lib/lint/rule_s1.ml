(* S1 — syscall discipline.

   The durable layer's crash-safety story (PR 6's crash matrix) is
   proved for Rdt_durable.Io: EINTR/EAGAIN-bounded retries, fsync
   ordering, atomic rename.  A raw file syscall anywhere else silently
   bypasses all of it, so raw Unix file ops are banned outside
   lib/durable/io.ml itself.

   Socket acquisition (socket/accept/connect) is a resource decision,
   not an I/O convenience: every such call site must be a sanctioned
   acquire site, named by a line-precise .rdtlint entry — today the
   server's listener, its accept loop, and the client dialer in
   lib/serve.  Flagging the call unconditionally and forcing the
   allowlist entry keeps the inventory of socket-creating code exact.

   Any reference to a banned function counts, applied or not: passing
   [Unix.read] to a combinator smuggles the syscall just as well. *)

let file_ops =
  [
    "Unix.openfile";
    "Unix.rename";
    "Unix.ftruncate";
    "Unix.unlink";
    "Unix.fsync";
    "Unix.read";
    "Unix.write";
    "Unix.write_substring";
    "Unix.single_write";
    "Unix.close";
  ]

let socket_ops = [ "Unix.socket"; "Unix.accept"; "Unix.connect" ]
let sanctioned_unit = "lib/durable/io.ml"

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> (
          let n = Scan.normalize_path p in
          match Scan.find_target n file_ops with
          | Some t ->
              if not (String.equal ctx.file sanctioned_unit) then
                ctx.report ~rule:"S1" ~loc:e.exp_loc
                  (Printf.sprintf
                     "raw %s bypasses the durable I/O discipline (bounded EINTR/EAGAIN \
                      retries, fsync ordering, atomic rename); go through Rdt_durable.Io"
                     t)
          | None -> (
              match Scan.find_target n socket_ops with
              | Some t ->
                  ctx.report ~rule:"S1" ~loc:e.exp_loc
                    (Printf.sprintf
                       "raw %s outside a sanctioned acquire site; socket creation is confined \
                        to the line-precise .rdtlint entries in lib/serve"
                       t)
              | None -> ()))
      | _ -> ())

let rule =
  {
    Rule.id = "S1";
    doc =
      "syscall discipline: raw Unix file ops only inside lib/durable/io.ml; socket/accept/\
       connect only at allowlisted acquire sites";
    check;
  }
