(** A single lint finding, reported as [file:line:col [rule-id] message]. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

val of_loc : rule:string -> loc:Location.t -> string -> t
(** Columns are 0-based (compiler convention); lines 1-based. *)

val compare : t -> t -> int
(** Orders by file, line, column, rule id, message — the stable output
    order of the driver and of the fixture expect tests. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object on one line:
    [{"file":...,"line":N,"col":N,"rule":...,"msg":...}], fields always
    in that order.  The driver emits findings in [compare] order for
    both renderings, so the JSON stream round-trips to the plain one
    record for record. *)
