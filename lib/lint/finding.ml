type t = { file : string; line : int; col : int; rule : string; msg : string }

let of_loc ~rule ~loc msg =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

(* file, then position, then rule id: the output order is part of the
   expect-test contract, so it must not depend on rule execution order *)
let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  String.compare a.file b.file <?> fun () ->
  Int.compare a.line b.line <?> fun () ->
  Int.compare a.col b.col <?> fun () ->
  String.compare a.rule b.rule <?> fun () -> String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.msg

(* Minimal JSON string escaping: quote, backslash, and control
   characters; everything else (including UTF-8 bytes) passes through. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","msg":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)
