(* A1 — API hygiene: no call sites of deprecated values.

   The compiler's own alert only warns (and is routinely silenced in
   test code); this rule makes drift a lint failure instead.  Any
   Texp_ident whose value description carries [@@ocaml.deprecated] is
   flagged — the tree itself no longer exports deprecated values (the
   Checker.check* compat wrappers completed their cycle and were
   removed), so today this guards against anything Stdlib deprecates
   under a future compiler, and against new deprecations entering the
   tree without a migration plan.  Note the attribute only reaches
   [val_attributes] from an [.mli] declaration, never from a [let]. *)

let deprecation_of (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "ocaml.deprecated" | "deprecated" ->
          let msg =
            match a.attr_payload with
            | PStr
                [
                  {
                    pstr_desc =
                      Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                    _;
                  };
                ] ->
                s
            | _ -> ""
          in
          Some msg
      | _ -> None)
    attrs

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (path, _, vd) -> (
          match deprecation_of vd.Types.val_attributes with
          | Some msg ->
              ctx.report ~rule:"A1" ~loc:e.Typedtree.exp_loc
                (Printf.sprintf "use of deprecated %s%s" (Scan.normalize_path path)
                   (if msg = "" then "" else ": " ^ String.trim msg))
          | None -> ())
      | _ -> ())

let rule = { Rule.id = "A1"; doc = "no call sites of [@@ocaml.deprecated] values"; check }
