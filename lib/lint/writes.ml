(* The write vocabulary shared by R1 (syntactic) and Summary/R2
   (interprocedural): which applications mutate their first argument,
   which merely project a mutable structure out of another, and how to
   trace a write target back to the identifier that owns the storage.

   Atomic.* is deliberately absent: atomics are the sanctioned way to
   share state under the domain pool, so atomic updates never register
   as writes. *)

let ref_ops = [ ":="; "incr"; "decr" ]

let struct_ops =
  [
    "Array.set";
    "Array.unsafe_set";
    "Array.fill";
    "Array.blit";
    "Bytes.set";
    "Bytes.unsafe_set";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.remove";
    "Hashtbl.reset";
    "Hashtbl.clear";
    "Hashtbl.filter_map_inplace";
    "Queue.add";
    "Queue.push";
    "Queue.pop";
    "Queue.take";
    "Queue.clear";
    "Stack.push";
    "Stack.pop";
    "Stack.clear";
    "Buffer.add_string";
    "Buffer.add_char";
    "Buffer.add_bytes";
    "Buffer.clear";
    "Buffer.reset";
  ]

(* Projections through which a write target is traced to its root:
   [(Hashtbl.find rows k).cell <- v] mutates storage owned by [rows]. *)
let getters = [ "Array.get"; "Array.unsafe_get"; "Bytes.get"; "Hashtbl.find"; "!" ]

(* Mutators whose mutated structure is the LAST argument, not the
   first ([Hashtbl.filter_map_inplace f tbl]). *)
let last_arg_targets = [ "Hashtbl.filter_map_inplace" ]

(* [write_of e] is [Some (what, target)] when [e] performs a write:
   [what] is display text for the kind of write, [target] the expression
   whose root owns the mutated storage. *)
let write_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_setfield (tgt, _, ld, _) ->
      Some (Printf.sprintf "mutable field '%s' of a value" ld.Types.lbl_name, tgt)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      match List.filter_map (fun (_, a) -> a) args with
      | [] -> None
      | a0 :: _ as present -> (
          let n = Scan.normalize_path p in
          if List.exists (String.equal n) ref_ops then
            Some (Printf.sprintf "ref cell (%s)" n, a0)
          else
            match Scan.find_target n struct_ops with
            | Some t ->
                let tgt =
                  if Scan.matches_any n last_arg_targets then
                    List.nth present (List.length present - 1)
                  else a0
                in
                Some (Printf.sprintf "mutable structure (%s)" t, tgt)
            | None -> None))
  | _ -> None

(* Who owns the written storage.  [classify] decides what a plain
   identifier is in the caller's scope (parameter / local / captured);
   module-level values and projection chains are resolved here. *)
type 'a root = Id of 'a | Global of string | Unknown

let rec root_of ~classify (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Id (classify id)
  | Texp_ident (p, _, _) -> Global (Scan.normalize_path p)
  | Texp_field (e', _, _) -> root_of ~classify e'
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, (_, Some a) :: _)
    when Scan.matches_any (Scan.normalize_path p) getters ->
      root_of ~classify a
  | _ -> Unknown
