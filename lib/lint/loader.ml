type unit_info = {
  cmt_path : string;
  source : string;  (** as recorded by the compiler, relative to the workspace root *)
  structure : Typedtree.structure;
}

let excluded ~excludes path = List.exists (fun p -> String.starts_with ~prefix:p path) excludes

let find_cmts ~excludes paths =
  let rec walk acc path =
    if excluded ~excludes path then acc
    else
      match Sys.is_directory path with
      | exception Sys_error _ -> acc
      | true ->
          let entries = Sys.readdir path in
          Array.sort String.compare entries;
          Array.fold_left (fun acc e -> walk acc (Filename.concat path e)) acc entries
      | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc
  in
  List.fold_left walk [] paths |> List.sort_uniq String.compare

let load cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e -> Error (Printf.sprintf "%s: cannot read cmt: %s" cmt_path (Printexc.to_string e))
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          let source =
            match infos.Cmt_format.cmt_sourcefile with Some s -> s | None -> cmt_path
          in
          (* dune-generated library alias modules ([lib__.ml-gen]) carry no
             user code *)
          if Filename.check_suffix source ".ml-gen" then Ok None
          else Ok (Some { cmt_path; source; structure })
      | _ -> Ok None)
