let all =
  [
    Rule_d1.rule;
    Rule_d2.rule;
    Rule_r1.rule;
    Rule_r2.rule;
    Rule_s1.rule;
    Rule_l1.rule;
    Rule_a1.rule;
    Rule_a2.rule;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun (r : Rule.t) -> String.equal r.id id) all
