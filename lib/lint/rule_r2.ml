(* R2 — interprocedural domain-pool races, on top of [Summary].

   R1 only sees writes that appear literally inside a closure argument.
   R2 closes its two documented false negatives at the same anchor
   points (arguments of Pool.map / Pool.map_timed / Domain.spawn):

   - a task passed as an ident ([Pool.map worker rows]): if [worker]'s
     summary says it writes captured or module-global mutable state,
     the reference is flagged;
   - mutation hidden behind a call ([Pool.map (fun r -> bump total r)]):
     any function referenced inside the argument whose summary writes
     captured state is flagged, and calls to functions that write
     *through a parameter* are flagged when the actual argument is
     captured from outside the task.

   Witnesses whose root is bound inside the argument expression are
   task-local state and stay silent, so [let t = ref 0 in bump t] in a
   task never fires.  R1 and R2 are disjoint by construction: R1 flags
   direct writes at the write site, R2 only effects reached through a
   resolved identifier. *)

let prims = Rule_r1.prims

let chain (g : Summary.fn) (w : Summary.witness) =
  match w.via with
  | [] -> Printf.sprintf "'%s'" g.def.name
  | via -> Printf.sprintf "'%s' (via %s)" g.def.name (String.concat " -> " via)

let analyze_arg (ctx : Rule.ctx) ~prim arg =
  let bound = Scan.bound_idents_in arg in
  let is_local uid =
    List.exists (fun id -> String.equal (Ident.unique_name id) uid) bound
  in
  let classify id = if List.exists (Ident.same id) bound then None else Some (Ident.name id) in
  Scan.iter_expressions_in_expr arg (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_ident (p, _, _) -> (
          match Summary.resolve_fn ctx.env ~source:ctx.file p with
          | None -> ()
          | Some g ->
              List.iter
                (fun (w : Summary.witness) ->
                  let local =
                    match w.target with Summary.V (uid, _) -> is_local uid | Summary.G _ -> false
                  in
                  if not local then
                    ctx.report ~rule:"R2" ~loc:e.exp_loc
                      (Printf.sprintf
                         "%s '%s' is written by %s, which this task passed to %s reaches: a \
                          data race under the domain pool; use Atomic, or make the state \
                          task-local"
                         w.what
                         (Summary.target_display w.target)
                         (chain g w) prim))
                g.captured)
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          match Summary.resolve_fn ctx.env ~source:ctx.file p with
          | None -> ()
          | Some g ->
              let present = List.filter_map (fun (_, a) -> a) args in
              List.iter
                (fun (i, what) ->
                  match List.nth_opt present i with
                  | None -> ()
                  | Some a -> (
                      match Writes.root_of ~classify a with
                      | Writes.Id (Some name) | Writes.Global name ->
                          ctx.report ~rule:"R2" ~loc:e.exp_loc
                            (Printf.sprintf
                               "%s '%s' is written through the call to '%s' in a task passed \
                                to %s: a data race under the domain pool; use Atomic, or make \
                                the state task-local"
                               what name g.def.name prim)
                      | Writes.Id None | Writes.Unknown -> ()))
                g.param_writes)
      | _ -> ())

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
        when Scan.matches_any (Scan.normalize_path p) prims ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some a -> analyze_arg ctx ~prim:(Scan.normalize_path p) a
              | None -> ())
            args
      | _ -> ())

let rule =
  {
    Rule.id = "R2";
    doc =
      "interprocedural pool races: tasks passed as idents, and captured-state writes hidden \
       behind calls (callgraph summaries)";
    check;
  }
