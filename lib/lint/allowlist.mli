(** The [.rdtlint] allowlist: one [RULE path[:LINE]] entry per line.

    [path] is the source path as the compiler recorded it (relative to
    the workspace root, e.g. [lib/obs/meter.ml]); a trailing ['/'] makes
    it a directory prefix.  Without [:LINE] the entry covers the whole
    file.  ['#'] starts a comment.  Parsing is strict: a malformed line
    is a configuration error, not a silently ignored one.

    Entries count the findings they suppress, so a run can report
    entries that excuse nothing — a stale sanction outliving the code
    it excused is itself a finding under [--strict-allowlist]. *)

type entry = {
  rule : string;
  path : string;
  line : int option;
  lineno : int;  (** line of the entry in the allowlist file itself *)
  mutable hits : int;  (** findings this entry suppressed in the current run *)
}

type t = { file : string; entries : entry list }

val empty : t

val load : string -> (t, string) result

val allows : t -> rule:string -> file:string -> line:int -> bool
(** Side effect: bumps the hit count of the first matching entry. *)

val stale : t -> rules:string list -> entry list
(** Entries with zero hits whose rule id is among [rules] (entries for
    rules that did not run are not judged). *)

val describe : entry -> string
(** The entry as it would be spelled in the file: [RULE path[:LINE]]. *)
