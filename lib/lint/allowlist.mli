(** The [.rdtlint] allowlist: one [RULE path[:LINE]] entry per line.

    [path] is the source path as the compiler recorded it (relative to
    the workspace root, e.g. [lib/obs/meter.ml]); a trailing ['/'] makes
    it a directory prefix.  Without [:LINE] the entry covers the whole
    file.  ['#'] starts a comment.  Parsing is strict: a malformed line
    is a configuration error, not a silently ignored one. *)

type t

val empty : t

val load : string -> (t, string) result

val allows : t -> rule:string -> file:string -> line:int -> bool
