type entry = {
  rule : string;
  path : string;
  line : int option;
  lineno : int;  (** line of the entry in the allowlist file itself *)
  mutable hits : int;  (** findings this entry suppressed in the current run *)
}

type t = { file : string; entries : entry list }

let empty = { file = ""; entries = [] }

(* "RULE path[:LINE]"; '#' starts a comment; a trailing '/' on the path
   allowlists a whole directory. *)
let parse_line ~file ~lineno raw =
  let text =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let text = String.trim text in
  if text = "" then Ok None
  else
    match String.split_on_char ' ' text |> List.filter (fun s -> s <> "") with
    | [ rule; spec ] ->
        let path, line =
          match String.rindex_opt spec ':' with
          | Some i -> (
              let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
              match int_of_string_opt tail with
              | Some l -> (String.sub spec 0 i, Some l)
              | None -> (spec, None))
          | None -> (spec, None)
        in
        Ok (Some { rule; path; line; lineno; hits = 0 })
    | _ ->
        Error
          (Printf.sprintf "%s:%d: malformed allowlist line %S (want: RULE path[:LINE])" file
             lineno raw)

let load file =
  match open_in file with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok { file; entries = List.rev acc }
            | raw -> (
                match parse_line ~file ~lineno raw with
                | Error _ as e -> e
                | Ok None -> go (lineno + 1) acc
                | Ok (Some e) -> go (lineno + 1) (e :: acc))
          in
          go 1 [])

let allows t ~rule ~file ~line =
  match
    List.find_opt
      (fun e ->
        String.equal e.rule rule
        && (String.equal e.path file
           || String.length e.path > 0
              && e.path.[String.length e.path - 1] = '/'
              && String.starts_with ~prefix:e.path file)
        && match e.line with None -> true | Some l -> l = line)
      t.entries
  with
  | Some e ->
      e.hits <- e.hits + 1;
      true
  | None -> false

(* Entries that suppressed nothing, restricted to the rules that
   actually ran (an entry for a skipped rule is not stale evidence). *)
let stale t ~rules =
  List.filter (fun e -> e.hits = 0 && List.exists (String.equal e.rule) rules) t.entries

let describe e =
  match e.line with
  | None -> Printf.sprintf "%s %s" e.rule e.path
  | Some l -> Printf.sprintf "%s %s:%d" e.rule e.path l
