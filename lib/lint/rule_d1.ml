(* D1 — determinism.  Simulation output must be a pure function of
   (seed, params): no ambient randomness, no wall clock outside the
   metering layer, no unordered hash-table traversal feeding output.

   - Random.self_init is banned outright.
   - Any other Stdlib.Random use is banned outside Rdt_dist.Rng (the
     allowlist names the sanctioned file).
   - Unix.gettimeofday / Unix.time / Sys.time are banned outside
     Rdt_obs.Meter / Bench_report: measurement flows through Meter.now.
   - Unix.sleep / Unix.sleepf make control flow depend on real time;
     the only legitimate use is I/O-retry backoff in the durable layer
     (sanctioned line-precisely in .rdtlint), which can delay disk
     writes but never influence simulation output.
   - Hashtbl.iter / Hashtbl.fold enumerate buckets in unspecified order;
     call sites must go through Rdt_dist.Tbl's sorted traversals (or be
     explicitly allowlisted when the order provably cannot escape). *)

let clock = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
let sleep = [ "Unix.sleep"; "Unix.sleepf" ]
let unordered = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (path, _, _) -> (
          let n = Scan.normalize_path path in
          let loc = e.Typedtree.exp_loc in
          let report msg = ctx.report ~rule:"D1" ~loc msg in
          if Scan.matches n "Random.self_init" then
            report
              "Random.self_init seeds from ambient entropy; every run must be reproducible \
               from (seed, params) via Rdt_dist.Rng.create"
          else if String.starts_with ~prefix:"Random." n then
            report
              (Printf.sprintf
                 "%s: Stdlib.Random outside Rdt_dist.Rng breaks seed-determinism; draw from \
                  an Rng.t derived with Rng.derive_seed"
                 n)
          else if Scan.matches_any n clock then
            report
              (Printf.sprintf
                 "%s: wall clock outside Rdt_obs.Meter/Bench_report; use Rdt_obs.Meter.now \
                  (measurement must never influence simulation output)"
                 n)
          else if Scan.matches_any n sleep then
            report
              (Printf.sprintf
                 "%s: real-time pacing makes control flow depend on the wall clock; only the \
                  durable layer's bounded I/O-retry backoff is sanctioned (line-precise \
                  allowlist entry)"
                 n)
          else
            match Scan.find_target n unordered with
            | Some t ->
                report
                  (Printf.sprintf
                     "%s: unordered hash-table traversal; use Rdt_dist.Tbl.bindings_sorted / \
                      iter_sorted, or allowlist this file if the order provably cannot reach \
                      output"
                     t)
            | None -> ())
      | _ -> ())

let rule =
  {
    Rule.id = "D1";
    doc =
      "determinism: no ambient randomness, no wall clock outside Meter/Bench_report, no \
       unordered Hashtbl traversal";
    check;
  }
