(* Bottom-up interprocedural function summaries.

   Every definition in the [Callgraph] gets a summary computed by a
   fixpoint over the condensation of the call relation: Tarjan's SCC
   algorithm emits components callees-first, and each component is
   iterated until its summaries stop growing (mutual recursion
   converges because witness sets are deduplicated and capped).

   A summary says, per function:
   - [captured]: writes to mutable state the function does not own —
     state captured from an enclosing scope or module-global — each
     with the call chain ([via]) it was discovered through;
   - [param_writes]: parameter indices the function writes through
     (so callers can translate the effect into their own scope);
   - [acquires]: the function returns a raw [Unix.file_descr] it
     opened ([Unix.openfile]/[socket]/[accept] or an acquiring callee);
   - [releases]: parameter indices the function may close.

   Precision notes (mirrored in DESIGN.md): argument-to-parameter
   mapping is positional over the arguments present at the call site,
   so labeled arguments passed out of definition order can mis-map;
   functions reached only through higher-order escapes (stored in a
   record, passed to [List.iter]) contribute nothing; destructured
   parameters ([fun (a, b) ->]) classify as locals, not parameters.

   [Meter.*] callees are blessed: the metering registry is the one
   module-global the repo sanctions for concurrent use (atomics plus a
   spin-locked create path, per its header), so calls into it never
   produce witnesses — the interprocedural analogue of R1 never
   flagging [Atomic.*]. *)

type target = G of string  (** module-level value, normalized path *)
            | V of string * string  (** enclosing-scope ident: unique name, display name *)

let target_key = function G s -> "G " ^ s | V (u, _) -> "V " ^ u
let target_display = function G s -> s | V (_, d) -> d

type witness = {
  what : string;  (** kind of write, display text from [Writes.write_of] *)
  target : target;
  via : string list;  (** call chain below this function, nearest callee first *)
}

type cls = P of int | L | C of Ident.t

type call = { cname : string; cpath : Path.t; cargs : Typedtree.expression list }

type fn = {
  def : Callgraph.def;
  param_uids : string array;
  classify : Ident.t -> cls;
  local_uid : string -> bool;  (** ident (by unique name) is bound inside this def *)
  calls : call list;
  returns_fd : bool;
  mutable captured : witness list;
  mutable param_writes : (int * string) list;
  mutable acquires : bool;
  mutable releases : int list;
}

type env = { graph : Callgraph.t; fns : (string, fn) Hashtbl.t }

let blessed cname = List.mem "Meter" (String.split_on_char '.' cname)

let acquire_prims = [ "Unix.openfile"; "Unix.socket"; "Unix.accept"; "Io.openfile" ]
let release_prims = [ "Unix.close"; "Io.close_noerr" ]

let max_witnesses = 8
let max_via = 3

(* Walk a definition's own code: everything under [fn] except the
   bodies of nested let-bound function definitions, which have
   summaries of their own and contribute through call edges only. *)
let iter_own graph ~source fn_expr f =
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          match vb.Typedtree.vb_pat.pat_desc with
          | Tpat_var (id, _)
            when Callgraph.is_function vb.vb_expr && Callgraph.mem_uid graph ~source id ->
              ()
          | _ -> Tast_iterator.default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it fn_expr

let add_witness f w =
  if List.length f.captured >= max_witnesses then false
  else if
    List.exists
      (fun w' -> String.equal (target_key w'.target) (target_key w.target))
      f.captured
  then false
  else begin
    f.captured <- f.captured @ [ w ];
    true
  end

let add_param_write f i what =
  if List.mem_assoc i f.param_writes then false
  else begin
    f.param_writes <- (i, what) :: f.param_writes;
    true
  end

let add_release f i =
  if List.mem i f.releases then false
  else begin
    f.releases <- i :: f.releases;
    true
  end

let param_index f uid =
  let n = Array.length f.param_uids in
  let rec go i = if i >= n then None else if String.equal f.param_uids.(i) uid then Some i else go (i + 1) in
  go 0

let push_via name via =
  let v = name :: via in
  if List.length v > max_via then List.filteri (fun i _ -> i < max_via) v else v

let fn_of graph (def : Callgraph.def) =
  let locals = Hashtbl.create 32 in
  List.iter
    (fun id -> Hashtbl.replace locals (Ident.unique_name id) ())
    (Scan.bound_idents_in def.fn);
  let param_uids = Array.of_list (List.map Ident.unique_name def.params) in
  let pindex uid =
    let n = Array.length param_uids in
    let rec go i = if i >= n then None else if String.equal param_uids.(i) uid then Some i else go (i + 1) in
    go 0
  in
  let classify id =
    let uid = Ident.unique_name id in
    match pindex uid with
    | Some i -> P i
    | None -> if Hashtbl.mem locals uid then L else C id
  in
  let calls = ref [] in
  iter_own graph ~source:def.source def.fn (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
          calls :=
            {
              cname = Scan.normalize_path p;
              cpath = p;
              cargs = List.filter_map (fun (_, a) -> a) args;
            }
            :: !calls
      | _ -> ());
  let returns_fd =
    List.exists
      (fun (b : Typedtree.expression) ->
        Scan.type_mentions ~targets:[ "Unix.file_descr" ] b.exp_type <> None)
      def.bodies
  in
  let f =
    {
      def;
      param_uids;
      classify;
      local_uid = (fun uid -> Hashtbl.mem locals uid);
      calls = List.rev !calls;
      returns_fd;
      captured = [];
      param_writes = [];
      acquires = false;
      releases = [];
    }
  in
  (* direct writes *)
  iter_own graph ~source:def.source def.fn (fun e ->
      match Writes.write_of e with
      | None -> ()
      | Some (what, tgt) -> (
          match Writes.root_of ~classify tgt with
          | Writes.Id (P i) -> ignore (add_param_write f i what)
          | Id L | Unknown -> ()
          | Id (C id) ->
              ignore (add_witness f { what; target = V (Ident.unique_name id, Ident.name id); via = [] })
          | Global g -> ignore (add_witness f { what; target = G g; via = [] })));
  (* direct fd effects *)
  List.iter
    (fun c ->
      if Scan.matches_any c.cname release_prims then
        match c.cargs with
        | a0 :: _ -> (
            match Writes.root_of ~classify a0 with
            | Writes.Id (P i) -> ignore (add_release f i)
            | _ -> ())
        | [] -> ())
    f.calls;
  if f.returns_fd && List.exists (fun c -> Scan.matches_any c.cname acquire_prims) f.calls then
    f.acquires <- true;
  f

(* One propagation sweep over [f]'s call sites; true iff the summary grew. *)
let propagate env f =
  let changed = ref false in
  List.iter
    (fun c ->
      if not (blessed c.cname) then
        match Callgraph.resolve env.graph ~source:f.def.source c.cpath with
        | None -> ()
        | Some gdef -> (
            match Hashtbl.find_opt env.fns gdef.id with
            | None -> ()
            | Some g ->
                let g_captured = g.captured
                and g_pw = g.param_writes
                and g_rel = g.releases
                and g_acq = g.acquires in
                List.iter
                  (fun w ->
                    match w.target with
                    | V (uid, _) -> (
                        match param_index f uid with
                        | Some i -> if add_param_write f i w.what then changed := true
                        | None ->
                            (* bound in f: per-invocation state of f, not shared;
                               free in f too: still captured, keep propagating *)
                            if not (f.local_uid uid) then
                              if add_witness f { w with via = push_via g.def.name w.via } then
                                changed := true)
                    | G _ -> if add_witness f { w with via = push_via g.def.name w.via } then changed := true)
                  g_captured;
                List.iter
                  (fun (i, what) ->
                    match List.nth_opt c.cargs i with
                    | None -> ()
                    | Some a -> (
                        match Writes.root_of ~classify:f.classify a with
                        | Writes.Id (P j) -> if add_param_write f j what then changed := true
                        | Id L | Unknown -> ()
                        | Id (C id) ->
                            if
                              add_witness f
                                {
                                  what;
                                  target = V (Ident.unique_name id, Ident.name id);
                                  via = [ g.def.name ];
                                }
                            then changed := true
                        | Global s ->
                            if add_witness f { what; target = G s; via = [ g.def.name ] } then
                              changed := true))
                  g_pw;
                List.iter
                  (fun i ->
                    match List.nth_opt c.cargs i with
                    | None -> ()
                    | Some a -> (
                        match Writes.root_of ~classify:f.classify a with
                        | Writes.Id (P j) -> if add_release f j then changed := true
                        | _ -> ()))
                  g_rel;
                if g_acq && f.returns_fd && not f.acquires then begin
                  f.acquires <- true;
                  changed := true
                end))
    f.calls;
  !changed

(* Tarjan over the call relation.  Components come out callees-first
   (an SCC is emitted only once every SCC it reaches already has been),
   which is exactly the bottom-up summary order. *)
let sccs env roots =
  let index = Hashtbl.create 512 in
  let lowlink = Hashtbl.create 512 in
  let on_stack = Hashtbl.create 512 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let succs f =
    List.filter_map
      (fun c ->
        if blessed c.cname then None
        else
          match Callgraph.resolve env.graph ~source:f.def.source c.cpath with
          | Some gdef -> Hashtbl.find_opt env.fns gdef.id
          | None -> None)
      f.calls
  in
  let rec strongconnect f =
    let v = f.def.id in
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := f :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun g ->
        let w = g.def.id in
        if not (Hashtbl.mem index w) then begin
          strongconnect g;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs f);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | g :: rest ->
            stack := rest;
            Hashtbl.remove on_stack g.def.id;
            if String.equal g.def.id v then g :: acc else pop (g :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun f -> if not (Hashtbl.mem index f.def.id) then strongconnect f) roots;
  List.rev !out

let analyze graph =
  let env = { graph; fns = Hashtbl.create 512 } in
  let defs = Callgraph.defs graph in
  List.iter (fun d -> Hashtbl.replace env.fns d.Callgraph.id (fn_of graph d)) defs;
  let roots = List.map (fun (d : Callgraph.def) -> Hashtbl.find env.fns d.id) defs in
  List.iter
    (fun comp ->
      let again = ref true in
      while !again do
        again := List.fold_left (fun acc f -> propagate env f || acc) false comp
      done)
    (sccs env roots);
  env

let find env (def : Callgraph.def) = Hashtbl.find_opt env.fns def.id

(* Resolve a path referenced from unit [source] to its summary, if the
   target is a known def. *)
let resolve_fn env ~source p =
  match Callgraph.resolve env.graph ~source p with None -> None | Some d -> find env d

(* Parameter indices a call to [p] (spelled [cname]) may close: release
   primitives close their first argument, summarized callees whatever
   their summary says. *)
let call_releases env ~source ~cname p =
  if Scan.matches_any cname release_prims then [ 0 ]
  else match resolve_fn env ~source p with Some g -> g.releases | None -> []

(* Does a call to [p] (spelled [cname]) acquire a raw file descriptor? *)
let call_acquires env ~source ~cname p =
  Scan.matches_any cname acquire_prims
  || match resolve_fn env ~source p with Some g -> g.acquires | None -> false
