(* Shared typed-AST utilities: path normalization, a cycle-safe type
   walk, and an every-expression iterator. *)

let path_components p =
  let rec go acc = function
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> go (s :: acc) p
    | Path.Papply (p, _) -> go acc p
    | Path.Pextra_ty (p, _) -> go acc p
  in
  go [] p

(* Dune name-mangles wrapped-library modules: [Rdt_pattern__Pattern] is
   the module a same-library reference resolves to, [Stdlib__Random] an
   expanded stdlib alias.  Keep the part after the last "__" so both
   spellings normalize to the source-level name. *)
let after_last_dunder c =
  let n = String.length c in
  let rec go i =
    if i < 0 then c
    else if i + 1 < n && c.[i] = '_' && c.[i + 1] = '_' then String.sub c (i + 2) (n - i - 2)
    else go (i - 1)
  in
  go (n - 2)

let normalize_path p =
  let comps =
    path_components p
    |> List.map after_last_dunder
    |> List.filter (fun c -> c <> "")
  in
  let comps = match comps with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l in
  String.concat "." comps

(* Multi-component targets ("Pool.map", "Pattern.t") also match with any
   module prefix ("Rdt_harness.Pool.map"); single-component targets
   ("incr", "=") must match exactly, otherwise "Atomic.incr" would match
   "incr". *)
let matches name target =
  String.equal name target
  || (String.contains target '.' && String.ends_with ~suffix:("." ^ target) name)

let matches_any name targets = List.exists (matches name) targets

let find_target name targets = List.find_opt (matches name) targets

(* ---------------------------------------------------------------- *)
(* Type walk                                                        *)
(* ---------------------------------------------------------------- *)

let iter_type_once f ty =
  let seen = ref [] in
  let rec go ty =
    let id = Types.get_id ty in
    if not (List.mem id !seen) then begin
      seen := id :: !seen;
      f ty;
      let sub =
        match Types.get_desc ty with
        | Types.Tvar _ | Tunivar _ | Tnil | Tvariant _ | Tpackage _ -> []
        | Tarrow (_, a, b, _) -> [ a; b ]
        | Ttuple l -> l
        | Tconstr (_, l, _) -> l
        | Tobject (a, _) -> [ a ]
        | Tfield (_, _, a, b) -> [ a; b ]
        | Tlink a -> [ a ]
        | Tsubst (a, b) -> a :: Option.to_list b
        | Tpoly (a, l) -> a :: l
      in
      List.iter go sub
    end
  in
  go ty

let type_mentions ~targets ty =
  let found = ref None in
  iter_type_once
    (fun t ->
      if !found = None then
        match Types.get_desc t with
        | Types.Tconstr (p, _, _) -> (
            let n = normalize_path p in
            match find_target n targets with Some tgt -> found := Some tgt | None -> ())
        | _ -> ())
    ty;
  !found

let type_has_arrow ty =
  let found = ref false in
  iter_type_once
    (fun t -> match Types.get_desc t with Types.Tarrow _ -> found := true | _ -> ())
    ty;
  !found

let first_param ty =
  match Types.get_desc ty with Types.Tarrow (_, a, _, _) -> Some a | _ -> None

(* ---------------------------------------------------------------- *)
(* Iteration                                                        *)
(* ---------------------------------------------------------------- *)

let iter_expressions structure f =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

let iter_expressions_in_expr e0 f =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e0

(* Every ident bound anywhere inside [e0]: function parameters, lets,
   match/try cases, for-loop indices.  Stamps are globally unique, so
   "bound somewhere inside the closure" is a sound (and for our rules
   exact) notion of closure-local. *)
let bound_idents_in e0 =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (p : k Typedtree.general_pattern) ->
          acc := Typedtree.pat_bound_idents p @ !acc;
          Tast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_function { param; _ } -> acc := param :: !acc
          | Texp_for (id, _, _, _, _, _) -> acc := id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e0;
  !acc
