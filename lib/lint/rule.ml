type ctx = {
  file : string;  (** source path of the unit being linted *)
  obs_prefixes : string list;  (** source prefixes subject to the A2 purity rule *)
  env : Summary.env;  (** whole-repo callgraph + function summaries (R2/S1/L1) *)
  report : rule:string -> loc:Location.t -> string -> unit;
}

type t = {
  id : string;
  doc : string;
  check : ctx -> Typedtree.structure -> unit;
}
