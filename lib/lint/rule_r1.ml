(* R1 — Domain-pool race heuristic (the fast syntactic core).

   For every syntactic closure passed to Pool.map / Pool.map_timed /
   Domain.spawn, flag writes (:=, incr, decr, setfield, Array/Bytes set,
   Hashtbl/Queue/Stack/Buffer mutation — the vocabulary lives in
   [Writes]) whose target is captured from outside the closure.  Pool
   tasks must be self-contained: shared mutable state under a domain
   pool is a data race unless it goes through Atomic/Mutex — Atomic
   accesses use their own functions and are therefore never flagged.

   R1's two documented false negatives — closures passed as idents
   rather than literal fun-expressions, and mutation hidden behind a
   function call inside the closure — are covered interprocedurally by
   R2 on top of the callgraph summaries.  Mutex-guarded writes remain
   out of scope for both (no allowance is attempted: guard-by-mutex
   sites should be allowlisted explicitly, which keeps them visible). *)

let prims = [ "Pool.map"; "Pool.map_timed"; "Domain.spawn" ]

type root = Local | Captured of string

let root_of locals e =
  let classify id =
    if List.exists (Ident.same id) locals then Local else Captured (Ident.name id)
  in
  match Writes.root_of ~classify e with
  | Writes.Id r -> Some r
  | Writes.Global name -> Some (Captured name)
  | Writes.Unknown -> None

let analyze_closure (ctx : Rule.ctx) ~prim closure =
  let locals = Scan.bound_idents_in closure in
  let flag loc what target =
    match target with
    | None | Some Local -> ()
    | Some (Captured name) ->
        ctx.report ~rule:"R1" ~loc
          (Printf.sprintf
             "%s '%s' captured by a closure passed to %s: a data race under the domain pool; \
              use Atomic, or make the state task-local"
             what name prim)
  in
  Scan.iter_expressions_in_expr closure (fun e ->
      match Writes.write_of e with
      | Some (what, tgt) -> flag e.Typedtree.exp_loc what (root_of locals tgt)
      | None -> ())

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
        when Scan.matches_any (Scan.normalize_path p) prims ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ } as closure) ->
                  analyze_closure ctx ~prim:(Scan.normalize_path p) closure
              | _ -> ())
            args
      | _ -> ())

let rule =
  {
    Rule.id = "R1";
    doc =
      "no captured refs / mutable fields written inside closures passed to \
       Pool.map/map_timed/Domain.spawn (use Atomic)";
    check;
  }
