(* R1 — Domain-pool race heuristic.

   For every syntactic closure passed to Pool.map / Pool.map_timed /
   Domain.spawn, flag writes (:=, incr, decr, setfield, Array/Bytes set,
   Hashtbl/Queue/Stack/Buffer mutation) whose target is captured from
   outside the closure.  Pool tasks must be self-contained: shared
   mutable state under a domain pool is a data race unless it goes
   through Atomic/Mutex — Atomic accesses use their own functions and
   are therefore never flagged.

   Known false negatives (documented in DESIGN.md): closures passed as
   idents rather than literal fun-expressions, mutation hidden behind a
   function call inside the closure, and Mutex-guarded writes (no
   allowance is attempted: guard-by-mutex sites should be allowlisted
   explicitly, which keeps them visible). *)

let prims = [ "Pool.map"; "Pool.map_timed"; "Domain.spawn" ]
let ref_ops = [ ":="; "incr"; "decr" ]

let struct_ops =
  [
    "Array.set";
    "Array.unsafe_set";
    "Array.fill";
    "Array.blit";
    "Bytes.set";
    "Bytes.unsafe_set";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.remove";
    "Hashtbl.reset";
    "Hashtbl.clear";
    "Queue.add";
    "Queue.push";
    "Queue.pop";
    "Queue.take";
    "Stack.push";
    "Stack.pop";
    "Buffer.add_string";
    "Buffer.add_char";
    "Buffer.add_bytes";
    "Buffer.clear";
  ]

let getters = [ "Array.get"; "Array.unsafe_get"; "!" ]

type root = Local | Captured of string | Unknown

let rec root_of locals (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      if List.exists (Ident.same id) locals then Local else Captured (Ident.name id)
  | Texp_ident (p, _, _) -> Captured (Scan.normalize_path p)
  | Texp_field (e', _, _) -> root_of locals e'
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, (_, Some a) :: _)
    when Scan.matches_any (Scan.normalize_path p) getters ->
      root_of locals a
  | _ -> Unknown

let analyze_closure (ctx : Rule.ctx) ~prim closure =
  let locals = Scan.bound_idents_in closure in
  let flag loc what target =
    match target with
    | Local | Unknown -> ()
    | Captured name ->
        ctx.report ~rule:"R1" ~loc
          (Printf.sprintf
             "%s '%s' captured by a closure passed to %s: a data race under the domain pool; \
              use Atomic, or make the state task-local"
             what name prim)
  in
  Scan.iter_expressions_in_expr closure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_setfield (tgt, _, ld, _) ->
          flag e.exp_loc
            (Printf.sprintf "mutable field '%s' of a value" ld.Types.lbl_name)
            (root_of locals tgt)
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, (_, Some a0) :: _) ->
          let n = Scan.normalize_path p in
          if List.exists (String.equal n) ref_ops then
            flag e.exp_loc (Printf.sprintf "ref cell (%s)" n) (root_of locals a0)
          else (
            match Scan.find_target n struct_ops with
            | Some t ->
                flag e.exp_loc (Printf.sprintf "mutable structure (%s)" t) (root_of locals a0)
            | None -> ())
      | _ -> ())

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
        when Scan.matches_any (Scan.normalize_path p) prims ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ } as closure) ->
                  analyze_closure ctx ~prim:(Scan.normalize_path p) closure
              | _ -> ())
            args
      | _ -> ())

let rule =
  {
    Rule.id = "R1";
    doc =
      "no captured refs / mutable fields written inside closures passed to \
       Pool.map/map_timed/Domain.spawn (use Atomic)";
    check;
  }
