type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  errors : string list;  (** unreadable cmts: a hard failure, not a quiet skip *)
  units : int;  (** implementation units actually linted *)
}

let run ?(rules = Rules.all) ?(allowlist = Allowlist.empty) ?(obs_prefixes = [ "lib/obs/" ])
    ?(excludes = []) paths =
  let cmts = Loader.find_cmts ~excludes paths in
  let findings = ref [] in
  let errors = ref [] in
  let units = ref 0 in
  List.iter
    (fun cmt ->
      match Loader.load cmt with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
          if not (Loader.excluded ~excludes u.Loader.source) then begin
            incr units;
            let report ~rule ~loc msg =
              let f = Finding.of_loc ~rule ~loc msg in
              (* ghost locations have no file; anchor them to the unit *)
              let f =
                if f.Finding.file = "" || f.Finding.file = "_none_" then
                  { f with Finding.file = u.Loader.source }
                else f
              in
              if not (Allowlist.allows allowlist ~rule ~file:f.Finding.file ~line:f.Finding.line)
              then findings := f :: !findings
            in
            let ctx = { Rule.file = u.Loader.source; obs_prefixes; report } in
            List.iter (fun (r : Rule.t) -> r.Rule.check ctx u.Loader.structure) rules
          end)
    cmts;
  {
    findings = List.sort_uniq Finding.compare !findings;
    errors = List.rev !errors;
    units = !units;
  }
