type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  errors : string list;  (** unreadable cmts: a hard failure, not a quiet skip *)
  units : int;  (** implementation units actually linted *)
}

let stale_rule = "STALE"

let run ?(rules = Rules.all) ?(allowlist = Allowlist.empty) ?(obs_prefixes = [ "lib/obs/" ])
    ?(excludes = []) ?(strict_allowlist = false) paths =
  let cmts = Loader.find_cmts ~excludes paths in
  let errors = ref [] in
  (* pass 1: load every unit, so the callgraph spans the whole cmt set *)
  let units =
    List.filter_map
      (fun cmt ->
        match Loader.load cmt with
        | Error e ->
            errors := e :: !errors;
            None
        | Ok None -> None
        | Ok (Some u) ->
            if Loader.excluded ~excludes u.Loader.source then None else Some u)
      cmts
  in
  let graph =
    Callgraph.build (List.map (fun u -> (u.Loader.source, u.Loader.structure)) units)
  in
  let env = Summary.analyze graph in
  (* pass 2: the per-unit rule sweep *)
  let findings = ref [] in
  List.iter
    (fun (u : Loader.unit_info) ->
      let report ~rule ~loc msg =
        let f = Finding.of_loc ~rule ~loc msg in
        (* ghost locations have no file; anchor them to the unit *)
        let f =
          if f.Finding.file = "" || f.Finding.file = "_none_" then
            { f with Finding.file = u.Loader.source }
          else f
        in
        if not (Allowlist.allows allowlist ~rule ~file:f.Finding.file ~line:f.Finding.line)
        then findings := f :: !findings
      in
      let ctx = { Rule.file = u.Loader.source; obs_prefixes; env; report } in
      List.iter (fun (r : Rule.t) -> r.Rule.check ctx u.Loader.structure) rules)
    units;
  if strict_allowlist then
    List.iter
      (fun (e : Allowlist.entry) ->
        findings :=
          {
            Finding.file = allowlist.Allowlist.file;
            line = e.Allowlist.lineno;
            col = 0;
            rule = stale_rule;
            msg =
              Printf.sprintf
                "allowlist entry '%s' suppressed no finding in this run; the code it excused \
                 is gone — remove the entry"
                (Allowlist.describe e);
          }
          :: !findings)
      (Allowlist.stale allowlist ~rules:(List.map (fun (r : Rule.t) -> r.Rule.id) rules));
  {
    findings = List.sort_uniq Finding.compare !findings;
    errors = List.rev !errors;
    units = List.length units;
  }
