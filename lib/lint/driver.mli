(** Load every [.cmt] under the given paths and run the rule engine.

    Two passes: first every unit is loaded and the whole-set
    [Callgraph] + [Summary] environment is computed (the
    interprocedural rules need cross-unit resolution), then each unit
    gets the per-unit rule sweep.  Paths are walked recursively;
    anything matching an [excludes] prefix — compared both against the
    on-disk walk path and against the source path recorded in the cmt —
    is skipped.  Findings are deduplicated and sorted (file, line, col,
    rule) so output is stable across traversal order.

    With [strict_allowlist], allowlist entries that suppressed no
    finding (for rules that ran) become findings themselves, rule id
    [STALE], anchored at the entry's own line in the allowlist file. *)

type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  errors : string list;  (** unreadable cmts: a hard failure, not a quiet skip *)
  units : int;  (** implementation units actually linted *)
}

val stale_rule : string
(** ["STALE"], the synthetic rule id of stale-allowlist findings. *)

val run :
  ?rules:Rule.t list ->
  ?allowlist:Allowlist.t ->
  ?obs_prefixes:string list ->
  ?excludes:string list ->
  ?strict_allowlist:bool ->
  string list ->
  result
