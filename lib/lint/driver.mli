(** Load every [.cmt] under the given paths and run the rule engine.

    Paths are walked recursively; anything matching an [excludes] prefix
    — compared both against the on-disk walk path and against the source
    path recorded in the cmt — is skipped.  Findings are deduplicated
    and sorted (file, line, col, rule) so output is stable across
    traversal order. *)

type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  errors : string list;  (** unreadable cmts: a hard failure, not a quiet skip *)
  units : int;  (** implementation units actually linted *)
}

val run :
  ?rules:Rule.t list ->
  ?allowlist:Allowlist.t ->
  ?obs_prefixes:string list ->
  ?excludes:string list ->
  string list ->
  result
