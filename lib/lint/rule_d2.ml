(* D2 — polymorphic comparison at dangerous types.

   Polymorphic =/compare/Hashtbl.hash are flagged when instantiated at
   Pattern.t (carries a lazily filled cache: structural equality can
   disagree with =), Rgraph.t / Bitset.t (mutable graph internals), or
   any type whose structure contains an arrow (compare on closures
   raises at runtime).  The instantiation is read off the ident's own
   type, so both direct applications and higher-order uses (e.g. passing
   [compare] to a sort) are caught.

   Structural-only type walk: abbreviations and abstract types are not
   expanded, so a record that hides a Pattern.t behind an abstract type
   is a documented false negative. *)

let poly_compare = [ "="; "<>"; "compare"; "Hashtbl.hash" ]
let membership = [ "List.mem"; "List.assoc"; "List.assoc_opt"; "List.mem_assoc"; "Array.mem" ]
let banned_types = [ "Pattern.t"; "Rgraph.t"; "Bitset.t" ]

let check (ctx : Rule.ctx) structure =
  Scan.iter_expressions structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (path, _, _) -> (
          let n = Scan.normalize_path path in
          let is_compare = List.exists (String.equal n) poly_compare in
          let is_membership = Scan.matches_any n membership in
          if is_compare || is_membership then
            match Scan.first_param e.Typedtree.exp_type with
            | None -> ()
            | Some arg_ty -> (
                let loc = e.Typedtree.exp_loc in
                match Scan.type_mentions ~targets:banned_types arg_ty with
                | Some t ->
                    ctx.report ~rule:"D2" ~loc
                      (Printf.sprintf
                         "polymorphic %s instantiated at a type involving %s; use that \
                          module's explicit equal/compare"
                         n t)
                | None ->
                    if is_compare && Scan.type_has_arrow arg_ty then
                      ctx.report ~rule:"D2" ~loc
                        (Printf.sprintf
                           "polymorphic %s at a type containing functions: raises \
                            Invalid_argument at runtime on closures"
                           n)))
      | _ -> ())

let rule =
  {
    Rule.id = "D2";
    doc =
      "no polymorphic =/compare/hash at Pattern.t, Rgraph.t, Bitset.t or function-carrying \
       types";
    check;
  }
