(** Locating and reading the typed ASTs ([.cmt] files) dune produced.

    rdtlint runs from the build context root (that is what [dune build
    @lint] does), where every library's cmts sit under
    [<dir>/.<lib>.objs/byte/]; scanning the source directories
    recursively therefore finds them without knowing dune's layout. *)

type unit_info = {
  cmt_path : string;
  source : string;  (** as recorded by the compiler, relative to the workspace root *)
  structure : Typedtree.structure;
}

val excluded : excludes:string list -> string -> bool
(** [true] iff the path falls under one of the [excludes] prefixes. *)

val find_cmts : excludes:string list -> string list -> string list
(** Every [.cmt] under the given files/directories, sorted, minus paths
    under an [excludes] prefix. *)

val load : string -> (unit_info option, string) result
(** [Ok None] for interfaces, packed modules, partial cmts and dune's
    generated library-alias modules; [Error _] if the file cannot be
    read (version skew, truncation) — the driver treats that as a hard
    error rather than silently linting less. *)
