(** The [rdtsim serve] daemon core: many concurrent client event
    streams, one {!Rdt_check.Online} engine per stream, multiplexed
    over a single-threaded [select] loop with the batched {e apply}
    phase fanned out over an injected parallel mapper (the domain
    [Pool], in the CLI).

    {2 Streams and connections}

    A {e stream} is a named checker session ({!Rdt_check.Session});
    a {e connection} is one client socket.  Streams outlive
    connections: a client that disconnects mid-stream (the
    intermittent-mobile-host case) reattaches by sending [Hello] with
    the same stream name and is told how many events are already
    applied ([Welcome.resumed]).  With a durable root configured,
    streams also outlive the daemon itself — every stream persists
    through [Rdt_durable.Session] under [durable_root/<stream>/], and a
    SIGKILL'd daemon recovers each stream from its WAL + snapshot chain
    on the stream's next [Hello].

    {2 Ordering and backpressure}

    Frames on one connection are processed strictly in order; [Query],
    [Sync] and [Bye] act only once every event previously sent on the
    stream has been applied, so answers are linearized against the
    client's own writes.  Ingested events wait in a per-stream pending
    queue bounded by [max_pending]: when a stream's queue is full the
    server simply stops reading that connection's socket — kernel
    buffers fill and the client blocks, no frame is ever dropped.  Each
    {!step} applies at most [max_batch] events per stream, all busy
    streams in parallel through the mapper.

    The loop is step-driven (no threads, no signals) so tests can
    interleave client writes and server steps deterministically in one
    process. *)

type config = {
  socket : string;  (** Unix-domain socket path (unlinked on create/close). *)
  durable_root : string option;
      (** Directory holding one [Rdt_durable.Session] per stream;
          [None] serves ephemeral in-memory streams. *)
  snapshot_every : int;  (** Durable snapshot cadence (events). *)
  max_batch : int;  (** Events applied per stream per {!step}. *)
  max_pending : int;
      (** Pending-queue bound per stream; reading from a connection
          pauses while its stream is over the bound (the queue can
          overshoot by at most the last frame's batch). *)
}

val default_config : socket:string -> config
(** Ephemeral serving: [snapshot_every = 1000], [max_batch = 256],
    [max_pending = 4096]. *)

type mapper = { map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** How the apply phase fans out over busy streams.  Injected (rather
    than calling [Rdt_harness.Pool] directly) so the harness can depend
    on this library for benchmarks without a dependency cycle. *)

val seq_mapper : mapper
(** [List.map] — single-domain serving. *)

type t

val create :
  ?mapper:mapper -> ?meter:Rdt_obs.Meter.t -> ?trace:Rdt_obs.Trace.t -> config -> t
(** Bind and listen.  Replaces a stale socket file (left by a killed
    daemon) rather than failing.  Meters into [meter] (default
    {!Rdt_obs.Meter.default}): counters [serve.connections],
    [serve.events], [serve.batches], [serve.queries]; gauges
    [serve.streams], [serve.queue_depth]; spans [serve.apply],
    [serve.query].  [trace] is a debug audit log: every applied event
    is re-emitted to it, all streams interleaved in application order.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val step : ?timeout:float -> t -> int
(** One loop iteration: poll ([timeout] seconds, default [0.]), accept,
    read, process frames, apply one batch per busy stream, flush
    replies.  Returns the number of work units (frames processed +
    events applied) — [0] means the step was idle, so drivers can spin
    until quiescent. *)

val run : ?tick:float -> stop:(unit -> bool) -> t -> unit
(** {!step} until [stop ()], blocking up to [tick] seconds (default
    [0.05]) per idle iteration.  [stop] is also consulted between
    steps, so a signal-flag closure makes SIGTERM prompt. *)

val streams : t -> string list
(** Names of live streams, sorted. *)

val stream_summary : t -> string -> Rdt_check.Online.summary option

val close : t -> unit
(** Graceful: sync + close every stream session, close every socket,
    unlink the socket path.  Idempotent. *)

val abort : t -> unit
(** Crash-simulation teardown: close sockets but {e abort} durable
    sessions (no final sync) — whatever a real SIGKILL would lose must
    stay lost.  Tests use this to exercise recovery. *)
