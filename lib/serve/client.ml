module W = Rdt_check.Session.Wire
module F = Rdt_check.Session.Frame
module Meter = Rdt_obs.Meter
module Io = Rdt_durable.Io

type t = {
  fd : Unix.file_descr;
  dec : F.decoder;
  mutable at_eof : bool;
  mutable closed : bool;
}

let connect ~socket =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     Io.close_noerr fd;
     raise e);
  { fd; dec = F.decoder (); at_eof = false; closed = false }

let send t req =
  let frame = F.encode (W.encode_request req) in
  let len = String.length frame in
  let written = ref 0 in
  while !written < len do
    written := !written + Io.send_substring t.fd frame !written (len - !written)
  done

let buf = Bytes.create 65536

(* Read once; [blocking:false] probes with a zero-timeout select first. *)
let read_some t ~blocking ~timeout =
  if t.at_eof then false
  else begin
    let ready =
      if blocking then (
        match Unix.select [ t.fd ] [] [] timeout with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
      else
        match Unix.select [ t.fd ] [] [] 0. with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then false
    else
      match Io.recv t.fd buf 0 (Bytes.length buf) with
      | 0 ->
          t.at_eof <- true;
          false
      | n ->
          F.feed t.dec buf ~off:0 ~len:n;
          true
  end

let next_frame t =
  match F.next t.dec with
  | Ok None -> None
  | Ok (Some payload) -> (
      match W.decode_response payload with
      | Ok resp -> Some resp
      | Error e -> failwith (Printf.sprintf "bad response from server: %s" e))
  | Error e -> failwith (Printf.sprintf "bad frame from server: %s" e)

let poll t =
  let rec drain_socket () = if read_some t ~blocking:false ~timeout:0. then drain_socket () in
  drain_socket ();
  let rec frames acc =
    match next_frame t with Some r -> frames (r :: acc) | None -> List.rev acc
  in
  let out = frames [] in
  if t.at_eof && out = [] && F.buffered t.dec > 0 then
    failwith "server closed the connection mid-frame";
  out

let recv ?(timeout = 30.) t =
  let deadline = Meter.now () +. timeout in
  let rec go () =
    match next_frame t with
    | Some r -> Ok r
    | None ->
        if t.at_eof then Error "server closed the connection"
        else begin
          let remaining = deadline -. Meter.now () in
          if remaining <= 0. then Error "timed out waiting for the server"
          else begin
            ignore (read_some t ~blocking:true ~timeout:remaining);
            go ()
          end
        end
    | exception Failure e -> Error e
  in
  go ()

let eof t = t.at_eof

let close t =
  if not t.closed then begin
    t.closed <- true;
    Io.close_noerr t.fd
  end
