module S = Rdt_check.Session
module W = Rdt_check.Session.Wire
module F = Rdt_check.Session.Frame
module O = Rdt_check.Online
module T = Rdt_obs.Trace
module Meter = Rdt_obs.Meter
module Tbl = Rdt_dist.Tbl
module D = Rdt_durable.Session
module Io = Rdt_durable.Io

type config = {
  socket : string;
  durable_root : string option;
  snapshot_every : int;
  max_batch : int;
  max_pending : int;
}

let default_config ~socket =
  { socket; durable_root = None; snapshot_every = 1000; max_batch = 256; max_pending = 4096 }

type mapper = { map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let seq_mapper = { map = List.map }

type stream = {
  name : string;
  session : S.t;
  aborter : unit -> unit;  (* durable [abort]; no-op for ephemeral *)
  pending : T.event Queue.t;
  mutable attached : conn option;
  mutable failed : (W.reject * string) option;  (* sticky rejection *)
}

and conn = {
  fd : Unix.file_descr;
  dec : F.decoder;
  out : Buffer.t;
  mutable out_off : int;
  reqs : W.request Queue.t;
  mutable stream : stream option;
  mutable greeted : bool;
  mutable closing : bool;  (* flush pending output, then close *)
  mutable dead : bool;
  mutable fd_closed : bool;
}

type t = {
  cfg : config;
  mapper : mapper;
  meter : Meter.t;
  trace : T.t;  (* debug audit log: applied events, all streams interleaved *)
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  streams : (string, stream) Hashtbl.t;
  mutable closed : bool;
}

let max_n = 1_000_000

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let unlink_quiet = Io.unlink_quiet

let create ?(mapper = seq_mapper) ?(meter = Meter.default) ?(trace = T.null) cfg =
  if cfg.max_batch < 1 || cfg.max_pending < 1 then
    invalid_arg "Server.create: max_batch and max_pending must be positive";
  (* a client vanishing mid-write must surface as EPIPE, not kill us *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  (match cfg.durable_root with
  | Some root -> (
      (* per-stream dirs are created by the durable session; the root
         (one level) is ours *)
      try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     (* a SIGKILL'd daemon leaves a stale socket file behind *)
     unlink_quiet cfg.socket;
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Io.close_noerr fd;
     raise e);
  {
    cfg;
    mapper;
    meter;
    trace;
    listen_fd = fd;
    conns = [];
    streams = Hashtbl.create 16;
    closed = false;
  }

let close_fd c =
  if not c.fd_closed then begin
    c.fd_closed <- true;
    Io.close_noerr c.fd
  end

let detach c =
  match c.stream with
  | Some st -> (
      c.stream <- None;
      match st.attached with
      | Some c' when c' == c ->
          st.attached <- None;
          (* make everything the disconnected client was acked for durable *)
          S.sync st.session
      | _ -> ())
  | None -> ()

let streams t = Tbl.keys_sorted ~compare:String.compare t.streams

let stream_summary t name =
  Option.map (fun st -> S.summary st.session) (Hashtbl.find_opt t.streams name)

let shutdown t ~graceful =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun c ->
        detach c;
        close_fd c)
      t.conns;
    t.conns <- [];
    Tbl.iter_sorted ~compare:String.compare
      (fun _ st -> if graceful then S.close st.session else st.aborter ())
      t.streams;
    Hashtbl.reset t.streams;
    Io.close_noerr t.listen_fd;
    if graceful then unlink_quiet t.cfg.socket
  end

let close t = shutdown t ~graceful:true
let abort t = shutdown t ~graceful:false

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let reply c resp = Buffer.add_string c.out (F.encode (W.encode_response resp))

let reject c code error =
  reply c (W.Rejected { code; error });
  c.closing <- true

let seen st = O.events_seen (S.engine st.session)

(* ------------------------------------------------------------------ *)
(* Hello: open, reattach or recover a stream                           *)
(* ------------------------------------------------------------------ *)

let valid_stream_name name =
  let ok_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false in
  String.length name >= 1
  && String.length name <= 100
  && String.for_all ok_char name
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)

let open_stream t name n =
  match Hashtbl.find_opt t.streams name with
  | Some st ->
      if st.attached <> None then Error (W.Protocol, Printf.sprintf "stream %S is attached to another client" name)
      else if O.n (S.engine st.session) <> n then
        Error
          ( W.Protocol,
            Printf.sprintf "stream %S has n=%d, hello said n=%d" name
              (O.n (S.engine st.session))
              n )
      else Ok st
  | None -> (
      let make session aborter =
        let st = { name; session; aborter; pending = Queue.create (); attached = None; failed = None } in
        Hashtbl.replace t.streams name st;
        Meter.set_gauge t.meter "serve.streams" (Hashtbl.length t.streams);
        Ok st
      in
      match t.cfg.durable_root with
      | None -> make (S.ephemeral ~n ()) (fun () -> ())
      | Some root -> (
          let dir = Filename.concat root name in
          let config = { D.default_config with D.snapshot_every = t.cfg.snapshot_every } in
          match D.open_ ~config ~meter:t.meter ~dir ~n ~track_open:true () with
          | ds, recovery ->
              (match recovery with
              | Some info ->
                  Format.eprintf "serve: stream %s: recovered (%a)@." name D.pp_recovery info
              | None -> ());
              make (D.checker_session ds) (fun () -> D.abort ds)
          | exception Rdt_durable.Io.Error err ->
              Error (W.Unrecoverable, Rdt_durable.Io.error_message err)
          | exception Unix.Unix_error (e, fn, arg) ->
              Error
                ( W.Unrecoverable,
                  Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e) )))

let handle_hello t c ~version ~stream:name ~n =
  if c.greeted then reject c W.Protocol "duplicate hello"
  else if version <> W.version then
    reject c W.Protocol
      (Printf.sprintf "unsupported protocol version %d (server speaks %d)" version W.version)
  else if not (valid_stream_name name) then
    reject c W.Protocol (Printf.sprintf "invalid stream name %S" name)
  else if n < 1 || n > max_n then
    reject c W.Protocol (Printf.sprintf "n=%d out of range [1, %d]" n max_n)
  else
    match open_stream t name n with
    | Error (code, error) -> reject c code error
    | Ok st ->
        c.greeted <- true;
        c.stream <- Some st;
        st.attached <- Some c;
        reply c (W.Welcome { version = W.version; stream = name; resumed = seen st })

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let eval_query t st query =
  let eng = S.engine st.session in
  let pattern_cut compute set =
    match S.pattern st.session with
    | Error e -> failwith e
    | Ok pat -> W.Cut (compute pat set)
  in
  Meter.time t.meter "serve.query" (fun () ->
      Meter.incr t.meter "serve.queries";
      match query with
      | W.Rdt_so_far -> W.Flag (O.rdt_so_far eng)
      | W.Zcycle -> W.Flag (O.zcycle eng)
      | W.Summary -> W.Stats (O.summary eng)
      | W.Trackable (a, b) -> W.Flag (O.trackable eng a b)
      | W.Min_gcp set -> pattern_cut Rdt_core.Min_gcp.minimum_of_set set
      | W.Max_gcp set -> pattern_cut Rdt_core.Min_gcp.maximum_of_set set)

(* ------------------------------------------------------------------ *)
(* Frame processing                                                    *)
(* ------------------------------------------------------------------ *)

(* Process a connection's parsed frames in order.  [`Defer] leaves the
   frame queued: queries, syncs and byes act only once every event the
   client previously sent has been applied, which linearizes answers
   against the client's own writes. *)
let handle_request t c req =
  match req with
  | W.Hello { version; stream; n } ->
      handle_hello t c ~version ~stream ~n;
      `Done
  | _ when not c.greeted ->
      reject c W.Protocol "first frame must be hello";
      `Done
  | _ -> (
      let st = Option.get c.stream in
      match st.failed with
      | Some (code, error) ->
          reject c code error;
          `Done
      | None -> (
          match req with
          | W.Hello _ -> assert false
          | W.Events evs ->
              List.iter (fun ev -> Queue.add ev st.pending) evs;
              `Done
          | W.Query { id; query } ->
              if not (Queue.is_empty st.pending) then `Defer
              else begin
                (match eval_query t st query with
                | answer -> reply c (W.Answer { id; answer })
                | exception (Failure e | Invalid_argument e) ->
                    reply c (W.Failed { id; error = e }));
                `Done
              end
          | W.Sync ->
              if not (Queue.is_empty st.pending) then `Defer
              else begin
                S.sync st.session;
                reply c (W.Ack { seen = seen st });
                `Done
              end
          | W.Bye ->
              if not (Queue.is_empty st.pending) then `Defer
              else begin
                let eng = S.engine st.session in
                reply c
                  (W.Goodbye
                     {
                       seen = seen st;
                       summary = O.summary eng;
                       orphans = O.orphan_messages eng;
                     });
                S.close st.session;
                st.attached <- None;
                c.stream <- None;
                Hashtbl.remove t.streams st.name;
                Meter.set_gauge t.meter "serve.streams" (Hashtbl.length t.streams);
                c.closing <- true;
                `Done
              end))

let process_conn t c =
  let work = ref 0 in
  let rec go () =
    if (not c.dead) && not c.closing then
      match Queue.peek_opt c.reqs with
      | None -> ()
      | Some req -> (
          match handle_request t c req with
          | `Done ->
              ignore (Queue.pop c.reqs);
              incr work;
              go ()
          | `Defer -> ())
  in
  go ();
  !work

(* ------------------------------------------------------------------ *)
(* Apply phase                                                         *)
(* ------------------------------------------------------------------ *)

let take_batch st limit =
  let rec go acc k =
    if k = 0 || Queue.is_empty st.pending then List.rev acc
    else go (Queue.pop st.pending :: acc) (k - 1)
  in
  go [] limit

(* One bounded batch per busy stream, all busy streams fanned out over
   the mapper.  Sessions are stream-private, so parallel application is
   race-free; the meter is atomic. *)
let apply_phase t =
  let busy =
    List.filter_map
      (fun (_, st) ->
        if st.failed = None && not (Queue.is_empty st.pending) then
          Some (st, take_batch st t.cfg.max_batch)
        else None)
      (Tbl.bindings_sorted ~compare:String.compare t.streams)
  in
  if busy = [] then 0
  else begin
    let results =
      Meter.time t.meter "serve.apply" (fun () ->
          t.mapper.map (fun (st, batch) -> S.feed st.session batch) busy)
    in
    let applied = ref 0 in
    List.iter2
      (fun (st, batch) result ->
        Meter.incr t.meter "serve.batches";
        match result with
        | Ok () -> (
            applied := !applied + List.length batch;
            List.iter (T.emit t.trace) batch;
            match st.attached with
            | Some c when not c.dead -> reply c (W.Ack { seen = seen st })
            | _ -> ())
        | Error error -> (
            st.failed <- Some (W.Inconsistent, error);
            Queue.clear st.pending;
            match st.attached with
            | Some c when not c.dead -> reject c W.Inconsistent error
            | _ -> ()))
      busy results;
    Meter.add t.meter "serve.events" !applied;
    !applied
  end

(* ------------------------------------------------------------------ *)
(* I/O                                                                 *)
(* ------------------------------------------------------------------ *)

let read_chunk = Bytes.create 65536

let read_conn t c =
  match Io.recv c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
      c.dead <- true;
      0
  | nread -> (
      F.feed c.dec read_chunk ~off:0 ~len:nread;
      let frames = ref 0 in
      let rec drain () =
        match F.next c.dec with
        | Ok None -> ()
        | Ok (Some payload) -> (
            match W.decode_request payload with
            | Ok req ->
                Queue.add req c.reqs;
                incr frames;
                drain ()
            | Error e -> reject c W.Protocol (Printf.sprintf "bad request: %s" e))
        | Error e -> reject c W.Protocol (Printf.sprintf "bad frame: %s" e)
      in
      drain ();
      ignore t;
      !frames)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> 0
  | exception Unix.Unix_error _ ->
      c.dead <- true;
      0

let flush_conn c =
  let total = Buffer.length c.out in
  if total > c.out_off then begin
    match Io.send_substring c.fd (Buffer.contents c.out) c.out_off (total - c.out_off) with
    | n ->
        c.out_off <- c.out_off + n;
        if c.out_off >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> c.dead <- true
  end

let accept_loop t =
  let accepted = ref 0 in
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let c =
          {
            fd;
            dec = F.decoder ();
            out = Buffer.create 1024;
            out_off = 0;
            reqs = Queue.create ();
            stream = None;
            greeted = false;
            closing = false;
            dead = false;
            fd_closed = false;
          }
        in
        t.conns <- c :: t.conns;
        Meter.incr t.meter "serve.connections";
        incr accepted;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ();
  !accepted

let step ?(timeout = 0.) t =
  if t.closed then 0
  else begin
    let work = ref 0 in
    (* backpressure: stop reading a connection whose stream's pending
       queue is over the bound — kernel socket buffers fill and the
       client blocks.  The queue can overshoot by at most one frame's
       batch; no frame is ever dropped. *)
    let wants_read c =
      (not c.dead) && (not c.closing)
      &&
      match c.stream with
      | Some st -> Queue.length st.pending < t.cfg.max_pending
      | None -> true
    in
    let rfds = t.listen_fd :: List.filter_map (fun c -> if wants_read c then Some c.fd else None) t.conns in
    let wfds =
      List.filter_map
        (fun c -> if (not c.fd_closed) && Buffer.length c.out > c.out_off then Some c.fd else None)
        t.conns
    in
    let readable, _, _ =
      match Unix.select rfds wfds [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then work := !work + accept_loop t;
    List.iter
      (fun c ->
        if (not c.fd_closed) && List.memq c.fd readable then work := !work + read_conn t c)
      t.conns;
    List.iter (fun c -> work := !work + process_conn t c) t.conns;
    work := !work + apply_phase t;
    (* the apply just unblocked deferred queries/syncs/byes *)
    List.iter (fun c -> work := !work + process_conn t c) t.conns;
    List.iter (fun c -> if not c.fd_closed then flush_conn c) t.conns;
    let depth =
      List.fold_left
        (fun acc (_, st) -> max acc (Queue.length st.pending))
        0
        (Tbl.bindings_sorted ~compare:String.compare t.streams)
    in
    Meter.set_gauge t.meter "serve.queue_depth" depth;
    (* reap: EOF/error, or gracefully closing with output flushed *)
    let reaped, live =
      List.partition
        (fun c -> c.dead || (c.closing && Buffer.length c.out <= c.out_off))
        t.conns
    in
    List.iter
      (fun c ->
        detach c;
        close_fd c)
      reaped;
    t.conns <- live;
    !work
  end

let run ?(tick = 0.05) ~stop t =
  while (not (stop ())) && not t.closed do
    ignore (step ~timeout:tick t)
  done
