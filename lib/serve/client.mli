(** Client side of the serve wire protocol: a connected socket plus an
    incremental frame decoder.

    Writes are blocking (the socket stays in blocking mode for writes
    via [send]); reads come in two flavors so both deployment shapes
    work from one implementation:

    - {!poll} never blocks — in-process tests interleave client writes
      with [Server.step] calls on the same thread;
    - {!recv} blocks up to a timeout — the [rdtsim feed] CLI talks to a
      daemon in another process. *)

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error when the daemon is not listening. *)

val send : t -> Rdt_check.Session.Wire.request -> unit
(** Frame and write the request (complete write; blocking). *)

val poll : t -> Rdt_check.Session.Wire.response list
(** Drain everything available without blocking: reads until the
    socket would block, returns all complete frames (possibly none).
    @raise Failure on a malformed frame or response, or EOF with
    undecoded bytes buffered. *)

val recv : ?timeout:float -> t -> (Rdt_check.Session.Wire.response, string) result
(** The next response, waiting up to [timeout] seconds (default 30).
    [Error] on timeout, EOF, or a malformed frame. *)

val eof : t -> bool
(** The server closed its end (observed by a previous {!poll}/{!recv}). *)

val close : t -> unit
