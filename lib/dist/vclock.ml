(* Sparse vector clocks: only the nonzero entries are stored, as parallel
   sorted (index, value) arrays.  At n = 10^4 processes a clock touched by
   a handful of neighbours costs O(touched) words instead of O(n), which
   is what lets every in-flight message of the scaled engine carry a
   dependency vector.  Zero entries are never stored, so the
   representation is canonical and [equal]/[compare] stay structural.
   Sorted arrays — not a hash table — keep iteration deterministic
   (lint rule D1) and the lattice operations simple linear merges. *)

type t = {
  n : int;
  mutable idx : int array; (* sorted, the nonzero positions *)
  mutable vals : int array; (* vals.(k) > 0 is entry idx.(k) *)
  mutable nnz : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Vclock.create: n must be positive";
  { n; idx = [||]; vals = [||]; nnz = 0 }

let of_array a =
  let n = Array.length a in
  let nnz = ref 0 in
  Array.iter (fun x -> if x <> 0 then incr nnz) a;
  let idx = Array.make !nnz 0 and vals = Array.make !nnz 0 in
  let k = ref 0 in
  Array.iteri
    (fun i x ->
      if x <> 0 then begin
        idx.(!k) <- i;
        vals.(!k) <- x;
        incr k
      end)
    a;
  { n; idx; vals; nnz = !nnz }

let to_array v =
  let a = Array.make v.n 0 in
  for k = 0 to v.nnz - 1 do
    a.(v.idx.(k)) <- v.vals.(k)
  done;
  a

let copy v = { v with idx = Array.sub v.idx 0 v.nnz; vals = Array.sub v.vals 0 v.nnz }

let size v = v.n

let nnz v = v.nnz

(* First slot in [idx.(0..nnz)] holding a position >= [i]. *)
let lower_bound v i =
  let lo = ref 0 and hi = ref v.nnz in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v.idx.(mid) < i then lo := mid + 1 else hi := mid
  done;
  !lo

let check_index v i = if i < 0 || i >= v.n then invalid_arg "index out of bounds"

let get v i =
  check_index v i;
  let k = lower_bound v i in
  if k < v.nnz && v.idx.(k) = i then v.vals.(k) else 0

let remove_at v k =
  Array.blit v.idx (k + 1) v.idx k (v.nnz - k - 1);
  Array.blit v.vals (k + 1) v.vals k (v.nnz - k - 1);
  v.nnz <- v.nnz - 1

let insert_at v k i x =
  if v.nnz = Array.length v.idx then begin
    let cap = max 4 (2 * v.nnz) in
    let idx = Array.make cap 0 and vals = Array.make cap 0 in
    Array.blit v.idx 0 idx 0 v.nnz;
    Array.blit v.vals 0 vals 0 v.nnz;
    v.idx <- idx;
    v.vals <- vals
  end;
  Array.blit v.idx k v.idx (k + 1) (v.nnz - k);
  Array.blit v.vals k v.vals (k + 1) (v.nnz - k);
  v.idx.(k) <- i;
  v.vals.(k) <- x;
  v.nnz <- v.nnz + 1

let set v i x =
  if x < 0 then invalid_arg "Vclock.set: negative entry";
  check_index v i;
  let k = lower_bound v i in
  if k < v.nnz && v.idx.(k) = i then begin
    if x = 0 then remove_at v k else v.vals.(k) <- x
  end
  else if x <> 0 then insert_at v k i x

let incr v i =
  check_index v i;
  let k = lower_bound v i in
  if k < v.nnz && v.idx.(k) = i then v.vals.(k) <- v.vals.(k) + 1 else insert_at v k i 1

let iteri ~f v =
  for k = 0 to v.nnz - 1 do
    f v.idx.(k) v.vals.(k)
  done

let merge v w =
  if v.n <> w.n then invalid_arg "Vclock.merge: size mismatch";
  (* one linear pass: does w add or raise anything, and how many slots
     does the union need? *)
  let i = ref 0 and j = ref 0 and union = ref 0 and needs = ref false in
  while !i < v.nnz || !j < w.nnz do
    let vi = if !i < v.nnz then v.idx.(!i) else max_int in
    let wi = if !j < w.nnz then w.idx.(!j) else max_int in
    if vi < wi then Stdlib.incr i
    else if wi < vi then begin
      needs := true;
      Stdlib.incr j
    end
    else begin
      if w.vals.(!j) > v.vals.(!i) then needs := true;
      Stdlib.incr i;
      Stdlib.incr j
    end;
    Stdlib.incr union
  done;
  if !needs then begin
    let m = !union in
    if Array.length v.idx < m then begin
      (* grow geometrically so a run of merges amortizes its copies *)
      let cap = max m (max 4 (2 * Array.length v.idx)) in
      let idx = Array.make cap 0 and vals = Array.make cap 0 in
      Array.blit v.idx 0 idx 0 v.nnz;
      Array.blit v.vals 0 vals 0 v.nnz;
      v.idx <- idx;
      v.vals <- vals
    end;
    (* merge back-to-front, in place: once w is exhausted, the remaining
       v prefix (slots 0..k) is already where it belongs *)
    let i = ref (v.nnz - 1) and j = ref (w.nnz - 1) and k = ref (m - 1) in
    while !j >= 0 do
      if !i >= 0 && v.idx.(!i) > w.idx.(!j) then begin
        v.idx.(!k) <- v.idx.(!i);
        v.vals.(!k) <- v.vals.(!i);
        Stdlib.decr i
      end
      else if !i >= 0 && v.idx.(!i) = w.idx.(!j) then begin
        v.idx.(!k) <- v.idx.(!i);
        v.vals.(!k) <- max v.vals.(!i) w.vals.(!j);
        Stdlib.decr i;
        Stdlib.decr j
      end
      else begin
        v.idx.(!k) <- w.idx.(!j);
        v.vals.(!k) <- w.vals.(!j);
        Stdlib.decr j
      end;
      Stdlib.decr k
    done;
    v.nnz <- m
  end

let leq v w =
  if v.n <> w.n then invalid_arg "Vclock.leq: size mismatch";
  let rec loop k = k >= v.nnz || (v.vals.(k) <= get w v.idx.(k) && loop (k + 1)) in
  loop 0

let equal v w =
  v.n = w.n
  && v.nnz = w.nnz
  &&
  let rec loop k = k >= v.nnz || (v.idx.(k) = w.idx.(k) && v.vals.(k) = w.vals.(k) && loop (k + 1)) in
  loop 0

let lt v w = leq v w && not (equal v w)

let concurrent v w = (not (leq v w)) && not (leq w v)

(* Lexicographic over the dense entries (sizes first), matching the old
   [Stdlib.compare] on plain arrays. *)
let compare v w =
  if v.n <> w.n then Stdlib.compare v.n w.n
  else begin
    let i = ref 0 and j = ref 0 and r = ref 0 in
    while !r = 0 && (!i < v.nnz || !j < w.nnz) do
      let vi = if !i < v.nnz then v.idx.(!i) else max_int in
      let wi = if !j < w.nnz then w.idx.(!j) else max_int in
      if vi < wi then begin
        (* v has a nonzero where w has 0 *)
        r := 1;
        Stdlib.incr i
      end
      else if wi < vi then begin
        r := -1;
        Stdlib.incr j
      end
      else begin
        r := Stdlib.compare v.vals.(!i) w.vals.(!j);
        Stdlib.incr i;
        Stdlib.incr j
      end
    done;
    !r
  end

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list (to_array v))
