type partition = { between : int list; from_t : int; to_t : int }

type intermittent = { host : int; from_t : int; to_t : int; up : int; down : int }

type spec = {
  drop : float;
  dup : float;
  reorder : float;
  reorder_window : int;
  partitions : partition list;
  intermittent : intermittent list;
}

let none =
  {
    drop = 0.0;
    dup = 0.0;
    reorder = 0.0;
    reorder_window = 0;
    partitions = [];
    intermittent = [];
  }

let is_none s = s = none

let validate ~n s =
  let prob name p =
    if p < 0.0 || p > 1.0 then Error (Printf.sprintf "%s probability must be in [0;1]" name)
    else Ok ()
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  prob "drop" s.drop >>= fun () ->
  prob "dup" s.dup >>= fun () ->
  prob "reorder" s.reorder >>= fun () ->
  (if s.reorder_window < 0 then Error "reorder_window must be >= 0"
   else if s.reorder > 0.0 && s.reorder_window = 0 then
     Error "reorder > 0 requires a positive reorder_window"
   else Ok ())
  >>= fun () ->
  let rec check_partitions = function
    | [] -> Ok ()
    | p :: rest ->
        if p.between = [] then Error "partition with an empty group"
        else if List.exists (fun pid -> pid < 0 || pid >= n) p.between then
          Error "partition member out of range"
        else if p.from_t < 0 || p.to_t < p.from_t then
          Error "partition requires 0 <= from_t <= to_t"
        else check_partitions rest
  in
  check_partitions s.partitions >>= fun () ->
  let rec check_intermittent = function
    | [] -> Ok ()
    | l :: rest ->
        if l.host < 0 || l.host >= n then Error "intermittent link host out of range"
        else if l.from_t < 0 || l.to_t < l.from_t then
          Error "intermittent link requires 0 <= from_t <= to_t"
        else if l.up < 1 || l.down < 1 then
          Error "intermittent link requires up >= 1 and down >= 1"
        else check_intermittent rest
  in
  check_intermittent s.intermittent

let cuts s ~time ~src ~dst =
  List.exists
    (fun (p : partition) ->
      time >= p.from_t && time < p.to_t
      && List.mem src p.between <> List.mem dst p.between)
    s.partitions
  || List.exists
       (fun (l : intermittent) ->
         (src = l.host || dst = l.host)
         && time >= l.from_t && time < l.to_t
         && (time - l.from_t) mod (l.up + l.down) >= l.up)
       s.intermittent

let pp ppf s =
  if is_none s then Format.fprintf ppf "reliable"
  else begin
    Format.fprintf ppf "drop=%.3f dup=%.3f reorder=%.3f/%d" s.drop s.dup s.reorder
      s.reorder_window;
    List.iter
      (fun p ->
        Format.fprintf ppf " partition{%s}@@[%d;%d)"
          (String.concat "," (List.map string_of_int p.between))
          p.from_t p.to_t)
      s.partitions;
    List.iter
      (fun l ->
        Format.fprintf ppf " flaky{%d}@@[%d;%d)%d/%d" l.host l.from_t l.to_t l.up l.down)
      s.intermittent
  end
