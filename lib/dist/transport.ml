type params = { retx_timeout : int; backoff : float; jitter : int; max_retx : int }

let default_params = { retx_timeout = 250; backoff = 2.0; jitter = 20; max_retx = 25 }

let validate_params p =
  if p.retx_timeout < 1 then Error "retx_timeout must be >= 1"
  else if p.backoff < 1.0 then Error "backoff must be >= 1.0"
  else if p.jitter < 0 then Error "jitter must be >= 0"
  else if p.max_retx < 0 then Error "max_retx must be >= 0 (finite, so runs terminate)"
  else Ok ()

type wire =
  | Data of { src : int; dst : int; seq : int }
  | Ack of { src : int; dst : int; cum : int }
  | Retx_timer of { src : int; dst : int; seq : int }

type 'a emit =
  | Deliver of { src : int; dst : int; msg : 'a }
  | Wire of { at : int; wire : wire }
  | Undeliverable of { src : int; dst : int; msg : 'a }

type notice =
  | N_drop of { src : int; dst : int; time : int }
  | N_retransmit of { src : int; dst : int; seq : int; attempt : int; time : int }

type 'a entry = { payload : 'a; mutable retx : int }

type 'a link = {
  (* sender side *)
  mutable next_seq : int;
  mutable cum_acked : int; (* every seq < cum_acked is settled at the sender *)
  unacked : (int, 'a entry) Hashtbl.t;
  (* receiver side *)
  mutable expected : int; (* next seq to deliver in order *)
  buffer : (int, 'a) Hashtbl.t; (* out-of-order arrivals awaiting the gap *)
  abandoned : (int, unit) Hashtbl.t; (* seqs the sender gave up on *)
}

type stats = {
  accepted : int;
  delivered : int;
  undeliverable : int;
  data_packets : int;
  retransmissions : int;
  ack_packets : int;
  packets_dropped : int;
  duplicated : int;
  duplicates_suppressed : int;
  reordered : int;
}

type 'a t = {
  n : int;
  params : params;
  faults : Faults.spec;
  channel : Channel.spec;
  rng : Rng.t;
  notify : notice -> unit;
  links : (int, 'a link) Hashtbl.t; (* keyed src * n + dst; allocated per live link *)
  mutable unacked_total : int; (* maintained at every unacked add/settle site *)
  mutable accepted : int;
  mutable delivered : int;
  mutable undeliverable : int;
  mutable data_packets : int;
  mutable retransmissions : int;
  mutable ack_packets : int;
  mutable packets_dropped : int;
  mutable duplicated : int;
  mutable duplicates_suppressed : int;
  mutable reordered : int;
}

let create ?(notify = fun (_ : notice) -> ()) ~n ~params ~faults ~channel ~rng () =
  (match validate_params params with
  | Ok () -> ()
  | Error e -> invalid_arg ("Transport.create: " ^ e));
  if n < 1 then invalid_arg "Transport.create: n must be >= 1";
  {
    n;
    params;
    faults;
    channel;
    rng;
    notify;
    (* no per-pair state up front: n = 10^4 endpoints with 100 live links
       must cost O(links), not O(n^2) — link records appear on first use *)
    links = Hashtbl.create 64;
    unacked_total = 0;
    accepted = 0;
    delivered = 0;
    undeliverable = 0;
    data_packets = 0;
    retransmissions = 0;
    ack_packets = 0;
    packets_dropped = 0;
    duplicated = 0;
    duplicates_suppressed = 0;
    reordered = 0;
  }

let link t src dst =
  let key = (src * t.n) + dst in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
      let l =
        {
          next_seq = 0;
          cum_acked = 0;
          unacked = Hashtbl.create 8;
          expected = 0;
          buffer = Hashtbl.create 8;
          abandoned = Hashtbl.create 2;
        }
      in
      Hashtbl.add t.links key l;
      l

let live_links t = Hashtbl.length t.links

(* Timeout before retransmission number [k+1]: exponential backoff from the
   base timeout, capped at 32x so healing partitions are re-probed within a
   bounded interval. *)
let rto t k =
  let f = float_of_int t.params.retx_timeout *. (t.params.backoff ** float_of_int k) in
  let cap = t.params.retx_timeout * 32 in
  max 1 (min cap (int_of_float f))

let jitter t = if t.params.jitter = 0 then 0 else Rng.int t.rng (t.params.jitter + 1)

(* One transmission of [wire] from [src] to [dst] through the faulty
   network: an active partition silences the attempt; otherwise the packet
   is possibly duplicated, and each copy is independently dropped, delayed
   by the channel distribution, and possibly held back by an adversarial
   reordering delay.  Surviving copies are appended to [acc] (reversed). *)
let through_network t ~now ~src ~dst wire acc =
  if Faults.cuts t.faults ~time:now ~src ~dst then begin
    t.packets_dropped <- t.packets_dropped + 1;
    t.notify (N_drop { src; dst; time = now })
  end
  else begin
    let copies =
      if t.faults.Faults.dup > 0.0 && Rng.bernoulli t.rng t.faults.Faults.dup then begin
        t.duplicated <- t.duplicated + 1;
        2
      end
      else 1
    in
    for _ = 1 to copies do
      if t.faults.Faults.drop > 0.0 && Rng.bernoulli t.rng t.faults.Faults.drop then begin
        t.packets_dropped <- t.packets_dropped + 1;
        t.notify (N_drop { src; dst; time = now })
      end
      else begin
        let delay = Channel.sample t.rng t.channel in
        let extra =
          if t.faults.Faults.reorder > 0.0 && Rng.bernoulli t.rng t.faults.Faults.reorder
          then begin
            t.reordered <- t.reordered + 1;
            Rng.int_in t.rng 1 t.faults.Faults.reorder_window
          end
          else 0
        in
        acc := Wire { at = now + delay + extra; wire } :: !acc
      end
    done
  end

(* Deliver every in-order message available at the receiver of [l],
   skipping over abandoned gaps. *)
let flush t ~src ~dst l acc =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt l.buffer l.expected with
    | Some payload ->
        Hashtbl.remove l.buffer l.expected;
        l.expected <- l.expected + 1;
        t.delivered <- t.delivered + 1;
        acc := Deliver { src; dst; msg = payload } :: !acc
    | None ->
        if Hashtbl.mem l.abandoned l.expected then begin
          Hashtbl.remove l.abandoned l.expected;
          l.expected <- l.expected + 1
        end
        else continue := false
  done

let send_ack t ~now ~src ~dst l acc =
  t.ack_packets <- t.ack_packets + 1;
  (* the acknowledgement travels the reverse direction *)
  through_network t ~now ~src:dst ~dst:src (Ack { src; dst; cum = l.expected }) acc

let send t ~now ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Transport.send: pid out of range";
  if src = dst then invalid_arg "Transport.send: src = dst";
  let l = link t src dst in
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  Hashtbl.replace l.unacked seq { payload = msg; retx = 0 };
  t.unacked_total <- t.unacked_total + 1;
  t.accepted <- t.accepted + 1;
  t.data_packets <- t.data_packets + 1;
  let acc = ref [] in
  through_network t ~now ~src ~dst (Data { src; dst; seq }) acc;
  acc := Wire { at = now + rto t 0 + jitter t; wire = Retx_timer { src; dst; seq } } :: !acc;
  List.rev !acc

let handle t ~now wire =
  match wire with
  | Data { src; dst; seq } ->
      let l = link t src dst in
      if seq < l.expected || Hashtbl.mem l.buffer seq || Hashtbl.mem l.abandoned seq then begin
        (* redundant copy (already delivered, already buffered, or a stray
           copy of an abandoned message): discard, but refresh the ack so a
           sender whose acks were lost stops retransmitting *)
        t.duplicates_suppressed <- t.duplicates_suppressed + 1;
        let acc = ref [] in
        send_ack t ~now ~src ~dst l acc;
        List.rev !acc
      end
      else begin
        (* first arrival of this seq; the payload lives in the sender-side
           entry, which must still exist: the cumulative ack that would have
           removed it implies the receiver had already advanced past [seq] *)
        let payload =
          match Hashtbl.find_opt l.unacked seq with
          | Some e -> e.payload
          | None -> assert false
        in
        Hashtbl.replace l.buffer seq payload;
        let acc = ref [] in
        flush t ~src ~dst l acc;
        send_ack t ~now ~src ~dst l acc;
        List.rev !acc
      end
  | Ack { src; dst; cum } ->
      let l = link t src dst in
      (* cumulative: settle every seq < cum (counting up keeps the removal
         order deterministic); stale acks are no-ops *)
      while l.cum_acked < cum do
        (* an abandoned seq is already gone from [unacked] — only settle
           the in-flight counter for entries actually removed *)
        if Hashtbl.mem l.unacked l.cum_acked then begin
          Hashtbl.remove l.unacked l.cum_acked;
          t.unacked_total <- t.unacked_total - 1
        end;
        l.cum_acked <- l.cum_acked + 1
      done;
      []
  | Retx_timer { src; dst; seq } -> (
      let l = link t src dst in
      match Hashtbl.find_opt l.unacked seq with
      | None -> [] (* settled: acknowledged (or already abandoned) *)
      | Some e ->
          if e.retx >= t.params.max_retx then
            if seq < l.expected || Hashtbl.mem l.buffer seq then begin
              (* the receiver does have it — only the acknowledgements were
                 lost; the simulation is omniscient, so settle silently
                 rather than double-report a delivered message *)
              Hashtbl.remove l.unacked seq;
              t.unacked_total <- t.unacked_total - 1;
              []
            end
            else begin
              Hashtbl.remove l.unacked seq;
              t.unacked_total <- t.unacked_total - 1;
              Hashtbl.replace l.abandoned seq ();
              t.undeliverable <- t.undeliverable + 1;
              let acc = ref [ Undeliverable { src; dst; msg = e.payload } ] in
              (* the gap is now permanent: let buffered successors through *)
              flush t ~src ~dst l acc;
              List.rev !acc
            end
          else begin
            e.retx <- e.retx + 1;
            t.retransmissions <- t.retransmissions + 1;
            t.data_packets <- t.data_packets + 1;
            t.notify (N_retransmit { src; dst; seq; attempt = e.retx; time = now });
            let acc = ref [] in
            through_network t ~now ~src ~dst (Data { src; dst; seq }) acc;
            acc :=
              Wire { at = now + rto t e.retx + jitter t; wire = Retx_timer { src; dst; seq } }
              :: !acc;
            List.rev !acc
          end)

let in_flight t = t.unacked_total

let stats t =
  {
    accepted = t.accepted;
    delivered = t.delivered;
    undeliverable = t.undeliverable;
    data_packets = t.data_packets;
    retransmissions = t.retransmissions;
    ack_packets = t.ack_packets;
    packets_dropped = t.packets_dropped;
    duplicated = t.duplicated;
    duplicates_suppressed = t.duplicates_suppressed;
    reordered = t.reordered;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "transport: %d msgs (%d delivered, %d undeliverable), %d data pkts (%d retx), %d acks, %d \
     dropped, %d duplicated, %d dup-suppressed, %d reordered"
    s.accepted s.delivered s.undeliverable s.data_packets s.retransmissions s.ack_packets
    s.packets_dropped s.duplicated s.duplicates_suppressed s.reordered
