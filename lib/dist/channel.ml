type spec =
  | Fixed of int
  | Uniform of int * int
  | Bimodal of { fast : int; slow : int; slow_prob : float }

let validate = function
  | Fixed d when d >= 1 -> Ok ()
  | Fixed _ -> Error "Fixed delay must be >= 1"
  | Uniform (lo, hi) when 1 <= lo && lo <= hi -> Ok ()
  | Uniform _ -> Error "Uniform delay requires 1 <= lo <= hi"
  | Bimodal { fast; slow; slow_prob } when fast >= 1 && slow >= fast && slow_prob >= 0.0 && slow_prob <= 1.0 -> Ok ()
  | Bimodal _ -> Error "Bimodal delay requires 1 <= fast <= slow and slow_prob in [0;1]"

(* No clamping here: specs are rejected up front ({!validate} is enforced
   at every config entry point), so for any spec that got this far the
   drawn delay is already >= 1. *)
let sample rng = function
  | Fixed d -> d
  | Uniform (lo, hi) -> Rng.int_in rng lo hi
  | Bimodal { fast; slow; slow_prob } -> if Rng.bernoulli rng slow_prob then slow else fast

let pp ppf = function
  | Fixed d -> Format.fprintf ppf "fixed(%d)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d,%d)" lo hi
  | Bimodal { fast; slow; slow_prob } ->
      Format.fprintf ppf "bimodal(fast=%d,slow=%d,p=%.2f)" fast slow slow_prob
