(** Order-stable traversal of hash tables.

    [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets in an unspecified
    order that varies with the hash function, the insertion history and
    the OCaml version.  Any such enumeration that reaches ordered output
    (reports, JSON, tables) is a reproducibility bug waiting to happen —
    the repo's headline guarantee is bit-identical output for every
    [--jobs N] and across traced/untraced runs.

    This module is the sanctioned way to get bindings {e out} of a table:
    every traversal is keyed by an explicit comparison, so the result is a
    pure function of the table's contents.  The [rdtlint] D1 rule flags
    direct [Hashtbl.iter]/[Hashtbl.fold] call sites everywhere except
    here (and explicitly allowlisted lines). *)

val bindings_sorted : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key with [compare].  When a key has several
    bindings (via [Hashtbl.add]), their relative order is the table's
    most-recent-first order, kept stable by the sort. *)

val keys_sorted : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val iter_sorted : compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
