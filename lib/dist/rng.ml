type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Variant 13 of the MurmurHash3 64-bit finalizer, as used by SplitMix64. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let derive_seed seed label =
  (* A keyed split: fold the label into a SplitMix64 walk started at the
     seed, one Weyl step + finalizer per byte, so (seed, label) pairs give
     statistically independent streams and the result does not depend on
     any shared generator state. *)
  let h = ref (mix64 (Int64.of_int seed)) in
  String.iter
    (fun c ->
      h := Int64.add !h golden_gamma;
      h := mix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    label;
  Int64.to_int (Int64.shift_right_logical (mix64 (Int64.add !h golden_gamma)) 2)

(* A non-negative 62-bit int, safe on 64-bit OCaml. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_usable = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  let rec draw () =
    let v = bits t in
    if v < max_usable then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let exponential_int t ~mean =
  if mean <= 0 then invalid_arg "Rng.exponential_int: mean must be positive";
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  let d = -.float_of_int mean *. log u in
  max 1 (int_of_float d)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
