let bindings_sorted ~compare:cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let keys_sorted ~compare:cmp tbl = List.map fst (bindings_sorted ~compare:cmp tbl)

let iter_sorted ~compare:cmp f tbl =
  List.iter (fun (k, v) -> f k v) (bindings_sorted ~compare:cmp tbl)
