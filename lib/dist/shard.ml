(* Conservative lockstep-epoch sharding over Event_queue.

   Determinism argument, shard by shard: a shard's local execution is a
   pure function of the sequence of events inserted into its queue and
   the order of insertion.  Local scheduling happens inside the shard's
   own sequential step; cross-shard insertions happen only at the
   exchange barrier, where the incoming batch is sorted by a key —
   (arrival time, seed-derived source tiebreak, source shard, emission
   seq) — that is itself deterministic.  Worker count can only change
   *when* shards are stepped relative to wall clock, never what any
   shard observes. *)

type 'a incoming = { at : int; tie : int; src : int; emit_seq : int; payload : 'a }

type 'a t = {
  shards : int;
  lookahead : int;
  ties : int array; (* seed-derived merge tiebreak per shard *)
  queues : 'a Event_queue.t array;
  outbox : 'a incoming list array array; (* outbox.(src).(dst), newest first *)
  emit_seq : int array; (* per-src counter for stable outbox ordering *)
  stepped : int array; (* per-shard handled-event counts *)
  mutable horizon : int;
}

let create ~shards ~seed ~lookahead () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead must be >= 1";
  {
    shards;
    lookahead;
    ties = Array.init shards (fun i -> Rng.derive_seed seed (Printf.sprintf "shard.%d" i));
    queues = Array.init shards (fun _ -> Event_queue.create ());
    outbox = Array.make_matrix shards shards [];
    emit_seq = Array.make shards 0;
    stepped = Array.make shards 0;
    horizon = 0;
  }

let num_shards t = t.shards

let lookahead t = t.lookahead

let horizon t = t.horizon

let check_shard t s what =
  if s < 0 || s >= t.shards then invalid_arg (Printf.sprintf "Shard.%s: shard %d out of range" what s)

let schedule t ~shard ~time payload =
  check_shard t shard "schedule";
  Event_queue.schedule t.queues.(shard) ~time payload

let post t ~src ~dst ~time payload =
  check_shard t src "post";
  check_shard t dst "post";
  if time < t.horizon then
    invalid_arg
      (Printf.sprintf "Shard.post: arrival %d below horizon %d breaks lookahead" time t.horizon);
  let seq = t.emit_seq.(src) in
  t.emit_seq.(src) <- seq + 1;
  t.outbox.(src).(dst) <-
    { at = time; tie = t.ties.(src); src; emit_seq = seq; payload } :: t.outbox.(src).(dst)

(* (time, tie, src, emit_seq): time first; then the seed-derived shard
   tiebreak; src and emission order make the key total even if two
   derived tiebreaks collide. *)
let compare_incoming a b =
  let c = compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.tie b.tie in
    if c <> 0 then c
    else
      let c = compare a.src b.src in
      if c <> 0 then c else compare a.emit_seq b.emit_seq

let exchange t =
  for dst = 0 to t.shards - 1 do
    let batch = ref [] in
    for src = 0 to t.shards - 1 do
      batch := List.rev_append t.outbox.(src).(dst) !batch;
      t.outbox.(src).(dst) <- []
    done;
    List.iter
      (fun m -> Event_queue.schedule t.queues.(dst) ~time:m.at m.payload)
      (List.sort compare_incoming !batch)
  done;
  (* advance the horizon: everything below (earliest pending) + lookahead
     is now safe on every shard *)
  let m = ref max_int in
  Array.iter
    (fun q -> match Event_queue.peek_time q with Some x when x < !m -> m := x | _ -> ())
    t.queues;
  if !m < max_int then t.horizon <- !m + t.lookahead

let step t ~shard ~handler =
  check_shard t shard "step";
  let q = t.queues.(shard) in
  let handled = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time q with
    | Some time when time < t.horizon ->
        (match Event_queue.pop q with
        | Some (time, payload) ->
            incr handled;
            handler ~time payload
        | None -> assert false)
    | _ -> continue := false
  done;
  t.stepped.(shard) <- t.stepped.(shard) + !handled;
  !handled

let finished t =
  Array.for_all Event_queue.is_empty t.queues
  && Array.for_all (Array.for_all (fun l -> l = [])) t.outbox

let total_stepped t = Array.fold_left ( + ) 0 t.stepped
