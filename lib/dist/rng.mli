(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness of a simulation run flows from a single [t] created from
    an integer seed, which makes every run reproducible from [(seed, params)]
    alone.  The generator is the SplitMix64 construction of Steele, Lea and
    Flood: a 64-bit Weyl sequence hashed by a variant of the MurmurHash3
    finalizer.  It is fast, has a period of 2^64 and passes BigCrush; it is
    of course not cryptographic. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created from
    the same seed produce the same stream. *)

val copy : t -> t
(** [copy t] is an independent generator that continues the exact stream of
    [t] (useful to replay a run without disturbing [t]). *)

val split : t -> t
(** [split t] derives a new generator statistically independent from the
    future output of [t].  [t] is advanced. *)

val derive_seed : int -> string -> int
(** [derive_seed seed label] is a non-negative seed derived from [(seed,
    label)] by a keyed SplitMix64 walk — a {!split} whose key is a string
    instead of shared generator state.  Used to give every cell of an
    experiment grid its own stream from the cell's coordinates alone, so
    results are independent of the order (or parallelism) in which cells
    run.  Deterministic; distinct labels give statistically independent
    streams. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0;1\]]). *)

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli([p]) failures before the
    first success, i.e. a discrete waiting time with mean [(1-p)/p].
    @raise Invalid_argument if [p <= 0. || p > 1.]. *)

val exponential_int : t -> mean:int -> int
(** [exponential_int t ~mean] is an integer exponential waiting time with
    the given mean, at least [1].  Used for memoryless inter-event delays in
    simulated (integer) time. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place uniformly (Fisher-Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].
    @raise Invalid_argument if [a] is empty. *)
