(** Sharded discrete-event substrate with a deterministic cross-shard merge.

    Splits one logical event queue into [shards] independent
    {!Event_queue}s so a driver can process shards in parallel, while
    keeping the observable execution {e bit-identical for any worker
    count}.  The construction is conservative parallel discrete-event
    simulation in lockstep epochs:

    - [lookahead] is the minimum latency of any cross-shard message.
      Each round, the global horizon advances to [m + lookahead] where
      [m] is the earliest pending event anywhere, and every shard may
      safely process all of its events strictly below the horizon —
      no message generated this round can arrive below it.
    - Within a shard, events pop in deterministic [(time, insertion
      seq)] order, exactly as in the unsharded engine.
    - Cross-shard messages go to per-(src, dst) outboxes and are merged
      into their destination queues only at the {!exchange} barrier,
      sorted by [(arrival time, seed-derived shard tiebreak, emission
      seq)].  The tiebreak comes from {!Rng.derive_seed} on the shard
      index, so the merge order is a pure function of [(seed, messages)]
      — never of scheduling, worker count, or arrival interleaving.

    The driver loop (see [Rdt_harness.Scale]) is:
    {[
      while not (Shard.finished t) do
        Shard.exchange t;                   (* barrier: route + advance *)
        (* for each shard, in parallel: *)  (* no shared mutable state  *)
        ignore (Shard.step t ~shard ~handler);
      done
    ]}
    [step] on distinct shards touches disjoint state, so the per-epoch
    fan-out can run on the domain pool unchanged. *)

type 'a t

val create : shards:int -> seed:int -> lookahead:int -> unit -> 'a t
(** [lookahead] must be [>= 1]: it is the caller's promise that no
    cross-shard message travels faster (checked at every {!post}).
    @raise Invalid_argument if [shards < 1] or [lookahead < 1]. *)

val num_shards : 'a t -> int

val lookahead : 'a t -> int

val horizon : 'a t -> int
(** Exclusive upper bound on event times {!step} may currently process;
    advanced by {!exchange}. *)

val schedule : 'a t -> shard:int -> time:int -> 'a -> unit
(** Enqueue a local event on [shard].  Callable while seeding the
    simulation, or from a handler {e for the shard being stepped}. *)

val post : 'a t -> src:int -> dst:int -> time:int -> 'a -> unit
(** Emit a cross-shard message from inside a handler running on shard
    [src].  It is held in the (src, dst) outbox until the next
    {!exchange}.  @raise Invalid_argument if [time] is below the current
    horizon — that would break the conservative-lookahead contract. *)

val exchange : 'a t -> unit
(** Barrier: deterministically merge every outbox into its destination
    queue and advance the horizon to (earliest pending event) +
    [lookahead].  Must not run concurrently with {!step}. *)

val step : 'a t -> shard:int -> handler:(time:int -> 'a -> unit) -> int
(** Process every event of [shard] with time below the current horizon,
    in (time, insertion) order; returns the number handled.  The handler
    may {!schedule} onto its own shard (at any time [>= now]) and {!post}
    to others.  Safe to call concurrently for distinct shards. *)

val finished : 'a t -> bool
(** No pending events in any queue and no messages in any outbox. *)

val total_stepped : 'a t -> int
(** Events handled by {!step} since creation, summed over shards
    (read at a barrier, not during a parallel step). *)
