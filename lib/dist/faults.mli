(** Deterministic network-fault injection.

    The paper's computational model assumes reliable asynchronous channels
    with finite delays; a {!spec} describes how far a simulated network is
    allowed to deviate from that model.  Packets (not application messages
    — the {!Transport} layer sits in between) are independently lost,
    duplicated and adversarially delayed, and scheduled bidirectional
    partitions silence whole groups of links for a time window.

    All sampling is driven by an {!Rng.t} owned by the caller, so a faulty
    run remains a pure function of its configuration: same seed, same fault
    spec, same packet fates. *)

type partition = {
  between : int list;
      (** the processes cut off from everyone else; links {e inside} the
          group and links {e among} the rest keep working *)
  from_t : int;  (** first instant (inclusive) at which the cut is active *)
  to_t : int;  (** first instant at which the cut has healed (exclusive) *)
}

type intermittent = {
  host : int;
      (** the process whose links flap — the mobile host of the
          checkpointing-for-mobile-systems literature, periodically walking
          out of radio range *)
  from_t : int;  (** first instant (inclusive) of the flapping window *)
  to_t : int;  (** first instant past the window (exclusive) *)
  up : int;  (** instants of connectivity opening each cycle; [>= 1] *)
  down : int;  (** instants of disconnection closing each cycle; [>= 1] *)
}

type spec = {
  drop : float;  (** per-packet-copy loss probability, in [\[0;1\]] *)
  dup : float;  (** probability a packet is duplicated by the network *)
  reorder : float;
      (** probability a packet copy is held back by an adversarial extra
          delay — burst reordering beyond what the delay distribution
          already produces *)
  reorder_window : int;
      (** the extra delay is drawn uniformly in [\[1; reorder_window\]];
          must be positive whenever [reorder > 0] *)
  partitions : partition list;
  intermittent : intermittent list;
      (** per-host flapping links: within [\[from_t; to_t)] every link
          touching [host] repeats [up] connected instants followed by
          [down] severed ones, starting connected at [from_t] *)
}

val none : spec
(** No faults: the reliable network of the paper. *)

val is_none : spec -> bool

val validate : n:int -> spec -> (unit, string) result
(** Probabilities in range, windows ordered, partition members valid pids
    ([n] is the number of processes). *)

val cuts : spec -> time:int -> src:int -> dst:int -> bool
(** Is the (bidirectional) link between [src] and [dst] severed at
    [time] — by an active partition, or by an intermittent link of
    either endpoint sitting in the down phase of its cycle?  A
    transmission attempted at such an instant is lost. *)

val pp : Format.formatter -> spec -> unit
