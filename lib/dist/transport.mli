(** Reliable-delivery transport over an unreliable network.

    Recovers the paper's channel model — every message delivered exactly
    once, after a finite delay — on top of a network that loses, duplicates
    and reorders packets ({!Faults}).  Per ordered pair of processes the
    transport keeps a unidirectional link with:

    - sender side: sequence numbers, a buffer of unacknowledged messages,
      and per-message retransmission timers with exponential backoff and
      seeded jitter;
    - receiver side: the next expected sequence number, a reordering buffer
      for out-of-order arrivals, and cumulative acknowledgements.

    Delivery to the caller is {e exactly-once and FIFO per link}: a message
    is surfaced through {!emit} [Deliver] at its first in-order arrival
    only, so piggybacked CIC control information is merged exactly once.
    (FIFO links are a special case of the paper's non-FIFO channels, so
    every RDT guarantee carries over.)

    The transport is {e passive}: it never touches an event queue itself.
    {!send} and {!handle} return a list of {!emit} effects; the caller
    schedules every [Wire] effect on its own queue and feeds the packet
    back through {!handle} when the simulated clock reaches it.  All
    randomness (fault sampling, delays, jitter) comes from the [rng] given
    at creation, so runs are reproducible from the seed.

    {b Graceful degradation.}  A message still unacknowledged after
    [max_retx] retransmissions is abandoned with a typed [Undeliverable]
    effect instead of blocking the link forever: the receiver skips over
    the gap (delivering any buffered successors) and later stray copies are
    discarded.  Because the simulation is omniscient, a message the
    receiver {e did} obtain while only the acknowledgements were lost is
    counted as delivered, never as undeliverable — [Undeliverable] and
    [Deliver] are mutually exclusive per message.  Since [max_retx] is
    finite, every run terminates: each message ends either delivered or
    undeliverable and {!in_flight} returns to [0]. *)

type params = {
  retx_timeout : int;  (** initial retransmission timeout (>= 1) *)
  backoff : float;  (** timeout multiplier per retry (>= 1); growth capped at 32x *)
  jitter : int;  (** seeded extra delay in [\[0; jitter\]] added to each timeout *)
  max_retx : int;
      (** retransmissions before the message is abandoned as
          [Undeliverable] (>= 0); keeps every run finite *)
}

val default_params : params
(** [{ retx_timeout = 250; backoff = 2.0; jitter = 20; max_retx = 25 }] —
    tuned to the default [Uniform (5, 100)] channel: at 10% drop the
    probability of a spurious [Undeliverable] is about [1e-25]. *)

val validate_params : params -> (unit, string) result

(** Wire-level events: the caller schedules them at the time given by the
    [Wire] effect and hands them back to {!handle}. *)
type wire =
  | Data of { src : int; dst : int; seq : int }
  | Ack of { src : int; dst : int; cum : int }
      (** cumulative: [dst] has delivered every seq [< cum] on the
          [src -> dst] link *)
  | Retx_timer of { src : int; dst : int; seq : int }

(** Effects returned by {!send} and {!handle}, in the order they must be
    applied. *)
type 'a emit =
  | Deliver of { src : int; dst : int; msg : 'a }
      (** first in-order arrival: hand the message to the protocol *)
  | Wire of { at : int; wire : wire }  (** schedule this packet/timer *)
  | Undeliverable of { src : int; dst : int; msg : 'a }
      (** abandoned after [max_retx] retransmissions *)

(** Observability callbacks: transport-internal incidents that do not
    surface as {!emit} effects but that a tracing layer wants to see.
    [time] is the simulated clock of the incident. *)
type notice =
  | N_drop of { src : int; dst : int; time : int }
      (** one packet copy lost to drop sampling or a partition *)
  | N_retransmit of { src : int; dst : int; seq : int; attempt : int; time : int }
      (** retransmission number [attempt] (1-based) of [seq] *)

type 'a t

val create :
  ?notify:(notice -> unit) ->
  n:int ->
  params:params ->
  faults:Faults.spec ->
  channel:Channel.spec ->
  rng:Rng.t ->
  unit ->
  'a t
(** The transport owns [rng] from here on (dedicate a {!Rng.split} stream
    to it).  [notify] (default: ignore) is called synchronously as incidents
    happen; it must not call back into the transport.
    @raise Invalid_argument on invalid [params]. *)

val send : 'a t -> now:int -> src:int -> dst:int -> 'a -> 'a emit list
(** Entrust a message to the transport.
    @raise Invalid_argument if [src = dst] or a pid is out of range. *)

val handle : 'a t -> now:int -> wire -> 'a emit list

val in_flight : 'a t -> int
(** Messages accepted by {!send} and neither delivered nor abandoned yet.
    [0] once the caller's event queue has drained.  O(1): maintained as a
    counter, never recomputed by walking the link table. *)

val live_links : 'a t -> int
(** Number of ordered (src, dst) pairs that have carried traffic.  Link
    state is allocated lazily per live pair, so a transport over [n]
    endpoints costs O({!live_links}), not O(n{^ 2}). *)

type stats = {
  accepted : int;  (** messages entrusted to the transport *)
  delivered : int;  (** in-order exactly-once deliveries *)
  undeliverable : int;  (** messages abandoned after [max_retx] retries *)
  data_packets : int;  (** data transmission attempts (first + retx) *)
  retransmissions : int;
  ack_packets : int;  (** acknowledgement transmission attempts *)
  packets_dropped : int;  (** copies lost to drop sampling or partitions *)
  duplicated : int;  (** copies added by network duplication *)
  duplicates_suppressed : int;  (** redundant arrivals discarded at the receiver *)
  reordered : int;  (** copies held back by adversarial extra delay *)
}

val stats : 'a t -> stats

val pp_stats : Format.formatter -> stats -> unit
