(** Channel delay models.

    The computational model of the paper assumes each ordered pair of
    processes is connected by a reliable, directed, asynchronous channel
    whose transmission delays are unpredictable but finite.  A [spec]
    describes the delay distribution; {!sample} draws a concrete delay.
    Channels are not required to be FIFO — a [Uniform] spec with a wide
    range reorders messages freely, which is what exercises non-causal
    message chains. *)

type spec =
  | Fixed of int  (** Every message takes exactly this many time units. *)
  | Uniform of int * int
      (** [Uniform (lo, hi)]: delay drawn uniformly in [\[lo, hi\]]. *)
  | Bimodal of { fast : int; slow : int; slow_prob : float }
      (** Mostly-[fast] delays with occasional [slow] stragglers — a simple
          model of a congested link that creates deep message overtaking. *)

val sample : Rng.t -> spec -> int
(** [sample rng spec] draws a delay; [>= 1] for any spec accepted by
    {!validate}.  [sample] does not re-validate — config entry points
    ({!Rdt_core.Runtime.run}, [Crash_sim.run]) reject bad specs with
    [Invalid_argument] instead of silently clamping here. *)

val validate : spec -> (unit, string) result
(** Checks bounds are positive and ordered. *)

val pp : Format.formatter -> spec -> unit
