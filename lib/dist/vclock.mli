(** Vector clocks over a fixed set of [n] processes.

    The transitive dependency vectors of the RDT protocols are vector clocks
    whose local entry counts checkpoint intervals instead of events; this
    module provides the generic lattice operations shared by both uses. *)

type t
(** A vector of [n] non-negative counters.  Mutable. *)

val create : n:int -> t
(** All entries zero. *)

val of_array : int array -> t
(** Takes ownership of a copy of the array. *)

val to_array : t -> int array
(** A fresh copy of the entries. *)

val copy : t -> t

val size : t -> int

val nnz : t -> int
(** Number of nonzero entries actually stored.  The sparse representation
    costs O(nnz) words regardless of {!size} — the scaled engine's
    per-message payload budget is [nnz], not [n]. *)

val iteri : f:(int -> int -> unit) -> t -> unit
(** [iteri ~f v] calls [f i x] for every {e nonzero} entry [x] at
    position [i], in ascending position order. *)

val get : t -> int -> int

val set : t -> int -> int -> unit

val incr : t -> int -> unit
(** [incr v i] bumps entry [i] (the "tick" of process [i]). *)

val merge : t -> t -> unit
(** [merge v w] sets [v] to the component-wise maximum of [v] and [w]. *)

val leq : t -> t -> bool
(** Pointwise order: [leq v w] iff every entry of [v] is [<=] in [w]. *)

val lt : t -> t -> bool
(** Strict causal order: [leq v w] and [v <> w]. *)

val concurrent : t -> t -> bool
(** Neither [leq v w] nor [leq w v]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic) for use in ordered containers; not the
    causal order. *)

val pp : Format.formatter -> t -> unit
