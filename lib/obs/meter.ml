(* Registry cells are atomics; the only shared mutable structure is the
   name -> cell table, guarded by a spin-lock taken only on the (rare)
   find-or-create path.  Hot-path updates are a single [Atomic.fetch_and_add]
   on an already-created cell. *)

type span_cell = { s_calls : int Atomic.t; s_nanos : int Atomic.t }

type cell = Counter of int Atomic.t | Gauge of int Atomic.t | Span of span_cell

type t = { lock : bool Atomic.t; cells : (string, cell) Hashtbl.t }

let now () = Unix.gettimeofday ()

let create () = { lock = Atomic.make false; cells = Hashtbl.create 32 }

let default = create ()

let with_lock t f =
  (* plain spin: the lock is only held for a table lookup/insert, and on
     4.14 (no domains) it never contends *)
  while not (Atomic.compare_and_set t.lock false true) do
    ()
  done;
  Fun.protect ~finally:(fun () -> Atomic.set t.lock false) f

let find_or_create t name mk =
  match with_lock t (fun () -> Hashtbl.find_opt t.cells name) with
  | Some c -> c
  | None ->
      with_lock t (fun () ->
          match Hashtbl.find_opt t.cells name with
          | Some c -> c
          | None ->
              let c = mk () in
              Hashtbl.add t.cells name c;
              c)

let counter_cell t name =
  match find_or_create t name (fun () -> Counter (Atomic.make 0)) with
  | Counter a -> a
  | Gauge _ | Span _ -> invalid_arg (Printf.sprintf "Meter: %S is not a counter" name)

let add t name v = ignore (Atomic.fetch_and_add (counter_cell t name) v)
let incr t name = add t name 1

let set_gauge t name v =
  match find_or_create t name (fun () -> Gauge (Atomic.make v)) with
  | Gauge a -> Atomic.set a v
  | Counter _ | Span _ -> invalid_arg (Printf.sprintf "Meter: %S is not a gauge" name)

let span_cell t name =
  match
    find_or_create t name (fun () -> Span { s_calls = Atomic.make 0; s_nanos = Atomic.make 0 })
  with
  | Span s -> s
  | Counter _ | Gauge _ -> invalid_arg (Printf.sprintf "Meter: %S is not a span" name)

let add_span t name seconds =
  let s = span_cell t name in
  ignore (Atomic.fetch_and_add s.s_calls 1);
  ignore (Atomic.fetch_and_add s.s_nanos (int_of_float (seconds *. 1e9)))

let time t name f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add_span t name (now () -. t0)) f

type span = { calls : int; seconds : float }

let snapshot t =
  with_lock t (fun () -> Rdt_dist.Tbl.bindings_sorted ~compare:String.compare t.cells)

let counters t =
  snapshot t
  |> List.filter_map (fun (name, cell) ->
         match cell with
         | Counter a -> Some (name, Atomic.get a)
         | Gauge a -> Some ("gauge:" ^ name, Atomic.get a)
         | Span _ -> None)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans t =
  snapshot t
  |> List.filter_map (fun (name, cell) ->
         match cell with
         | Span s ->
             Some
               ( name,
                 { calls = Atomic.get s.s_calls; seconds = float_of_int (Atomic.get s.s_nanos) /. 1e9 } )
         | Counter _ | Gauge _ -> None)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = with_lock t (fun () -> Hashtbl.reset t.cells)

let pp ppf t =
  let cs = counters t and ss = spans t in
  List.iter (fun (name, v) -> Format.fprintf ppf "%-40s %d@." name v) cs;
  List.iter
    (fun (name, s) -> Format.fprintf ppf "%-40s %d calls, %.6f s@." name s.calls s.seconds)
    ss
