module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types

let meta events =
  List.find_map
    (function
      | Trace.Meta { n; protocol; env; seed; mode } -> Some (n, protocol, env, seed, mode)
      | _ -> None)
    events

let verdicts events =
  List.filter_map (function Trace.Verdict { checker; rdt } -> Some (checker, rdt) | _ -> None)
    events

(* A surviving-history entry.  [seq] is the event's position in the trace,
   used to restore the (causality-consistent) global emission order after
   the per-process stacks are flattened. *)
type entry =
  | E_send of { seq : int; msg : int; time : int }
  | E_recv of { seq : int; msg : int; time : int }
  | E_internal of { seq : int; time : int }
  | E_ckpt of { seq : int; index : int; kind : T.ckpt_kind; tdv : int array option; time : int }

let entry_seq = function
  | E_send { seq; _ } | E_recv { seq; _ } | E_internal { seq; _ } | E_ckpt { seq; _ } -> seq

let rebuild events =
  let exception Bad of string in
  try
    let n =
      match meta events with
      | Some (n, _, _, _, _) -> n
      | None ->
          (* infer from the largest pid mentioned *)
          let m = ref (-1) in
          List.iter
            (fun ev ->
              match ev with
              | Trace.Send { src; dst; _ }
              | Deliver { src; dst; _ }
              | Retransmit { src; dst; _ }
              | Drop { src; dst; _ }
              | Undeliverable { src; dst; _ }
              | Replay { src; dst; _ } ->
                  m := max !m (max src dst)
              | Internal { pid; _ } | Ckpt { pid; _ } | Rollback { pid; _ } -> m := max !m pid
              | Meta _ | Verdict _ -> ())
            events;
          if !m < 0 then raise (Bad "empty trace: no events and no meta header");
          !m + 1
    in
    (* per-process stacks of surviving entries, newest first *)
    let stacks = Array.make n [] in
    (* message id -> (src, dst); only surviving, deliverable messages keep
       an entry by the end *)
    let routes = Hashtbl.create 64 in
    let undeliv = Hashtbl.create 8 in
    let check_pid pid what =
      if pid < 0 || pid >= n then raise (Bad (Printf.sprintf "%s: pid %d out of range" what pid))
    in
    List.iteri
      (fun seq ev ->
        match ev with
        | Trace.Meta _ | Verdict _ | Retransmit _ | Drop _ | Replay _ ->
            (* transport noise and annotations: no pattern effect (a replayed
               delivery shows up as a fresh Deliver) *)
            ()
        | Send { msg; src; dst; time } ->
            check_pid src "send";
            check_pid dst "send";
            Hashtbl.replace routes msg (src, dst);
            stacks.(src) <- E_send { seq; msg; time } :: stacks.(src)
        | Deliver { msg; src = _; dst; time } ->
            check_pid dst "deliver";
            if not (Hashtbl.mem routes msg) then
              raise (Bad (Printf.sprintf "deliver of unknown message %d" msg));
            if Hashtbl.mem undeliv msg then
              raise (Bad (Printf.sprintf "deliver of undeliverable message %d" msg));
            stacks.(dst) <- E_recv { seq; msg; time } :: stacks.(dst)
        | Internal { pid; time } ->
            check_pid pid "internal";
            stacks.(pid) <- E_internal { seq; time } :: stacks.(pid)
        | Ckpt { pid; index; kind; time; tdv; preds = _ } ->
            check_pid pid "ckpt";
            stacks.(pid) <- E_ckpt { seq; index; kind; tdv; time } :: stacks.(pid)
        | Undeliverable { msg; _ } -> Hashtbl.replace undeliv msg ()
        | Rollback { pid; to_index; time = _ } ->
            check_pid pid "rollback";
            (* pop every event after checkpoint [to_index]; the checkpoint
               itself survives *)
            let rec pop = function
              | E_ckpt { index; _ } :: _ as kept when index = to_index -> kept
              | [] ->
                  if to_index = 0 then [] (* initial checkpoint: implicit, empty history *)
                  else
                    raise
                      (Bad
                         (Printf.sprintf "rollback of pid %d to missing checkpoint %d" pid to_index))
              | _ :: rest -> pop rest
            in
            stacks.(pid) <- pop stacks.(pid))
      events;
    (* flatten, restore global order, and drive the builder *)
    let entries =
      Array.to_list stacks
      |> List.mapi (fun pid stack -> List.rev_map (fun e -> (pid, e)) stack)
      |> List.concat
      |> List.sort (fun (_, a) (_, b) -> compare (entry_seq a) (entry_seq b))
    in
    let b = P.Builder.create ~n in
    let handles = Hashtbl.create 64 in
    List.iter
      (fun (pid, entry) ->
        match entry with
        | E_send { msg; time; _ } ->
            if not (Hashtbl.mem undeliv msg) then begin
              let _, dst =
                try Hashtbl.find routes msg with Not_found -> assert false
              in
              Hashtbl.replace handles msg (P.Builder.send ~time b ~src:pid ~dst)
            end
        | E_recv { msg; time; _ } -> (
            match Hashtbl.find_opt handles msg with
            | Some h -> P.Builder.recv ~time b h
            | None -> raise (Bad (Printf.sprintf "surviving delivery of rolled-back send %d" msg)))
        | E_internal { time; _ } -> P.Builder.internal ~time b pid
        | E_ckpt { kind = T.Initial; _ } -> () (* taken automatically by the builder *)
        | E_ckpt { kind; tdv; time; _ } ->
            ignore (P.Builder.checkpoint ~kind ?tdv ~time b pid))
      entries;
    Ok (P.Builder.finish ~final_checkpoints:true b)
  with
  | Bad e -> Error e
  | Invalid_argument e -> Error e

type summary = {
  n : int;
  events : int;
  by_kind : (string * int) list;
  forced_by_pred : (string * int) list;
  max_time : int;
}

let summarize events =
  let counts = Hashtbl.create 16 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let preds_tbl = Hashtbl.create 8 in
  let max_time = ref 0 in
  let max_pid = ref (-1) in
  let meta_n = ref None in
  List.iter
    (fun ev ->
      bump counts (Trace.kind_name ev);
      (match ev with
      | Trace.Meta { n; _ } -> meta_n := Some n
      | Send { src; dst; time; _ }
      | Deliver { src; dst; time; _ }
      | Undeliverable { src; dst; time; _ }
      | Replay { src; dst; time; _ }
      | Retransmit { src; dst; time; _ }
      | Drop { src; dst; time } ->
          max_pid := max !max_pid (max src dst);
          max_time := max !max_time time
      | Internal { pid; time }
      | Ckpt { pid; time; _ }
      | Rollback { pid; time; _ } ->
          max_pid := max !max_pid pid;
          max_time := max !max_time time
      | Verdict _ -> ());
      match ev with
      | Ckpt { kind = T.Forced; preds; _ } ->
          bump preds_tbl (if preds = [] then "(none)" else String.concat "," preds)
      | _ -> ())
    events;
  {
    n = (match !meta_n with Some n -> n | None -> !max_pid + 1);
    events = List.length events;
    by_kind = List.map (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt counts k))) Trace.kind_names;
    forced_by_pred = Rdt_dist.Tbl.bindings_sorted ~compare:String.compare preds_tbl;
    max_time = !max_time;
  }

let pp_summary ppf s =
  Format.fprintf ppf "processes:      %d@." s.n;
  Format.fprintf ppf "events:         %d@." s.events;
  Format.fprintf ppf "last timestamp: %d@." s.max_time;
  List.iter
    (fun (k, c) -> if c > 0 then Format.fprintf ppf "  %-14s %d@." k c)
    s.by_kind;
  if s.forced_by_pred <> [] then begin
    Format.fprintf ppf "forced checkpoints by predicate:@.";
    List.iter (fun (k, c) -> Format.fprintf ppf "  %-14s %d@." k c) s.forced_by_pred
  end
