module Ptypes = Rdt_pattern.Types

type event =
  | Meta of { n : int; protocol : string; env : string; seed : int; mode : string }
  | Send of { msg : int; src : int; dst : int; time : int }
  | Deliver of { msg : int; src : int; dst : int; time : int }
  | Internal of { pid : int; time : int }
  | Ckpt of {
      pid : int;
      index : int;
      kind : Ptypes.ckpt_kind;
      time : int;
      tdv : int array option;
      preds : string list;
    }
  | Retransmit of { src : int; dst : int; seq : int; attempt : int; time : int }
  | Drop of { src : int; dst : int; time : int }
  | Undeliverable of { msg : int; src : int; dst : int; time : int }
  | Rollback of { pid : int; to_index : int; time : int }
  | Replay of { msg : int; src : int; dst : int; time : int }
  | Verdict of { checker : string; rdt : bool }

let kind_name = function
  | Meta _ -> "meta"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Internal _ -> "internal"
  | Ckpt _ -> "ckpt"
  | Retransmit _ -> "retransmit"
  | Drop _ -> "drop"
  | Undeliverable _ -> "undeliverable"
  | Rollback _ -> "rollback"
  | Replay _ -> "replay"
  | Verdict _ -> "verdict"

let kind_names =
  [
    "meta"; "send"; "deliver"; "internal"; "ckpt"; "retransmit"; "drop"; "undeliverable";
    "rollback"; "replay"; "verdict";
  ]

(* ------------------------------------------------------------------ *)
(* Recorders                                                           *)
(* ------------------------------------------------------------------ *)

type ring_state = { cap : int; buf : event option array; mutable head : int }
(* [head] is the slot of the next write; the ring holds the last
   [min count cap] events ending at [head - 1]. *)

type t = { sink : sink; mutable emitted : int }

and sink =
  | Null
  | Ring of ring_state
  | Chan of out_channel
  | Fun of (event -> unit)
  | Tee of t * t

let null = { sink = Null; emitted = 0 }

let rec on t =
  match t.sink with Null -> false | Tee (a, b) -> on a || on b | Ring _ | Chan _ | Fun _ -> true

let rec count t = match t.sink with Tee (a, b) -> count a + count b | _ -> t.emitted

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  { sink = Ring { cap = capacity; buf = Array.make capacity None; head = 0 }; emitted = 0 }

let to_channel oc = { sink = Chan oc; emitted = 0 }

let observer f = { sink = Fun f; emitted = 0 }

let tee a b = { sink = Tee (a, b); emitted = 0 }

(* ------------------------------------------------------------------ *)
(* JSONL encoding                                                      *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_escape = escape

let int_array_json a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let string_list_json l =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ escape s ^ "\"") l) ^ "]"

let encode ev =
  match ev with
  | Meta { n; protocol; env; seed; mode } ->
      Printf.sprintf
        "{\"ev\":\"meta\",\"n\":%d,\"protocol\":\"%s\",\"env\":\"%s\",\"seed\":%d,\"mode\":\"%s\"}"
        n (escape protocol) (escape env) seed (escape mode)
  | Send { msg; src; dst; time } ->
      Printf.sprintf "{\"ev\":\"send\",\"msg\":%d,\"src\":%d,\"dst\":%d,\"t\":%d}" msg src dst time
  | Deliver { msg; src; dst; time } ->
      Printf.sprintf "{\"ev\":\"deliver\",\"msg\":%d,\"src\":%d,\"dst\":%d,\"t\":%d}" msg src dst
        time
  | Internal { pid; time } -> Printf.sprintf "{\"ev\":\"internal\",\"pid\":%d,\"t\":%d}" pid time
  | Ckpt { pid; index; kind; time; tdv; preds } ->
      let base =
        Printf.sprintf "{\"ev\":\"ckpt\",\"pid\":%d,\"index\":%d,\"kind\":\"%s\",\"t\":%d" pid
          index
          (Ptypes.ckpt_kind_to_string kind)
          time
      in
      let preds_part = if preds = [] then "" else ",\"preds\":" ^ string_list_json preds in
      let tdv_part = match tdv with None -> "" | Some a -> ",\"tdv\":" ^ int_array_json a in
      base ^ preds_part ^ tdv_part ^ "}"
  | Retransmit { src; dst; seq; attempt; time } ->
      Printf.sprintf
        "{\"ev\":\"retransmit\",\"src\":%d,\"dst\":%d,\"seq\":%d,\"attempt\":%d,\"t\":%d}" src dst
        seq attempt time
  | Drop { src; dst; time } ->
      Printf.sprintf "{\"ev\":\"drop\",\"src\":%d,\"dst\":%d,\"t\":%d}" src dst time
  | Undeliverable { msg; src; dst; time } ->
      Printf.sprintf "{\"ev\":\"undeliverable\",\"msg\":%d,\"src\":%d,\"dst\":%d,\"t\":%d}" msg src
        dst time
  | Rollback { pid; to_index; time } ->
      Printf.sprintf "{\"ev\":\"rollback\",\"pid\":%d,\"to_index\":%d,\"t\":%d}" pid to_index time
  | Replay { msg; src; dst; time } ->
      Printf.sprintf "{\"ev\":\"replay\",\"msg\":%d,\"src\":%d,\"dst\":%d,\"t\":%d}" msg src dst
        time
  | Verdict { checker; rdt } ->
      Printf.sprintf "{\"ev\":\"verdict\",\"checker\":\"%s\",\"rdt\":%b}" (escape checker) rdt

let pp_event ppf ev = Format.pp_print_string ppf (encode ev)

let rec emit t ev =
  match t.sink with
  | Null -> ()
  | Tee (a, b) ->
      emit a ev;
      emit b ev
  | Ring r ->
      r.buf.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod r.cap;
      t.emitted <- t.emitted + 1
  | Chan oc ->
      output_string oc (encode ev);
      output_char oc '\n';
      t.emitted <- t.emitted + 1
  | Fun f ->
      f ev;
      t.emitted <- t.emitted + 1

let rec events t =
  match t.sink with
  | Null | Chan _ | Fun _ -> []
  | Tee (a, b) -> events a @ events b
  | Ring r ->
      let kept = min t.emitted r.cap in
      let start = (r.head - kept + r.cap) mod r.cap in
      List.init kept (fun i ->
          match r.buf.((start + i) mod r.cap) with Some e -> e | None -> assert false)

(* ------------------------------------------------------------------ *)
(* JSONL decoding: a minimal JSON parser for the subset we emit.  The   *)
(* parser is exposed as [Json] so other layers (the fuzzer's scenario   *)
(* files, external tooling) can read structured artifacts without       *)
(* pulling in a JSON dependency.                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse_exn (s : string) : t =
    let len = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if !pos < len && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected %C" c)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              if !pos >= len then fail "dangling escape"
              else begin
                (match s.[!pos] with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'u' ->
                    if !pos + 4 >= len then fail "truncated \\u escape";
                    let hex = String.sub s (!pos + 1) 4 in
                    let code =
                      try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
                    in
                    (* traces only escape control characters, so the code
                       point is always in the single-byte range *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
                    pos := !pos + 4
                | c -> fail (Printf.sprintf "bad escape %C" c));
                advance ();
                go ()
              end
          | c ->
              Buffer.add_char buf c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            elements ();
            Arr (List.rev !items)
          end
      | Some 't' when !pos + 4 <= len && String.sub s !pos 4 = "true" ->
          pos := !pos + 4;
          Bool true
      | Some 'f' when !pos + 5 <= len && String.sub s !pos 5 = "false" ->
          pos := !pos + 5;
          Bool false
      | Some 'n' when !pos + 4 <= len && String.sub s !pos 4 = "null" ->
          pos := !pos + 4;
          Null
      | Some ('0' .. '9' | '-') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing characters";
    v

  let parse s = match parse_exn s with v -> Ok v | exception Parse_error e -> Error e

  let member name = function Obj o -> List.assoc_opt name o | _ -> None

  let rec to_string = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%.17g" f
    | String s -> "\"" ^ escape s ^ "\""
    | Arr items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
    | Obj fields ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
        ^ "}"
end

let decode line =
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_f obj name =
    match field obj name with
    | Ok (Json.Int i) -> Ok i
    | Ok _ -> Error (Printf.sprintf "field %S is not an integer" name)
    | Error e -> Error e
  in
  let str_f obj name =
    match field obj name with
    | Ok (Json.String s) -> Ok s
    | Ok _ -> Error (Printf.sprintf "field %S is not a string" name)
    | Error e -> Error e
  in
  let bool_f obj name =
    match field obj name with
    | Ok (Json.Bool b) -> Ok b
    | Ok _ -> Error (Printf.sprintf "field %S is not a boolean" name)
    | Error e -> Error e
  in
  let ( let* ) = Result.bind in
  match Json.parse line with
  | Error e -> Error e
  | Ok (Json.Obj obj) -> (
      let* ev = str_f obj "ev" in
      match ev with
      | "meta" ->
          let* n = int_f obj "n" in
          let* protocol = str_f obj "protocol" in
          let* env = str_f obj "env" in
          let* seed = int_f obj "seed" in
          let* mode = str_f obj "mode" in
          Ok (Meta { n; protocol; env; seed; mode })
      | "send" | "deliver" | "undeliverable" | "replay" ->
          let* msg = int_f obj "msg" in
          let* src = int_f obj "src" in
          let* dst = int_f obj "dst" in
          let* time = int_f obj "t" in
          Ok
            (match ev with
            | "send" -> Send { msg; src; dst; time }
            | "deliver" -> Deliver { msg; src; dst; time }
            | "undeliverable" -> Undeliverable { msg; src; dst; time }
            | _ -> Replay { msg; src; dst; time })
      | "internal" ->
          let* pid = int_f obj "pid" in
          let* time = int_f obj "t" in
          Ok (Internal { pid; time })
      | "ckpt" ->
          let* pid = int_f obj "pid" in
          let* index = int_f obj "index" in
          let* kind_s = str_f obj "kind" in
          let* time = int_f obj "t" in
          let* kind =
            match kind_s with
            | "initial" -> Ok Ptypes.Initial
            | "basic" -> Ok Ptypes.Basic
            | "forced" -> Ok Ptypes.Forced
            | "final" -> Ok Ptypes.Final
            | k -> Error (Printf.sprintf "unknown checkpoint kind %S" k)
          in
          let* preds =
            match List.assoc_opt "preds" obj with
            | None -> Ok []
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match item with
                    | Json.String s -> Ok (s :: acc)
                    | _ -> Error "non-string predicate name")
                  items (Ok [])
            | Some _ -> Error "field \"preds\" is not an array"
          in
          let* tdv =
            match List.assoc_opt "tdv" obj with
            | None -> Ok None
            | Some (Json.Arr items) ->
                let* l =
                  List.fold_right
                    (fun item acc ->
                      let* acc = acc in
                      match item with Json.Int i -> Ok (i :: acc) | _ -> Error "non-integer TDV entry")
                    items (Ok [])
                in
                Ok (Some (Array.of_list l))
            | Some _ -> Error "field \"tdv\" is not an array"
          in
          Ok (Ckpt { pid; index; kind; time; tdv; preds })
      | "retransmit" ->
          let* src = int_f obj "src" in
          let* dst = int_f obj "dst" in
          let* seq = int_f obj "seq" in
          let* attempt = int_f obj "attempt" in
          let* time = int_f obj "t" in
          Ok (Retransmit { src; dst; seq; attempt; time })
      | "drop" ->
          let* src = int_f obj "src" in
          let* dst = int_f obj "dst" in
          let* time = int_f obj "t" in
          Ok (Drop { src; dst; time })
      | "rollback" ->
          let* pid = int_f obj "pid" in
          let* to_index = int_f obj "to_index" in
          let* time = int_f obj "t" in
          Ok (Rollback { pid; to_index; time })
      | "verdict" ->
          let* checker = str_f obj "checker" in
          let* rdt = bool_f obj "rdt" in
          Ok (Verdict { checker; rdt })
      | k -> Error (Printf.sprintf "unknown event kind %S" k))
  | Ok _ -> Error "not a JSON object"

let read_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
            if String.trim line = "" then go (lineno + 1) acc rest
            else (
              match decode line with
              | Ok ev -> go (lineno + 1) (ev :: acc) rest
              | Error e -> Error (Printf.sprintf "%s, line %d: %s" path lineno e))
      in
      go 1 [] lines
