(** Structured event tracing for simulation runs.

    A trace is the complete, typed record of what a run did and {e why}:
    application sends and deliveries, transport-level retransmissions and
    packet drops, basic and forced checkpoints (with the protocol
    predicates that fired), and — under the crash simulator — rollbacks
    and message replays.  Traces are recorded through a {!t} recorder
    backed by a sink:

    - {!null}: tracing off.  Every instrumentation site is guarded by
      [if Trace.on tr then ...], so a disabled trace costs one branch per
      event and allocates nothing;
    - {!ring}: a bounded in-memory ring buffer keeping the most recent
      events (flight-recorder style; used by the test suite);
    - {!to_channel}: JSONL — one self-describing JSON object per line,
      the interchange format of [rdtsim --trace] and [rdtsim trace].

    A trace is not just a log: {!Replay} rebuilds the run's
    checkpoint-and-communication pattern from it, turning the trace into
    a checkable correctness artifact (the offline RDT verdicts of the
    rebuilt pattern must equal the live run's). *)

type event =
  | Meta of { n : int; protocol : string; env : string; seed : int; mode : string }
      (** Run header, first line of a CLI trace.  [mode] is the producing
          subcommand ([run], [verify], [recover], [crashrun]). *)
  | Send of { msg : int; src : int; dst : int; time : int }
      (** Application message [msg] entrusted to the network. *)
  | Deliver of { msg : int; src : int; dst : int; time : int }
      (** Application-level delivery (exactly once per surviving message;
          a rolled-back delivery is re-recorded when the message is
          replayed). *)
  | Internal of { pid : int; time : int }
  | Ckpt of {
      pid : int;
      index : int;
      kind : Rdt_pattern.Types.ckpt_kind;
      time : int;
      tdv : int array option;
      preds : string list;
          (** for a [Forced] checkpoint: the protocol predicates that were
              true at the triggering arrival ([["after-send"]] for
              checkpoint-after-send protocols, [["recovery"]] for the
              checkpoints securing volatile state at a recovery). *)
    }
  | Retransmit of { src : int; dst : int; seq : int; attempt : int; time : int }
      (** Transport retransmission number [attempt] of sequence [seq] on
          the [src -> dst] link (the crash simulator's per-message
          stop-and-wait uses the message id as [seq]). *)
  | Drop of { src : int; dst : int; time : int }
      (** One packet copy lost to fault sampling or a partition. *)
  | Undeliverable of { msg : int; src : int; dst : int; time : int }
      (** Message abandoned after [max_retx] retransmissions; its send is
          excluded from the rebuilt pattern. *)
  | Rollback of { pid : int; to_index : int; time : int }
      (** Recovery truncated [pid]'s history back to checkpoint
          [to_index]; every later event of [pid] is undone. *)
  | Replay of { msg : int; src : int; dst : int; time : int }
      (** A rolled-back delivery re-entered the channels from the
          sender-side log; the new delivery appears as a later
          {!Deliver}. *)
  | Verdict of { checker : string; rdt : bool }
      (** Offline checker verdict of the live run, appended by the CLI so
          [rdtsim trace replay] can assert the rebuilt pattern agrees. *)

val kind_name : event -> string
(** Lower-case tag ([send], [deliver], [ckpt], ...), also the [ev] field
    of the JSONL encoding. *)

val kind_names : string list
(** Every tag, in a fixed order (for CLI filters and summaries). *)

(** {1 Recorders} *)

type t

val null : t
(** The disabled recorder: {!on} is [false], {!emit} is a no-op. *)

val on : t -> bool
(** [true] iff events are being kept.  Instrumentation sites must guard
    event construction with this so disabled tracing costs one branch. *)

val emit : t -> event -> unit

val count : t -> int
(** Events emitted so far ([0] for {!null}; for a ring this counts all
    emissions, including overwritten ones). *)

val ring : capacity:int -> t
(** Keep the most recent [capacity] events in memory.
    @raise Invalid_argument if [capacity <= 0]. *)

val events : t -> event list
(** Retained events, oldest first (empty for {!null} and channel
    recorders). *)

val to_channel : out_channel -> t
(** Stream JSONL to the channel, one event per line (the caller owns the
    channel and its lifetime). *)

val observer : (event -> unit) -> t
(** [observer f] is a recorder that calls [f] on every emitted event and
    retains nothing.  This is how live analyses (the online RDT checker)
    subscribe to a run without the instrumentation sites knowing about
    them. *)

val tee : t -> t -> t
(** [tee a b] duplicates every emission to both recorders.  {!on} is the
    disjunction, {!count} the sum, {!events} the concatenation of the
    branches' retained events. *)

(** {1 JSONL codec} *)

(** The minimal JSON reader behind {!decode}, exposed so other layers
    (the fuzzer's scenario files, external tooling) can parse structured
    artifacts of the same subset — objects, arrays, ints, floats, bools,
    strings with the escapes {!encode} produces — without a JSON
    dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse_exn : string -> t
  (** @raise Parse_error on malformed input (with the offset). *)

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  (** Field lookup; [None] on missing field or non-object. *)

  val to_string : t -> string
  (** Serialize back to a single-line JSON document using the same
      string escapes {!encode} produces. [parse_exn (to_string v)]
      round-trips for every value {!parse_exn} can return. *)
end

val encode : event -> string
(** One JSON object, no trailing newline. *)

val json_escape : string -> string
(** The string-escape {!encode} uses, for layers composing their own
    JSON around encoded events (the session wire codec). *)

val decode : string -> (event, string) result

val read_file : string -> (event list, string) result
(** Decode a JSONL trace file; blank lines are skipped; the error names
    the offending line number. *)

val pp_event : Format.formatter -> event -> unit
