(** A process-wide counters / gauges / timer-span registry.

    Simulation phases (pattern construction, recovery, each offline
    checker) report wall-clock spans and aggregate counters here; the
    bench harness snapshots the registry into [BENCH_results.json] so
    every benchmark run carries a per-phase timing breakdown.

    Cells are [Atomic.t]-backed, and cell creation is guarded by a
    spin-lock, so reporting is safe from the harness's domain pool.
    Registries never write to [stdout]; recording into them cannot
    perturb deterministic CLI output. *)

type t

val now : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]).  This is
    the {e one} sanctioned clock of the codebase: everything that needs a
    timestamp for measurement (pool slot timings, checker costs, grid
    wall-clock) reads it through here, so the [rdtlint] D1 rule can ban
    [Unix.gettimeofday]/[Sys.time] everywhere else.  Wall-clock readings
    are measurement, never output: they must not influence simulation
    results, which are a pure function of [(seed, params)]. *)

val create : unit -> t

val default : t
(** The registry the library instrumentation reports into. *)

(** {1 Recording} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
(** Bump a counter, creating it at [0] on first use. *)

val set_gauge : t -> string -> int -> unit
(** Last-write-wins level value (distinguished from counters in dumps as
    [gauge:name]). *)

val add_span : t -> string -> float -> unit
(** Account [seconds] of wall-clock time (and one call) to span [name]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()], accounting its duration to span [name].
    The span is recorded even if [f] raises. *)

(** {1 Reading} *)

type span = { calls : int; seconds : float }

val counters : t -> (string * int) list
(** Counters and gauges (gauges prefixed [gauge:]), sorted by name. *)

val spans : t -> (string * span) list
(** Timer spans, sorted by name. *)

val reset : t -> unit
(** Drop all cells (tests and repeated bench phases). *)

val pp : Format.formatter -> t -> unit
