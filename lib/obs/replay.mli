(** Rebuild a checkpoint-and-communication pattern from a trace.

    The rebuild consumes the events in emission order, maintaining one
    stack of surviving events per process; a {!Trace.Rollback} pops a
    process's stack back to the named checkpoint, exactly as recovery
    truncated the live run's history.  Surviving events are then replayed
    into a {!Rdt_pattern.Pattern.Builder}, yielding a pattern structurally
    equal to the one the live run handed to the checkers — so the trace is
    a self-contained correctness artifact: re-running the offline RDT
    checkers on the rebuilt pattern must reproduce the recorded
    {!Trace.Verdict} lines. *)

val meta : Trace.event list -> (int * string * string * int * string) option
(** First [Meta] header as [(n, protocol, env, seed, mode)], if any. *)

val verdicts : Trace.event list -> (string * bool) list
(** Recorded live verdicts, in trace order. *)

val rebuild : Trace.event list -> (Rdt_pattern.Pattern.t, string) result
(** Rebuild the surviving pattern.  The process count is taken from the
    [Meta] header when present, otherwise inferred from the largest pid.
    Errors on structurally impossible traces (delivery of an unknown or
    undeliverable message, rollback to a rolled-back checkpoint, ...). *)

type summary = {
  n : int;
  events : int;
  by_kind : (string * int) list;  (** tag -> occurrences, every tag listed *)
  forced_by_pred : (string * int) list;
      (** forced checkpoints grouped by the predicate set that fired,
          e.g. [("c2,c_fdas", 3)]; sorted by key *)
  max_time : int;
}

val summarize : Trace.event list -> summary

val pp_summary : Format.formatter -> summary -> unit
