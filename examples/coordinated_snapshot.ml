(* Coordinated checkpointing vs communication-induced checkpointing.

   Runs the same workload twice: once under Chandy-Lamport coordinated
   snapshots (control messages, FIFO channels, consistent cuts by
   construction) and once under the BHMR CIC protocol (no control
   messages, piggybacked data, RDT).  Verifies the textbook facts on the
   coordinated side — every cut is consistent and the recorded channel
   states are exactly the in-transit messages of the cut — and prints the
   two cost profiles side by side.

   Run with:  dune exec examples/coordinated_snapshot.exe *)

module S = Rdt_coordinated.Snapshot

let () =
  let n = 6 and seed = 11 and max_messages = 900 in

  (* --- coordinated --- *)
  let env = Rdt_workloads.Registry.find_exn "random" in
  let snap = S.run { (S.default_config env) with S.n; seed; max_messages } in
  Format.printf "Chandy-Lamport: %d snapshots, %d markers, mean latency %.0f time units@."
    snap.metrics.snapshots_completed snap.metrics.marker_messages snap.metrics.mean_latency;
  List.iter
    (fun (s : S.snapshot) ->
      assert (Rdt_pattern.Consistency.consistent_global snap.pattern s.cut);
      let in_transit = Rdt_recovery.Message_log.in_transit snap.pattern ~line:s.cut in
      assert (List.sort compare s.channel_state = List.sort compare in_transit))
    snap.snapshots;
  Format.printf "every cut is consistent; channel states = in-transit messages. ✓@.";
  (match snap.snapshots with
  | s :: _ ->
      Format.printf "first cut: {%s}, %d message(s) in its channels@."
        (String.concat "; "
           (Array.to_list (Array.mapi (fun i x -> Printf.sprintf "C(%d,%d)" i x) s.cut)))
        (List.length s.channel_state)
  | [] -> ());

  (* --- communication-induced --- *)
  let protocol = Rdt_core.Registry.find_exn "bhmr" in
  let cic =
    Rdt_core.Runtime.run
      {
        (Rdt_core.Runtime.default_config (Rdt_workloads.Registry.find_exn "random") protocol) with
        Rdt_core.Runtime.n;
        seed;
        max_messages;
      }
  in
  assert (Rdt_core.Checker.run cic.pattern).rdt;
  Format.printf
    "@.BHMR: %d basic + %d forced checkpoints, 0 control messages, %d piggybacked bits/message@."
    cic.metrics.basic cic.metrics.forced cic.metrics.payload_bits_per_msg;
  Format.printf
    "RDT verified: any checkpoint names its minimum consistent global checkpoint for free.@.";
  Format.printf
    "@.The trade: coordination pays %d control messages per snapshot and blocks on@."
    (S.markers_per_snapshot ~n);
  Format.printf
    "marker floods; CIC pays piggyback bytes and forced checkpoints, but adds no@.";
  Format.printf "messages and never synchronises.@."
