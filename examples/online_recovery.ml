(* Online crash recovery.

   Unlike examples/recovery_rollback.ml, which analyses a finished run,
   this example injects fail-stop crashes *while the computation runs*:
   at each repair the system takes recovery checkpoints, computes the
   recovery line, rolls every process back (restoring the protocol state
   saved inside each checkpoint), discards the messages of undone sends,
   replays the in-transit ones from the sender logs — and carries on.

   Run with:  dune exec examples/online_recovery.exe *)

module CS = Rdt_failures.Crash_sim

let run pname =
  let protocol = Rdt_core.Registry.find_exn pname in
  let env = Rdt_workloads.Registry.find_exn "random" in
  CS.run
    {
      (CS.default_config env protocol) with
      CS.n = 6;
      seed = 42;
      max_messages = 1500;
      crashes =
        [
          { CS.victim = 2; at = 3000; repair_delay = 250 };
          { CS.victim = 5; at = 6000; repair_delay = 250 };
        ];
    }

let describe pname =
  let r = run pname in
  Format.printf "@.--- %s ---@." pname;
  List.iter
    (fun (rc : CS.recovery) ->
      Format.printf
        "crash of P%d at t=%d: rolled back to [%s]; %d events undone, %d messages replayed@."
        rc.crash.victim rc.crash.at
        (String.concat ";" (List.map string_of_int (Array.to_list rc.line)))
        rc.events_undone rc.messages_replayed)
    r.recoveries;
  Format.printf "surviving execution: %d deliveries, %d events undone in total@."
    r.metrics.messages_delivered r.metrics.total_events_undone;
  r

let () =
  let bhmr = describe "bhmr" in
  (* the surviving pattern of an RDT protocol is itself RDT: dependency
     tracking survived the rollbacks because each checkpoint carried a
     snapshot of the protocol state *)
  assert (Rdt_core.Checker.run bhmr.pattern).rdt;
  assert (Rdt_core.Checker.online_tdv_consistent bhmr.pattern);
  Format.printf "RDT verified on the surviving execution.@.";

  let none = describe "none" in
  Format.printf "@.verdict: with no protocol the same two crashes undid %dx more work.@."
    (none.metrics.total_events_undone / max 1 bhmr.metrics.total_events_undone)
