(* Quickstart: run a small distributed computation under the BHMR
   communication-induced checkpointing protocol, verify that the produced
   checkpoint & communication pattern satisfies RDT, and read the minimum
   consistent global checkpoint of a local checkpoint straight off its
   transitive dependency vector.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a workload environment and a protocol. *)
  let env = Rdt_workloads.Registry.find_exn "random" in
  let protocol = Rdt_core.Registry.find_exn "bhmr" in

  (* 2. Configure and execute a deterministic simulation. *)
  let config =
    {
      (Rdt_core.Runtime.default_config env protocol) with
      Rdt_core.Runtime.n = 5;
      seed = 2026;
      max_messages = 400;
    }
  in
  let result = Rdt_core.Runtime.run config in
  Format.printf "run     : %a@." Rdt_core.Metrics.pp result.metrics;
  Format.printf "pattern : %a@." Rdt_pattern.Pattern.pp_summary result.pattern;

  (* 3. Verify the RDT property offline: every rollback dependency in the
     R-graph must be on-line trackable. *)
  let report = Rdt_core.Checker.run result.pattern in
  Format.printf "checker : %a@." Rdt_core.Checker.pp_report report;
  assert report.rdt;

  (* 4. Corollary 4.5 in action: the TDV recorded at any checkpoint *is*
     the minimum consistent global checkpoint containing it. *)
  let target = (2, Rdt_pattern.Pattern.last_index result.pattern 2 / 2) in
  let on_the_fly = Rdt_core.Min_gcp.of_tdv result.pattern target in
  Format.printf "min consistent global checkpoint containing %a: {%s}@."
    Rdt_pattern.Types.pp_ckpt_id target
    (String.concat "; "
       (Array.to_list (Array.mapi (fun i x -> Printf.sprintf "C(%d,%d)" i x) on_the_fly)));
  (match Rdt_core.Min_gcp.minimum result.pattern target with
  | Some brute -> assert (brute = on_the_fly)
  | None -> assert false);
  Format.printf "…matches the brute-force computation, as Corollary 4.5 promises.@."
