(* Protocol comparison on one workload.

   Runs the whole protocol hierarchy on the same client-server workload
   and seed and prints, for each protocol: forced checkpoints, the ratio
   to FDAS (the R of the paper's figures), piggyback size, and the
   offline RDT verdict.  This is the paper's Section 5 in one screen.

   Run with:  dune exec examples/protocol_comparison.exe *)

let () =
  let make_env () = Rdt_workloads.Registry.find_exn "client-server" in
  let n = 8 and seed = 3 and max_messages = 1500 in
  let run protocol =
    Rdt_core.Runtime.run
      {
        (Rdt_core.Runtime.default_config (make_env ()) protocol) with
        Rdt_core.Runtime.n;
        seed;
        max_messages;
      }
  in
  let fdas_forced =
    (run (Rdt_core.Registry.find_exn "fdas")).metrics.Rdt_core.Metrics.forced
  in
  let table =
    Rdt_harness.Table.create
      ~header:[ "protocol"; "forced"; "R vs FDAS"; "bits/msg"; "RDT?" ]
  in
  List.iter
    (fun protocol ->
      let r = run protocol in
      let m = r.Rdt_core.Runtime.metrics in
      let verdict = (Rdt_core.Checker.run r.pattern).Rdt_core.Checker.rdt in
      Rdt_harness.Table.add_row table
        [
          Rdt_core.Protocol.name protocol;
          string_of_int m.Rdt_core.Metrics.forced;
          (if fdas_forced = 0 then "-"
           else Rdt_harness.Table.cell_f (float_of_int m.forced /. float_of_int fdas_forced));
          string_of_int m.payload_bits_per_msg;
          (if verdict then "yes" else "NO");
        ])
    Rdt_core.Registry.all;
  Rdt_harness.Table.print table;
  print_newline ();
  print_endline
    "Expected shape: cbr/cas most conservative; bhmr least; `none` violates RDT.\n\
     The protocols trade piggyback size for fewer forced checkpoints."
