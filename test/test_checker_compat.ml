(* Pins the [Checker.run ?algo] entry point.

   The deprecated [check]/[check_chains]/[check_doubling] wrappers went
   through their deprecation cycle and are gone; [run ~algo] is the one
   way to invoke a specific checker.  This suite keeps the contract the
   wrappers used to pin: the default algorithm is [`Rgraph], the [algo]
   and [units] fields of the report identify what actually ran, and
   every algorithm returns the same verdict on the same pattern. *)

module Checker = Rdt_core.Checker
module Fixtures = Rdt_test_helpers.Fixtures
module Gen = Rdt_test_helpers.Gen

(* [seconds] is a measurement, not part of the verdict. *)
let strip (r : Checker.report) = { r with seconds = 0. }

let patterns () =
  let fig1 = (Fixtures.figure1 ()).Fixtures.pattern in
  let random = List.init 8 (fun i -> Gen.random_pattern ~seed:(1000 + i) ()) in
  fig1 :: Fixtures.two_crossing () :: Fixtures.zcycle_fixture ()
  :: Fixtures.pairwise_insufficient () :: Fixtures.causal_ping_pong () :: random

let test_default_is_rgraph () =
  List.iter
    (fun pat ->
      let d = strip (Checker.run pat) and r = strip (Checker.run ~algo:`Rgraph pat) in
      Alcotest.(check bool) "run = run ~algo:`Rgraph" true (d = r);
      Alcotest.(check string)
        "default algo field" "rgraph"
        (Checker.algo_name d.Checker.algo))
    (patterns ())

let test_algo_field_matches () =
  List.iter
    (fun algo ->
      List.iter
        (fun pat ->
          let r = Checker.run ~algo pat in
          Alcotest.(check string)
            "report.algo names the algorithm that ran"
            (Checker.algo_name algo)
            (Checker.algo_name r.Checker.algo))
        (patterns ()))
    Checker.all_algos

let test_verdicts_agree () =
  List.iter
    (fun pat ->
      let reports = List.map (fun algo -> Checker.run ~algo pat) Checker.all_algos in
      match reports with
      | [] -> Alcotest.fail "all_algos is empty"
      | first :: rest ->
          List.iter
            (fun (r : Checker.report) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s agrees with %s on rdt"
                   (Checker.algo_name r.Checker.algo)
                   (Checker.algo_name first.Checker.algo))
                first.Checker.rdt r.Checker.rdt)
            rest)
    (patterns ())

let test_units_label_population () =
  (* The unit of [checked] travels with the report so counts from
     different populations are never cross-compared: only [`Doubling]
     enumerates causal-message paths. *)
  List.iter
    (fun algo ->
      let pat = (Fixtures.figure1 ()).Fixtures.pattern in
      let r = Checker.run ~algo pat in
      let expected =
        match algo with `Doubling -> Checker.Cm_paths | _ -> Checker.R_dependencies
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s counts the right population" (Checker.algo_name algo))
        true
        (r.Checker.units = expected);
      Alcotest.(check bool)
        (Printf.sprintf "%s reports work done" (Checker.algo_name algo))
        true (r.Checker.checked > 0))
    Checker.all_algos

let () =
  Alcotest.run "checker-compat"
    [
      ( "run ~algo contract",
        [
          Alcotest.test_case "default algo is `Rgraph" `Quick test_default_is_rgraph;
          Alcotest.test_case "report.algo matches request" `Quick test_algo_field_matches;
          Alcotest.test_case "all algorithms agree on verdicts" `Quick test_verdicts_agree;
          Alcotest.test_case "units label their population" `Quick test_units_label_population;
        ] );
    ]
