(* Pins the deprecated [Checker.check*] wrappers to [Checker.run].

   This file is the single A1-allowlisted call site of the deprecated
   wrappers (see .rdtlint): everything else must use [Checker.run
   ?algo].  Keeping the wrappers behind one pinned test means the
   deprecation cycle cannot silently change their behaviour before
   removal — if a wrapper ever diverges from the [run ~algo] it claims
   to alias, this suite fails. *)

[@@@ocaml.alert "-deprecated"]

module Checker = Rdt_core.Checker
module Fixtures = Rdt_test_helpers.Fixtures
module Gen = Rdt_test_helpers.Gen

(* [seconds] is a measurement, not part of the verdict. *)
let strip (r : Checker.report) = { r with seconds = 0. }

let check_same name wrapper algo pat =
  let a = strip (wrapper pat) and b = strip (Checker.run ~algo pat) in
  Alcotest.(check bool)
    (Printf.sprintf "%s = run ~algo:%s" name (Checker.algo_name algo))
    true (a = b)

let patterns () =
  let fig1 = (Fixtures.figure1 ()).Fixtures.pattern in
  let random = List.init 8 (fun i -> Gen.random_pattern ~seed:(1000 + i) ()) in
  fig1 :: Fixtures.two_crossing () :: Fixtures.zcycle_fixture ()
  :: Fixtures.pairwise_insufficient () :: Fixtures.causal_ping_pong () :: random

let test_check () =
  List.iter (check_same "check" (fun p -> Checker.check p) `Rgraph) (patterns ())

let test_check_chains () =
  List.iter (check_same "check_chains" Checker.check_chains `Chains) (patterns ())

let test_check_doubling () =
  List.iter (check_same "check_doubling" Checker.check_doubling `Doubling) (patterns ())

let () =
  Alcotest.run "checker-compat"
    [
      ( "deprecated wrappers alias run",
        [
          Alcotest.test_case "check = run ~algo:`Rgraph" `Quick test_check;
          Alcotest.test_case "check_chains = run ~algo:`Chains" `Quick test_check_chains;
          Alcotest.test_case "check_doubling = run ~algo:`Doubling" `Quick test_check_doubling;
        ] );
    ]
