(* Properties of the sharded event substrate.

   The guarantee under test: a shard's observable execution — the exact
   sequence of (time, payload) its handler sees — is a function of the
   seeded scenario only, never of the order shards are stepped within an
   epoch (which is what varies with the driver's worker count).  Plus
   conservation (every message handled exactly once), in-shard time
   ordering against the horizon, and the lookahead guard on [post]. *)

module Shard = Rdt_dist.Shard
module Rng = Rdt_dist.Rng

let qt = QCheck_alcotest.to_alcotest

(* A seeded scenario: token-passing between shards.  Each initial token
   carries a hop budget; handling a token at shard s re-posts it to a
   derived destination after a derived delay >= lookahead (cross-shard)
   or reschedules locally with any smaller delay. *)
type scenario = { shards : int; seed : int; lookahead : int; tokens : int; hops : int }

let gen_scenario =
  QCheck.Gen.(
    map
      (fun (shards, seed, (lookahead, tokens, hops)) -> { shards; seed; lookahead; tokens; hops })
      (triple (int_range 1 8) (int_bound 1_000_000)
         (triple (int_range 1 20) (int_range 1 40) (int_range 1 30))))

let arb_scenario =
  QCheck.make gen_scenario ~print:(fun s ->
      Printf.sprintf "{shards=%d; seed=%d; lookahead=%d; tokens=%d; hops=%d}" s.shards s.seed
        s.lookahead s.tokens s.hops)

(* Run the scenario, stepping shards in the order produced by [order]
   each epoch; returns the per-shard logs of (time, token id, hop). *)
let run s ~order =
  let t = Shard.create ~shards:s.shards ~seed:s.seed ~lookahead:s.lookahead () in
  for k = 0 to s.tokens - 1 do
    Shard.schedule t ~shard:(k mod s.shards) ~time:(k land 3) (k, s.hops)
  done;
  let logs = Array.make s.shards [] in
  let handler shard ~time (id, hops) =
    logs.(shard) <- (time, id, hops) :: logs.(shard);
    if hops > 0 then begin
      (* derived, order-independent routing *)
      let h = Rng.derive_seed s.seed (Printf.sprintf "hop.%d.%d" id hops) in
      let dst = h mod s.shards in
      if dst = shard then
        (* local hop: may be arbitrarily soon *)
        Shard.schedule t ~shard ~time:(time + 1 + (h mod 3)) (id, hops - 1)
      else
        (* cross-shard: respects the lookahead *)
        Shard.post t ~src:shard ~dst ~time:(time + s.lookahead + (h mod 5)) (id, hops - 1)
    end
  in
  let epochs = ref 0 in
  while not (Shard.finished t) do
    incr epochs;
    if !epochs > 100_000 then failwith "did not drain";
    Shard.exchange t;
    List.iter (fun shard -> ignore (Shard.step t ~shard ~handler:(handler shard))) (order !epochs)
  done;
  (Array.map List.rev logs, Shard.total_stepped t)

let ascending s _ = List.init s.shards Fun.id

let prop_step_order_invisible =
  QCheck.Test.make ~count:120 ~name:"per-shard logs independent of step order" arb_scenario
    (fun s ->
      let base, n1 = run s ~order:(ascending s) in
      (* descending every epoch *)
      let desc, n2 = run s ~order:(fun _ -> List.rev (ascending s 0)) in
      (* rotating: epoch e starts at shard e mod shards *)
      let rot, n3 =
        run s ~order:(fun e ->
            let k = e mod s.shards in
            let ids = Array.to_list (Array.init s.shards (fun i -> (i + k) mod s.shards)) in
            ids)
      in
      if base <> desc then QCheck.Test.fail_reportf "descending step order changed a shard log";
      if base <> rot then QCheck.Test.fail_reportf "rotating step order changed a shard log";
      n1 = n2 && n2 = n3)

let prop_conservation =
  QCheck.Test.make ~count:120 ~name:"every token handled exactly (hops+1) times" arb_scenario
    (fun s ->
      let logs, total = run s ~order:(ascending s) in
      let per_token = Array.make s.tokens 0 in
      Array.iter (List.iter (fun (_, id, _) -> per_token.(id) <- per_token.(id) + 1)) logs;
      if total <> s.tokens * (s.hops + 1) then
        QCheck.Test.fail_reportf "total_stepped %d <> %d" total (s.tokens * (s.hops + 1));
      Array.for_all (fun c -> c = s.hops + 1) per_token)

let prop_times_nondecreasing =
  QCheck.Test.make ~count:120 ~name:"per-shard handler times are non-decreasing" arb_scenario
    (fun s ->
      let logs, _ = run s ~order:(ascending s) in
      Array.for_all
        (fun log ->
          let rec ok = function
            | (t1, _, _) :: ((t2, _, _) :: _ as rest) -> t1 <= t2 && ok rest
            | _ -> true
          in
          ok log)
        logs)

let test_post_below_horizon_rejected () =
  let t = Shard.create ~shards:2 ~seed:7 ~lookahead:10 () in
  Shard.schedule t ~shard:0 ~time:50 ();
  Shard.exchange t;
  Alcotest.(check int) "horizon = min + lookahead" 60 (Shard.horizon t);
  Alcotest.(check bool) "post below horizon raises" true
    (try
       Shard.post t ~src:0 ~dst:1 ~time:59 ();
       false
     with Invalid_argument _ -> true);
  Shard.post t ~src:0 ~dst:1 ~time:60 ();
  Alcotest.(check bool) "not finished with pending outbox" false (Shard.finished t)

let test_validation () =
  Alcotest.(check bool) "shards >= 1" true
    (try
       ignore (Shard.create ~shards:0 ~seed:1 ~lookahead:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "lookahead >= 1" true
    (try
       ignore (Shard.create ~shards:1 ~seed:1 ~lookahead:0 ());
       false
     with Invalid_argument _ -> true);
  let t = Shard.create ~shards:2 ~seed:1 ~lookahead:1 () in
  Alcotest.(check bool) "bad shard" true
    (try
       Shard.schedule t ~shard:2 ~time:0 ();
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "rdt_shard"
    [
      ( "determinism",
        [ qt prop_step_order_invisible; qt prop_conservation; qt prop_times_nondecreasing ] );
      ( "edges",
        [
          Alcotest.test_case "post below horizon" `Quick test_post_below_horizon_rejected;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
