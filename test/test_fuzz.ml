(* Suite for the adversarial scenario fuzzer (lib/fuzz).

   - generation: every seed yields a scenario the validator accepts;
     generation is a pure function of the seed and the JSON codec
     round-trips exactly;
   - intermittent links: the flapping-window cut formula, its
     validation, and a full run drained through a flapping host;
   - campaigns: a healthy tree passes a whole budgeted campaign, and
     the report is bit-identical whatever order the mapper executes the
     cells in;
   - mutation pipeline: with a sanctioned checker mutation the
     machinery finds a divergence and shrinks it to a strictly smaller
     scenario that still reproduces, and a second pass confirms the
     result is 1-minimal;
   - oracle: the first-principles RDT oracle agrees with the R-graph
     checker on random small patterns. *)

module Scenario = Rdt_fuzz.Scenario
module Exec = Rdt_fuzz.Exec
module Shrink = Rdt_fuzz.Shrink
module Fuzzer = Rdt_fuzz.Fuzzer
module Oracle = Rdt_fuzz.Oracle
module Faults = Rdt_dist.Faults
module Channel = Rdt_dist.Channel
module Checker = Rdt_core.Checker
module Gen = Rdt_test_helpers.Gen

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let qt = QCheck_alcotest.to_alcotest

let seeds k = List.init k (fun i -> i + 1)

(* ------------------------------------------------------------------ *)
(* Scenario generation and codec                                       *)
(* ------------------------------------------------------------------ *)

let test_generate_valid () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~seed () in
      match Scenario.validate sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: generated scenario invalid: %s" seed e)
    (seeds 200)

let test_generate_pure () =
  List.iter
    (fun seed ->
      check "same seed, same scenario" true
        (Scenario.equal (Scenario.generate ~seed ()) (Scenario.generate ~seed ())))
    (seeds 50);
  let sizes =
    List.sort_uniq compare
      (List.map (fun s -> Scenario.size (Scenario.generate ~seed:s ())) (seeds 50))
  in
  check "seeds explore different sizes" true (List.length sizes > 5)

let test_codec_roundtrip () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~seed () in
      match Scenario.decode (Scenario.encode sc) with
      | Ok sc' -> check "roundtrip" true (Scenario.equal sc sc')
      | Error e -> Alcotest.failf "seed %d: decode failed: %s" seed e)
    (seeds 100)

let test_file_roundtrip () =
  let sc = Scenario.generate ~seed:11 () in
  let path = Filename.temp_file "rdt-fuzz-test" ".json" in
  Scenario.to_file path sc;
  let back = Scenario.of_file path in
  Sys.remove path;
  match back with
  | Ok sc' -> check "file roundtrip" true (Scenario.equal sc sc')
  | Error e -> Alcotest.failf "of_file: %s" e

let test_decode_garbage () =
  check "truncated json rejected" true (Result.is_error (Scenario.decode "{"));
  check "wrong shape rejected" true (Result.is_error (Scenario.decode "[1, 2]"));
  check "missing fields rejected" true (Result.is_error (Scenario.decode "{\"n\": 3}"))

let test_restrict () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~seed () in
      if sc.Scenario.n > 2 then begin
        let r = Scenario.restrict sc ~n:(sc.Scenario.n - 1) in
        (match Scenario.validate r with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: restricted scenario invalid: %s" seed e);
        check "restrict shrinks the measure" true (Scenario.measure r < Scenario.measure sc)
      end)
    (seeds 60)

(* ------------------------------------------------------------------ *)
(* Intermittent (mobile-host) links                                    *)
(* ------------------------------------------------------------------ *)

let flaky = { Faults.host = 1; from_t = 10; to_t = 30; up = 3; down = 2 }

let flaky_spec = { Faults.none with intermittent = [ flaky ] }

let test_intermittent_cuts () =
  let cut t = Faults.cuts flaky_spec ~time:t ~src:0 ~dst:1 in
  check "before the window" false (cut 9);
  check "phase 0: up" false (cut 10);
  check "phase 2: up" false (cut 12);
  check "phase 3: down" true (cut 13);
  check "phase 4: down" true (cut 14);
  check "next cycle: up again" false (cut 15);
  check "next cycle: down again" true (cut 18);
  check "window over" false (cut 30);
  check "cut is bidirectional" true (Faults.cuts flaky_spec ~time:13 ~src:1 ~dst:0);
  check "unrelated link unaffected" false (Faults.cuts flaky_spec ~time:13 ~src:0 ~dst:2)

let test_intermittent_validate () =
  let ok spec = Result.is_ok (Faults.validate ~n:4 spec) in
  check "well-formed accepted" true (ok flaky_spec);
  check "zero up rejected" false
    (ok { Faults.none with intermittent = [ { flaky with up = 0 } ] });
  check "zero down rejected" false
    (ok { Faults.none with intermittent = [ { flaky with down = 0 } ] });
  check "host out of range rejected" false
    (ok { Faults.none with intermittent = [ { flaky with host = 4 } ] });
  check "reversed window rejected" false
    (ok { Faults.none with intermittent = [ { flaky with from_t = 31 } ] })

let test_intermittent_run_passes () =
  (* a hand-built scenario whose host 1 flaps for the whole run: the
     transport must drain it, and every cross-check must agree *)
  let sc =
    {
      Scenario.run_seed = 5;
      n = 3;
      protocol = "bhmr";
      env = "random";
      messages = 60;
      basic_period = (0, 0);
      channel = Channel.Fixed 5;
      faults =
        { Faults.none with intermittent = [ { Faults.host = 1; from_t = 0; to_t = 2_000; up = 40; down = 60 } ] };
      transport = true;
      retx_timeout = 80;
      max_retx = 30;
      crashes = [];
    }
  in
  (match Scenario.validate sc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid scenario: %s" e);
  match Exec.classify sc with
  | Exec.Pass -> ()
  | Exec.Fail { kind; detail } ->
      Alcotest.failf "intermittent run failed (%s): %s" (Exec.kind_name kind) detail

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

(* executes the cells back to front but returns results in order: a
   legal mapper that maximally perturbs execution order *)
let reversing = { Fuzzer.map = (fun f xs -> List.rev (List.map f (List.rev xs))) }

let test_campaign_healthy () =
  let cfg = { Fuzzer.default_config with budget = 30 } in
  let rep = Fuzzer.run cfg in
  check_int "scenarios" 30 rep.Fuzzer.scenarios;
  check_int "all ok" 30 rep.Fuzzer.counts.Fuzzer.ok;
  check "no failure" true (rep.Fuzzer.failure = None)

let test_campaign_mapper_independent () =
  let cfg = { Fuzzer.default_config with budget = 12 } in
  check "sequential = reversed execution order" true
    (Fuzzer.run cfg = Fuzzer.run ~mapper:reversing cfg)

let test_scenario_at_pure () =
  let a = { Fuzzer.default_config with budget = 5 } in
  let b = { Fuzzer.default_config with budget = 500 } in
  List.iter
    (fun i ->
      check "cell scenario independent of budget" true
        (Scenario.equal (Fuzzer.scenario_at a i) (Fuzzer.scenario_at b i)))
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Mutation pipeline: find, shrink, reproduce                          *)
(* ------------------------------------------------------------------ *)

let first_failing mutation =
  let rec go seed =
    if seed > 500 then Alcotest.fail "no failing scenario within 500 seeds"
    else
      let sc = Scenario.generate ~seed () in
      match Exec.classify ~mutation sc with Exec.Fail _ -> sc | Exec.Pass -> go (seed + 1)
  in
  go 1

let test_mutation_hide_rollbacks () =
  let sc = first_failing Exec.Hide_rollbacks in
  (* the mutation lives in the checking pipeline, not the simulation:
     the very same scenario is clean without it *)
  check "clean without the mutation" true (Exec.classify sc = Exec.Pass);
  let shrunk, outcome, stats = Shrink.minimize ~mutation:Exec.Hide_rollbacks sc in
  (match outcome with
  | Exec.Fail { kind = Exec.Checker_divergence; _ } -> ()
  | Exec.Fail { kind; _ } -> Alcotest.failf "expected a divergence, got %s" (Exec.kind_name kind)
  | Exec.Pass -> Alcotest.fail "expected a failure");
  check "shrinking did work" true (stats.Shrink.steps > 0);
  check "strictly smaller" true (Scenario.measure shrunk < Scenario.measure sc);
  (* --minimize semantics: the shrunk artifact still reproduces, with
     the same classification *)
  (match Exec.classify ~mutation:Exec.Hide_rollbacks shrunk with
  | Exec.Fail { kind = Exec.Checker_divergence; _ } -> ()
  | _ -> Alcotest.fail "shrunk scenario no longer reproduces the divergence");
  (* and it is a fixpoint: a second pass finds nothing to remove *)
  let again, _, stats2 = Shrink.minimize ~mutation:Exec.Hide_rollbacks shrunk in
  check "1-minimal" true (Scenario.equal again shrunk);
  check_int "no further steps" 0 stats2.Shrink.steps

let test_mutation_flip_rgraph_floor () =
  (* flip-rgraph fails every run, so the shrinker must reach the
     structural floor of the move set *)
  let sc = Scenario.generate ~seed:1 () in
  let shrunk, _, _ = Shrink.minimize ~mutation:Exec.Flip_rgraph sc in
  check_int "two processes" 2 shrunk.Scenario.n;
  check_int "one message" 1 shrunk.Scenario.messages;
  check "no crashes" true (shrunk.Scenario.crashes = []);
  check "no faults" true (Faults.is_none shrunk.Scenario.faults);
  check "no transport" false shrunk.Scenario.transport;
  check "no basic checkpoints" true (shrunk.Scenario.basic_period = (0, 0))

let test_minimize_rejects_passing () =
  let sc = Scenario.generate ~seed:3 () in
  match Fuzzer.minimize sc with
  | Error e -> check "explains there is nothing to do" true (e = "scenario passes all checks; nothing to minimize")
  | Ok _ -> Alcotest.fail "minimize accepted a passing scenario"

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let oracle_agrees =
  QCheck.Test.make ~count:80 ~name:"oracle agrees with the R-graph checker"
    Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Gen.pattern_of_recipe recipe in
      QCheck.assume (Oracle.affordable pat);
      Oracle.rdt pat = (Checker.run pat).Checker.rdt)

let () =
  Alcotest.run "rdt_fuzz"
    [
      ( "scenario",
        [
          Alcotest.test_case "generation is valid" `Quick test_generate_valid;
          Alcotest.test_case "generation is pure" `Quick test_generate_pure;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick test_decode_garbage;
          Alcotest.test_case "restrict stays valid" `Quick test_restrict;
        ] );
      ( "intermittent",
        [
          Alcotest.test_case "cut formula" `Quick test_intermittent_cuts;
          Alcotest.test_case "validation" `Quick test_intermittent_validate;
          Alcotest.test_case "flapping host drains" `Quick test_intermittent_run_passes;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "healthy tree passes" `Quick test_campaign_healthy;
          Alcotest.test_case "mapper order irrelevant" `Quick test_campaign_mapper_independent;
          Alcotest.test_case "cells are pure" `Quick test_scenario_at_pure;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "hide-rollbacks: find, shrink, reproduce" `Quick
            test_mutation_hide_rollbacks;
          Alcotest.test_case "flip-rgraph: shrink to the floor" `Quick
            test_mutation_flip_rgraph_floor;
          Alcotest.test_case "minimize rejects a passing scenario" `Quick
            test_minimize_rejects_passing;
        ] );
      ("oracle", [ qt oracle_agrees ]);
    ]
