(* Adversarial partial-trace tests for the two trace consumers.

   [Replay.rebuild] and [Online.check_trace] both promise to reject
   structurally impossible traces — the kind a crash mid-rollback-cascade
   or a truncated JSONL file produces.  These tests pin the exact error
   messages on hand-built traces (orphaned deliveries, rollback to a
   checkpoint that never existed, deliveries of unknown or abandoned
   messages), exercise the interleaved rollback/replay path that must
   stay legal, and sweep every prefix of a real crash-recovery trace
   asserting the two consumers agree on accept/reject everywhere — up
   to the one sanctioned asymmetry, prefixes with messages still in
   flight, which only the pattern-finishing rebuild rejects. *)

module Trace = Rdt_obs.Trace
module Replay = Rdt_obs.Replay
module Online = Rdt_check.Online
module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Scenario = Rdt_fuzz.Scenario
module Exec = Rdt_fuzz.Exec

let check = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let meta n = Trace.Meta { n; protocol = "bhmr"; env = "random"; seed = 0; mode = "test" }

let send msg src dst time = Trace.Send { msg; src; dst; time }

let deliver msg src dst time = Trace.Deliver { msg; src; dst; time }

let ckpt pid index time = Trace.Ckpt { pid; index; kind = T.Basic; time; tdv = None; preds = [] }

let rollback pid to_index time = Trace.Rollback { pid; to_index; time }

let replay msg src dst time = Trace.Replay { msg; src; dst; time }

let undeliverable msg src dst time = Trace.Undeliverable { msg; src; dst; time }

let rebuild_err events =
  match Replay.rebuild events with
  | Ok _ -> Alcotest.fail "rebuild unexpectedly succeeded"
  | Error e -> e

let check_trace_err events =
  match Online.check_trace events with
  | Ok _ -> Alcotest.fail "check_trace unexpectedly accepted"
  | Error e -> e

(* -- truncated mid-cascade: the receiver's rollback never made it ---- *)

let test_orphan_single () =
  (* pid 0 rolls its send back; pid 1's delivery survives — exactly what
     a trace truncated between the two halves of a cascade looks like *)
  let tr = [ meta 2; send 7 0 1 1; deliver 7 0 1 2; rollback 0 0 3 ] in
  check_str "rebuild" "surviving delivery of rolled-back send 7" (rebuild_err tr);
  check_str "check_trace" "surviving delivery of rolled-back send 7" (check_trace_err tr)

let test_orphan_plural () =
  let tr =
    [ meta 2; send 3 0 1 1; send 9 0 1 2; deliver 3 0 1 3; deliver 9 0 1 4; rollback 0 0 5 ]
  in
  (* the end-of-stream check lists every orphan; the rebuild stops at the
     first delivery it cannot satisfy *)
  check_str "check_trace lists all orphans" "surviving deliveries of rolled-back sends 3, 9"
    (check_trace_err tr);
  check_str "rebuild reports the first" "surviving delivery of rolled-back send 3"
    (rebuild_err tr)

(* -- impossible rollbacks and deliveries ----------------------------- *)

let test_rollback_missing_checkpoint () =
  let tr = [ meta 2; ckpt 0 1 1; rollback 0 5 2 ] in
  let e = "rollback of pid 0 to missing checkpoint 5" in
  check_str "rebuild" e (rebuild_err tr);
  check_str "check_trace" e (check_trace_err tr)

let test_deliver_unknown () =
  let tr = [ meta 2; deliver 42 0 1 1 ] in
  let e = "deliver of unknown message 42" in
  check_str "rebuild" e (rebuild_err tr);
  check_str "check_trace" e (check_trace_err tr)

let test_deliver_undeliverable () =
  let tr = [ meta 2; send 1 0 1 1; undeliverable 1 0 1 5; deliver 1 0 1 6 ] in
  let e = "deliver of undeliverable message 1" in
  check_str "rebuild" e (rebuild_err tr);
  check_str "check_trace" e (check_trace_err tr)

(* -- interleaved rollback/replay: the legal shape of a cascade ------- *)

let test_interleaved_rollback_replay () =
  (* pid 1 delivers, rolls back to its initial checkpoint (undoing the
     delivery), the sender-side log replays the message, and a fresh
     delivery lands: no orphan, and the surviving pattern contains the
     second delivery only *)
  let tr =
    [
      meta 2;
      send 1 0 1 1;
      deliver 1 0 1 2;
      rollback 1 0 4;
      replay 1 0 1 5;
      deliver 1 0 1 6;
      ckpt 1 1 7;
    ]
  in
  let pat =
    match Replay.rebuild tr with
    | Ok p -> p
    | Error e -> Alcotest.failf "rebuild rejected a legal cascade: %s" e
  in
  let t =
    match Online.check_trace tr with
    | Ok t -> t
    | Error e -> Alcotest.failf "check_trace rejected a legal cascade: %s" e
  in
  check "no orphans" true (Online.orphan_messages t = []);
  let expected =
    let b = P.Builder.create ~n:2 in
    let h = P.Builder.send ~time:1 b ~src:0 ~dst:1 in
    P.Builder.recv ~time:6 b h;
    ignore (P.Builder.checkpoint ~kind:T.Basic ~time:7 b 1);
    P.Builder.finish ~final_checkpoints:true b
  in
  check "rebuilt pattern keeps only the surviving delivery" true (P.equal pat expected);
  check "verdicts agree" true
    (Online.rdt_so_far t = (Rdt_core.Checker.run pat).Rdt_core.Checker.rdt)

(* -- every prefix of a real crash-recovery trace --------------------- *)

let crashing_run () =
  (* a real crashed-and-recovered execution from the fuzzer's generator:
     reliable network (short trace), crashes guaranteed by the space *)
  let space =
    { Scenario.default_space with max_messages = 20; fault_prob = 0.0; crash_prob = 1.0 }
  in
  let rec go seed =
    if seed > 100 then Alcotest.fail "no crashing scenario within 100 seeds"
    else
      let sc = Scenario.generate ~space ~seed () in
      if sc.Scenario.crashes = [] then go (seed + 1)
      else
        let rep = Exec.run sc in
        let has_rollback =
          List.exists (function Trace.Rollback _ -> true | _ -> false) rep.Exec.events
        in
        if rep.Exec.outcome = Exec.Pass && has_rollback then rep.Exec.events else go (seed + 1)
  in
  go 1

let test_prefix_agreement () =
  let events = crashing_run () in
  let rec sweep prefix_rev rest i =
    match rest with
    | [] -> ()
    | ev :: rest ->
        let prefix = List.rev (ev :: prefix_rev) in
        let a = Replay.rebuild prefix in
        let b = Online.check_trace prefix in
        (match (a, b) with
        | Ok _, Ok _ | Error _, Error _ -> ()
        | Error "Pattern.Builder.finish: undelivered messages remain", Ok _ ->
            (* the one sanctioned asymmetry: an in-flight message is
               legal mid-run for the engine, but the rebuild must finish
               a pattern and a finished pattern has no open sends *)
            ()
        | a, b ->
            Alcotest.failf "prefix of %d events (%s): rebuild says %s, check_trace says %s" i
              (String.concat " " (List.map Trace.kind_name prefix))
              (match a with Ok _ -> "ok" | Error e -> e)
              (match b with Ok _ -> "ok" | Error e -> e));
        sweep (ev :: prefix_rev) rest (i + 1)
  in
  sweep [] events 1;
  (* the full trace is in particular accepted by both *)
  check "full trace accepted" true (Result.is_ok (Replay.rebuild events))

let () =
  Alcotest.run "rdt_replay_adversarial"
    [
      ( "orphans",
        [
          Alcotest.test_case "single orphaned delivery" `Quick test_orphan_single;
          Alcotest.test_case "plural orphan report" `Quick test_orphan_plural;
        ] );
      ( "impossible",
        [
          Alcotest.test_case "rollback to missing checkpoint" `Quick
            test_rollback_missing_checkpoint;
          Alcotest.test_case "deliver of unknown message" `Quick test_deliver_unknown;
          Alcotest.test_case "deliver of abandoned message" `Quick test_deliver_undeliverable;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "interleaved rollback and replay" `Quick
            test_interleaved_rollback_replay;
          Alcotest.test_case "every prefix: consumers agree" `Quick test_prefix_agreement;
        ] );
    ]
