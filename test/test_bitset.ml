(* Differential tests: chunked Bitset vs the original dense bitmap.

   The chunked Roaring-style [Rdt_pattern.Bitset] must be observationally
   identical to the dense implementation it replaced, which survives as
   [Rdt_test_helpers.Dense_bitset].  QCheck drives random op sequences
   through both side by side and compares every observable — membership,
   cardinality, ascending iteration order, [union_into]'s changed bit and
   [union_into_iter]'s exactly-once delta reporting — across capacities
   spanning several 4096-bit chunks so sparse chunks, dense promotions
   and chunk-boundary indices all get exercised.

   Also here: Heap / Event_queue property tests against a sorted-list
   model at shard-merge sizes, since the sharded event core leans on
   their ordering guarantees. *)

module Bitset = Rdt_pattern.Bitset
module Dense = Rdt_test_helpers.Dense_bitset
module Heap = Rdt_dist.Heap
module Event_queue = Rdt_dist.Event_queue

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Op-sequence differential                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | Add of int (* fraction of capacity, scaled at run time *)
  | Remove of int
  | Mem of int
  | Grow of int (* additional capacity *)
  | Union of int (* seed selecting a random source set *)
  | Union_iter of int
  | Card
  | Snapshot (* copy + equal round-trip *)

let pp_op = function
  | Add i -> Printf.sprintf "add %d" i
  | Remove i -> Printf.sprintf "remove %d" i
  | Mem i -> Printf.sprintf "mem %d" i
  | Grow n -> Printf.sprintf "grow +%d" n
  | Union s -> Printf.sprintf "union seed:%d" s
  | Union_iter s -> Printf.sprintf "union_iter seed:%d" s
  | Card -> "cardinal"
  | Snapshot -> "snapshot"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun i -> Add i) (int_bound 20_000));
        (2, map (fun i -> Remove i) (int_bound 20_000));
        (3, map (fun i -> Mem i) (int_bound 20_000));
        (1, map (fun n -> Grow n) (int_range 1 9_000));
        (2, map (fun s -> Union s) (int_bound 1_000_000));
        (3, map (fun s -> Union_iter s) (int_bound 1_000_000));
        (1, return Card);
        (1, return Snapshot);
      ])

let gen_scenario =
  QCheck.Gen.(pair (int_range 1 20_000) (list_size (int_range 1 80) gen_op))

let arb_scenario =
  QCheck.make gen_scenario
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d ops=[%s]" cap (String.concat "; " (List.map pp_op ops)))

(* Build the same pseudo-random source set in both representations.
   Deterministic from [seed] and the current capacity. *)
let make_sources seed cap =
  let rng = Rdt_dist.Rng.create seed in
  let c = Bitset.create cap and d = Dense.create cap in
  let n = Rdt_dist.Rng.int_in rng 0 (min cap 400) in
  for _ = 1 to n do
    let i = Rdt_dist.Rng.int_in rng 0 (cap - 1) in
    Bitset.add c i;
    Dense.add d i
  done;
  (c, d)

let same_sets what c d =
  if Bitset.capacity c <> Dense.capacity d then
    QCheck.Test.fail_reportf "%s: capacity %d vs %d" what (Bitset.capacity c) (Dense.capacity d);
  if Bitset.cardinal c <> Dense.cardinal d then
    QCheck.Test.fail_reportf "%s: cardinal %d vs %d" what (Bitset.cardinal c) (Dense.cardinal d);
  if Bitset.to_list c <> Dense.to_list d then QCheck.Test.fail_reportf "%s: to_list differs" what

let diff_ops =
  QCheck.Test.make ~count:200 ~name:"chunked bitset = dense bitset on random op sequences"
    arb_scenario (fun (cap0, ops) ->
      let c = Bitset.create cap0 and d = Dense.create cap0 in
      let scale i t = if Bitset.capacity t = 0 then -1 else i mod Bitset.capacity t in
      List.iter
        (fun op ->
          match op with
          | Add i ->
              let i = scale i c in
              if i >= 0 then begin
                Bitset.add c i;
                Dense.add d i
              end
          | Remove i ->
              let i = scale i c in
              if i >= 0 then begin
                Bitset.remove c i;
                Dense.remove d i
              end
          | Mem i ->
              let i = scale i c in
              if i >= 0 && Bitset.mem c i <> Dense.mem d i then
                QCheck.Test.fail_reportf "mem %d differs" i
          | Grow n ->
              let target = Bitset.capacity c + n in
              Bitset.ensure_capacity c target;
              Dense.ensure_capacity d target
          | Union s ->
              let src_c, src_d = make_sources s (Bitset.capacity c) in
              let ch_c = Bitset.union_into c src_c and ch_d = Dense.union_into d src_d in
              if ch_c <> ch_d then QCheck.Test.fail_reportf "union_into changed: %b vs %b" ch_c ch_d
          | Union_iter s ->
              let src_c, src_d = make_sources s (Bitset.capacity c) in
              let delta_c = ref [] and delta_d = ref [] in
              let ch_c = Bitset.union_into_iter c src_c ~f:(fun i -> delta_c := i :: !delta_c) in
              let ch_d = Dense.union_into_iter d src_d ~f:(fun i -> delta_d := i :: !delta_d) in
              if ch_c <> ch_d then
                QCheck.Test.fail_reportf "union_into_iter changed: %b vs %b" ch_c ch_d;
              if !delta_c <> !delta_d then QCheck.Test.fail_reportf "union_into_iter delta differs"
          | Card ->
              if Bitset.cardinal c <> Dense.cardinal d then
                QCheck.Test.fail_reportf "cardinal differs mid-sequence"
          | Snapshot ->
              let cc = Bitset.copy c and dd = Dense.copy d in
              if not (Bitset.equal cc c) then QCheck.Test.fail_reportf "copy not equal (chunked)";
              if not (Dense.equal dd d) then QCheck.Test.fail_reportf "copy not equal (dense)";
              same_sets "snapshot" cc dd)
        ops;
      same_sets "final" c d;
      true)

(* union_into_iter reports each element at most once over any sequence of
   unions into the same destination — the amortized-closure contract. *)
let diff_exactly_once =
  QCheck.Test.make ~count:100 ~name:"union_into_iter reports each element exactly once"
    QCheck.(make Gen.(pair (int_range 1 15_000) (list_size (int_range 1 20) (int_bound 1_000_000))))
    (fun (cap, seeds) ->
      let dst = Bitset.create cap in
      let seen = Hashtbl.create 97 in
      List.iter
        (fun s ->
          let src, _ = make_sources s cap in
          ignore
            (Bitset.union_into_iter dst src ~f:(fun i ->
                 if Hashtbl.mem seen i then QCheck.Test.fail_reportf "element %d reported twice" i;
                 Hashtbl.add seen i ()));
          (* re-union of the same source must be a silent no-op *)
          ignore
            (Bitset.union_into_iter dst src ~f:(fun i ->
                 QCheck.Test.fail_reportf "re-union reported %d" i)))
        seeds;
      (* everything reported is a member; every member was reported *)
      Bitset.iter
        (fun i -> if not (Hashtbl.mem seen i) then QCheck.Test.fail_reportf "member %d never reported" i)
        dst;
      Hashtbl.length seen = Bitset.cardinal dst)

let diff_delta_ascending =
  QCheck.Test.make ~count:100 ~name:"union_into_iter delta arrives in ascending order"
    QCheck.(make Gen.(pair (int_range 1 15_000) (int_bound 1_000_000)))
    (fun (cap, seed) ->
      let dst, _ = make_sources (seed lxor 0x5bd1e995) cap in
      let src, _ = make_sources seed cap in
      let last = ref (-1) in
      ignore
        (Bitset.union_into_iter dst src ~f:(fun i ->
             if i <= !last then QCheck.Test.fail_reportf "delta not ascending: %d after %d" i !last;
             last := i));
      true)

(* ------------------------------------------------------------------ *)
(* Targeted unit tests: chunk boundaries, promotion, errors            *)
(* ------------------------------------------------------------------ *)

let test_chunk_boundaries () =
  let cap = 3 * 4096 in
  let t = Bitset.create cap in
  let probes = [ 0; 63; 64; 4095; 4096; 4097; 8191; 8192; cap - 1 ] in
  List.iter (Bitset.add t) probes;
  Alcotest.(check (list int)) "ascending members" (List.sort compare probes) (Bitset.to_list t);
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "mem %d" i) true (Bitset.mem t i))
    probes;
  Alcotest.(check bool) "non-member" false (Bitset.mem t 1000);
  Bitset.remove t 4096;
  Alcotest.(check bool) "removed" false (Bitset.mem t 4096);
  Alcotest.(check int) "cardinal" (List.length probes - 1) (Bitset.cardinal t)

let test_promotion_roundtrip () =
  (* push one chunk past the sparse->dense promotion threshold and make
     sure nothing is lost or reordered on the way *)
  let t = Bitset.create 4096 in
  let members = List.init 200 (fun i -> (i * 17) mod 4096) |> List.sort_uniq compare in
  List.iter (Bitset.add t) members;
  Alcotest.(check (list int)) "members survive promotion" members (Bitset.to_list t);
  let d = Dense.create 4096 in
  List.iter (Dense.add d) members;
  Alcotest.(check (list int)) "matches dense" (Dense.to_list d) (Bitset.to_list t)

let test_equal_representation_independent () =
  (* same contents via different op histories (one promoted, one not) *)
  let a = Bitset.create 5000 and b = Bitset.create 5000 in
  List.iter (Bitset.add a) (List.init 100 (fun i -> i));
  List.iter (fun i -> Bitset.remove a i) (List.init 90 (fun i -> i + 10));
  List.iter (Bitset.add b) (List.init 10 (fun i -> i));
  Alcotest.(check bool) "equal across representations" true (Bitset.equal a b);
  Bitset.add a 4999;
  Alcotest.(check bool) "inequality detected" false (Bitset.equal a b)

let test_error_messages () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument m -> Alcotest.(check string) "message" msg m
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid "Bitset.create: negative capacity" (fun () -> Bitset.create (-1));
  let t = Bitset.create 10 in
  expect_invalid "Bitset: index out of bounds" (fun () -> Bitset.mem t 10);
  expect_invalid "Bitset: index out of bounds" (fun () -> Bitset.add t (-1));
  let big = Bitset.create 20 in
  expect_invalid "Bitset.union_into: capacity mismatch" (fun () -> Bitset.union_into t big);
  expect_invalid "Bitset.union_into_iter: capacity mismatch" (fun () ->
      Bitset.union_into_iter t big ~f:ignore)

let test_empty_set_is_cheap () =
  (* the whole point: an empty set over n=10^6 must cost O(n/4096) words *)
  let t = Bitset.create 1_000_000 in
  let words = Obj.reachable_words (Obj.repr t) in
  Alcotest.(check bool)
    (Printf.sprintf "empty 10^6-universe set is small (%d words)" words)
    true (words < 2_000);
  Bitset.add t 999_999;
  Alcotest.(check (list int)) "still works" [ 999_999 ] (Bitset.to_list t)

(* ------------------------------------------------------------------ *)
(* Heap / Event_queue vs sorted-list model                             *)
(* ------------------------------------------------------------------ *)

let heap_model =
  QCheck.Test.make ~count:60 ~name:"Heap drains in sorted order at shard-merge sizes"
    QCheck.(make Gen.(list_size (int_range 0 3_000) (int_bound 10_000)))
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      if Heap.length h <> List.length xs then QCheck.Test.fail_reportf "length mismatch";
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let heap_interleaved =
  QCheck.Test.make ~count:60 ~name:"Heap interleaved add/pop matches sorted-list model"
    QCheck.(make Gen.(list_size (int_range 0 500) (option (int_bound 1_000))))
    (fun ops ->
      (* Some x = add x; None = pop *)
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.add h x;
              model := List.sort compare (x :: !model);
              Heap.peek h = (match !model with [] -> None | m :: _ -> Some m)
          | None -> (
              let got = Heap.pop h in
              match !model with
              | [] -> got = None
              | m :: rest ->
                  model := rest;
                  got = Some m))
        ops)

let event_queue_model =
  QCheck.Test.make ~count:60
    ~name:"Event_queue pops by (time, insertion order) at shard-merge sizes"
    QCheck.(make Gen.(list_size (int_range 0 3_000) (int_bound 50)))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i time -> Event_queue.schedule q ~time i) times;
      (* model: stable sort by time of (time, insertion index) *)
      let model = List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) (List.mapi (fun i t -> (t, i)) times) in
      let rec drain acc =
        match Event_queue.pop q with None -> List.rev acc | Some (t, i) -> drain ((t, i) :: acc)
      in
      drain [] = model)

let () =
  Alcotest.run "rdt_bitset"
    [
      ( "differential",
        [
          qt diff_ops;
          qt diff_exactly_once;
          qt diff_delta_ascending;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "sparse->dense promotion" `Quick test_promotion_roundtrip;
          Alcotest.test_case "equal is representation-independent" `Quick
            test_equal_representation_independent;
          Alcotest.test_case "error messages" `Quick test_error_messages;
          Alcotest.test_case "empty set over 10^6 universe is O(chunks)" `Quick test_empty_set_is_cheap;
        ] );
      ( "queues",
        [ qt heap_model; qt heap_interleaved; qt event_queue_model ] );
    ]
