(* Crash-matrix suite for the durable checker state.

   The recovery invariant under test: for EVERY crash point (each
   fsync / rename / torn-write site the durable layer announces to
   Crashpoint, hit in order) x snapshot interval x workload, killing the
   session at exactly that instant, recovering in the same directory and
   resuming the stream yields an engine whose summary, violations and
   first-violation latch are identical to an uninterrupted run's — which
   in turn agrees with the offline R-graph checker.  Recovery must also
   leave the directory clean (no *.tmp residue).

   On top of the exhaustive matrix: deliberate corruption (flipped CRC
   bytes in the newest snapshot, all snapshots, torn WAL tails, damaged
   wal-0) must degrade down the generation chain — older snapshot, then
   full-WAL replay, then the typed Corrupt error — and never produce a
   wrong verdict. *)

module Runtime = Rdt_core.Runtime
module Registry = Rdt_core.Registry
module Checker = Rdt_core.Checker
module Trace = Rdt_obs.Trace
module Online = Rdt_check.Online
module Codec = Rdt_durable.Codec
module Crashpoint = Rdt_durable.Crashpoint
module Io = Rdt_durable.Io
module Snapshot = Rdt_durable.Snapshot
module Wal = Rdt_durable.Wal
module Session = Rdt_durable.Session

let check = Alcotest.(check bool)

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Scratch directories (no ambient randomness: pid + counter)          *)
(* ------------------------------------------------------------------ *)

let scratch_counter = ref 0

(* The crash matrix runs hundreds of full write-fsync-recover cycles;
   on a disk-backed temp dir the fsyncs dominate the suite's wall clock
   by two orders of magnitude.  The crashes are simulated (an exception,
   not a kill), so tmpfs loses none of the semantics — prefer it. *)
let scratch_base =
  if Sys.file_exists "/dev/shm" && Sys.is_directory "/dev/shm" then "/dev/shm"
  else Filename.get_temp_dir_name ()

let scratch () =
  incr scratch_counter;
  Filename.concat scratch_base
    (Printf.sprintf "rdt-test-durable-%d-%d" (Unix.getpid ()) !scratch_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = scratch () in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let no_tmp_residue dir =
  Sys.readdir dir |> Array.for_all (fun f -> not (Filename.check_suffix f ".tmp"))

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let trace_of ~envname ~seed ~messages ~n protocol =
  let tr = Trace.ring ~capacity:100_000 in
  let env = Rdt_workloads.Registry.find_exn envname in
  let r =
    Runtime.run
      { (Runtime.default_config env (Registry.find_exn protocol)) with
        Runtime.n;
        seed;
        max_messages = messages;
        trace = tr;
      }
  in
  (Trace.events tr, r.Runtime.pattern)

type expected = {
  summary : Online.summary;
  violations : Online.violation list;
  n : int;
}

let uninterrupted events =
  match Online.trace_process_count events with
  | Error e -> Alcotest.fail e
  | Ok n -> (
      match Online.check_trace events with
      | Error e -> Alcotest.fail e
      | Ok t -> { summary = Online.summary t; violations = Online.violations t; n })

let config interval = { Session.default_config with Session.snapshot_every = interval }

let feed_from s events =
  let skip = Online.events_seen (Session.engine s) in
  List.iteri (fun i ev -> if i >= skip then Session.observe s ev) events

let assert_equal_state label exp engine =
  if Online.summary engine <> exp.summary then
    Alcotest.failf "%s: recovered summary %s, uninterrupted %s" label
      (Format.asprintf "%a" Online.pp_summary (Online.summary engine))
      (Format.asprintf "%a" Online.pp_summary exp.summary);
  check (label ^ ": violations equal") true (Online.violations engine = exp.violations);
  check (label ^ ": first-violation latch equal") true
    (Online.first_violation engine = exp.summary.Online.first_violation)

(* Run the whole stream durably with no crash; returns the crash-site
   hit count of the complete run (the matrix bound). *)
let dry_run ~dir ~interval ~exp events =
  Crashpoint.reset ();
  let s, info = Session.open_ ~config:(config interval) ~dir ~n:exp.n ~track_open:true () in
  check "fresh directory" true (info = None);
  feed_from s events;
  Session.close s;
  assert_equal_state "uninterrupted durable run" exp (Session.engine s);
  Crashpoint.hits ()

(* Kill at the [k]th crash-site hit, then recover-and-resume — possibly
   through a second kill at the same global count if the armed hit lands
   in the recovery's own writes. *)
let crash_at ~dir ~interval ~exp events k =
  rm_rf dir;
  Crashpoint.reset ();
  Crashpoint.arm ~at:k;
  let crashed = ref false in
  (try
     let s, _ = Session.open_ ~config:(config interval) ~dir ~n:exp.n ~track_open:true () in
     match feed_from s events with
     | () -> Session.close s
     | exception Crashpoint.Crash _ ->
         crashed := true;
         Session.abort s
   with Crashpoint.Crash _ -> crashed := true);
  Crashpoint.disarm ();
  if not !crashed then Alcotest.failf "site %d never hit" k;
  let s, _info = Session.open_ ~config:(config interval) ~dir ~n:exp.n ~track_open:true () in
  check "resume point within the stream" true
    (Online.events_seen (Session.engine s) <= List.length events);
  feed_from s events;
  Session.close s;
  assert_equal_state (Printf.sprintf "crash at site %d" k) exp (Session.engine s);
  check (Printf.sprintf "site %d: no tmp residue" k) true (no_tmp_residue dir)

let matrix_case ~envname ~protocol ~seed ~messages ~n ~intervals () =
  let events, pat = trace_of ~envname ~seed ~messages ~n protocol in
  let exp = uninterrupted events in
  (* the stream verdict must agree with the offline R-graph oracle on
     the finished pattern *)
  check "uninterrupted = offline R-graph oracle" true
    ((Checker.run ~algo:`Rgraph pat).Checker.rdt = exp.summary.Online.rdt);
  List.iter
    (fun interval ->
      with_dir (fun dir ->
          let sites = dry_run ~dir ~interval ~exp events in
          check "the run crosses crash sites" true (sites > 0);
          for k = 1 to sites do
            crash_at ~dir ~interval ~exp events k
          done;
          Crashpoint.reset ()))
    intervals

(* Exhaustive on every site for the two cheaper workloads ... *)
let test_matrix_random = matrix_case ~envname:"random" ~protocol:"bhmr" ~seed:11 ~messages:40 ~n:4 ~intervals:[ 1; 7; 64 ]

let test_matrix_group = matrix_case ~envname:"group" ~protocol:"bhmr" ~seed:3 ~messages:40 ~n:4 ~intervals:[ 7; 64 ]

let test_matrix_client_server =
  matrix_case ~envname:"client-server" ~protocol:"none" ~seed:5 ~messages:40 ~n:4
    ~intervals:[ 1; 64 ]

(* ... and sampled by QCheck over (workload, interval, site) for bigger
   streams, where exhausting every site would be O(sites^2). *)
let qcheck_crash_matrix =
  let events_tbl = Hashtbl.create 8 in
  let events_for envname protocol seed =
    let key = (envname, protocol, seed) in
    match Hashtbl.find_opt events_tbl key with
    | Some v -> v
    | None ->
        let events, _ = trace_of ~envname ~seed ~messages:80 ~n:5 protocol in
        let v = (events, uninterrupted events) in
        Hashtbl.add events_tbl key v;
        v
  in
  let gen =
    QCheck.Gen.(
      triple
        (oneofl [ ("random", "bhmr", 21); ("group", "bhmr", 22); ("client-server", "fdas", 23) ])
        (oneofl [ 1; 7; 64 ])
        (int_range 1 5000))
  in
  QCheck.Test.make ~count:40 ~name:"recovered = uninterrupted at random crash sites"
    (QCheck.make gen) (fun ((envname, protocol, seed), interval, site_raw) ->
      let events, exp = events_for envname protocol seed in
      with_dir (fun dir ->
          let sites = dry_run ~dir ~interval ~exp events in
          let k = 1 + (site_raw mod sites) in
          crash_at ~dir ~interval ~exp events k;
          Crashpoint.reset ();
          true))

(* ------------------------------------------------------------------ *)
(* Deliberate corruption                                               *)
(* ------------------------------------------------------------------ *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = pos mod len in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let durable_run ~dir ~interval events exp =
  let s, _ = Session.open_ ~config:(config interval) ~dir ~n:exp.n ~track_open:true () in
  feed_from s events;
  Session.close s;
  s

let recover_and_check ~dir events exp =
  let s, info = Session.open_ ~config:(config 7) ~dir ~n:exp.n ~track_open:true () in
  feed_from s events;
  Session.close s;
  assert_equal_state "after corruption" exp (Session.engine s);
  check "no tmp residue" true (no_tmp_residue dir);
  info

let test_corrupt_newest_snapshot () =
  let events, _ = trace_of ~envname:"random" ~seed:31 ~messages:60 ~n:4 "bhmr" in
  let exp = uninterrupted events in
  with_dir (fun dir ->
      ignore (durable_run ~dir ~interval:7 events exp);
      let gens = Snapshot.generations ~dir in
      check "several generations kept" true (List.length gens >= 2);
      let newest = List.hd gens in
      (* flip a payload byte: the stored CRC no longer matches *)
      flip_byte (Snapshot.path ~dir ~gen:newest) 40;
      match recover_and_check ~dir events exp with
      | None -> Alcotest.fail "no recovery happened"
      | Some info ->
          check "degraded below the newest generation" true
            (match info.Session.restored_gen with Some g -> g < newest | None -> true);
          check "the corrupt generation is reported" true
            (List.mem_assoc newest info.Session.skipped);
          check "the corrupt file is disposed of" true
            (not (List.mem newest (Snapshot.generations ~dir))))

let test_corrupt_all_snapshots_full_replay () =
  let events, _ = trace_of ~envname:"random" ~seed:32 ~messages:60 ~n:4 "bhmr" in
  let exp = uninterrupted events in
  with_dir (fun dir ->
      ignore (durable_run ~dir ~interval:7 events exp);
      List.iter (fun g -> flip_byte (Snapshot.path ~dir ~gen:g) 25) (Snapshot.generations ~dir);
      match recover_and_check ~dir events exp with
      | None -> Alcotest.fail "no recovery happened"
      | Some info ->
          check "fell back to a full WAL replay" true (info.Session.restored_gen = None);
          check "replayed the whole durable prefix" true
            (info.Session.replayed_events > 0))

let test_corrupt_beyond_recovery () =
  let events, _ = trace_of ~envname:"random" ~seed:33 ~messages:40 ~n:4 "bhmr" in
  let exp = uninterrupted events in
  with_dir (fun dir ->
      ignore (durable_run ~dir ~interval:7 events exp);
      List.iter (fun g -> flip_byte (Snapshot.path ~dir ~gen:g) 25) (Snapshot.generations ~dir);
      (* damage wal-0's header record too: no chain left *)
      flip_byte (Wal.path ~dir ~gen:0) 6;
      match Session.open_ ~config:(config 7) ~dir ~n:exp.n ~track_open:true () with
      | _ -> Alcotest.fail "corrupt-beyond-recovery state was accepted"
      | exception Io.Error (Io.Corrupt _) -> ())

let test_torn_wal_tail () =
  let events, _ = trace_of ~envname:"random" ~seed:34 ~messages:60 ~n:4 "bhmr" in
  let exp = uninterrupted events in
  with_dir (fun dir ->
      ignore (durable_run ~dir ~interval:1000 events exp);
      (* a torn frame: length prefix promising more than is there *)
      let path = Wal.path ~dir ~gen:0 in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\xff\x00\x00\x00half-a-record";
      close_out oc;
      (match Wal.read ~dir ~gen:0 with
      | Error e -> Alcotest.fail e
      | Ok rr -> check "tear detected" true (rr.Wal.torn <> None));
      ignore (recover_and_check ~dir events exp);
      (* the reopen truncated the tear away: a third open is clean *)
      match Wal.read ~dir ~gen:0 with
      | Error e -> Alcotest.fail e
      | Ok rr -> check "tail truncated on reopen" true (rr.Wal.torn = None))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  let ints = [ 0; 1; 127; 128; 255; 16384; 1 lsl 30; max_int ] in
  List.iter (Codec.Writer.varint w) ints;
  Codec.Writer.opt_varint w None;
  Codec.Writer.opt_varint w (Some 0);
  Codec.Writer.opt_varint w (Some 4096);
  Codec.Writer.u32 w 0;
  Codec.Writer.u32 w 0xFFFFFFFF;
  Codec.Writer.u32 w 0xDEADBEEF;
  Codec.Writer.string_ w "";
  Codec.Writer.string_ w "frame payload";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  List.iter (fun v -> Alcotest.(check int) "varint" v (Codec.Reader.varint r)) ints;
  check "opt none" true (Codec.Reader.opt_varint r = None);
  check "opt zero" true (Codec.Reader.opt_varint r = Some 0);
  check "opt big" true (Codec.Reader.opt_varint r = Some 4096);
  Alcotest.(check int) "u32 zero" 0 (Codec.Reader.u32 r);
  Alcotest.(check int) "u32 max" 0xFFFFFFFF (Codec.Reader.u32 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.Reader.u32 r);
  check "empty string" true (Codec.Reader.string_ r = "");
  check "string" true (Codec.Reader.string_ r = "frame payload");
  Alcotest.(check int) "fully consumed" 0 (Codec.Reader.remaining r);
  check "negative varint rejected" true
    (match Codec.Writer.varint (Codec.Writer.create ()) (-1) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* IEEE CRC-32 known answer ("123456789" -> 0xCBF43926) *)
  Alcotest.(check int) "crc32 vector" 0xCBF43926 (Codec.crc32 "123456789")

let test_snapshot_codec () =
  let events, _ = trace_of ~envname:"group" ~seed:41 ~messages:50 ~n:4 "bhmr" in
  let exp = uninterrupted events in
  let engine =
    let t = Online.create ~n:exp.n () in
    List.iter (Online.observe t) events;
    t
  in
  let e = Online.export engine in
  let img = Snapshot.encode e in
  (match Snapshot.decode img with
  | Error why -> Alcotest.fail why
  | Ok e' ->
      check "decode inverts encode" true (e' = e);
      check "restored answers identically" true
        (Online.summary (Online.restore e') = exp.summary));
  check "deterministic encoding" true (Snapshot.encode (Online.export (Online.restore e)) = img);
  (* flipping any sampled byte must yield Error, never a wrong export *)
  String.iteri
    (fun i _ ->
      if i mod 7 = 0 then begin
        let b = Bytes.of_string img in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        match Snapshot.decode (Bytes.to_string b) with
        | Error _ -> ()
        | Ok e' ->
            if e' <> e then Alcotest.failf "byte %d: corrupt snapshot decoded to a different export" i
      end)
    img

let () =
  Alcotest.run "rdt_durable"
    [
      ( "crash-matrix",
        [
          Alcotest.test_case "random x bhmr, every site x {1,7,64}" `Quick test_matrix_random;
          Alcotest.test_case "group x bhmr, every site x {7,64}" `Quick test_matrix_group;
          Alcotest.test_case "client-server x none, every site x {1,64}" `Quick
            test_matrix_client_server;
          qt qcheck_crash_matrix;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "flipped byte in newest snapshot degrades" `Quick
            test_corrupt_newest_snapshot;
          Alcotest.test_case "all snapshots bad: full WAL replay" `Quick
            test_corrupt_all_snapshots_full_replay;
          Alcotest.test_case "beyond recovery: typed Corrupt error" `Quick
            test_corrupt_beyond_recovery;
          Alcotest.test_case "torn WAL tail is truncated" `Quick test_torn_wal_tail;
        ] );
      ( "codec",
        [
          Alcotest.test_case "primitives roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "snapshot image roundtrip and tamper-evidence" `Quick
            test_snapshot_codec;
        ] );
    ]
