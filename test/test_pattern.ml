(* Tests for rdt_pattern: the pattern builder, the R-graph, TDV replay,
   message chains / Z-paths, and consistency — including exact checks on
   the paper's Figure 1 and property tests against naive reference
   implementations. *)

module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Rgraph = Rdt_pattern.Rgraph
module Tdv = Rdt_pattern.Tdv
module Chains = Rdt_pattern.Chains
module Consistency = Rdt_pattern.Consistency
module Bitset = Rdt_pattern.Bitset

let check = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let all_ckpts pat =
  P.fold_ckpts pat ~init:[] ~f:(fun acc c -> (c.T.owner, c.T.index) :: acc)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 130 in
  check "empty" false (Bitset.mem s 0);
  Bitset.add s 0;
  Bitset.add s 64;
  Bitset.add s 129;
  check "mem 0" true (Bitset.mem s 0);
  check "mem 64" true (Bitset.mem s 64);
  check "mem 129" true (Bitset.mem s 129);
  check "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 129 ] (Bitset.to_list s);
  Bitset.remove s 64;
  check "removed" false (Bitset.mem s 64);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s 130)

let test_bitset_union () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  Bitset.add a 1;
  Bitset.add b 70;
  check "changed" true (Bitset.union_into a b);
  check "has 70" true (Bitset.mem a 70);
  check "no change" false (Bitset.union_into a b);
  let c = Bitset.copy a in
  check "copy equal" true (Bitset.equal a c);
  Bitset.add c 2;
  check "copy independent" false (Bitset.mem a 2)

let bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a list model" ~count:200
    QCheck.(list (int_bound 199))
    (fun xs ->
      let s = Bitset.create 200 in
      List.iter (Bitset.add s) xs;
      let model = List.sort_uniq compare xs in
      Bitset.to_list s = model && Bitset.cardinal s = List.length model)

(* ------------------------------------------------------------------ *)
(* Builder and accessors                                               *)
(* ------------------------------------------------------------------ *)

let test_builder_initial_checkpoints () =
  let b = P.Builder.create ~n:3 in
  let pat = P.Builder.finish b in
  Alcotest.(check int) "n" 3 (P.n pat);
  for i = 0 to 2 do
    let cks = P.checkpoints pat i in
    Alcotest.(check int) "one ckpt" 1 (Array.length cks);
    check "initial kind" true (cks.(0).T.kind = T.Initial)
  done;
  check "valid" true (Result.is_ok (P.validate pat))

let test_builder_rejects_bad_usage () =
  let b = P.Builder.create ~n:2 in
  Alcotest.check_raises "self send" (Invalid_argument "Pattern.Builder.send: src = dst")
    (fun () -> ignore (P.Builder.send b ~src:1 ~dst:1));
  let m = P.Builder.send b ~src:0 ~dst:1 in
  P.Builder.recv b m;
  Alcotest.check_raises "double recv"
    (Invalid_argument "Pattern.Builder.recv: message already delivered") (fun () ->
      P.Builder.recv b m)

let test_builder_undelivered_rejected () =
  let b = P.Builder.create ~n:2 in
  let m = P.Builder.send b ~src:0 ~dst:1 in
  Alcotest.(check (list int)) "in flight" [ m ] (P.Builder.in_flight b);
  Alcotest.check_raises "finish with in-flight"
    (Invalid_argument "Pattern.Builder.finish: undelivered messages remain") (fun () ->
      ignore (P.Builder.finish b))

let test_builder_final_checkpoints () =
  let b = P.Builder.create ~n:2 in
  let m = P.Builder.send b ~src:0 ~dst:1 in
  P.Builder.recv b m;
  let pat = P.Builder.finish ~final_checkpoints:true b in
  check "final on 0" true ((P.checkpoints pat 0).(1).T.kind = T.Final);
  check "final on 1" true ((P.checkpoints pat 1).(1).T.kind = T.Final);
  (* a process whose last event is already a checkpoint gets no final *)
  let b2 = P.Builder.create ~n:2 in
  let m2 = P.Builder.send b2 ~src:0 ~dst:1 in
  P.Builder.recv b2 m2;
  ignore (P.Builder.checkpoint b2 0);
  ignore (P.Builder.checkpoint b2 1);
  let pat2 = P.Builder.finish ~final_checkpoints:true b2 in
  Alcotest.(check int) "no extra ckpt" 2 (Array.length (P.checkpoints pat2 0))

let test_intervals () =
  let b = P.Builder.create ~n:2 in
  let m = P.Builder.send b ~src:0 ~dst:1 in
  ignore (P.Builder.checkpoint b 0);
  let m' = P.Builder.send b ~src:0 ~dst:1 in
  P.Builder.recv b m;
  P.Builder.recv b m';
  let pat = P.Builder.finish b in
  let msg = P.message pat m and msg' = P.message pat m' in
  Alcotest.(check int) "m in I_{0,1}" 1 msg.T.send_interval;
  Alcotest.(check int) "m' in I_{0,2}" 2 msg'.T.send_interval;
  Alcotest.(check int) "both delivered in I_{1,1}" 1 msg.T.recv_interval;
  Alcotest.(check int) "interval_of_pos send m" 1
    (P.interval_of_pos pat 0 ~pos:msg.T.send_pos);
  Alcotest.(check int) "interval_of_pos ckpt = own index" 1
    (P.interval_of_pos pat 0 ~pos:(P.checkpoints pat 0).(1).T.pos)

let test_gseq_order () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let pat = fx.pattern in
  let order = P.events_in_gseq_order pat in
  (* globally sorted and a permutation of all events *)
  let total = Array.fold_left (fun acc i -> acc + Array.length (P.events pat i)) 0
      (Array.init (P.n pat) (fun i -> i)) in
  Alcotest.(check int) "all events" total (Array.length order);
  let last = ref (-1) in
  Array.iter
    (fun (i, pos, _) ->
      let g = P.gseq pat i ~pos in
      check "strictly increasing" true (g > !last);
      last := g)
    order

let test_counts () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let pat = fx.pattern in
  Alcotest.(check int) "messages" 7 (P.num_messages pat);
  Alcotest.(check int) "initial count" 3 (P.count_kind pat T.Initial);
  check "valid" true (Result.is_ok (P.validate pat))

let test_builder_many_messages () =
  (* append far past several doublings of the builder's message array
     (initial capacity 64): every handle must survive, num_messages must
     stay exact, and each message must carry its own src/dst back out *)
  let n_msgs = 1039 in
  let b = P.Builder.create ~n:4 in
  let handles =
    List.init n_msgs (fun k ->
        let src = k mod 4 in
        let dst = (k + 1 + (k mod 3)) mod 4 in
        let dst = if dst = src then (dst + 1) mod 4 else dst in
        (P.Builder.send b ~src ~dst, src, dst))
  in
  List.iter (fun (h, _, _) -> P.Builder.recv b h) handles;
  let pat = P.Builder.finish b in
  Alcotest.(check int) "num_messages exact" n_msgs (P.num_messages pat);
  check "valid" true (Result.is_ok (P.validate pat));
  List.iter
    (fun (h, src, dst) ->
      let m = P.message pat h in
      Alcotest.(check int) (Printf.sprintf "msg %d id" h) h m.T.id;
      Alcotest.(check int) (Printf.sprintf "msg %d src" h) src m.T.src;
      Alcotest.(check int) (Printf.sprintf "msg %d dst" h) dst m.T.dst)
    handles

(* ------------------------------------------------------------------ *)
(* Figure 1: R-graph                                                   *)
(* ------------------------------------------------------------------ *)

let test_fig1_rgraph_edges () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let g = Rgraph.build fx.pattern in
  let succ a = List.map (Rgraph.ckpt_of_node g) (Rgraph.successors g (Rgraph.node_of_ckpt g a)) in
  (* message edges of Figure 1.b *)
  check "m1: C(i,1)->C(j,1)" true (List.mem (j, 1) (succ (i, 1)));
  check "m2: C(j,1)->C(i,2)" true (List.mem (i, 2) (succ (j, 1)));
  check "m3: C(k,1)->C(j,1)" true (List.mem (j, 1) (succ (k, 1)));
  check "m4: C(j,2)->C(k,2)" true (List.mem (k, 2) (succ (j, 2)));
  check "m5: C(i,3)->C(j,2)" true (List.mem (j, 2) (succ (i, 3)));
  check "m7: C(k,2)->C(j,3)" true (List.mem (j, 3) (succ (k, 2)));
  (* program-order edges *)
  check "C(i,0)->C(i,1)" true (List.mem (i, 1) (succ (i, 0)));
  (* no fabricated edge *)
  check "no C(k,1)->C(i,2) edge" false (List.mem (i, 2) (succ (k, 1)))

let test_fig1_reachability () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let g = Rgraph.build fx.pattern in
  check "C(k,1) ~> C(i,2) via m3,m2" true (Rgraph.reaches g (k, 1) (i, 2));
  check "C(i,3) ~> C(k,2)" true (Rgraph.reaches g (i, 3) (k, 2));
  check "C(k,1) ~> C(k,2)" true (Rgraph.reaches g (k, 1) (k, 2));
  check "self" true (Rgraph.reaches g (j, 2) (j, 2));
  check "no back edge C(j,3) ~> C(i,1)" false (Rgraph.reaches g (j, 3) (i, 1));
  Alcotest.(check int) "max reaching index from k to C(i,2)" 1
    (Rgraph.max_reaching_index g ~from_pid:k (i, 2));
  Alcotest.(check int) "no reaching index from j to C(j',..)... none from j to C(k,1)" (-1)
    (Rgraph.max_reaching_index g ~from_pid:j (k, 1))

let test_fig1_acyclic () =
  (* Figure 1 has no R-cycle *)
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let g = Rgraph.build fx.pattern in
  List.iter (fun c -> check "acyclic" false (Rgraph.in_cycle g c)) (all_ckpts fx.pattern)

let test_crossing_cycle () =
  let pat = Rdt_test_helpers.Fixtures.two_crossing () in
  let g = Rgraph.build pat in
  check "cycle C(0,1)<->C(1,1)" true (Rgraph.in_cycle g (0, 1));
  check "cycle C(1,1)" true (Rgraph.in_cycle g (1, 1));
  check "mutual reach" true (Rgraph.reaches g (0, 1) (1, 1) && Rgraph.reaches g (1, 1) (0, 1));
  check "but the pair is still consistent" true (Consistency.consistent_pair pat (0, 1) (1, 1))

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_output () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let g = Rgraph.build fx.pattern in
  let dot = Rgraph.to_dot g in
  check "digraph" true (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  check "has node label" true (contains_substring dot "C(0,1)");
  check "has an edge" true (contains_substring dot "->")

let rgraph_matches_naive =
  QCheck.Test.make ~name:"rgraph reachability = naive DFS" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let g = Rgraph.build pat in
      let cks = all_ckpts pat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Rgraph.reaches g a b = Rdt_test_helpers.Naive.reaches pat a b)
            cks)
        cks)

let rgraph_edges_match_naive =
  QCheck.Test.make ~name:"rgraph edges = definition" ~count:100
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let g = Rgraph.build pat in
      let got = ref [] in
      for v = 0 to Rgraph.num_nodes g - 1 do
        List.iter
          (fun w -> got := (Rgraph.ckpt_of_node g v, Rgraph.ckpt_of_node g w) :: !got)
          (Rgraph.successors g v)
      done;
      List.sort_uniq compare !got = Rdt_test_helpers.Naive.rgraph_edges pat)

(* ------------------------------------------------------------------ *)
(* Figure 1: TDV                                                       *)
(* ------------------------------------------------------------------ *)

let test_fig1_tdv_values () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let tdv = Tdv.compute fx.pattern in
  Alcotest.(check (array int)) "TDV_{i,1}" [| 1; 0; 0 |] (Tdv.at tdv (i, 1));
  Alcotest.(check (array int)) "TDV_{j,1}" [| 1; 1; 1 |] (Tdv.at tdv (j, 1));
  Alcotest.(check (array int)) "TDV_{i,2}" [| 2; 1; 0 |] (Tdv.at tdv (i, 2));
  Alcotest.(check (array int)) "TDV_{k,1}" [| 0; 0; 1 |] (Tdv.at tdv (k, 1));
  (* C_{k,2} is reached causally by m4 (I_{j,2}) and transitively by m5's
     past: i up to interval 3 *)
  Alcotest.(check (array int)) "TDV_{k,2}" [| 3; 2; 2 |] (Tdv.at tdv (k, 2));
  Alcotest.(check (array int)) "initial zero" [| 0; 0; 0 |] (Tdv.at tdv (i, 0))

let test_fig1_not_rdt () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; k; _ } = fx in
  let tdv = Tdv.compute fx.pattern in
  (* the hidden dependency of the paper: R-path C(k,1) ~> C(i,2) is not
     trackable *)
  check "hidden dependency" false (Tdv.trackable tdv (k, 1) (i, 2));
  check "chains agree" false (Chains.trackable fx.pattern (k, 1) (i, 2));
  (* …but C(i,3) ~> C(k,2) is, thanks to the causal sibling [m5; m6] *)
  check "tracked dependency" true (Tdv.trackable tdv (i, 3) (k, 2));
  check "chains agree (tracked)" true (Chains.trackable fx.pattern (i, 3) (k, 2))

let tdv_matches_chains =
  QCheck.Test.make ~name:"TDV trackability = causal chain search" ~count:80
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let tdv = Tdv.compute pat in
      let cks = all_ckpts pat in
      List.for_all
        (fun a ->
          List.for_all (fun b -> Tdv.trackable tdv a b = Chains.trackable pat a b) cks)
        cks)

let tdv_matches_naive =
  QCheck.Test.make ~name:"TDV trackability = naive message-graph DFS" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let tdv = Tdv.compute pat in
      let cks = all_ckpts pat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Tdv.trackable tdv a b = Rdt_test_helpers.Naive.trackable pat a b)
            cks)
        cks)

let tdv_entry_is_max_chain_origin =
  QCheck.Test.make ~name:"TDV entries are monotone along each process" ~count:100
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let tdv = Tdv.compute pat in
      let ok = ref true in
      for i = 0 to P.n pat - 1 do
        for x = 0 to P.last_index pat i - 1 do
          let a = Tdv.at tdv (i, x) and b = Tdv.at tdv (i, x + 1) in
          Array.iteri (fun kk v -> if v > b.(kk) then ok := false) a
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Figure 1: chains and Z-paths                                        *)
(* ------------------------------------------------------------------ *)

let test_fig1_zpaths () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let pat = fx.pattern in
  (* [m3; m2] realises C(k,1) ~> C(i,2) as a Z-path but not causally *)
  let zr = Chains.zpath_from_interval pat (k, 1) in
  check "zpath to C(i,2)" true (zr.Chains.earliest.(i) <= 2);
  check "no causal chain from I_{k,1} to i" false
    ((Chains.causal_from_interval pat (k, 1)).Chains.earliest.(i) <= 2);
  (* [m5; m4] and the causal sibling [m5; m6] both realise C(i,3) ~> C(k,2) *)
  check "causal chain I_{i,3} to C(k,2)" true
    ((Chains.causal_from_interval pat (i, 3)).Chains.earliest.(k) <= 2);
  check "strictly trackable C(i,3)->C(k,2)" true (Chains.strictly_trackable pat (i, 3) (k, 2));
  (* the non-causal chain [m3 m2 m5 m4 m7] from C(k,1) ends at C(j,3) *)
  check "zpath C(k,1) to C(j,3)" true (zr.Chains.earliest.(j) <= 3)

let test_fig1_causal_precedence () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let pat = fx.pattern in
  (* m1 is sent *before* C(i,1), so it is C(i,0) — not C(i,1) — that lies
     in C(j,1)'s causal past *)
  check "C(i,0) precedes C(j,1) (m1)" true (Chains.causally_precedes pat (i, 0) (j, 1));
  check "C(i,1) does not precede C(j,1)" false (Chains.causally_precedes pat (i, 1) (j, 1));
  check "C(k,1) does not precede C(i,2)" false (Chains.causally_precedes pat (k, 1) (i, 2));
  check "same process order" true (Chains.causally_precedes pat (j, 1) (j, 2));
  check "irreflexive" false (Chains.causally_precedes pat (j, 1) (j, 1))

let test_fig1_cm_paths () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let pat = fx.pattern in
  let tdv = Tdv.compute pat in
  let undoubled = Chains.undoubled_cm_paths pat tdv in
  (* the CM-path [m3 ; m2] from C(k,1) to C(i,2) must be reported *)
  check "undoubled [m3;m2]" true
    (List.exists
       (fun (p : Chains.cm_path) ->
         p.origin = (k, 1) && p.last_msg = fx.m2 && p.target = (i, 2))
       undoubled);
  (* the CM-path [m5 ; m4] is doubled by [m5; m6]: not reported *)
  check "[m5;m4] is doubled" false
    (List.exists (fun (p : Chains.cm_path) -> p.last_msg = fx.m4 && p.origin = (i, 3)) undoubled);
  (* but it IS a CM-path *)
  check "[m5;m4] is a CM-path" true
    (List.exists
       (fun (p : Chains.cm_path) -> p.last_msg = fx.m4 && p.origin = (i, 3))
       (Chains.cm_paths pat));
  ignore j

let zigzag_matches_naive =
  QCheck.Test.make ~name:"zigzag relaxation = naive DFS" ~count:50
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let cks = all_ckpts pat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Chains.zigzag pat a b = Rdt_test_helpers.Naive.zigzag pat a b)
            cks)
        cks)

let causal_implies_zigzag =
  QCheck.Test.make ~name:"causal precedence implies zigzag" ~count:80
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let cks = all_ckpts pat in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ap, bp = (fst a, fst b) in
              if ap = bp then true
              else not (Chains.causally_precedes pat a b) || Chains.zigzag pat a b)
            cks)
        cks)

(* ------------------------------------------------------------------ *)
(* Consistency                                                         *)
(* ------------------------------------------------------------------ *)

let test_fig1_consistency () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let { Rdt_test_helpers.Fixtures.i; j; k; _ } = fx in
  let pat = fx.pattern in
  check "(C_k1, C_j1) consistent" true (Consistency.consistent_pair pat (k, 1) (j, 1));
  check "(C_i2, C_j2) inconsistent" false (Consistency.consistent_pair pat (i, 2) (j, 2));
  (match Consistency.orphan pat ~sender:(i, 2) ~receiver:(j, 2) with
  | Some id -> Alcotest.(check int) "orphan is m5" fx.m5 id
  | None -> Alcotest.fail "expected an orphan");
  let v111 = [| 1; 1; 1 |] and v221 = [| 2; 2; 1 |] in
  check "{C_i1,C_j1,C_k1} consistent" true (Consistency.consistent_global pat v111);
  check "{C_i2,C_j2,C_k1} inconsistent" false (Consistency.consistent_global pat v221)

let test_zcycle_useless () =
  let pat = Rdt_test_helpers.Fixtures.zcycle_fixture () in
  check "zcycle on C(1,1)" true (Chains.zcycle pat (1, 1));
  check "C(1,1) useless" true (Consistency.useless pat (1, 1));
  check "C(0,1) not on a zcycle" false (Chains.zcycle pat (0, 1));
  check "C(0,1) usable" false (Consistency.useless pat (0, 1))

let test_ping_pong_consistent () =
  let pat = Rdt_test_helpers.Fixtures.causal_ping_pong () in
  (* every aligned pair of checkpoints is a consistent global checkpoint *)
  for x = 0 to P.last_index pat 0 do
    check "aligned pair consistent" true
      (Consistency.consistent_global pat [| x; min x (P.last_index pat 1) |])
  done

let min_gcp_matches_exhaustive =
  QCheck.Test.make ~name:"min consistent GCP = exhaustive search" ~count:40
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      List.for_all
        (fun c ->
          Consistency.min_consistent_containing pat [ c ] = Rdt_test_helpers.Naive.min_gcp pat c)
        (all_ckpts pat))

let max_gcp_matches_exhaustive =
  QCheck.Test.make ~name:"max consistent GCP = exhaustive search" ~count:40
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      List.for_all
        (fun c ->
          Consistency.max_consistent_containing pat [ c ] = Rdt_test_helpers.Naive.max_gcp pat c)
        (all_ckpts pat))

let netzer_xu =
  QCheck.Test.make ~name:"Netzer-Xu: extensible iff no zigzag between members" ~count:50
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      (* test singletons and all pairs on distinct processes *)
      let cks = all_ckpts pat in
      let sets =
        List.map (fun c -> [ c ]) cks
        @ List.concat_map
            (fun a -> List.filter_map (fun b -> if fst a < fst b then Some [ a; b ] else None) cks)
            cks
      in
      List.for_all
        (fun set ->
          let ext = Consistency.extensible pat set in
          let no_zigzag =
            List.for_all
              (fun a -> List.for_all (fun b -> not (Chains.zigzag pat a b)) set)
              set
          in
          ext = no_zigzag)
        sets)

let useless_iff_zcycle =
  QCheck.Test.make ~name:"useless iff on a Z-cycle" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      List.for_all
        (fun c -> Consistency.useless pat c = Chains.zcycle pat c)
        (all_ckpts pat))

let min_gcp_set_consistency =
  QCheck.Test.make ~name:"min/max of sets contain pins and are consistent" ~count:60
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let cks = all_ckpts pat in
      let pairs =
        List.concat_map
          (fun a -> List.filter_map (fun b -> if fst a < fst b then Some [ a; b ] else None) cks)
          cks
      in
      List.for_all
        (fun set ->
          match
            (Consistency.min_consistent_containing pat set, Consistency.max_consistent_containing pat set)
          with
          | None, None -> true
          | Some mn, Some mx ->
              Consistency.consistent_global pat mn
              && Consistency.consistent_global pat mx
              && List.for_all (fun (ii, x) -> mn.(ii) = x && mx.(ii) = x) set
              && Array.for_all2 ( >= ) mx mn
          | _ -> false)
        pairs)

let test_pairwise_insufficient () =
  let pat = Rdt_test_helpers.Fixtures.pairwise_insufficient () in
  let tdv = Tdv.compute pat in
  check "every pair is doubled" true (Chains.pairwise_doubled pat tdv);
  check "yet RDT fails" false (Rdt_core.Checker.run pat).Rdt_core.Checker.rdt;
  (* the exact CM-path characterization does catch it *)
  check "CM-paths catch it" true (Chains.undoubled_cm_paths pat tdv <> [])

let rdt_implies_pairwise =
  QCheck.Test.make ~name:"RDT implies pairwise doubling (sound direction)" ~count:150
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let tdv = Tdv.compute pat in
      (not (Rdt_core.Checker.run pat).Rdt_core.Checker.rdt)
      || Chains.pairwise_doubled pat tdv)

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let test_render_figure1 () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  match Rdt_pattern.Render.ascii fx.pattern with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check "has P0 row" true (contains_substring s "P0");
      check "has P2 row" true (contains_substring s "P2");
      check "marks checkpoint 3" true (contains_substring s "C3");
      check "marks send of m5" true (contains_substring s ("s" ^ string_of_int fx.m5));
      check "legend" true (contains_substring s "messages:");
      (* one grid row per process + legend lines *)
      let lines = String.split_on_char '\n' (String.trim s) in
      Alcotest.(check int) "rows" (3 + 1 + P.num_messages fx.pattern) (List.length lines)

let test_render_too_large () =
  let pat = Rdt_test_helpers.Gen.random_pattern ~n:4 ~steps:500 ~seed:3 () in
  check "refused" true (Result.is_error (Rdt_pattern.Render.ascii pat));
  Alcotest.check_raises "ascii_exn raises"
    (Invalid_argument
       (match Rdt_pattern.Render.ascii pat with
       | Error e -> "Render.ascii_exn: " ^ e
       | Ok _ -> "unreachable"))
    (fun () -> ignore (Rdt_pattern.Render.ascii_exn pat))

let () =
  Alcotest.run "rdt_pattern"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "union/copy" `Quick test_bitset_union;
          qt bitset_model;
        ] );
      ( "builder",
        [
          Alcotest.test_case "initial checkpoints" `Quick test_builder_initial_checkpoints;
          Alcotest.test_case "rejects bad usage" `Quick test_builder_rejects_bad_usage;
          Alcotest.test_case "undelivered rejected" `Quick test_builder_undelivered_rejected;
          Alcotest.test_case "final checkpoints" `Quick test_builder_final_checkpoints;
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "gseq order" `Quick test_gseq_order;
          Alcotest.test_case "counts & validate" `Quick test_counts;
          Alcotest.test_case "growth past doublings" `Quick test_builder_many_messages;
        ] );
      ( "rgraph",
        [
          Alcotest.test_case "figure 1 edges" `Quick test_fig1_rgraph_edges;
          Alcotest.test_case "figure 1 reachability" `Quick test_fig1_reachability;
          Alcotest.test_case "figure 1 acyclic" `Quick test_fig1_acyclic;
          Alcotest.test_case "crossing messages cycle" `Quick test_crossing_cycle;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          qt rgraph_matches_naive;
          qt rgraph_edges_match_naive;
        ] );
      ( "tdv",
        [
          Alcotest.test_case "figure 1 values" `Quick test_fig1_tdv_values;
          Alcotest.test_case "figure 1 hidden dependency" `Quick test_fig1_not_rdt;
          qt tdv_matches_chains;
          qt tdv_matches_naive;
          qt tdv_entry_is_max_chain_origin;
        ] );
      ( "chains",
        [
          Alcotest.test_case "figure 1 z-paths" `Quick test_fig1_zpaths;
          Alcotest.test_case "figure 1 causal precedence" `Quick test_fig1_causal_precedence;
          Alcotest.test_case "figure 1 CM-paths" `Quick test_fig1_cm_paths;
          Alcotest.test_case "pairwise doubling insufficient" `Quick test_pairwise_insufficient;
          qt rdt_implies_pairwise;
          qt zigzag_matches_naive;
          qt causal_implies_zigzag;
        ] );
      ( "render",
        [
          Alcotest.test_case "figure 1" `Quick test_render_figure1;
          Alcotest.test_case "too large" `Quick test_render_too_large;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "figure 1 pairs/global" `Quick test_fig1_consistency;
          Alcotest.test_case "z-cycle useless" `Quick test_zcycle_useless;
          Alcotest.test_case "ping-pong consistent" `Quick test_ping_pong_consistent;
          qt min_gcp_matches_exhaustive;
          qt max_gcp_matches_exhaustive;
          qt netzer_xu;
          qt useless_iff_zcycle;
          qt min_gcp_set_consistency;
        ] );
    ]
