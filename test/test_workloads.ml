(* Tests for rdt_workloads: every environment produces well-formed
   actions, deterministic streams, and the topology each one advertises. *)

module Env = Rdt_dist.Env
module Rng = Rdt_dist.Rng

let check = Alcotest.(check bool)

(* Drive an environment directly for [ticks] spontaneous activities per
   process and collect every action; reactions to deliveries are fed back
   a bounded number of times. *)
let drive ?(n = 6) ?(ticks = 200) ?(seed = 5) (module E : Env.S) =
  let rng = Rng.create seed in
  let t = E.create ~n ~rng in
  let actions = ref [] in
  let record pid acts = List.iter (fun a -> actions := (pid, a) :: !actions) acts in
  for pid = 0 to n - 1 do
    check "initial delay positive" true (E.initial_tick_delay t ~pid >= 0)
  done;
  let budget = ref 2000 in
  let rec deliver_chain ~pid acts =
    List.iter
      (fun a ->
        match a with
        | Env.Send dst when !budget > 0 ->
            decr budget;
            record pid [ a ];
            deliver_chain ~pid:dst (E.on_deliver t ~pid:dst ~src:pid)
        | Env.Send _ -> ()
        | Env.Internal | Env.Checkpoint -> record pid [ a ])
      acts
  in
  for _ = 1 to ticks do
    for pid = 0 to n - 1 do
      let { Env.actions = acts; next_tick_in } = E.on_tick t ~pid in
      (match next_tick_in with
      | Some d -> check "tick delay positive" true (d >= 0)
      | None -> ());
      deliver_chain ~pid acts
    done
  done;
  List.rev !actions

let sends actions =
  List.filter_map (function pid, Env.Send d -> Some (pid, d) | _ -> None) actions

let test_valid_destinations () =
  List.iter
    (fun (name, _, mk) ->
      let acts = drive (mk ()) in
      List.iter
        (fun (pid, dst) ->
          if dst < 0 || dst >= 6 || dst = pid then
            Alcotest.failf "%s: send %d -> %d invalid" name pid dst)
        (sends acts))
    Rdt_workloads.Registry.all

let test_environments_communicate () =
  List.iter
    (fun (name, _, mk) ->
      let acts = drive (mk ()) in
      if sends acts = [] then Alcotest.failf "%s never sends" name)
    Rdt_workloads.Registry.all

let test_environment_determinism () =
  List.iter
    (fun (name, _, mk) ->
      let a = drive ~seed:9 (mk ()) and b = drive ~seed:9 (mk ()) in
      if a <> b then Alcotest.failf "%s not deterministic" name)
    Rdt_workloads.Registry.all

let test_registry_lookup () =
  check "find random" true (Option.is_some (Rdt_workloads.Registry.find "random"));
  check "find nothing" true (Option.is_none (Rdt_workloads.Registry.find "nope"));
  Alcotest.(check int) "seven environments" 7 (List.length Rdt_workloads.Registry.all);
  check "names match" true
    (List.sort compare Rdt_workloads.Registry.names
    = List.sort compare
        [ "random"; "group"; "client-server"; "ring"; "prodcons"; "master-worker"; "stencil" ])

let test_client_server_chain_topology () =
  let acts = drive ~n:5 (Rdt_workloads.Client_server.make ()) in
  List.iter
    (fun (pid, dst) ->
      if abs (pid - dst) <> 1 then
        Alcotest.failf "client-server sent %d -> %d (not a chain neighbour)" pid dst)
    (sends acts)

let test_ring_topology () =
  let acts = drive ~n:5 (Rdt_workloads.Ring_env.make ()) in
  List.iter
    (fun (pid, dst) ->
      if dst <> (pid + 1) mod 5 then Alcotest.failf "ring sent %d -> %d" pid dst)
    (sends acts)

let test_prodcons_topology () =
  let acts = drive ~n:6 (Rdt_workloads.Prodcons_env.make ()) in
  (* producers 0..2, consumers 3..5; producers send forward, consumers
     only ack back to producers *)
  List.iter
    (fun (pid, dst) ->
      let ok = (pid < 3 && dst >= 3) || (pid >= 3 && dst < 3) in
      if not ok then Alcotest.failf "prodcons sent %d -> %d" pid dst)
    (sends acts)

let test_master_worker_topology () =
  let acts = drive ~n:5 (Rdt_workloads.Master_worker.make ()) in
  List.iter
    (fun (pid, dst) ->
      if pid <> 0 && dst <> 0 then Alcotest.failf "master-worker sent %d -> %d" pid dst)
    (sends acts)

let test_stencil_topology () =
  let acts = drive ~n:6 (Rdt_workloads.Stencil_env.make ()) in
  List.iter
    (fun (pid, dst) ->
      let d = (dst - pid + 6) mod 6 in
      if d <> 1 && d <> 5 then Alcotest.failf "stencil sent %d -> %d (not a ring neighbour)" pid dst)
    (sends acts)

let test_group_membership () =
  (* every destination of an intra-group send shares a group with the
     sender; with multicast_prob 1.0 and intra 1.0 every send is a
     multicast within one group *)
  let params =
    {
      Rdt_workloads.Group_env.default_group_params with
      multicast_prob = 1.0;
      intra_prob = 1.0;
      group_size = 3;
      overlap = 1;
    }
  in
  let n = 8 in
  let acts = drive ~n (Rdt_workloads.Group_env.make ~params ()) in
  (* groups are windows of 3 starting every 2: {0,1,2},{2,3,4},{4,5,6},{6,7,0} *)
  let stride = 2 in
  let shares_group pid dst =
    let in_group g p = p = g || p = (g + 1) mod n || p = (g + 2) mod n in
    let rec scan g = g < n && ((in_group g pid && in_group g dst) || scan (g + stride)) in
    scan 0
  in
  List.iter
    (fun (pid, dst) ->
      if not (shares_group pid dst) then
        Alcotest.failf "group env sent %d -> %d outside any common group" pid dst)
    (sends acts)

let test_group_validation () =
  Alcotest.check_raises "bad overlap"
    (Invalid_argument "Group_env: overlap out of [0, group_size)") (fun () ->
      ignore
        (Rdt_workloads.Group_env.make
           ~params:{ Rdt_workloads.Group_env.default_group_params with overlap = 5; group_size = 3 }
           ()))

let test_params_validation () =
  check "default ok" true (Rdt_workloads.Params.validate Rdt_workloads.Params.default = Ok ());
  check "bad think" true
    (Result.is_error
       (Rdt_workloads.Params.validate { Rdt_workloads.Params.default with mean_think = 0 }));
  check "bad prob" true
    (Result.is_error
       (Rdt_workloads.Params.validate { Rdt_workloads.Params.default with send_prob = 1.5 }))

(* every environment should run under the runtime and yield a valid
   pattern with at least some traffic *)
let test_runtime_integration () =
  List.iter
    (fun (name, _, mk) ->
      let r =
        Rdt_core.Runtime.run
          {
            (Rdt_core.Runtime.default_config (mk ()) (Rdt_core.Registry.find_exn "fdas")) with
            Rdt_core.Runtime.n = 5;
            seed = 77;
            max_messages = 300;
          }
      in
      Alcotest.(check int) (name ^ ": full budget used") 300 r.metrics.Rdt_core.Metrics.messages;
      match Rdt_pattern.Pattern.validate r.pattern with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid pattern: %s" name e)
    Rdt_workloads.Registry.all

let () =
  Alcotest.run "rdt_workloads"
    [
      ( "generic",
        [
          Alcotest.test_case "valid destinations" `Quick test_valid_destinations;
          Alcotest.test_case "environments communicate" `Quick test_environments_communicate;
          Alcotest.test_case "deterministic" `Quick test_environment_determinism;
          Alcotest.test_case "registry" `Quick test_registry_lookup;
          Alcotest.test_case "runtime integration" `Quick test_runtime_integration;
          Alcotest.test_case "params validation" `Quick test_params_validation;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "client-server chain" `Quick test_client_server_chain_topology;
          Alcotest.test_case "ring" `Quick test_ring_topology;
          Alcotest.test_case "prodcons bipartite" `Quick test_prodcons_topology;
          Alcotest.test_case "master-worker hub" `Quick test_master_worker_topology;
          Alcotest.test_case "stencil neighbours" `Quick test_stencil_topology;
          Alcotest.test_case "group membership" `Quick test_group_membership;
          Alcotest.test_case "group validation" `Quick test_group_validation;
        ] );
    ]
